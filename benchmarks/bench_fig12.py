"""Fig. 12: 99th-percentile tail latency for application workloads.

Shape claims: FastPass has the lowest (or tied-lowest) tail latency of the
compared schemes; DRAIN's indiscriminate misrouting gives it the worst
tail whenever its period fires inside the run.
"""

from repro.experiments import fig12
from benchmarks.conftest import report

BENCHES = ("Radix", "FMM", "Volrend")
SCHEMES = [
    ("SWAP (VN=6, VC=2)", "swap", {}),
    ("DRAIN (VN=6, VC=2)", "drain", {}),
    ("Pitstop (VN=0, VC=2)", "pitstop", {}),
    ("FastPass(VN=0, VC=2)", "fastpass", {"n_vcs": 2}),
]


def bench_fig12(once, benchmark):
    result = once(fig12.run, quick=True, benchmarks=BENCHES,
                  schemes=SCHEMES)
    report("Fig. 12 — 99th percentile tail latency (applications)",
           fig12.format_result(result))
    benchmark.extra_info["p99"] = result["p99"]
    labels = result["schemes"]
    avg = {lbl: sum(result["p99"][b][lbl] for b in BENCHES) / len(BENCHES)
           for lbl in labels}
    fp = avg["FastPass(VN=0, VC=2)"]
    # FastPass tail within 1.5x of the best scheme's tail on average.
    assert fp <= 1.5 * min(avg.values())

"""Shared benchmark configuration.

Every benchmark regenerates one table/figure of the paper at a reduced
scale (4x4/8x8 meshes, short windows) so the whole suite completes in
minutes of pure Python, prints the rows/series the paper reports, and
asserts the *shape* claims (who wins, roughly by how much).

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated tables inline.
"""

import pytest


def report(title: str, text: str) -> None:
    print(f"\n=== {title} {'=' * max(0, 66 - len(title))}\n{text}")


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run

"""Fig. 13: breakdown of packet types in FastPass with 1 VC.

Shape claims: regular packets dominate at low load; the FastPass share
rises with load; dropped packets stay negligible (paper: <= 5.9% synthetic
post-saturation, ~0.3% in applications — far below SCARAB's 9%).
"""

from repro.experiments import fig13
from benchmarks.conftest import report

RATES = [0.02, 0.06, 0.10, 0.14]
BENCHES = ("Barnes", "FMM", "Volrend")


def bench_fig13(once, benchmark):
    result = once(fig13.run, quick=True, rates=RATES, benchmarks=BENCHES)
    report("Fig. 13 — packet-type breakdown (FastPass, 1 VC)",
           fig13.format_result(result))
    benchmark.extra_info["uniform"] = result["uniform"]
    benchmark.extra_info["apps"] = result["apps"]
    uni = result["uniform"]
    # Regular packets dominate at the lowest rate.
    assert uni[0]["regular"] > 0.5
    # FastFlow kicks in as the load increases.
    assert uni[-1]["fastpass"] >= uni[0]["fastpass"]
    # Dropping is negligible everywhere.
    for row in uni:
        assert row["dropped"] <= 0.059
    for row in result["apps"]:
        assert row["dropped"] <= 0.02
    # Even under adversarial protocol pressure — the regime that actually
    # exercises the dynamic bubble — drops stay far below SCARAB's 9% and
    # the workload still completes.
    stress = result["stress"]
    assert stress["completed"]
    assert 0 < stress["dropped"] <= 0.09

"""Table II: the simulation parameters as configured in this repo."""

from repro.experiments import table2
from benchmarks.conftest import report


def bench_table2(once, benchmark):
    result = once(table2.run, quick=True)
    report("Table II — key simulation parameters", table2.format_result(result))
    keys = {k for k, _v in result["rows"]}
    assert {"Topology", "Flow control", "Number of VNs",
            "FastPass slot K"} <= keys
    benchmark.extra_info["parameters"] = len(result["rows"])

"""Fig. 8: saturation throughput vs mesh size (Transpose).

Shape claim: FastPass wins at every size, and its margin over SWAP grows
with the network (more partitions = more concurrent FastPass-Packets).
"""

from repro.experiments import fig8
from benchmarks.conftest import report


def bench_fig8(once, benchmark):
    result = once(fig8.run, quick=True, sizes=(4, 8), iters=4)
    report("Fig. 8 — saturation throughput vs network size",
           fig8.format_result(result))
    table = result["table"]
    benchmark.extra_info["table"] = {
        k: {str(n): v for n, v in row.items()} for k, row in table.items()}
    for n in result["sizes"]:
        best_baseline = max(v[n] for k, v in table.items()
                            if k != "FastPass")
        assert table["FastPass"][n] >= best_baseline - 0.02
    # The relative margin over SWAP must not shrink as the mesh grows.
    g4 = table["FastPass"][4] / max(table["SWAP"][4], 1e-9)
    g8 = table["FastPass"][8] / max(table["SWAP"][8], 1e-9)
    assert g8 >= g4 - 0.15

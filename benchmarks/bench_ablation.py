"""Ablations of FastPass's design choices (DESIGN.md §7).

Not a paper figure, but the design decisions the paper fixes a priori are
worth regenerating:

* **VC count** (the paper evaluates 1/2/4 VCs): more VCs help latency.
* **Slot length K**: the paper's formula is conservative; shorter slots
  rotate lane coverage faster, longer slots amortize switching — the bench
  sweeps K around the formula value.
* **Lanes on/off**: FastPass against its own regular network (the plain
  0-VN baseline), isolating what the lanes contribute.
"""

from repro.config import SimConfig
from repro.experiments.common import cached_point
from benchmarks.conftest import report


def _cfg(**kw):
    base = dict(rows=8, cols=8, warmup_cycles=300, measure_cycles=1200,
                drain_cycles=2000)
    base.update(kw)
    return SimConfig(**base)


def bench_vc_count(once, benchmark):
    def sweep():
        rows = []
        for vcs in (1, 2, 4):
            res = cached_point("fastpass", {"n_vcs": vcs}, "transpose",
                               0.12, _cfg())
            rows.append((vcs, res.avg_latency,
                         res.fastpass_delivered / max(1, res.ejected)))
        return rows

    rows = once(sweep)
    text = "\n".join(f"  VC={v}: avg latency {lat:7.1f}  lane share {fs:.2f}"
                     for v, lat, fs in rows)
    report("Ablation — FastPass VC count (transpose @ 0.12)", text)
    benchmark.extra_info["rows"] = rows
    lat = {v: l for v, l, _ in rows}
    assert lat[4] <= lat[1] * 1.1       # more VCs never hurt much


def bench_slot_length(once, benchmark):
    def sweep():
        formula = _cfg(n_vns=1, n_vcs=4).with_(n_vns=1).fastpass_slot()
        rows = []
        for k in (formula // 4, formula, formula * 2):
            res = cached_point("fastpass", {"n_vcs": 4}, "transpose",
                               0.14, _cfg(fastpass_slot_cycles=k))
            rows.append((k, res.avg_latency,
                         res.fastpass_delivered / max(1, res.ejected)))
        return rows

    rows = once(sweep)
    text = "\n".join(f"  K={k:5d}: avg latency {lat:7.1f}  lane share "
                     f"{fs:.2f}" for k, lat, fs in rows)
    report("Ablation — slot length K (paper formula = middle row)", text)
    benchmark.extra_info["rows"] = rows
    for _k, lat, _fs in rows:
        assert lat == lat and lat > 0


def bench_lanes_contribution(once, benchmark):
    def pair():
        fp = cached_point("fastpass", {"n_vcs": 4}, "transpose", 0.14,
                          _cfg())
        plain = cached_point("baseline", {"n_vns": 1, "n_vcs": 4},
                             "transpose", 0.14, _cfg())
        return fp, plain

    fp, plain = once(pair)
    report("Ablation — lanes on vs off (same 0-VN router, 4 VCs)",
           f"  with lanes   : {fp.avg_latency:7.1f} cycles "
           f"(lane share {fp.fastpass_delivered / max(1, fp.ejected):.2f})\n"
           f"  without lanes: {plain.avg_latency:7.1f} cycles")
    benchmark.extra_info["with_lanes"] = fp.avg_latency
    benchmark.extra_info["without_lanes"] = plain.avg_latency
    assert fp.avg_latency <= plain.avg_latency * 1.05

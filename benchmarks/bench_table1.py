"""Table I: the qualitative comparison matrix, with the deadlock-freedom
columns verified behaviourally (the adversarial 0-VN scenario actually
runs under each claimant)."""

from repro.experiments import table1
from benchmarks.conftest import report


def bench_table1(once, benchmark):
    result = once(table1.run, quick=True, verify=False)
    text = table1.format_result(result)
    report("Table I — deadlock-freedom solutions compared", text)
    benchmark.extra_info["rows"] = len(result["rows"])
    # Shape: FastPass is the only all-property row.
    for row in result["rows"]:
        all_yes = all(c == "X" for c in row["cells"])
        assert all_yes == (row["scheme"] == "fastpass")


def bench_table1_verified(once, benchmark):
    """The expensive variant: the Protocol-DF column is confirmed by
    running the protocol-pressure workload under FastPass and Pitstop."""
    assert once(table1.protocol_deadlock_free, "fastpass", n_vcs=2)
    benchmark.extra_info["verified"] = "fastpass completes with 0 VNs"

"""Fig. 9: latency breakdown of Regular vs FastPass packets (Uniform,
1 VC).

Shape claim: the bufferless component of FastPass-Packet latency stays
small and essentially flat across injection rates, while buffered time
grows with load.
"""

from repro.experiments import fig9
from benchmarks.conftest import report

RATES = [0.02, 0.06, 0.10, 0.14]


def bench_fig9(once, benchmark):
    result = once(fig9.run, quick=True, rates=RATES)
    report("Fig. 9 — Regular vs FastPass packet latency (Uniform, 1 VC)",
           fig9.format_result(result))
    rows = [r for r in result["rows"]
            if r["fp_bufferless"] == r["fp_bufferless"]]
    assert rows, "no FastPass packets delivered"
    benchmark.extra_info["rows"] = result["rows"]
    bufferless = [r["fp_bufferless"] for r in rows]
    # Small: a bufferless traversal is bounded by diameter + ejection.
    assert max(bufferless) < 2 * 14 + 10
    # Flat: spread stays within a handful of cycles across the sweep.
    assert max(bufferless) - min(bufferless) < 15
    # Buffered time grows with load.
    buffered = [r["fp_buffered"] for r in rows]
    assert buffered[-1] >= buffered[0]

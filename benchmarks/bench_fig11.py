"""Fig. 11: router power and area breakdown (analytical model).

Shape claims (the paper's): FastPass cuts ~40% power/area vs EscapeVC,
matches Pitstop, SPIN pays ~6% extra for detection, and the FastPass
overhead is ~4% of its own router.
"""

import pytest

from repro.experiments import fig11
from benchmarks.conftest import report


def bench_fig11(once, benchmark):
    result = once(fig11.run, quick=True)
    report("Fig. 11 — post-P&R power/area (analytical substitute)",
           fig11.format_result(result))
    rows = {r["scheme"]: r for r in result["rows"]}
    benchmark.extra_info["area_vs_escape"] = {
        k: round(r["area_vs_escape"], 3) for k, r in rows.items()}
    fp = rows["fastpass"]
    assert 1 - fp["area_vs_escape"] == pytest.approx(0.40, abs=0.08)
    assert 1 - fp["power_vs_escape"] == pytest.approx(0.41, abs=0.08)
    assert fp["area_um2"] == pytest.approx(rows["pitstop"]["area_um2"],
                                           rel=0.05)
    assert rows["spin"]["area_vs_escape"] == pytest.approx(1.06, abs=0.02)
    overhead = fp["area_breakdown"]["overhead"]
    assert overhead / fp["area_um2"] == pytest.approx(0.04, abs=0.01)

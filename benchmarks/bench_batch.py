"""Replica batching: R-seed repeats as one lock-step batch.

Benchmarks the batch path the repeat loops use (``run_replicas`` /
``Point.make_seeded`` through the campaign executor) against the
equivalent scalar loop, and asserts the contract that makes the batch
path usable at all: every replica's result is bit-identical to the
scalar run with the same seed.
"""

import time

import pytest

from repro.experiments import fig7
from repro.experiments.perf import RESULT_FIELDS, _same
from repro.sim.runner import run_point, run_replicas
from repro.schemes import get_scheme
from repro.config import SimConfig
from benchmarks.conftest import report

SEEDS = [7, 8, 9, 10, 11, 12, 13, 14]


def _cfg():
    return SimConfig(rows=8, cols=8, warmup_cycles=200,
                     measure_cycles=1000, drain_cycles=1500)


@pytest.mark.parametrize("scheme,kwargs",
                         [("fastpass", {"n_vcs": 4}), ("escapevc", {})])
def bench_batch_replicas(once, benchmark, scheme, kwargs):
    """8 seed replicas of one low-load point, batched vs scalar."""
    cfg = _cfg()
    batched = once(run_replicas, scheme, "uniform", 0.05, cfg, SEEDS,
                   scheme_kwargs=kwargs)
    t0 = time.perf_counter()
    scalar = [run_point(get_scheme(scheme, **kwargs), "uniform", 0.05,
                        cfg, seed=s) for s in SEEDS]
    scalar_wall = time.perf_counter() - t0
    for a, b in zip(scalar, batched):
        for f in RESULT_FIELDS:
            assert _same(getattr(a, f), getattr(b, f)), \
                f"batch drifted from scalar on {f}"
    batch_wall = benchmark.stats.stats.mean
    benchmark.extra_info["scalar_wall_s"] = scalar_wall
    benchmark.extra_info["speedup"] = scalar_wall / batch_wall
    report(f"batch replicas ({scheme})",
           f"8 seeds: scalar {scalar_wall * 1e3:.0f} ms, "
           f"batch {batch_wall * 1e3:.0f} ms "
           f"({scalar_wall / batch_wall:.2f}x), bit-identical")


def bench_fig7_seeded(once, benchmark):
    """A seed-averaged Fig. 7 curve: the repeats ride the batch path."""
    result = once(fig7.run, quick=True, patterns=("transpose",),
                  schemes=[("FastPass", "fastpass", {"n_vcs": 4}),
                           ("EscapeVC", "escapevc", {})],
                  rates=[0.02, 0.06, 0.10], seeds=[1, 2, 3, 4])
    report("Fig. 7 (transpose, 4-seed mean)",
           fig7.format_result(result))
    series = result["series"]["transpose"]
    # Shape survives averaging: FastPass saturates no earlier.
    assert fig7.saturation_of(series["FastPass"]) >= \
        fig7.saturation_of(series["EscapeVC"]) - 1e-9

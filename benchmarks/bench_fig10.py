"""Fig. 10: average packet latency and normalized execution time for the
application-workload substitutes.

Reduced scale: 4x4 mesh, three benchmarks, four schemes.  Shape claims:
every scheme completes every workload, execution times stay within a sane
band of the EscapeVC reference, and FastPass(VC=4) is competitive with the
best baseline.
"""

from repro.experiments import fig10
from benchmarks.conftest import report

BENCHES = ("Radix", "FMM", "Volrend")
SCHEMES = [
    ("EscapeVC(VN=6, VC=2)", "escapevc", {}),
    ("SWAP(VN=6, VC=2)", "swap", {}),
    ("FastPass(VN=0, VC=2)", "fastpass", {"n_vcs": 2}),
    ("FastPass(VN=0, VC=4)", "fastpass", {"n_vcs": 4}),
]


def bench_fig10(once, benchmark):
    result = once(fig10.run, quick=True, benchmarks=BENCHES,
                  schemes=SCHEMES)
    report("Fig. 10 — application latency & normalized execution time",
           fig10.format_result(result))
    benchmark.extra_info["exec_norm"] = result["exec_norm"]
    for b in BENCHES:
        for label in result["schemes"]:
            norm = result["exec_norm"][b][label]
            assert 0.5 < norm < 3.0, (b, label, norm)
    # FastPass(VC=4) average latency within 25% of the best scheme.
    import math
    avg = {label: sum(result["latency"][b][label] for b in BENCHES) / 3
           for label in result["schemes"]}
    best = min(v for v in avg.values() if not math.isnan(v))
    assert avg["FastPass(VN=0, VC=4)"] <= 1.25 * best

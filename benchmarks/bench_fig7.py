"""Fig. 7: latency vs injection rate, synthetic traffic, all 8 schemes.

Reduced scale: 8x8 mesh (as the paper), short windows, a coarse rate grid,
one pattern per benchmark function.  Shape claims asserted: FastPass
reaches the highest saturation rate; TFC/MinBD collapse early.
"""

import pytest

from repro.experiments import fig7
from benchmarks.conftest import report

RATES = [0.02, 0.06, 0.10, 0.14, 0.18]


def _run_pattern(pattern):
    return fig7.run(quick=True, patterns=(pattern,), rates=RATES)


@pytest.mark.parametrize("pattern", ["transpose", "shuffle", "bit_rotation"])
def bench_fig7(once, benchmark, pattern):
    result = once(_run_pattern, pattern)
    report(f"Fig. 7 ({pattern}) — avg latency vs injection rate",
           fig7.format_result(result))
    series = result["series"][pattern]
    sats = {label: fig7.saturation_of(pts)
            for label, pts in series.items()}
    benchmark.extra_info["saturation"] = sats
    # Shape: FastPass saturates last (or ties the best baseline).
    assert sats["FastPass"] >= max(
        v for k, v in sats.items() if k != "FastPass") - 1e-9
    # Shape: TFC saturates no later than FastPass by a clear margin.
    assert sats["FastPass"] >= 1.5 * sats["TFC"]

#!/usr/bin/env python
"""Visualize congestion and lane traffic with the link-utilization stats.

Runs Transpose traffic (its diagonal corridor is famously hot) under
EscapeVC and FastPass and prints per-router load heatmaps, the hottest
links, and how much of the carried traffic FastPass moved onto its
bufferless lanes.
"""

from repro import SimConfig, Simulation, SyntheticTraffic, get_scheme
from repro.sim.linkstats import format_heatmap, hotspots, summary


def run(scheme_name, **kw):
    cfg = SimConfig(rows=8, cols=8, warmup_cycles=200, measure_cycles=1800,
                    drain_cycles=1000)
    sim = Simulation(cfg, get_scheme(scheme_name, **kw),
                     SyntheticTraffic("transpose", 0.12, seed=4))
    sim.traffic.measure_window(0, 1 << 60)
    for _ in range(2000):
        sim.net.step()
    return sim.net


def main() -> None:
    for name, kw in [("escapevc", {}), ("fastpass", {"n_vcs": 4})]:
        net = run(name, **kw)
        agg = summary(net)
        print(f"--- {name}: mean link load {agg['mean']:.3f}, "
              f"max {agg['max']:.3f}, "
              f"FastFlow share {agg['fastflow_share']:.1%}")
        print("per-router average output load (row 7 at top):")
        print(format_heatmap(net))
        print("hottest links:")
        for u in hotspots(net, top=3):
            print(f"  {u.src:>2} -> {u.dst:<2} regular={u.regular:.3f} "
                  f"fastflow={u.fastflow:.3f}")
        print()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""FastPass on an irregular topology (Sec. III-F).

Builds an irregular (non-mesh) network, derives FastPass partitions by
segmenting the holistic Eulerian path over the bidirectional channels, and
verifies the Sec. III-F guarantees: segments are link-disjoint, they cover
every directed channel exactly once, and the TDM schedule eventually gives
every router a lane to every segment.
"""

import networkx as nx

from repro.core import irregular


def build_irregular_graph() -> "nx.Graph":
    """A 12-router topology that is decidedly not a mesh: a ring with
    chords and a two-level hub."""
    g = nx.Graph()
    ring = list(range(10))
    g.add_edges_from(zip(ring, ring[1:] + ring[:1]))
    g.add_edges_from([(0, 5), (2, 7), (1, 10), (6, 10), (10, 11), (3, 11)])
    return g


def main() -> None:
    g = build_irregular_graph()
    print(f"Topology: {g.number_of_nodes()} routers, "
          f"{g.number_of_edges()} bidirectional channels")

    path = irregular.holistic_path(g)
    print(f"Holistic path: {len(path)} directed links "
          f"(= 2 x {g.number_of_edges()} channels)")

    P = 4
    segments, routers_of = irregular.derive_partitions(g, P)
    irregular.verify_segments(g, segments)
    print(f"\n{P} link-disjoint partitions derived and verified:")
    for i, (seg, routers) in enumerate(zip(segments, routers_of)):
        print(f"  partition {i}: {len(seg)} links, "
              f"routers {sorted(set(routers))}")

    sched = irregular.IrregularSchedule(g, P, slot_cycles=64)
    assert sched.covers_all()
    print(f"\nTDM schedule: slot K={sched.K}, phase={sched.phase_len} "
          f"cycles, full rotation={sched.rotation_len} cycles")
    for phase in range(2):
        primes = [sched.prime_of_partition(c, phase) for c in range(P)]
        targets = [[sched.target_partition(c, s) for s in range(P)]
                   for c in range(P)]
        print(f"  phase {phase}: primes={primes}, "
              f"slot targets per partition={targets}")
    print("\nEvery router lies on a segment, so every router eventually "
          "becomes prime\nand reaches every partition — the deadlock-"
          "freedom argument carries over.")


if __name__ == "__main__":
    main()

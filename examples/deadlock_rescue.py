#!/usr/bin/env python
"""Protocol-level deadlock and FastPass's rescue (Secs. II / III-C3).

A 0-VN network with no escape mechanism is driven with an adversarial
coherence workload: cores flood 1-flit requests through deep MSHRs while
every LLC slice has a tiny service queue, so data responses must fight the
request flood for the *same* buffers.  The unprotected baseline wedges in a
genuine protocol deadlock (the watchdog fires); FastPass — with the same
zero virtual networks — finishes every transaction because every blocked
packet is eventually upgraded onto a FastPass-Lane.
"""

from repro import SimConfig, Simulation, get_scheme
from repro.experiments.table1 import deadlock_scenario_config
from repro.traffic.coherence import CoherenceTraffic


def adversarial_traffic() -> CoherenceTraffic:
    return CoherenceTraffic(txns_per_core=150, seed=7, mshrs=32, think=1,
                            burst=16, service_depth=1, service_latency=8,
                            fwd_frac=0.2)


def main() -> None:
    cfg = deadlock_scenario_config()
    print("Adversarial MOESI-like workload, 4x4 mesh, ZERO virtual "
          "networks\n")
    for name, kwargs in [
        ("baseline", {"n_vns": 1, "n_vcs": 2}),   # unprotected 0-VN network
        ("fastpass", {"n_vcs": 2}),
        ("pitstop", {}),
    ]:
        sim = Simulation(cfg, get_scheme(name, **kwargs),
                         adversarial_traffic())
        res = sim.run_to_completion(max_cycles=100000)
        t = sim.traffic
        status = ("DEADLOCKED" if res.deadlocked else
                  "completed" if t.done() else "stalled")
        print(f"{res.scheme:26s} -> {status:10s} "
              f"({t.completed}/{t.total_txns} transactions, "
              f"{res.cycles} cycles)")
        if name == "fastpass":
            mgr = sim.net.fastpass
            print(f"{'':26s}    upgrades={mgr.upgrades} "
                  f"bounced={mgr.engine.bounced} dropped={res.dropped} "
                  f"regenerated={sum(ni.regenerated for ni in sim.net.nis)}")
    print("\nThe unprotected network deadlocks; FastPass and Pitstop "
          "complete with 0 VNs.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Application workloads (PARSEC/SPLASH-2 substitutes) across schemes.

A miniature Fig. 10: run three benchmarks through EscapeVC, SWAP and
FastPass and report average packet latency plus execution time normalized
to EscapeVC.
"""

from repro import SimConfig, Simulation, get_scheme, workload_traffic

BENCHMARKS = ["Radix", "FMM", "Volrend"]
SCHEMES = [
    ("EscapeVC(VN=6, VC=2)", "escapevc", {}),
    ("SWAP(VN=6, VC=2)", "swap", {}),
    ("FastPass(VN=0, VC=2)", "fastpass", {"n_vcs": 2}),
]


def main() -> None:
    cfg = SimConfig(rows=4, cols=4)
    print(f"{'benchmark':<10}{'scheme':<24}{'avg lat':>9}{'p99':>9}"
          f"{'exec (norm)':>13}")
    for bench in BENCHMARKS:
        base_cycles = None
        for label, name, kwargs in SCHEMES:
            traffic = workload_traffic(bench, txns_per_core=120, seed=1)
            sim = Simulation(cfg, get_scheme(name, **kwargs), traffic)
            res = sim.run_to_completion(max_cycles=300000)
            if base_cycles is None:
                base_cycles = res.cycles
            print(f"{bench:<10}{label:<24}{res.avg_latency:>9.1f}"
                  f"{res.p99_latency:>9.1f}"
                  f"{res.cycles / base_cycles:>13.3f}")
        print()


if __name__ == "__main__":
    main()

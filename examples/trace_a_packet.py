#!/usr/bin/env python
"""Follow individual packets through FastPass with the packet tracer.

Runs a short, deliberately congested simulation with tiny ejection queues
(so bounces and dynamic-bubble drops actually happen), then prints the
complete event timeline of a few interesting packets: one that travelled
as a regular packet, one that was upgraded to a FastPass-Packet, and — if
the congestion produced one — one that bounced or was dropped and
regenerated.
"""

from repro import SimConfig, Simulation, SyntheticTraffic, get_scheme
from repro.sim.trace import PacketTracer


def main() -> None:
    cfg = SimConfig(rows=4, cols=4, fastpass_slot_cycles=64,
                    ej_queue_pkts=1, inj_queue_pkts=2)
    sim = Simulation(cfg, get_scheme("fastpass", n_vcs=1),
                     SyntheticTraffic("uniform", 0.14, seed=13))
    sim.traffic.measure_window(0, 1 << 60)
    tracer = PacketTracer(sim.net)
    for _ in range(1500):
        sim.net.step()

    counts = tracer.counts()
    print("event totals:", dict(sorted(counts.items())), "\n")

    def first_with(kind):
        for pid, evs in tracer.events.items():
            kinds = {e.kind for e in evs}
            if kind in kinds and "ejected" in kinds:
                return pid
        return None

    shown = set()
    for label, kind in [("a regular delivery", "generated"),
                        ("an upgraded (FastPass) delivery", "upgraded"),
                        ("a bounced packet", "bounced"),
                        ("a dropped-and-regenerated request",
                         "regenerated")]:
        pid = first_with(kind)
        if pid is None or pid in shown:
            continue
        shown.add(pid)
        print(f"--- {label}")
        print(tracer.format_timeline(pid))
        print()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: simulate FastPass vs a baseline on an 8x8 mesh.

Runs Transpose traffic at a moderate injection rate through FastPass and
EscapeVC and prints latency/throughput plus FastPass-specific counters
(upgrades, lane deliveries, dynamic-bubble drops).
"""

from repro import SimConfig, Simulation, SyntheticTraffic, get_scheme


def run_one(scheme_name: str, rate: float, **scheme_kwargs):
    cfg = SimConfig(rows=8, cols=8, warmup_cycles=500,
                    measure_cycles=2000, drain_cycles=3000)
    scheme = get_scheme(scheme_name, **scheme_kwargs)
    sim = Simulation(cfg, scheme, SyntheticTraffic("transpose", rate, seed=1))
    res = sim.run()
    return sim, res


def main() -> None:
    rate = 0.12
    print(f"Transpose traffic, 8x8 mesh, {rate} packets/node/cycle\n")
    for name, kwargs in [("escapevc", {}), ("fastpass", {"n_vcs": 4})]:
        sim, res = run_one(name, rate, **kwargs)
        print(f"{res.scheme}")
        print(f"  avg latency     : {res.avg_latency:8.1f} cycles")
        print(f"  p99 latency     : {res.p99_latency:8.1f} cycles")
        print(f"  throughput      : {res.throughput:8.4f} pkts/node/cycle")
        print(f"  deadlocked      : {res.deadlocked}")
        if name == "fastpass":
            mgr = sim.net.fastpass
            print(f"  lane upgrades   : {mgr.upgrades}")
            print(f"  lane deliveries : {res.fastpass_delivered}")
            print(f"  bounced packets : {mgr.engine.bounced}")
            print(f"  dropped requests: {res.dropped} "
                  f"(regenerated from MSHRs)")
        print()


if __name__ == "__main__":
    main()

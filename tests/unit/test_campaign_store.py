"""CampaignStore tests: WAL concurrency hardening, batch transitions,
lease-aware resume, and the throughput window behind remote-robust ETAs.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.campaign.store import CampaignStore
from repro.sim.parallel import Point


def points(n: int) -> list[tuple[str, Point]]:
    return [(f"k{i}", Point.make("fastpass", "uniform", 0.01 * (i + 1)))
            for i in range(n)]


@pytest.fixture
def store(tmp_path):
    s = CampaignStore(tmp_path / "campaign.sqlite")
    yield s
    s.close()


class TestWalMode:
    def test_wal_journal_mode(self, store):
        # On normal filesystems sqlite grants WAL; the attribute records
        # whatever mode was actually negotiated.
        assert store.journal_mode == "wal"

    def test_concurrent_reader_sees_writes(self, store, tmp_path):
        store.register(points(3))
        store.mark("k0", "done")
        reader = CampaignStore(tmp_path / "campaign.sqlite")
        try:
            assert reader.counts() == {"pending": 2, "running": 0,
                                       "done": 1, "failed": 0}
        finally:
            reader.close()

    def test_cross_thread_writes(self, store):
        """The coordinator marks transitions from its HTTP thread while
        the executor registers from the main one."""
        store.register(points(20))
        errors = []

        def mark_half(lo, hi):
            try:
                for i in range(lo, hi):
                    store.mark(f"k{i}", "done")
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=mark_half, args=(lo, lo + 10))
                   for lo in (0, 10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.counts()["done"] == 20


class TestTransitions:
    def test_mark_many_is_one_transition(self, store):
        store.register(points(4))
        store.mark_many(["k0", "k1", "k2"], "running")
        assert store.counts() == {"pending": 1, "running": 3, "done": 0,
                                  "failed": 0}

    def test_mark_many_clears_stale_error(self, store):
        store.register(points(1))
        store.mark("k0", "failed", error="boom")
        store.mark_many(["k0"], "pending")
        store.mark("k0", "failed", error=None)
        assert store.failures() == [("k0", "", 0)]

    def test_mark_many_rejects_bad_status(self, store):
        with pytest.raises(ValueError):
            store.mark_many(["k0"], "exploded")


class TestResetRunning:
    def test_reset_running_requeues_stale_points(self, store):
        store.register(points(3))
        store.mark_many(["k0", "k1"], "running")
        assert store.reset_running() == 2
        assert store.counts()["pending"] == 3

    def test_reset_running_spares_live_leases(self, store):
        """Points out on live fabric leases must not be clobbered back to
        pending — that would double-execute them."""
        store.register(points(3))
        store.mark_many(["k0", "k1", "k2"], "running")
        assert store.reset_running(exclude={"k1"}) == 2
        assert store.status_of("k1") == "running"
        assert store.status_of("k0") == "pending"
        assert store.status_of("k2") == "pending"

    def test_reset_running_noop_when_all_excluded(self, store):
        store.register(points(2))
        store.mark_many(["k0", "k1"], "running")
        assert store.reset_running(exclude={"k0", "k1"}) == 0
        assert store.counts()["running"] == 2


class TestThroughput:
    def test_throughput_counts_recent_finishers(self, store):
        store.register(points(5))
        for k in ("k0", "k1", "k2"):
            store.mark(k, "done")
        store.mark("k3", "failed", error="x")
        n, span = store.throughput(window_s=300.0)
        assert n == 4
        assert span > 0

    def test_throughput_ignores_old_finishers(self, store):
        store.register(points(2))
        store.mark("k0", "done")
        time.sleep(0.05)
        store.mark("k1", "done")
        n, _ = store.throughput(window_s=0.01)
        assert n == 1

    def test_throughput_empty(self, store):
        assert store.throughput() == (0, 0.0)


class TestLeaseJournal:
    def test_sync_and_outstanding_round_trip(self, store):
        store.register(points(3))
        store.sync_leases([
            {"lease_id": "L1", "worker": "w1", "keys": ["k0", "k1"],
             "attempt": 2, "redundancy": 1, "ttl_s": 30.0},
            {"lease_id": "L2", "worker": "w2", "keys": ["k2"],
             "attempt": 1, "redundancy": 2, "ttl_s": 30.0},
        ])
        rows = store.outstanding_leases()
        assert [r["lease_id"] for r in rows] == ["L1", "L2"]
        assert rows[0]["keys"] == ["k0", "k1"]
        assert rows[0]["attempt"] == 2
        assert rows[1]["redundancy"] == 2
        assert all(r["deadline"] > time.time() for r in rows)

    def test_sync_is_full_replacement(self, store):
        store.sync_leases([{"lease_id": "L1", "worker": "w", "keys": ["a"],
                            "attempt": 1, "ttl_s": 10.0}])
        store.sync_leases([{"lease_id": "L2", "worker": "w", "keys": ["b"],
                            "attempt": 1, "ttl_s": 10.0}])
        assert [r["lease_id"] for r in store.outstanding_leases()] == ["L2"]
        store.sync_leases([])
        assert store.outstanding_leases() == []

    def test_clear_leases(self, store):
        store.sync_leases([{"lease_id": "L1", "worker": "w", "keys": ["a"],
                            "attempt": 1, "ttl_s": 10.0}])
        assert store.clear_leases() == 1
        assert store.outstanding_leases() == []
        assert store.clear_leases() == 0

    def test_journal_survives_reopen(self, store, tmp_path):
        """The crash-recovery path: a new store (a restarted
        coordinator) reads the journal the dead one wrote."""
        store.register(points(1))
        store.sync_leases([{"lease_id": "L9", "worker": "w", "keys": ["k0"],
                            "attempt": 1, "ttl_s": 60.0}])
        reopened = CampaignStore(tmp_path / "campaign.sqlite")
        try:
            rows = reopened.outstanding_leases()
            assert [r["lease_id"] for r in rows] == ["L9"]
        finally:
            reopened.close()

    def test_points_by_key_returns_point_and_status(self, store):
        store.register(points(2))
        store.mark("k1", "done")
        got = store.points_by_key(["k0", "k1", "missing"])
        assert set(got) == {"k0", "k1"}
        assert got["k0"][1] == "pending"
        assert got["k1"][1] == "done"
        assert got["k0"][0].pattern == "uniform"


class TestResetRunningRace:
    def test_reset_running_racing_mark_many(self, store):
        """A resuming coordinator's reset_running(exclude=live) runs
        concurrently with lease transitions marking tasks running: no
        exception, no lost point, and every excluded (live) key is
        never clobbered back to pending by the sweep."""
        n = 60
        store.register(points(n))
        live = [f"k{i}" for i in range(0, n, 2)]     # will be excluded
        stale = [f"k{i}" for i in range(1, n, 2)]
        store.mark_many(stale, "running")            # crash leftovers
        errors: list = []
        start = threading.Barrier(3)

        def marker():
            try:
                start.wait()
                for key in live:
                    store.mark_many([key], "running")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def resetter():
            try:
                start.wait()
                for _ in range(10):
                    store.reset_running(exclude=live)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=marker),
                   threading.Thread(target=resetter)]
        for t in threads:
            t.start()
        start.wait()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        # One final sweep after the dust settles: the live keys must
        # still be running (they were excluded every time), the stale
        # ones pending.
        store.reset_running(exclude=live)
        for key in live:
            assert store.status_of(key) == "running"
        for key in stale:
            assert store.status_of(key) == "pending"
        counts = store.counts()
        assert sum(counts.values()) == n             # nothing lost

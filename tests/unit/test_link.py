"""Unit tests for links (serialization, reservations, pre-emption) and VC
slots."""

import pytest

from repro.network.link import Link, ReservationConflict, VCSlot


def make_link():
    return Link(src=0, src_port=2, dst=1, dst_port=4)


class TestVCSlot:
    def test_initially_free(self):
        s = VCSlot(port=1, vc=0)
        assert s.is_free(0)

    def test_not_free_when_occupied(self):
        s = VCSlot(1, 0)
        s.pkt = object()
        assert not s.is_free(0)

    def test_not_free_until_credit_returns(self):
        s = VCSlot(1, 0)
        s.pkt = None
        s.free_at = 10
        assert not s.is_free(9)
        assert s.is_free(10)


class TestReservations:
    def test_no_conflict_on_empty_link(self):
        link = make_link()
        assert not link.fp_conflict(0, 5)

    def test_overlap_detection(self):
        link = make_link()
        link.reserve_fp(10, 15)
        assert link.fp_conflict(14, 16)
        assert link.fp_conflict(5, 11)
        assert link.fp_conflict(11, 13)
        assert not link.fp_conflict(15, 20)
        assert not link.fp_conflict(5, 10)

    def test_double_reservation_raises(self):
        link = make_link()
        link.reserve_fp(10, 15)
        with pytest.raises(ReservationConflict):
            link.reserve_fp(12, 14)

    def test_adjacent_reservations_allowed(self):
        link = make_link()
        link.reserve_fp(10, 15)
        link.reserve_fp(15, 20)
        link.reserve_fp(5, 10)
        assert len(link.fp_windows) == 3

    def test_prune_drops_expired_windows(self):
        link = make_link()
        link.reserve_fp(0, 5)
        link.reserve_fp(10, 15)
        link.prune(7)
        assert link.fp_windows == [(10, 15)]


class TestPreemption:
    def test_inflight_transfer_delayed_by_reservation(self):
        link = make_link()
        dst_slot = VCSlot(4, 0)
        src_slot = VCSlot(2, 0)
        dst_slot.ready_at = 7
        src_slot.free_at = 11
        link.start_transfer(5, 5, dst_slot, src_slot)   # busy until 10
        link.reserve_fp(6, 9)                           # 3-cycle window
        assert dst_slot.ready_at == 7 + 3
        assert src_slot.free_at == 11 + 3
        assert link.busy_until == 10 + 3

    def test_reservation_after_transfer_end_no_delay(self):
        link = make_link()
        dst_slot = VCSlot(4, 0)
        dst_slot.ready_at = 7
        link.start_transfer(5, 5, dst_slot, None)
        link.reserve_fp(10, 12)    # starts exactly at transfer end
        assert dst_slot.ready_at == 7

    def test_prune_clears_finished_transfer(self):
        link = make_link()
        dst_slot = VCSlot(4, 0)
        link.start_transfer(0, 3, dst_slot, None)
        link.prune(3)
        assert link.inflight is None

    def test_transfer_sets_busy(self):
        link = make_link()
        link.start_transfer(4, 5, VCSlot(4, 0), None)
        assert link.busy_until == 9

"""Unit tests for the mesh topology."""

import networkx as nx
import pytest

from repro.network.topology import (
    Mesh,
    OPPOSITE,
    PORT_E,
    PORT_LOCAL,
    PORT_N,
    PORT_S,
    PORT_W,
)


class TestCoordinates:
    def test_row_major_ids(self):
        m = Mesh(4, 4)
        assert m.xy(0) == (0, 0)
        assert m.xy(3) == (3, 0)
        assert m.xy(4) == (0, 1)
        assert m.xy(15) == (3, 3)

    def test_rid_roundtrip(self):
        m = Mesh(5, 7)
        for rid in range(m.n_routers):
            x, y = m.xy(rid)
            assert m.rid(x, y) == rid

    def test_n_routers(self):
        assert Mesh(4, 4).n_routers == 16
        assert Mesh(8, 8).n_routers == 64
        assert Mesh(3, 5).n_routers == 15

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Mesh(1, 4)
        with pytest.raises(ValueError):
            Mesh(4, 1)


class TestNeighbors:
    def test_interior_neighbors(self):
        m = Mesh(4, 4)
        rid = m.rid(1, 1)
        assert m.neighbor(rid, PORT_N) == m.rid(1, 2)
        assert m.neighbor(rid, PORT_S) == m.rid(1, 0)
        assert m.neighbor(rid, PORT_E) == m.rid(2, 1)
        assert m.neighbor(rid, PORT_W) == m.rid(0, 1)

    def test_edges_have_no_neighbor(self):
        m = Mesh(4, 4)
        assert m.neighbor(0, PORT_S) is None
        assert m.neighbor(0, PORT_W) is None
        assert m.neighbor(15, PORT_N) is None
        assert m.neighbor(15, PORT_E) is None

    def test_local_port_has_no_neighbor(self):
        m = Mesh(4, 4)
        assert m.neighbor(5, PORT_LOCAL) is None

    def test_ports_of_corner(self):
        m = Mesh(4, 4)
        assert sorted(m.ports_of(0)) == sorted([PORT_N, PORT_E])

    def test_ports_of_interior(self):
        m = Mesh(4, 4)
        assert len(m.ports_of(m.rid(2, 2))) == 4

    def test_opposite_ports(self):
        m = Mesh(4, 4)
        for rid in range(m.n_routers):
            for p in m.ports_of(rid):
                nbr = m.neighbor(rid, p)
                assert m.neighbor(nbr, OPPOSITE[p]) == rid


class TestDistances:
    def test_hops_manhattan(self):
        m = Mesh(8, 8)
        assert m.hops(0, 0) == 0
        assert m.hops(0, 7) == 7
        assert m.hops(0, 63) == 14

    def test_diameter(self):
        assert Mesh(8, 8).diameter == 14
        assert Mesh(4, 4).diameter == 6
        assert Mesh(16, 16).diameter == 30


class TestPaths:
    def test_xy_path_length_is_hops(self):
        m = Mesh(5, 5)
        for src in range(m.n_routers):
            for dst in range(m.n_routers):
                assert len(m.xy_path(src, dst)) == m.hops(src, dst)

    def test_yx_path_length_is_hops(self):
        m = Mesh(5, 5)
        for src, dst in [(0, 24), (7, 3), (12, 12), (4, 20)]:
            assert len(m.yx_path(src, dst)) == m.hops(src, dst)

    def test_xy_path_goes_x_first(self):
        m = Mesh(4, 4)
        path = m.xy_path(m.rid(0, 0), m.rid(2, 2))
        ports = [p for _r, p in path]
        assert ports == [PORT_E, PORT_E, PORT_N, PORT_N]

    def test_yx_path_goes_y_first(self):
        m = Mesh(4, 4)
        path = m.yx_path(m.rid(0, 0), m.rid(2, 2))
        ports = [p for _r, p in path]
        assert ports == [PORT_N, PORT_N, PORT_E, PORT_E]

    def test_paths_are_connected_walks(self):
        m = Mesh(6, 6)
        for src, dst in [(0, 35), (10, 3), (30, 5)]:
            for path in (m.xy_path(src, dst), m.yx_path(src, dst)):
                at = src
                for rid, port in path:
                    assert rid == at
                    at = m.neighbor(rid, port)
                assert at == dst


class TestHamiltonianRing:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (4, 4), (8, 8), (4, 6),
                                           (3, 4), (6, 3)])
    def test_ring_visits_every_router_once(self, rows, cols):
        m = Mesh(rows, cols)
        ring = m.hamiltonian_ring()
        assert sorted(ring) == list(range(m.n_routers))

    @pytest.mark.parametrize("rows,cols", [(2, 2), (4, 4), (8, 8), (4, 6),
                                           (3, 4)])
    def test_ring_steps_are_adjacent(self, rows, cols):
        m = Mesh(rows, cols)
        ring = m.hamiltonian_ring()
        for a, b in zip(ring, ring[1:] + ring[:1]):
            assert m.hops(a, b) == 1

    def test_odd_odd_mesh_rejected(self):
        with pytest.raises(ValueError):
            Mesh(3, 3).hamiltonian_ring()


class TestGraphExport:
    def test_graph_edge_count(self):
        m = Mesh(4, 4)
        g = m.to_graph()
        # 2 * rows * cols - rows - cols bidirectional channels in a mesh
        assert g.number_of_edges() == 2 * 4 * 4 - 4 - 4

    def test_graph_connected(self):
        g = Mesh(5, 3).to_graph()
        assert nx.is_connected(g)

"""Unit tests for the analytical power/area model (Fig. 11 substitute)."""

import pytest

from repro.power.model import RouterCost, scheme_cost
from repro.power.report import area_power_table, format_table


class TestSchemeCost:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            scheme_cost("bogus", 6, 2)

    def test_totals_are_sums(self):
        c = scheme_cost("escapevc", 6, 2)
        assert c.area == pytest.approx(sum(c.area_breakdown().values()))
        assert c.power == pytest.approx(sum(c.power_breakdown().values()))

    def test_buffers_scale_with_vcs(self):
        a = scheme_cost("baseline", 1, 2)
        b = scheme_cost("baseline", 1, 4)
        assert b.buffers_area == pytest.approx(2 * a.buffers_area)
        assert b.crossbar_area == a.crossbar_area

    def test_escape_reference_overhead(self):
        """SPIN's detection circuit is ~6% of the EscapeVC router (paper)."""
        esc = scheme_cost("escapevc", 6, 2)
        spin = scheme_cost("spin", 6, 2)
        base = esc.area   # escape has no overhead
        assert spin.overhead_area == pytest.approx(0.06 * base)

    def test_fastpass_overhead_of_own_router(self):
        fp = scheme_cost("fastpass", 1, 2)
        base = fp.buffers_area + fp.crossbar_area + fp.arbiters_area
        assert fp.overhead_area == pytest.approx(0.04 * base)
        # paper: the FastPass overhead is ~4% of the FastPass router
        assert fp.overhead_area / fp.area == pytest.approx(0.04 / 1.04)


class TestPaperClaims:
    def test_fastpass_reduction_close_to_paper(self):
        """~40% area / ~41% power reduction vs EscapeVC."""
        esc = scheme_cost("escapevc", 6, 2)
        fp = scheme_cost("fastpass", 1, 2)
        area_red = 1 - fp.area / esc.area
        power_red = 1 - fp.power / esc.power
        assert 0.30 <= area_red <= 0.50
        assert 0.30 <= power_red <= 0.50

    def test_fastpass_equals_pitstop(self):
        fp = scheme_cost("fastpass", 1, 2)
        ps = scheme_cost("pitstop", 1, 2)
        assert fp.area == pytest.approx(ps.area, rel=0.05)

    def test_spin_costs_most(self):
        rows = area_power_table()
        areas = {r["scheme"]: r["area_um2"] for r in rows}
        assert areas["spin"] == max(areas.values())

    def test_vn_schemes_dominate_vn_free(self):
        rows = area_power_table()
        for r in rows:
            if r["vns"] == 6:
                assert r["area_vs_escape"] >= 0.99


class TestReport:
    def test_table_has_six_rows(self):
        assert len(area_power_table()) == 6

    def test_escape_is_reference(self):
        rows = area_power_table()
        assert rows[0]["scheme"] == "escapevc"
        assert rows[0]["area_vs_escape"] == 1.0

    def test_format_is_printable(self):
        text = format_table(area_power_table())
        assert "escapevc" in text and "fastpass" in text

"""Unit tests for the runtime invariant checker."""

import pytest

from repro.network.packet import MessageClass, Packet
from repro.network.validate import InvariantViolation, check_invariants
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic
from tests.conftest import make_network, park


class TestCleanStates:
    def test_fresh_network_passes(self, small_cfg):
        net = make_network(small_cfg)
        check_invariants(net)

    def test_running_network_passes(self, small_cfg):
        sim = Simulation(small_cfg, get_scheme("fastpass", n_vcs=2),
                         SyntheticTraffic("uniform", 0.1, seed=1))
        net = sim.net
        for _ in range(200):
            net.step()
            check_invariants(net)

    def test_minbd_side_buffer_exempt(self, small_cfg):
        sim = Simulation(small_cfg, get_scheme("minbd"),
                         SyntheticTraffic("transpose", 0.2, seed=1))
        net = sim.net
        for _ in range(200):
            net.step()
            check_invariants(net)


class TestCorruptionDetected:
    def test_unlisted_occupied_slot(self, small_cfg):
        net = make_network(small_cfg)
        r = net.routers[0]
        r.slots[1][0].pkt = Packet(0, 5, MessageClass.REQUEST, 0)
        with pytest.raises(InvariantViolation, match="missing"):
            check_invariants(net)

    def test_duplicated_packet(self, small_cfg):
        net = make_network(small_cfg)
        pkt = Packet(0, 5, MessageClass.REQUEST, 0)
        for rid in (0, 1):
            r = net.routers[rid]
            park(net, r, r.slots[1][0], pkt)
        with pytest.raises(InvariantViolation, match="two slots"):
            check_invariants(net)

    def test_buffered_but_ejected(self, small_cfg):
        net = make_network(small_cfg)
        r = net.routers[0]
        pkt = Packet(0, 5, MessageClass.REQUEST, 0)
        pkt.eject_cycle = 10
        slot = r.slots[1][0]
        slot.pkt = pkt
        r.occupied.append(slot)
        with pytest.raises(InvariantViolation, match="already ejected"):
            check_invariants(net)

    def test_in_transit_underflow(self, small_cfg):
        net = make_network(small_cfg)
        net.in_transit = -1
        with pytest.raises(InvariantViolation, match="underflow"):
            check_invariants(net)

    def test_packet_in_slot_and_queue(self, small_cfg):
        net = make_network(small_cfg)
        pkt = Packet(0, 5, MessageClass.REQUEST, 0)
        r = net.routers[0]
        park(net, r, r.slots[1][0], pkt)
        ni = net.nis[2]
        ni.inj[MessageClass.REQUEST].append(pkt)
        ni.inj_count += 1
        net.inj_total += 1
        net.wake_inject(ni.id)
        with pytest.raises(InvariantViolation, match="both buffered"):
            check_invariants(net)

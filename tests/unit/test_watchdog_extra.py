"""Watchdog report/rearm semantics, post-mortem dumps, and paranoia."""

import json

import pytest

from repro.config import SimConfig
from repro.network.packet import Packet
from repro.network.topology import PORT_E
from repro.network.watchdog import Watchdog, WatchdogReport

from tests.conftest import make_network, park


def _park(net, rid=5, dst=6, wedge=False):
    """Place a head packet at ``rid``; with ``wedge`` its only productive
    link (XY toward ``dst``) is jammed so it can never move."""
    router = net.routers[rid]
    pkt = Packet(rid, dst, 0, 0)
    park(net, router, router.slots[0][0], pkt)
    if wedge:
        router.links_out[PORT_E].busy_until = 1 << 60
    return pkt


class TestWatchdogReport:
    def test_truthiness(self):
        assert not WatchdogReport(False)
        assert WatchdogReport(True, 10, 400, 3)

    def test_to_json(self):
        rep = WatchdogReport(True, now=99, stalled_for=400, in_flight=2,
                             first=True)
        assert rep.to_json() == {"fired": True, "now": 99,
                                 "stalled_for": 400, "in_flight": 2,
                                 "first": True}

    def test_healthy_check_is_falsy(self):
        net = make_network(SimConfig(rows=4, cols=4, watchdog_cycles=50))
        assert not net.watchdog.check(10)


class TestWatchdogFiring:
    def _wedged_net(self):
        net = make_network(SimConfig(rows=4, cols=4, watchdog_cycles=50))
        _park(net, wedge=True)
        return net

    def test_fire_reports_and_latches(self):
        net = self._wedged_net()
        wd = net.watchdog
        rep = wd.check(60)
        assert rep.fired and rep.first
        assert rep.stalled_for == 60
        assert rep.in_flight == 1
        # Subsequent checks stay fired but are no longer the transition.
        rep2 = wd.check(70)
        assert rep2.fired and not rep2.first
        assert wd.fire_count == 1
        assert wd.fired_at == 60

    def test_on_fire_runs_once_per_transition(self):
        net = self._wedged_net()
        calls = []
        wd = Watchdog(net, 50, on_fire=lambda n, now, rep:
                      calls.append((now, rep.first)))
        wd.check(60)
        wd.check(70)
        assert calls == [(60, True)]

    def test_rearm_allows_refire(self):
        net = self._wedged_net()
        calls = []
        wd = Watchdog(net, 50, on_fire=lambda n, now, rep:
                      calls.append(now))
        assert wd.check(60)
        wd.rearm(now=60)
        assert not wd.deadlocked
        assert not wd.check(80)       # fresh threshold window
        assert wd.check(120).first    # wedged again: second transition
        assert wd.fire_count == 2
        assert calls == [60, 120]


class TestPostmortem:
    def test_write_postmortem_payload(self, tmp_path, monkeypatch):
        from repro.fault.postmortem import write_postmortem

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        net = make_network(SimConfig(rows=4, cols=4, watchdog_cycles=50))
        pkt = _park(net)
        path = write_postmortem(net, now=70, reason="test")
        assert path.parent == tmp_path / "diagnostics"
        payload = json.loads(path.read_text())
        assert payload["reason"] == "test"
        assert payload["cycle"] == 70
        assert payload["mesh"] == [4, 4]
        stuck = payload["vc_occupancy"][0]["slots"][0]
        assert stuck["pid"] == pkt.pid
        assert stuck["stuck_for"] == 70

    def test_network_dumps_on_watchdog_fire(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        net = make_network(SimConfig(rows=4, cols=4, watchdog_cycles=50,
                                     postmortem=True))
        _park(net, wedge=True)
        for _ in range(60):
            net.step()
        assert net.watchdog.deadlocked
        assert net.postmortem_path is not None
        assert net.postmortem_path.exists()
        payload = json.loads(net.postmortem_path.read_text())
        assert payload["reason"] == "watchdog"
        assert payload["packets_in_flight"] == 1

    def test_no_dump_without_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        net = make_network(SimConfig(rows=4, cols=4, watchdog_cycles=50))
        _park(net, wedge=True)
        for _ in range(60):
            net.step()
        assert net.watchdog.deadlocked
        assert net.postmortem_path is None
        assert not (tmp_path / "diagnostics").exists()


class TestPostmortemSchema:
    def _wedged(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        net = make_network(SimConfig(rows=4, cols=4, watchdog_cycles=50,
                                     postmortem=True))
        _park(net, wedge=True)
        return net

    def test_payload_round_trips_through_json(self, tmp_path, monkeypatch):
        from repro.fault.postmortem import (
            postmortem_payload,
            validate_postmortem,
            write_postmortem,
        )

        net = self._wedged(tmp_path, monkeypatch)
        direct = validate_postmortem(postmortem_payload(net, now=70))
        path = write_postmortem(net, now=70)
        reread = validate_postmortem(json.loads(path.read_text()))
        # JSON round-trip loses nothing the schema cares about.
        for key in ("reason", "cycle", "scheme", "mesh", "seed",
                    "packets_in_flight", "total_backlog"):
            assert reread[key] == direct[key]

    def test_validate_rejects_missing_and_mistyped(self):
        from repro.fault.postmortem import validate_postmortem

        with pytest.raises(ValueError, match="missing key"):
            validate_postmortem({"reason": "x"})
        good = {
            "reason": "t", "cycle": 1, "scheme": "s", "mesh": [4, 4],
            "seed": 1, "last_progress": 0, "watchdog_fired_at": -1,
            "packets_in_flight": 0, "total_backlog": 0, "in_transit": 0,
            "wait_for_cycle": None, "vc_occupancy": [], "ni_queues": [],
            "faults": None,
        }
        validate_postmortem(good)                      # passes
        bad = dict(good, cycle="not-a-cycle")
        with pytest.raises(ValueError, match="cycle"):
            validate_postmortem(bad)
        bad = dict(good, mesh=[4])
        with pytest.raises(ValueError, match="mesh"):
            validate_postmortem(bad)

    def test_rearm_produces_second_valid_postmortem(self, tmp_path,
                                                    monkeypatch):
        from repro.fault.postmortem import validate_postmortem

        net = self._wedged(tmp_path, monkeypatch)
        for _ in range(60):
            net.step()
        assert net.watchdog.deadlocked
        first = net.postmortem_path
        assert first is not None and first.exists()
        validate_postmortem(json.loads(first.read_text()))

        # Recovery: re-arm the watchdog; the still-wedged packet trips it
        # again and the hook writes a second, distinct dump.
        net.watchdog.rearm(now=net.cycle)
        assert not net.watchdog.deadlocked
        for _ in range(60):
            net.step()
        assert net.watchdog.deadlocked
        assert net.watchdog.fire_count == 2
        second = net.postmortem_path
        assert second is not None and second != first
        payload = validate_postmortem(json.loads(second.read_text()))
        assert payload["watchdog_fired_at"] > \
            json.loads(first.read_text())["watchdog_fired_at"]


class TestParanoia:
    def test_paranoia_catches_corruption(self):
        from repro.network.validate import InvariantViolation

        net = make_network(SimConfig(rows=4, cols=4, paranoia=1))
        net.step()
        # Corrupt the occupancy bookkeeping: a slot holds a packet but is
        # missing from the router's occupied list.
        router = net.routers[3]
        slot = router.slots[0][0]
        slot.pkt = Packet(3, 7, 0, 0)
        slot.ready_at = 0
        with pytest.raises(InvariantViolation):
            net.step()

    def test_paranoia_quiet_on_healthy_network(self):
        net = make_network(SimConfig(rows=4, cols=4, paranoia=1))
        for _ in range(20):
            net.step()

"""Incremental occupancy counters and active-set bookkeeping.

``packets_in_flight``/``total_backlog`` are O(1) counter reads in the
active-set engine; these tests pit them against a full rescan of every
slot and queue while real traffic runs, and confirm the paranoia audit
catches counter drift and active-set gaps when they are fabricated.
"""

import pytest

from repro.network.packet import MessageClass, Packet
from repro.network.validate import InvariantViolation, check_invariants
from repro.schemes import get_scheme
from repro.schemes.base import Scheme
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic
from tests.conftest import make_network, park


def rescan_in_flight(net):
    """Ground-truth recount of everything ``packets_in_flight`` tracks."""
    buffered = sum(1 for r in net.routers for port in r.slots
                   for s in port if s.pkt is not None)
    buffered += sum(r.extra_occupancy() for r in net.routers)
    inj = sum(len(q) for ni in net.nis for q in ni.inj)
    return buffered + net.in_transit + inj


def rescan_backlog(net):
    return rescan_in_flight(net) + sum(len(ni.pending) for ni in net.nis)


class TestCountersMatchRescan:
    @pytest.mark.parametrize("name,pattern,rate", [
        ("fastpass", "uniform", 0.1),
        ("minbd", "transpose", 0.2),
        ("drain", "uniform", 0.1),
        ("baseline", "transpose", 0.15),
    ])
    def test_under_traffic(self, small_cfg, name, pattern, rate):
        sim = Simulation(small_cfg, get_scheme(name),
                         SyntheticTraffic(pattern, rate, seed=4))
        net = sim.net
        for _ in range(300):
            net.step()
            assert net.packets_in_flight() == rescan_in_flight(net)
            assert net.total_backlog() == rescan_backlog(net)

    def test_drains_to_zero_counters(self, small_cfg):
        sim = Simulation(small_cfg, get_scheme("fastpass", n_vcs=2),
                         SyntheticTraffic("uniform", 0.05, seed=4))
        res = sim.run()
        net = sim.net
        assert res.extra["undelivered"] == 0
        # unmeasured stragglers may outlive the drain window; flush them
        for _ in range(2000):
            if net.total_backlog() == 0:
                break
            net.step()
        assert net.packets_in_flight() == 0
        assert net.total_backlog() == 0
        assert net.buffered == 0 and net.inj_total == 0
        assert net.pending_total == 0 and net.in_transit == 0


class TestAuditCatchesDrift:
    def test_buffered_drift(self, small_cfg):
        net = make_network(small_cfg)
        net.buffered += 1
        with pytest.raises(InvariantViolation, match="buffered counter"):
            check_invariants(net)

    def test_inj_count_drift(self, small_cfg):
        net = make_network(small_cfg)
        net.nis[3].inj_count += 1
        with pytest.raises(InvariantViolation, match="inj_count drift"):
            check_invariants(net)

    def test_inj_total_drift(self, small_cfg):
        net = make_network(small_cfg)
        pkt = Packet(0, 5, MessageClass.REQUEST, 0)
        ni = net.nis[0]
        ni.inj[pkt.mclass].append(pkt)
        ni.inj_count += 1
        net.wake_inject(0)
        # per-NI count is right, network total was not bumped
        with pytest.raises(InvariantViolation, match="inj_total"):
            check_invariants(net)

    def test_pending_total_drift(self, small_cfg):
        net = make_network(small_cfg)
        net.pending_total += 2
        with pytest.raises(InvariantViolation, match="pending_total"):
            check_invariants(net)

    def test_limbo_drift(self, small_cfg):
        net = make_network(small_cfg)
        net.limbo += 1
        with pytest.raises(InvariantViolation, match="limbo"):
            check_invariants(net)


class TestAuditCatchesActiveSetGaps:
    def test_router_with_work_must_be_active(self, small_cfg):
        net = make_network(small_cfg)
        r = net.routers[6]
        park(net, r, r.slots[1][0], Packet(6, 2, MessageClass.REQUEST, 0))
        net._r_active.discard(6)
        with pytest.raises(InvariantViolation, match="router active set"):
            check_invariants(net)

    def test_ni_with_injection_work_must_be_active(self, small_cfg):
        net = make_network(small_cfg)
        ni = net.nis[2]
        pkt = Packet(2, 9, MessageClass.REQUEST, 0)
        ni.inj[pkt.mclass].append(pkt)
        ni.inj_count += 1
        net.inj_total += 1
        # deliberately no wake_inject
        with pytest.raises(InvariantViolation, match="inject active"):
            check_invariants(net)


class TestActiveSetLifecycle:
    def test_fresh_network_is_idle(self, small_cfg):
        net = make_network(small_cfg)
        for _ in range(10):
            net.step()
        assert not net._r_active
        assert not net._inj_active
        assert not net._con_active

    def test_single_packet_wakes_and_sleeps(self, small_cfg):
        from tests.conftest import inject_now
        net = make_network(small_cfg)
        inject_now(net, 0, 15, MessageClass.REQUEST)
        assert 0 in net._inj_active
        woke = False
        for _ in range(100):
            net.step()
            woke |= bool(net._r_active)
        assert woke
        assert net.packets_in_flight() == 0
        assert not net._r_active and not net._inj_active

    def test_active_routers_sorted(self, small_cfg):
        net = make_network(small_cfg)
        for rid in (9, 1, 6):
            r = net.routers[rid]
            park(net, r, r.slots[0][0],
                 Packet(rid, 0, MessageClass.REQUEST, 0))
        assert [r.id for r in net.active_routers()] == [1, 6, 9]


class TestHookCadence:
    def test_plain_scheme_never_hooked(self, small_cfg):
        assert Scheme().hook_cadence(small_cfg) == (0, 0)

    def test_override_autodetects_every_cycle(self, small_cfg):
        class S(Scheme):
            name = "s"

            def pre_cycle(self, net, now):
                pass

        assert S().hook_cadence(small_cfg) == (1, 0)

    def test_declared_cadence_wins(self, small_cfg):
        class S(Scheme):
            name = "s"
            post_cycle_every = 16

            def post_cycle(self, net, now):
                pass

        assert S().hook_cadence(small_cfg) == (0, 16)

    def test_spin_declares_check_interval(self, small_cfg):
        scheme = get_scheme("spin")
        pre, post = scheme.hook_cadence(small_cfg)
        assert post == type(scheme).CHECK_INTERVAL

    @pytest.mark.parametrize("name", ["swap", "pitstop"])
    def test_config_driven_cadences(self, small_cfg, name):
        scheme = get_scheme(name)
        cfg = scheme.configure(small_cfg)
        pre, post = scheme.hook_cadence(cfg)
        expected = (cfg.swap_duty_cycles if name == "swap"
                    else cfg.pitstop_token_cycles)
        assert post == expected

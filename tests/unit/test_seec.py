"""Unit tests for the SEEC-like extension baseline."""

import pytest

from repro.config import SimConfig
from repro.network.packet import MessageClass, Packet
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic
from tests.conftest import make_network, park


def seec_net(small_cfg):
    return make_network(small_cfg, scheme=get_scheme("seec"))


class TestRegistration:
    def test_registered(self):
        from repro.schemes import scheme_names
        assert "seec" in scheme_names()

    def test_vn_free(self):
        scheme = get_scheme("seec")
        cfg = scheme.configure(SimConfig())
        assert cfg.n_vns == 1

    def test_table1_not_high_throughput(self):
        # the paper's criticism: seeker overhead costs throughput
        assert not get_scheme("seec").table1.high_throughput


class TestSeeking:
    def _block(self, net, rid=0, dst=3):
        """Park a packet at ``rid`` with all its productive VCs wedged."""
        router = net.routers[rid]
        pkt = Packet(rid, dst, MessageClass.REQUEST, 0)
        park(net, router, router.slots[1][0], pkt)
        blocker = Packet(1, 2, MessageClass.REQUEST, 0)
        nbr = router.neighbors[2]          # East toward dst
        link = router.links_out[2]
        for s in nbr.slots[link.dst_port]:
            s.pkt, s.ready_at = blocker, 1 << 60
        return pkt

    def test_blocked_packet_expressed(self, small_cfg):
        # paranoia off: _block fabricates a non-physical blockade
        net = seec_net(small_cfg.with_(paranoia=0))
        scheme = net.scheme
        pkt = self._block(net)
        for _ in range(200):
            net.step()
        assert scheme.seeks >= 1
        assert pkt.eject_cycle >= 0
        assert pkt.was_fastpass

    def test_seeker_round_trip_delays_departure(self, small_cfg):
        """Unlike FastPass, SEEC pays 2x distance before the packet moves —
        the token overhead the paper highlights."""
        net = seec_net(small_cfg.with_(paranoia=0))
        pkt = self._block(net)
        dist = net.mesh.hops(0, 3)
        for _ in range(200):
            net.step()
        # earliest possible ejection: seek threshold + 2*dist (seeker) +
        # dist (express) — strictly later than a FastPass launch would be
        assert pkt.eject_cycle >= 2 * dist + dist

    def test_delivery_under_load(self, small_cfg):
        sim = Simulation(small_cfg, get_scheme("seec"),
                         SyntheticTraffic("transpose", 0.12, seed=6))
        res = sim.run()
        assert not res.deadlocked
        assert res.ejected > 0

    def test_seek_failures_under_contention(self, small_cfg):
        sim = Simulation(small_cfg, get_scheme("seec"),
                         SyntheticTraffic("transpose", 0.3, seed=6))
        sim.traffic.measure_window(0, 1 << 60)
        for _ in range(1500):
            sim.net.step()
        scheme = sim.scheme
        assert scheme.seeks > 0
        # overlapping seekers do collide sometimes — that is the point
        assert scheme.seek_failures >= 0
        assert scheme.expressed <= scheme.seeks


class TestComparisonWithFastPass:
    def test_fastpass_upgrades_are_not_token_delayed(self, small_cfg):
        """Head-to-head on the same blocked scenario: FastPass's TDM
        upgrade ejects no later than SEEC's token-brokered one."""
        results = {}
        for name, kw in [("seec", {}), ("fastpass", {"n_vcs": 2})]:
            net = make_network(small_cfg, scheme=get_scheme(name, **kw))
            router = net.routers[0]
            pkt = Packet(0, 12, MessageClass.REQUEST, 0)  # column 0
            park(net, router, router.slots[2][0], pkt)
            blocker = Packet(1, 2, MessageClass.REQUEST, 0)
            nbr = router.neighbors[1]      # North toward 12
            link = router.links_out[1]
            for s in nbr.slots[link.dst_port]:
                s.pkt, s.ready_at = blocker, 1 << 60
            for _ in range(300):
                if pkt.eject_cycle >= 0:
                    break
                net.step()
            results[name] = pkt.eject_cycle
        assert 0 <= results["fastpass"] <= results["seec"]

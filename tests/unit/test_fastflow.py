"""Unit tests for the FastFlow traversal engine (Lemma 1 mechanics)."""

import pytest

from repro.network.packet import MessageClass, Packet
from repro.schemes import get_scheme
from tests.conftest import make_network


@pytest.fixture
def fp_net(small_cfg):
    scheme = get_scheme("fastpass", n_vcs=2)
    return make_network(small_cfg, scheme=scheme)


def launch(net, src, dst, mclass=MessageClass.REQUEST, now=None):
    now = net.cycle if now is None else now
    pkt = Packet(src, dst, mclass, now)
    eng = net.fastpass.engine
    eng.launch_forward(pkt, src, now)
    return pkt


class TestForwardTraversal:
    def test_arrival_time_is_distance(self, fp_net):
        """Sec. III-C5: the arrival time of a FastPass-Packet is fixed —
        one hop per cycle."""
        pkt = launch(fp_net, 0, 15)
        dist = fp_net.mesh.hops(0, 15)
        for _ in range(dist + 2):
            fp_net.step()
        assert pkt.eject_cycle == dist + 1

    def test_marks_packet_fastpass(self, fp_net):
        pkt = launch(fp_net, 0, 5)
        assert pkt.was_fastpass
        assert pkt.fp_upgrade == 0

    def test_reserves_every_link_window(self, fp_net):
        launch(fp_net, 0, 3)   # three hops east
        for k in range(3):
            link = fp_net.link_for(k, 2)
            assert link.fp_windows == [(k, k + 1)]

    def test_lane_release_allows_pipelining(self, fp_net):
        eng = fp_net.fastpass.engine
        pkt = Packet(0, 15, MessageClass.RESPONSE, 0)
        free_at = eng.launch_forward(pkt, 0, 0)
        assert free_at == pkt.size   # next launch after tail clears hop 0

    def test_pipelined_launches_no_conflict(self, fp_net):
        eng = fp_net.fastpass.engine
        a = Packet(0, 15, MessageClass.RESPONSE, 0)
        t1 = eng.launch_forward(a, 0, 0)
        b = Packet(0, 3, MessageClass.REQUEST, 0)
        eng.launch_forward(b, 0, t1)   # must not raise ReservationConflict
        for _ in range(20):
            fp_net.step()
        assert a.eject_cycle >= 0 and b.eject_cycle >= 0

    def test_regular_packet_preempted(self, fp_net):
        """A regular transfer overlapping a FastFlow window is delayed, not
        collided with."""
        link = fp_net.link_for(0, 2)
        from repro.network.link import VCSlot
        dslot = VCSlot(4, 0)
        dslot.ready_at = 2
        link.start_transfer(0, 5, dslot, None)   # regular until cycle 5
        launch(fp_net, 0, 3)                     # wants the link now
        assert dslot.ready_at > 2                # pushed back


class TestBounce:
    def _fill_ejection(self, net, rid, mclass):
        q = net.nis[rid].ej[mclass]
        while q.can_accept(Packet(0, rid, mclass, 0)):
            q.push(Packet(0, rid, mclass, 0))
        # stall the consumer so it never drains
        net.nis[rid].consumer = type(
            "Stall", (), {"consume": lambda *a, **k: None,
                          "on_local": lambda *a, **k: None})()

    def test_bounce_reserves_queue(self, fp_net):
        self._fill_ejection(fp_net, 3, MessageClass.REQUEST)
        pkt = launch(fp_net, 0, 3)
        for _ in range(10):
            fp_net.step()
        q = fp_net.nis[3].ej[MessageClass.REQUEST]
        assert pkt.pid in q.reservations
        assert fp_net.fastpass.engine.bounced == 1

    def test_bounced_packet_returns_to_prime_and_continues(self, fp_net):
        self._fill_ejection(fp_net, 3, MessageClass.REQUEST)
        pkt = launch(fp_net, 0, 3)
        for _ in range(15):
            fp_net.step()
        # It bounced back to the prime's request injection queue and — the
        # regular pass always being available — re-entered the network from
        # the prime immediately (round trip = 2 x 3 hops).
        assert fp_net.fastpass.engine.returned == 1
        assert pkt.net_entry == 2 * fp_net.mesh.hops(0, 3)
        assert pkt.eject_cycle < 0   # destination queue is still wedged

    def test_reserved_queue_rejects_others(self, fp_net):
        self._fill_ejection(fp_net, 3, MessageClass.REQUEST)
        pkt = launch(fp_net, 0, 3)
        for _ in range(10):
            fp_net.step()
        q = fp_net.nis[3].ej[MessageClass.REQUEST]
        q.q.popleft()   # one slot frees up...
        other = Packet(1, 3, MessageClass.REQUEST, 0)
        assert not q.can_accept(other)     # ...but it is held for pkt
        assert q.can_accept(pkt)

    def test_ejection_preemption_stalls_regular(self, fp_net):
        router = fp_net.routers[3]
        router.eject_busy_until = 5        # regular ejection in progress
        pkt = launch(fp_net, 0, 3)
        dist = fp_net.mesh.hops(0, 3)
        for _ in range(dist + 2):
            fp_net.step()
        assert pkt.eject_cycle == dist + 1           # FastPass went first
        assert router.eject_busy_until >= dist + pkt.size


class TestCounters:
    def test_forward_counter(self, fp_net):
        launch(fp_net, 0, 5)
        launch(fp_net, 15, 10, now=20)
        assert fp_net.fastpass.engine.forward_launched == 2

"""Unit tests for fault plans: validation, determinism, serialization."""

import json

import pytest

from repro.fault.plan import (
    EJECT_FREEZE,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    LINK_FAIL,
    LINK_FLAP,
    LINK_KINDS,
    LOOKAHEAD_DROP,
    PORT_STALL,
    TRANSIENT_KINDS,
    fault_storm,
    link_cut,
)
from repro.network.topology import Mesh, PORT_E, PORT_W


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meteor_strike", 10, 0, 1, 5)

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            FaultEvent(LINK_FLAP, -1, 0, 1, 5)

    def test_transient_needs_duration(self):
        with pytest.raises(ValueError, match="positive duration"):
            FaultEvent(PORT_STALL, 10, 0, 1, 0)

    def test_link_fail_is_permanent(self):
        with pytest.raises(ValueError, match="permanent"):
            FaultEvent(LINK_FAIL, 10, 0, 1, 5)

    def test_until_window(self):
        assert FaultEvent(LINK_FLAP, 100, 0, 1, 30).until == 130
        assert FaultEvent(LINK_FAIL, 100, 0, 1).until > 10 ** 15

    def test_json_round_trip(self):
        ev = FaultEvent(EJECT_FREEZE, 42, 7, -1, 9)
        assert FaultEvent.from_json(ev.to_json()) == ev


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert bool(link_cut(0, PORT_E, 5))
        assert bool(fault_storm(0.1, 0, 100))

    def test_stochastic_needs_window(self):
        with pytest.raises(ValueError, match="stop > start"):
            FaultPlan(rate=0.1)

    def test_unknown_stochastic_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown stochastic"):
            FaultPlan(rate=0.1, start=0, stop=10, kinds=("bad_kind",))

    def test_materialize_is_deterministic(self, mesh4):
        plan = fault_storm(0.05, 0, 400, seed=9)
        a = plan.materialize(run_seed=3, mesh=mesh4)
        assert a == plan.materialize(run_seed=3, mesh=mesh4)
        assert a  # the rate over 400 cycles yields events w.h.p.

    def test_run_seed_threads_into_rng(self, mesh4):
        plan = fault_storm(0.05, 0, 400, seed=9)
        a = plan.materialize(run_seed=1, mesh=mesh4)
        b = plan.materialize(run_seed=2, mesh=mesh4)
        assert a != b

    def test_plan_seed_threads_into_rng(self, mesh4):
        a = fault_storm(0.05, 0, 400, seed=1).materialize(5, mesh4)
        b = fault_storm(0.05, 0, 400, seed=2).materialize(5, mesh4)
        assert a != b

    def test_materialize_sorted_and_valid(self, mesh4):
        plan = fault_storm(0.1, 50, 450, seed=4)
        events = plan.materialize(run_seed=11, mesh=mesh4)
        assert events == sorted(
            events, key=lambda e: (e.at, e.kind, e.router, e.port))
        for ev in events:
            assert 50 <= ev.at < 450
            assert ev.kind in TRANSIENT_KINDS
            assert 0 <= ev.router < mesh4.n_routers
            assert ev.duration >= 1
            if ev.kind in LINK_KINDS:
                assert mesh4.neighbor(ev.router, ev.port) is not None

    def test_scheduled_event_validated_against_mesh(self, mesh4):
        bad_router = FaultPlan(events=(FaultEvent(LINK_FAIL, 0, 99, 1),))
        with pytest.raises(ValueError, match="router 99"):
            bad_router.materialize(1, mesh4)
        # Router 0 sits in the west/north corner: no West link exists.
        bad_port = FaultPlan(events=(FaultEvent(LINK_FAIL, 0, 0, PORT_W),))
        with pytest.raises(ValueError, match="missing link"):
            bad_port.materialize(1, mesh4)

    def test_token_round_trip(self):
        plan = FaultPlan(events=(FaultEvent(LINK_FLAP, 7, 3, PORT_E, 20),),
                         rate=0.01, kinds=(PORT_STALL, LOOKAHEAD_DROP),
                         start=5, stop=500, mean_duration=33, seed=6)
        token = plan.token()
        json.loads(token)  # canonical JSON
        assert FaultPlan.from_token(token) == plan
        assert FaultPlan.from_token(token).token() == token

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(events=[FaultEvent(LINK_FAIL, 1, 0, PORT_E)],
                         kinds=[PORT_STALL])
        assert isinstance(plan.events, tuple)
        assert isinstance(plan.kinds, tuple)
        hash(plan)  # stays hashable for frozen-config embedding

    def test_kind_sets_consistent(self):
        assert set(TRANSIENT_KINDS) == set(FAULT_KINDS) - {LINK_FAIL}
        assert LINK_KINDS <= set(FAULT_KINDS)

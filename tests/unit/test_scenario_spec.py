"""Unit tests for the declarative scenario DSL (spec layer)."""

import json

import pytest

from repro.scenario.spec import (SCENARIOS, BurstSpec, PhaseSpec,
                                 ScenarioSpec, get_scenario)


def two_phase():
    return ScenarioSpec("two", (
        PhaseSpec(duration=256, pattern="uniform", rate=0.05),
        PhaseSpec(duration=512, pattern="transpose", rate=0.10),
    ))


class TestValidation:
    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError, match="at least one phase"):
            ScenarioSpec("empty", ())

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec("has space", (PhaseSpec(duration=10),))
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec("", (PhaseSpec(duration=10),))

    def test_bad_duration(self):
        with pytest.raises(ValueError, match="duration"):
            PhaseSpec(duration=0)

    def test_bad_pattern(self):
        with pytest.raises(ValueError, match="pattern"):
            PhaseSpec(duration=10, pattern="zigzag")

    def test_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            PhaseSpec(duration=10, rate=1.5)

    def test_hotspot_frac_needs_hotspots(self):
        with pytest.raises(ValueError, match="hotspot"):
            PhaseSpec(duration=10, hotspot_frac=0.5)

    def test_bad_hotspot_weight(self):
        with pytest.raises(ValueError, match="weight"):
            PhaseSpec(duration=10, hotspot_frac=0.5,
                      hotspots=((0, 0.0),))

    def test_negative_hotspot_node(self):
        with pytest.raises(ValueError, match="negative"):
            PhaseSpec(duration=10, hotspot_frac=0.5,
                      hotspots=((-1, 1.0),))

    def test_bad_burst(self):
        with pytest.raises(ValueError, match="dwell"):
            BurstSpec(on_cycles=0, off_cycles=10)
        with pytest.raises(ValueError, match="off_scale"):
            BurstSpec(on_cycles=4, off_cycles=4, off_scale=2.0)

    def test_unsupported_schema_rejected(self):
        with pytest.raises(ValueError, match="schema 99"):
            ScenarioSpec("x", (PhaseSpec(duration=10),), schema=99)


class TestPhaseClock:
    def test_total_and_boundaries(self):
        spec = two_phase()
        assert spec.total_cycles == 768
        assert spec.boundaries() == [0, 256, 768]

    def test_window_at_within_first_period(self):
        spec = two_phase()
        assert spec.window_at(0) == (0, 0, 256)
        assert spec.window_at(255) == (0, 0, 256)
        assert spec.window_at(256) == (1, 256, 768)
        assert spec.window_at(767) == (1, 256, 768)

    def test_window_wraps_periodically(self):
        spec = two_phase()
        assert spec.window_at(768) == (0, 768, 1024)
        assert spec.window_at(768 + 300) == (1, 1024, 1536)

    def test_window_contains_cycle(self):
        spec = two_phase()
        for cycle in (0, 17, 255, 256, 767, 768, 5000):
            _i, lo, hi = spec.window_at(cycle)
            assert lo <= cycle < hi

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            two_phase().window_at(-1)

    def test_phase_at(self):
        spec = two_phase()
        assert spec.phase_at(0).pattern == "uniform"
        assert spec.phase_at(300).pattern == "transpose"

    def test_chunk_aligned(self):
        assert two_phase().chunk_aligned(256)
        mis = ScenarioSpec("mis", (PhaseSpec(duration=300),
                                   PhaseSpec(duration=212)))
        assert not mis.chunk_aligned(256)
        assert mis.chunk_aligned(4)


class TestRates:
    def test_mean_rate_duration_weighted(self):
        spec = two_phase()
        expect = (256 * 0.05 + 512 * 0.10) / 768
        assert spec.mean_rate() == pytest.approx(expect)

    def test_burst_duty(self):
        b = BurstSpec(on_cycles=64, off_cycles=192, off_scale=0.1)
        assert b.duty == pytest.approx((64 + 19.2) / 256)
        p = PhaseSpec(duration=256, rate=0.2, burst=b)
        assert p.mean_rate == pytest.approx(0.2 * b.duty)

    def test_scaled(self):
        spec = two_phase().scaled(2.0)
        assert spec.phases[0].rate == pytest.approx(0.10)
        assert spec.phases[1].rate == pytest.approx(0.20)
        # capped at 1.0
        capped = two_phase().scaled(100.0)
        assert all(p.rate == 1.0 for p in capped.phases)
        with pytest.raises(ValueError):
            two_phase().scaled(0.0)


class TestJson:
    def test_round_trip_losless(self):
        spec = ScenarioSpec("rt", (
            PhaseSpec(duration=128, pattern="shuffle", rate=0.07,
                      hotspot_frac=0.3, hotspots=((2, 1.5), (7, 3.0)),
                      burst=BurstSpec(8, 24, 0.25)),
            PhaseSpec(duration=64),
        ))
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_token_round_trip(self):
        for spec in SCENARIOS.values():
            assert ScenarioSpec.from_token(spec.token()) == spec

    def test_token_is_canonical_json(self):
        tok = SCENARIOS["bursty"].token()
        assert json.loads(tok)["name"] == "bursty"
        assert " " not in tok

    def test_token_changes_with_content(self):
        spec = two_phase()
        edited = spec.scaled(1.1)
        assert spec.token() != edited.token()
        assert spec.sha() != edited.sha()

    def test_phase_dicts_coerced(self):
        spec = ScenarioSpec("d", (
            {"duration": 32, "rate": 0.02,
             "burst": {"on_cycles": 4, "off_cycles": 4}},))
        assert isinstance(spec.phases[0], PhaseSpec)
        assert isinstance(spec.phases[0].burst, BurstSpec)


class TestLibrary:
    def test_library_specs_are_chunk_aligned(self):
        for spec in SCENARIOS.values():
            assert spec.chunk_aligned(256), spec.name

    def test_library_hotspots_fit_4x4(self):
        for spec in SCENARIOS.values():
            for phase in spec.phases:
                for node, _w in phase.hotspots:
                    assert node < 16

    def test_get_scenario_by_name(self):
        assert get_scenario("bursty") is SCENARIOS["bursty"]

    def test_get_scenario_from_json_file(self, tmp_path):
        path = tmp_path / "custom.json"
        spec = two_phase()
        path.write_text(json.dumps(spec.to_json()))
        assert get_scenario(path) == spec

    def test_get_scenario_unknown(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("nope")

"""Unit tests for the metric exporters.

Includes a minimal parser of the Prometheus text exposition format so the
export is checked for *parseability*, not just substring presence: every
sample line must be ``name[{labels}] value`` with a numeric value, every
metric must carry HELP/TYPE headers, and histogram bucket series must be
cumulative and end at ``+Inf``.
"""

import json
import math
import re

import pytest

from repro.config import SimConfig
from repro.obs import (
    MetricsRegistry,
    attach_observability,
    metrics_dir,
    snapshot_json,
    to_prometheus,
    write_metrics,
)

from tests.conftest import make_network

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$")
_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"$')


def parse_prometheus(text: str):
    """Parse the exposition format; returns (samples, helps, types).

    ``samples`` maps ``(name, labels_tuple)`` to float value.  Raises
    AssertionError on any malformed line.
    """
    samples, helps, types = {}, {}, {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, mtype = rest.partition(" ")
            assert mtype in ("counter", "gauge", "histogram"), line
            types[name] = mtype
            continue
        assert not line.startswith("#"), f"unknown comment: {line}"
        m = _SAMPLE_RE.match(line)
        assert m, f"unparseable sample line: {line!r}"
        labels = []
        if m.group("labels"):
            for part in m.group("labels").split(","):
                lm = _LABEL_RE.match(part)
                assert lm, f"bad label in {line!r}: {part!r}"
                labels.append((lm.group(1), lm.group(2)))
        raw = m.group("value")
        value = {"+Inf": math.inf, "-Inf": -math.inf}.get(raw)
        if value is None:
            value = float(raw)          # raises on garbage
        samples[(m.group("name"), tuple(labels))] = value
    return samples, helps, types


@pytest.fixture
def populated():
    reg = MetricsRegistry()
    reg.counter("a_total", "a help").inc(3)
    fam = reg.counter_family("lane_total", "per lane", labels=("lane",))
    fam.labels(0).inc(5)
    fam.labels(1).inc(7)
    reg.gauge("depth", "queue depth", lambda: 11)
    reg.multi_gauge("occ", "per router", "router",
                    lambda: [(0, 2), (3, 4)])
    h = reg.histogram("lat", "latency", buckets=(10, 100))
    for v in (5, 50, 500):
        h.observe(v)
    return reg


class TestPrometheusExport:
    def test_round_trips_through_parser(self, populated):
        samples, helps, types = parse_prometheus(to_prometheus(populated))
        assert samples[("a_total", ())] == 3
        assert samples[("lane_total", (("lane", "0"),))] == 5
        assert samples[("lane_total", (("lane", "1"),))] == 7
        assert samples[("depth", ())] == 11
        assert samples[("occ", (("router", "3"),))] == 4
        assert types == {"a_total": "counter", "lane_total": "counter",
                         "depth": "gauge", "occ": "gauge",
                         "lat": "histogram"}
        assert helps["lat"] == "latency"

    def test_histogram_buckets_cumulative_to_inf(self, populated):
        samples, _, _ = parse_prometheus(to_prometheus(populated))
        b10 = samples[("lat_bucket", (("le", "10.0"),))]
        b100 = samples[("lat_bucket", (("le", "100.0"),))]
        binf = samples[("lat_bucket", (("le", "+Inf"),))]
        assert (b10, b100, binf) == (1, 2, 3)
        assert samples[("lat_sum", ())] == 555
        assert samples[("lat_count", ())] == 3

    def test_full_simulation_export_parses(self):
        net = make_network(SimConfig(rows=4, cols=4))
        obs = attach_observability(net)
        for _ in range(50):
            net.step()
        samples, helps, types = parse_prometheus(to_prometheus(
            obs.registry))
        # every sample's base name carries HELP and TYPE headers
        for name, _labels in samples:
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            assert base in types or name in types
        assert ("noc_generated_total", ()) in samples


class TestSnapshotJson:
    def test_identity_fields(self):
        net = make_network(SimConfig(rows=4, cols=4, seed=9))
        obs = attach_observability(net, sample_every=5)
        for _ in range(12):
            net.step()
        snap = snapshot_json(obs, label="unit")
        assert snap["kind"] == "repro-metrics"
        assert snap["label"] == "unit"
        assert snap["mesh"] == [4, 4]
        assert snap["seed"] == 9
        assert snap["cycle"] == 12
        assert snap["sample_every"] == 5
        assert "noc_generated_total" in snap["metrics"]["counters"]
        assert snap["series"]["noc_packets_in_flight"]["cycles"] == \
            [0, 5, 10]
        json.dumps(snap)        # fully serializable

    def test_detached_obs_still_exports(self):
        net = make_network(SimConfig(rows=4, cols=4))
        obs = attach_observability(net)
        obs.detach()
        snap = snapshot_json(obs)
        assert snap["cycle"] is None and snap["scheme"] is None
        json.dumps(snap)


class TestArtifacts:
    def test_write_metrics_respects_results_dir(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        net = make_network(SimConfig(rows=4, cols=4))
        obs = attach_observability(net)
        net.step()
        path = write_metrics(obs, "unit test/run:1")
        assert path.parent == metrics_dir() == tmp_path / "metrics"
        assert "unit-test-run-1" in path.name     # sanitized
        payload = json.loads(path.read_text())
        assert payload["kind"] == "repro-metrics"

    def test_collision_free_filenames(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        net = make_network(SimConfig(rows=4, cols=4))
        obs = attach_observability(net)
        a = write_metrics(obs, "same")
        b = write_metrics(obs, "same")
        assert a != b and a.exists() and b.exists()

"""Unit tests for the perf-regression harness (snapshot files + gate)."""

import json

import pytest

from repro.experiments import perf


def _point(key, cps, **overrides):
    pt = {"key": key, "cycles_per_sec": cps, "cycles": 2700,
          "injected": 100, "ejected": 100, "avg_latency": 12.5,
          "p99_latency": 30.0, "deadlocked": False}
    pt.update(overrides)
    return pt


def _snap(points):
    return {"kind": "repro-perf-snapshot", "points": points}


class TestPointKey:
    def test_stable_and_readable(self):
        key = perf.point_key("fastpass", {"n_vcs": 4}, "uniform", 0.02)
        assert key == "fastpass(n_vcs=4)/uniform@0.02"

    def test_kwargs_sorted(self):
        a = perf.point_key("x", {"b": 1, "a": 2}, "uniform", 0.1)
        b = perf.point_key("x", {"a": 2, "b": 1}, "uniform", 0.1)
        assert a == b


class TestSnapshotFiles:
    def test_next_path_starts_at_one(self, tmp_path):
        assert perf.next_snapshot_path(tmp_path).name == "BENCH_1.json"

    def test_next_path_fills_gaps(self, tmp_path):
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_3.json").write_text("{}")
        assert perf.next_snapshot_path(tmp_path).name == "BENCH_2.json"

    def test_non_numeric_stems_ignored(self, tmp_path):
        (tmp_path / "BENCH_baseline.json").write_text("{}")
        assert perf.next_snapshot_path(tmp_path).name == "BENCH_1.json"

    def test_write_snapshot_explicit_out(self, tmp_path):
        out = tmp_path / "sub" / "snap.json"
        path = perf.write_snapshot({"a": 1}, str(out))
        assert path == out
        assert json.loads(out.read_text()) == {"a": 1}


class TestCompareGate:
    def test_pass_when_fast_enough(self, capsys):
        new = _snap([_point("p", 2000.0)])
        base = _snap([_point("p", 1000.0)])
        assert perf.compare(new, base, fail_under=0.75) == 0

    def test_fails_on_regression(self, capsys):
        new = _snap([_point("p", 700.0)])
        base = _snap([_point("p", 1000.0)])
        assert perf.compare(new, base, fail_under=0.75) == 1
        assert "PERF REGRESSION" in capsys.readouterr().out

    def test_worst_point_gates(self, capsys):
        new = _snap([_point("a", 3000.0), _point("b", 500.0)])
        base = _snap([_point("a", 1000.0), _point("b", 1000.0)])
        assert perf.compare(new, base, fail_under=0.75) == 1

    def test_new_points_do_not_gate(self, capsys):
        new = _snap([_point("old", 1000.0), _point("brand-new", 1.0)])
        base = _snap([_point("old", 1000.0)])
        assert perf.compare(new, base, fail_under=0.75) == 0

    def test_result_drift_is_an_error(self, capsys):
        new = _snap([_point("p", 1000.0, ejected=99)])
        base = _snap([_point("p", 1000.0, ejected=100)])
        assert perf.compare(new, base, fail_under=0.75) == 2
        assert "RESULT DRIFT" in capsys.readouterr().out

    def test_result_drift_waivable(self, capsys):
        new = _snap([_point("p", 1000.0, ejected=99)])
        base = _snap([_point("p", 1000.0, ejected=100)])
        assert perf.compare(new, base, fail_under=0.75,
                            allow_result_drift=True) == 0

    def test_drift_and_regression_reports_drift_code(self, capsys):
        new = _snap([_point("p", 100.0, ejected=99)])
        base = _snap([_point("p", 1000.0, ejected=100)])
        assert perf.compare(new, base, fail_under=0.75) == 2

    def test_nan_latency_is_not_drift(self, capsys):
        nan = float("nan")
        new = _snap([_point("p", 1000.0, avg_latency=nan)])
        base = _snap([_point("p", 1000.0, avg_latency=nan)])
        assert perf.compare(new, base, fail_under=0.75) == 0


class TestProfile:
    def _shrink(self, monkeypatch, tmp_path):
        from repro.config import SimConfig

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        monkeypatch.setattr(perf, "SNAPSHOT_POINTS",
                            [("escapevc", {}, "uniform", 0.05)])
        monkeypatch.setattr(
            perf, "snapshot_config",
            lambda engine="active": SimConfig(
                rows=4, cols=4, warmup_cycles=50, measure_cycles=150,
                drain_cycles=300, engine=engine))

    def test_run_profile_writes_prof_and_report(self, tmp_path,
                                                monkeypatch):
        import pstats

        self._shrink(monkeypatch, tmp_path)
        prof_path, txt_path = perf.run_profile(top=10)
        assert prof_path.name == "snapshot.prof"
        stats = pstats.Stats(str(prof_path))   # loadable by pstats
        assert stats.total_calls > 0
        report = txt_path.read_text()
        assert "cumulative" in report and "tottime" in report
        # the simulator's hot loop actually shows up in the profile
        assert "step" in report

    def test_cli_profile_flag(self, tmp_path, monkeypatch, capsys):
        from repro.experiments import cli

        self._shrink(monkeypatch, tmp_path)
        fake = _snap([_point("p", 1000.0)])
        fake.update(label=None, total_wall_s=0.1)
        monkeypatch.setattr(
            perf, "run_snapshot",
            lambda repeat=1, label=None, engine="active": fake)
        calls = []
        real = perf.run_profile
        monkeypatch.setattr(perf, "run_profile",
                            lambda top=30: calls.append(top) or real(top))
        out = tmp_path / "new.json"
        rc = cli.main(["perf", "snapshot", "--out", str(out),
                       "--profile", "--profile-top", "5"])
        assert rc == 0
        assert calls == [5]
        assert (tmp_path / "perf" / "profile" / "snapshot.prof").exists()

    def test_no_profile_without_flag(self, tmp_path, monkeypatch, capsys):
        from repro.experiments import cli

        self._shrink(monkeypatch, tmp_path)
        fake = _snap([_point("p", 1000.0)])
        fake.update(label=None, total_wall_s=0.1)
        monkeypatch.setattr(
            perf, "run_snapshot",
            lambda repeat=1, label=None, engine="active": fake)
        monkeypatch.setattr(perf, "run_profile", lambda top=30: (
            (_ for _ in ()).throw(AssertionError("profiled without flag"))))
        rc = cli.main(["perf", "snapshot",
                       "--out", str(tmp_path / "n.json")])
        assert rc == 0


class TestCLI:
    def test_cli_wiring(self, tmp_path, monkeypatch):
        """End-to-end through the experiments CLI with a stubbed sweep."""
        from repro.experiments import cli

        fake = _snap([_point("p", 1000.0)])
        fake.update(label=None, total_wall_s=0.1)
        monkeypatch.setattr(
            perf, "run_snapshot",
            lambda repeat=1, label=None, engine="active": fake)
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_snap([_point("p", 1000.0)])))
        out = tmp_path / "new.json"
        rc = cli.main(["perf", "snapshot", "--out", str(out),
                       "--compare", str(base)])
        assert rc == 0
        assert out.exists()


def _hist_snap(created, total, points, label=None):
    return {"kind": "repro-perf-snapshot", "created": created,
            "label": label, "total_cycles_per_sec": total,
            "points": points}


class TestHistory:
    def test_append_and_load_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        snap = _hist_snap("2026-08-06T10:00:00", 1500.0,
                          [_point("p", 1500.0)], label="before")
        path = perf.append_history(snap)
        assert path == tmp_path / "perf" / "history.jsonl"
        perf.append_history(_hist_snap("2026-08-06T11:00:00", 1800.0,
                                       [_point("p", 1800.0)]))
        entries = perf.load_history()
        assert len(entries) == 2
        assert entries[0]["label"] == "before"
        assert entries[1]["total_cycles_per_sec"] == 1800.0
        assert entries[0]["points"] == {"p": 1500.0}

    def test_load_missing_history_is_empty(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert perf.load_history() == []

    def test_print_trend_normalises_to_baseline(self, capsys):
        base = _snap([_point("p", 1000.0)])
        base["total_cycles_per_sec"] = 1000.0
        entries = [
            {"created": "t1", "label": None,
             "total_cycles_per_sec": 1500.0, "points": {"p": 1500.0}},
            {"created": "t2", "label": "slow",
             "total_cycles_per_sec": 500.0, "points": {"p": 500.0}},
        ]
        perf.print_trend(entries, base)
        out = capsys.readouterr().out
        assert "1.50x" in out and "0.50x" in out and "slow" in out

    def test_print_trend_without_baseline(self, capsys):
        perf.print_trend([{"created": "t1", "label": None,
                           "total_cycles_per_sec": 100.0,
                           "points": {}}], None)
        assert "t1" in capsys.readouterr().out

    def test_trend_cli_prints_history(self, tmp_path, monkeypatch,
                                      capsys):
        from repro.experiments import cli
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        perf.append_history(_hist_snap("t1", 1200.0,
                                       [_point("p", 1200.0)]))
        base = tmp_path / "base.json"
        snap = _snap([_point("p", 1000.0)])
        snap["total_cycles_per_sec"] = 1000.0
        base.write_text(json.dumps(snap))
        rc = cli.main(["perf", "trend", "--baseline", str(base)])
        assert rc == 0
        assert "1.20x" in capsys.readouterr().out

    def test_snapshot_cli_appends_history(self, tmp_path, monkeypatch):
        from repro.experiments import cli
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        fake = _snap([_point("p", 1000.0)])
        fake.update(label=None, total_wall_s=0.1,
                    total_cycles_per_sec=1000.0, created="t0")
        monkeypatch.setattr(
            perf, "run_snapshot",
            lambda repeat=1, label=None, engine="active": fake)
        rc = cli.main(["perf", "snapshot",
                       "--out", str(tmp_path / "n.json")])
        assert rc == 0
        assert len(perf.load_history()) == 1
        rc = cli.main(["perf", "snapshot", "--no-history",
                       "--out", str(tmp_path / "n2.json")])
        assert rc == 0
        assert len(perf.load_history()) == 1


class TestBatchSnapshot:
    def _shrink(self, monkeypatch, tmp_path):
        from repro.config import SimConfig
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        monkeypatch.setattr(perf, "SNAPSHOT_POINTS",
                            [("escapevc", {}, "uniform", 0.02),
                             ("escapevc", {}, "uniform", 0.05)])
        monkeypatch.setattr(
            perf, "snapshot_config",
            lambda engine="active": SimConfig(
                rows=4, cols=4, warmup_cycles=50, measure_cycles=150,
                drain_cycles=300, engine=engine))

    def test_batch_ab_is_bit_identical_and_aggregates(self, tmp_path,
                                                      monkeypatch):
        self._shrink(monkeypatch, tmp_path)
        snap = perf.run_batch_snapshot(replicas=3, repeat=1)
        assert snap["kind"] == "repro-batch-snapshot"
        assert snap["replicas"] == 3
        assert len(snap["points"]) == 2
        assert all(p["identical"] for p in snap["points"])
        assert snap["lowload_speedup"] > 0
        assert snap["overall_speedup"] > 0

    def test_batch_cli_writes_and_gates(self, tmp_path, monkeypatch,
                                        capsys):
        from repro.experiments import cli
        self._shrink(monkeypatch, tmp_path)
        fake_main = _snap([_point("p", 1000.0)])
        fake_main.update(label=None, total_wall_s=0.1,
                         total_cycles_per_sec=1000.0, created="t0")
        monkeypatch.setattr(
            perf, "run_snapshot",
            lambda repeat=1, label=None, engine="active": fake_main)
        fake_batch = {"kind": "repro-batch-snapshot", "points": [],
                      "lowload_speedup": 1.6, "overall_speedup": 1.4}
        monkeypatch.setattr(perf, "run_batch_snapshot",
                            lambda replicas=8, repeat=3: fake_batch)
        out = tmp_path / "batch.json"
        rc = cli.main(["perf", "snapshot", "--replicas", "4",
                       "--out", str(tmp_path / "n.json"),
                       "--batch-out", str(out)])
        assert rc == 0
        assert json.loads(out.read_text())["lowload_speedup"] == 1.6
        fake_batch["lowload_speedup"] = 1.1
        rc = cli.main(["perf", "snapshot", "--replicas", "4",
                       "--out", str(tmp_path / "n2.json"),
                       "--batch-out", str(out),
                       "--batch-fail-under", "1.25"])
        assert rc == 1
        assert "BATCH REGRESSION" in capsys.readouterr().out

    def test_drift_raises(self, tmp_path, monkeypatch):
        """A batch result that diverges from its scalar twin is a hard
        error, not a gate ratio."""
        self._shrink(monkeypatch, tmp_path)
        from repro.sim.batch.engine import ReplicaBatch
        orig = ReplicaBatch.run

        def corrupt(self):
            out = orig(self)
            out[0].ejected += 1
            return out

        monkeypatch.setattr(ReplicaBatch, "run", corrupt)
        with pytest.raises(RuntimeError, match="drifted"):
            perf.run_batch_snapshot(replicas=2, repeat=1)


def _soa_snap(gate_speedup, points=()):
    return {"kind": "repro-soa-snapshot", "points": list(points),
            "gate_points": ["fastpass()/uniform@0.2/8x8"],
            "gate_speedup": gate_speedup}


class TestSoaSnapshot:
    def _stub(self, monkeypatch, tmp_path, soa_snap):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        fake_main = _snap([_point("p", 1000.0)])
        fake_main.update(label=None, total_wall_s=0.1,
                         total_cycles_per_sec=1000.0, created="t0")
        monkeypatch.setattr(
            perf, "run_snapshot",
            lambda repeat=1, label=None, engine="active": fake_main)
        if isinstance(soa_snap, BaseException):
            def boom(repeat=3):
                raise soa_snap
            monkeypatch.setattr(perf, "run_soa_snapshot", boom)
        else:
            monkeypatch.setattr(perf, "run_soa_snapshot",
                                lambda repeat=3: soa_snap)

    def test_gate_passes_at_floor(self, tmp_path, monkeypatch):
        from repro.experiments import cli
        self._stub(monkeypatch, tmp_path, _soa_snap(2.4))
        out = tmp_path / "soa.json"
        rc = cli.main(["perf", "snapshot", "--soa",
                       "--out", str(tmp_path / "n.json"),
                       "--soa-out", str(out)])
        assert rc == 0
        assert json.loads(out.read_text())["gate_speedup"] == 2.4

    def test_gate_fails_below_floor(self, tmp_path, monkeypatch, capsys):
        from repro.experiments import cli
        self._stub(monkeypatch, tmp_path, _soa_snap(1.7))
        rc = cli.main(["perf", "snapshot", "--soa",
                       "--out", str(tmp_path / "n.json"),
                       "--soa-out", str(tmp_path / "soa.json")])
        assert rc == 1
        assert "SOA REGRESSION" in capsys.readouterr().out

    def test_drift_exits_two(self, tmp_path, monkeypatch, capsys):
        from repro.experiments import cli
        self._stub(monkeypatch, tmp_path,
                   perf.ResultDrift("soa drifted at p"))
        rc = cli.main(["perf", "snapshot", "--soa",
                       "--out", str(tmp_path / "n.json"),
                       "--soa-out", str(tmp_path / "soa.json")])
        assert rc == 2
        assert "SOA RESULT DRIFT" in capsys.readouterr().out

    def test_gated_points_are_the_blocked_regime(self):
        assert perf._soa_gated("fastpass", "uniform")
        assert not perf._soa_gated("fastpass", "transpose")
        assert not perf._soa_gated("escapevc", "uniform")
        gated = [p for p in perf.SOA_POINTS
                 if perf._soa_gated(p[0], p[2])]
        assert gated, "the 2x gate must watch at least one point"
        assert all(r >= 0.2 for (_, _, _, r, _, _) in gated)
        assert any(rows == 8 for (_, _, _, _, rows, _) in gated)


class TestEngineInHistory:
    def test_engine_recorded_per_row(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        snap = _hist_snap("t0", 1000.0, [_point("p", 1000.0)])
        snap["engine"] = "soa"
        perf.append_history(snap)
        perf.append_history(_hist_snap("t1", 900.0,
                                       [_point("p", 900.0)]))
        entries = perf.load_history()
        assert entries[0]["engine"] == "soa"
        assert entries[1]["engine"] == "active"   # default when absent

    def test_trend_refuses_cross_engine_ratios(self, capsys):
        base = _snap([_point("p", 1000.0)])
        base["total_cycles_per_sec"] = 1000.0      # engine: active
        entries = [
            {"created": "t1", "label": None, "engine": "soa",
             "total_cycles_per_sec": 3000.0, "points": {"p": 3000.0}},
            {"created": "t2", "label": None, "engine": "active",
             "total_cycles_per_sec": 1500.0, "points": {"p": 1500.0}},
        ]
        perf.print_trend(entries, base)
        out = capsys.readouterr().out
        assert "1.50x" in out                      # same-engine ratio
        assert "3.00x" not in out                  # cross-engine withheld
        assert "different engine" in out

    def test_trend_plots_per_engine_trajectories(self, capsys):
        """Mixed-engine histories are not refused: each non-baseline
        engine normalises against its own first row, marked '*'."""
        base = _snap([_point("p", 1000.0)])
        base["total_cycles_per_sec"] = 1000.0      # engine: active
        entries = [
            {"created": "t1", "label": None, "engine": "soa",
             "total_cycles_per_sec": 2000.0, "points": {"p": 2000.0}},
            {"created": "t2", "label": None, "engine": "soa",
             "total_cycles_per_sec": 5000.0, "points": {"p": 5000.0}},
            {"created": "t3", "label": None, "engine": "active",
             "total_cycles_per_sec": 1200.0, "points": {"p": 1200.0}},
        ]
        perf.print_trend(entries, base)
        out = capsys.readouterr().out
        assert "1.00x*" in out     # soa t1: its own self-baseline
        assert "2.50x*" in out     # soa t2 vs soa t1, starred
        assert "1.20x " in out     # active vs the snapshot baseline
        assert "5.00x" not in out  # never soa-vs-active
        assert "different engine" in out

    def test_compare_flags_cross_engine(self, capsys):
        new = _snap([_point("p", 2000.0)])
        new["engine"] = "soa"
        base = _snap([_point("p", 1000.0)])
        assert perf.compare(new, base, fail_under=0.75) == 0
        assert "cross-engine" in capsys.readouterr().out

"""Unit tests for the parallel sweep runner."""

from repro.config import SimConfig
from repro.sim.parallel import Point, grid, parallel_sweep


def cfg():
    return SimConfig(rows=4, cols=4, warmup_cycles=100, measure_cycles=300,
                     drain_cycles=800, fastpass_slot_cycles=64)


class TestGrid:
    def test_cartesian_size(self):
        pts = grid([("escapevc", {}), ("fastpass", {"n_vcs": 2})],
                   ["uniform", "transpose"], [0.02, 0.05])
        assert len(pts) == 8

    def test_point_hashable(self):
        p = Point.make("fastpass", "uniform", 0.1, n_vcs=4)
        assert p in {p}
        assert p.scheme_kwargs == (("n_vcs", 4),)


class TestExecution:
    def test_serial_results_in_order(self):
        pts = grid([("escapevc", {})], ["uniform"], [0.02, 0.05])
        results = parallel_sweep(pts, cfg(), processes=1)
        assert len(results) == 2
        assert results[0].extra["rate"] == 0.02
        assert results[1].extra["rate"] == 0.05

    def test_parallel_matches_serial(self):
        pts = grid([("escapevc", {}), ("fastpass", {"n_vcs": 2})],
                   ["uniform"], [0.04])
        serial = parallel_sweep(pts, cfg(), processes=1)
        para = parallel_sweep(pts, cfg(), processes=2)
        for s, p in zip(serial, para):
            assert s.avg_latency == p.avg_latency
            assert s.ejected == p.ejected

    def test_single_point_short_circuits(self):
        pts = [Point.make("escapevc", "uniform", 0.03)]
        results = parallel_sweep(pts, cfg(), processes=8)
        assert len(results) == 1
        assert results[0].ejected > 0

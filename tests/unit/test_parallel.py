"""Unit tests for the parallel sweep runner and Point serialization."""

import json

from repro.sim.parallel import Point, grid, parallel_sweep


class TestGrid:
    def test_cartesian_size(self):
        pts = grid([("escapevc", {}), ("fastpass", {"n_vcs": 2})],
                   ["uniform", "transpose"], [0.02, 0.05])
        assert len(pts) == 8

    def test_point_hashable(self):
        p = Point.make("fastpass", "uniform", 0.1, n_vcs=4)
        assert p in {p}
        assert p.scheme_kwargs == (("n_vcs", 4),)


class TestPointJson:
    def test_round_trip(self):
        p = Point.make("fastpass", "transpose", 0.12, n_vcs=4)
        assert Point.from_json(p.to_json()) == p

    def test_round_trip_through_json_text(self):
        p = Point.make_app("fastpass", "Radix", txns=100, seed=3, n_vcs=2)
        blob = json.dumps(p.to_json())
        assert Point.from_json(json.loads(blob)) == p

    def test_kwargs_order_is_stable(self):
        a = Point("x", (("a", 1), ("b", 2)), "uniform", 0.1)
        b = Point("x", (("b", 2), ("a", 1)), "uniform", 0.1)
        assert Point.from_json(a.to_json()) == Point.from_json(b.to_json())
        assert (json.dumps(a.to_json(), sort_keys=True)
                == json.dumps(b.to_json(), sort_keys=True))

    def test_meta_defaults_empty(self):
        p = Point.make("escapevc", "uniform", 0.05)
        assert p.meta == ()
        assert Point.from_json({"scheme": "escapevc",
                                "scheme_kwargs": [], "pattern": "uniform",
                                "rate": 0.05}) == p

    def test_make_stress_and_app_patterns(self):
        s = Point.make_stress("fastpass", max_cycles=1000, n_vcs=1)
        assert s.pattern == "stress:protocol"
        assert dict(s.meta)["max_cycles"] == 1000
        a = Point.make_app("spin", "FFT", txns=50)
        assert a.pattern == "app:FFT"
        assert dict(a.meta)["txns"] == 50


class TestExecution:
    def test_serial_results_in_order(self, small_cfg):
        pts = grid([("escapevc", {})], ["uniform"], [0.02, 0.05])
        results = parallel_sweep(pts, small_cfg, processes=1)
        assert len(results) == 2
        assert results[0].extra["rate"] == 0.02
        assert results[1].extra["rate"] == 0.05

    def test_parallel_matches_serial(self, small_cfg):
        pts = grid([("escapevc", {}), ("fastpass", {"n_vcs": 2})],
                   ["uniform"], [0.04])
        serial = parallel_sweep(pts, small_cfg, processes=1)
        para = parallel_sweep(pts, small_cfg, processes=2)
        for s, p in zip(serial, para):
            assert s.avg_latency == p.avg_latency
            assert s.ejected == p.ejected

    def test_single_point_short_circuits(self, small_cfg):
        pts = [Point.make("escapevc", "uniform", 0.03)]
        results = parallel_sweep(pts, small_cfg, processes=8)
        assert len(results) == 1
        assert results[0].ejected > 0


class TestSeededPoints:
    def test_make_seeded_carries_seed_in_meta(self):
        p = Point.make_seeded("fastpass", "uniform", 0.05, seed=11,
                              n_vcs=4)
        assert dict(p.meta) == {"seed": 11}
        assert dict(p.scheme_kwargs) == {"n_vcs": 4}
        q = Point.from_json(p.to_json())
        assert q == p

    def test_seed_is_part_of_identity(self):
        a = Point.make_seeded("fastpass", "uniform", 0.05, seed=1)
        b = Point.make_seeded("fastpass", "uniform", 0.05, seed=2)
        assert a != b and hash(a) != hash(b)


class TestReplicaSignature:
    def _sig(self, p):
        from repro.campaign.worker import replica_signature
        return replica_signature(p)

    def test_seed_replicas_share_a_signature(self):
        sigs = {self._sig(Point.make_seeded("escapevc", "uniform", 0.05,
                                            seed=s)) for s in (1, 2, 3)}
        assert len(sigs) == 1 and None not in sigs

    def test_rate_and_kwargs_split_signatures(self):
        a = self._sig(Point.make_seeded("fastpass", "uniform", 0.05,
                                        seed=1, n_vcs=2))
        b = self._sig(Point.make_seeded("fastpass", "uniform", 0.05,
                                        seed=1, n_vcs=4))
        c = self._sig(Point.make_seeded("fastpass", "uniform", 0.10,
                                        seed=1, n_vcs=2))
        assert len({a, b, c}) == 3

    def test_closed_loop_points_never_batch(self):
        assert self._sig(Point.make_app("escapevc", "pagerank",
                                        txns=5)) is None
        assert self._sig(Point.make_stress("escapevc")) is None

    def test_metrics_points_never_batch(self, monkeypatch):
        p = Point("escapevc", (), "uniform", 0.05,
                  (("metrics", 100), ("seed", 1)))
        assert self._sig(p) is None
        monkeypatch.setenv("REPRO_METRICS", "50")
        assert self._sig(Point.make_seeded("escapevc", "uniform", 0.05,
                                           seed=1)) is None

    def test_fault_points_batch_by_plan(self):
        from repro.fault.plan import FaultPlan
        plan = FaultPlan(rate=0.002, start=100, stop=400, seed=3)
        mk = lambda seed, pl: Point.make_fault(
            "escapevc", "uniform", 0.05, plan=pl, seed=seed)
        assert self._sig(mk(1, plan)) == self._sig(mk(2, plan))
        assert self._sig(mk(1, plan)) != self._sig(mk(1, None))

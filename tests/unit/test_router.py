"""Unit tests for the baseline credit-based VCT router."""

import pytest

from repro.config import SimConfig
from repro.network.packet import MessageClass, Packet
from repro.network.topology import PORT_E, PORT_LOCAL
from tests.conftest import drain_packet, inject_now, make_network


@pytest.fixture
def net(small_cfg):
    return make_network(small_cfg, routing="xy")


class TestStructure:
    def test_vc_slot_layout(self, net):
        r = net.routers[0]
        assert len(r.slots) == 5
        assert all(len(port) == net.cfg.total_vcs for port in r.slots)

    def test_vn_partitioning(self, net):
        r = net.routers[0]
        vcs0 = r.vn_vcs(0)
        vcs1 = r.vn_vcs(1)
        assert set(vcs0).isdisjoint(vcs1)
        assert len(vcs0) == net.cfg.n_vcs

    def test_shared_pool_when_single_vn(self, small_cfg):
        net = make_network(small_cfg.with_(n_vns=1, n_vcs=4))
        r = net.routers[0]
        assert r.vn_vcs(0) == r.vn_vcs(5) == tuple(range(4))

    def test_edge_routers_missing_links(self, net):
        r0 = net.routers[0]      # SW corner
        assert r0.links_out[3] is None and r0.links_out[4] is None
        assert r0.links_out[1] is not None and r0.links_out[2] is not None


class TestDelivery:
    def test_single_hop_delivery(self, net):
        pkt = inject_now(net, 0, 1, MessageClass.REQUEST)
        assert drain_packet(net, pkt, 50)
        assert pkt.hops == 1

    def test_cross_mesh_delivery(self, net):
        pkt = inject_now(net, 0, 15, MessageClass.REQUEST)
        assert drain_packet(net, pkt, 100)
        assert pkt.hops == net.mesh.hops(0, 15)

    def test_xy_zero_load_latency(self, net):
        # hops * (router+link) + serialization + NI overheads: small bound
        pkt = inject_now(net, 0, 15, MessageClass.REQUEST)
        drain_packet(net, pkt, 100)
        hops = net.mesh.hops(0, 15)
        assert pkt.latency <= 2 * hops + pkt.size + 6

    def test_five_flit_packet_delivery(self, net):
        pkt = inject_now(net, 5, 10, MessageClass.RESPONSE)
        assert drain_packet(net, pkt, 100)
        assert pkt.size == 5

    def test_local_delivery_skips_network(self, net):
        pkt = inject_now(net, 3, 3, MessageClass.REQUEST)
        assert pkt.eject_cycle == pkt.gen_cycle + 1
        assert pkt.hops == 0

    def test_many_packets_all_delivered(self, net):
        pkts = [inject_now(net, src, (src + 5) % 16, MessageClass.REQUEST)
                for src in range(16)]
        for _ in range(300):
            net.step()
        assert all(p.eject_cycle >= 0 for p in pkts)


class TestSerialization:
    def test_output_link_busy_during_transfer(self, net):
        pkt = inject_now(net, 0, 2, MessageClass.RESPONSE)  # 5 flits east
        # Step until the transfer starts, then the E link must be busy.
        for _ in range(30):
            net.step()
            link = net.routers[0].links_out[PORT_E]
            if link.busy_until > net.cycle:
                assert link.busy_until - net.cycle <= pkt.size
                return
        pytest.fail("transfer never started")

    def test_input_port_serializes(self, net):
        """Two packets entering via the same input port cannot both be
        crossing the switch in the same cycle (crossbar reads one flit per
        input per cycle)."""
        r = net.routers[5]
        # Place two ready packets in two VCs of the same input port.
        a = Packet(0, 6, MessageClass.RESPONSE, 0)   # east of 5
        b = Packet(0, 9, MessageClass.RESPONSE, 0)   # north of 5
        a.vn = b.vn = 0
        s0, s1 = r.slots[4][0], r.slots[4][1]
        s0.pkt, s0.ready_at, s0.free_at = a, 0, 1 << 60
        s1.pkt, s1.ready_at, s1.free_at = b, 0, 1 << 60
        r.occupied += [s0, s1]
        r.step(0)
        moved = sum(1 for s in (s0, s1) if s.pkt is None)
        assert moved == 1
        assert r.in_busy[4] == a.size or r.in_busy[4] == b.size

    def test_credit_returns_after_tail(self, net):
        r = net.routers[0]
        pkt = Packet(0, 2, MessageClass.RESPONSE, 0)
        slot = r.slots[0][pkt.vn * net.cfg.n_vcs]
        slot.pkt, slot.ready_at, slot.free_at = pkt, 0, 1 << 60
        r.occupied.append(slot)
        r.step(0)
        assert slot.pkt is None
        assert slot.free_at == pkt.size + 1


class TestCredits:
    def test_no_transfer_without_downstream_vc(self, net):
        """When every VC of the packet's VN at the downstream input is
        held, the packet waits."""
        r0, r1 = net.routers[0], net.routers[1]
        blocker = Packet(0, 3, MessageClass.REQUEST, 0)
        for vc in r1.vn_vcs(0):
            s = r1.slots[4][vc]           # west input of router 1
            s.pkt = blocker
            s.ready_at = 1 << 60          # parked forever
        pkt = Packet(0, 2, MessageClass.REQUEST, 0)
        slot = r0.slots[0][0]
        slot.pkt, slot.ready_at, slot.free_at = pkt, 0, 1 << 60
        r0.occupied.append(slot)
        for now in range(5):
            r0.step(now)
        assert slot.pkt is pkt            # still waiting

    def test_other_vn_unaffected(self, net):
        """VN partitioning: VN1 packets pass even when VN0 is exhausted."""
        r0, r1 = net.routers[0], net.routers[1]
        blocker = Packet(0, 3, MessageClass.REQUEST, 0)
        for vc in r1.vn_vcs(0):
            s = r1.slots[4][vc]
            s.pkt = blocker
            s.ready_at = 1 << 60
        pkt = Packet(0, 2, MessageClass.RESPONSE, 0)   # VN 1
        slot = r0.slots[0][pkt.vn * net.cfg.n_vcs]
        slot.pkt, slot.ready_at, slot.free_at = pkt, 0, 1 << 60
        r0.occupied.append(slot)
        r0.step(0)
        assert slot.pkt is None


class TestEjection:
    def test_ejection_respects_queue_capacity(self, net):
        ni = net.nis[1]
        q = ni.ej[MessageClass.REQUEST]
        for _ in range(net.cfg.ej_queue_pkts):
            q.push(Packet(0, 1, MessageClass.REQUEST, 0))
        ni.consumer = type("Stall", (), {"consume": lambda *a, **k: None,
                                         "on_local": lambda *a, **k: None})()
        pkt = inject_now(net, 0, 1, MessageClass.REQUEST)
        for _ in range(30):
            net.step()
        assert pkt.eject_cycle < 0     # stuck behind the full queue

    def test_blocked_heads_reporting(self, net):
        r = net.routers[0]
        pkt = Packet(0, 5, MessageClass.REQUEST, 0)
        slot = r.slots[1][0]
        slot.pkt, slot.ready_at = pkt, 0
        r.occupied.append(slot)
        assert r.blocked_heads(now=100, threshold=50) == [slot]
        assert r.blocked_heads(now=10, threshold=50) == []


class TestMoves:
    def test_moves_cached_per_router(self, net):
        r = net.routers[0]
        pkt = Packet(0, 15, MessageClass.REQUEST, 0)
        mv1 = r.moves(pkt)
        mv2 = r.moves(pkt)
        assert mv1 is mv2

    def test_moves_local_at_destination(self, net):
        r = net.routers[7]
        pkt = Packet(0, 7, MessageClass.REQUEST, 0)
        assert r.moves(pkt)[0][0] == PORT_LOCAL

"""Unit tests for the campaign store and the fault-tolerant executor.

The fault-injection points (``selftest:*`` patterns) are only honoured
when ``REPRO_CAMPAIGN_SELFTEST=1``, so they can never appear in a real
sweep.
"""

import time

import pytest

from repro.campaign import RetryPolicy, RunCache
from repro.campaign.executor import CampaignExecutor
from repro.campaign.store import CampaignStore
from repro.sim.parallel import Point


@pytest.fixture
def selftest(monkeypatch):
    monkeypatch.setenv("REPRO_CAMPAIGN_SELFTEST", "1")


class TestStore:
    def test_register_and_counts(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite")
        pts = [("k1", Point.make("a", "uniform", 0.1)),
               ("k2", Point.make("b", "uniform", 0.2))]
        store.register(pts)
        store.register(pts)  # idempotent
        assert len(store) == 2
        assert store.counts()["pending"] == 2

    def test_mark_transitions(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite")
        store.register([("k1", Point.make("a", "uniform", 0.1))])
        store.mark("k1", "running")
        assert store.status_of("k1") == "running"
        store.mark("k1", "failed", error="boom", attempts=3)
        assert store.failures() == [("k1", "boom", 3)]
        with pytest.raises(ValueError):
            store.mark("k1", "exploded")

    def test_reset_running_requeues(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite")
        store.register([("k1", Point.make("a", "uniform", 0.1)),
                        ("k2", Point.make("b", "uniform", 0.2))])
        store.mark("k1", "running")
        assert store.reset_running() == 1
        assert store.counts() == {"pending": 2, "running": 0, "done": 0,
                                  "failed": 0}

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "c.sqlite"
        store = CampaignStore(path)
        point = Point.make("a", "uniform", 0.1, n_vcs=2)
        store.register([("k1", point)])
        store.mark("k1", "done")
        store.close()
        again = CampaignStore(path)
        assert again.status_of("k1") == "done"
        assert again.points_with_status("done") == [("k1", point)]


class TestExecutorFaults:
    def test_crash_isolated_from_campaign(self, selftest, small_cfg):
        pts = [Point.make("x", "selftest:crash", 0.0),
               Point.make("x", "selftest:ok", 1.0),
               Point.make("x", "selftest:ok", 2.0)]
        ex = CampaignExecutor(small_cfg, processes=2,
                              retry=RetryPolicy(max_attempts=2,
                                                backoff_s=0.01))
        results = ex.run(pts)
        assert results[0].extra.get("failed")
        assert "crash" in results[0].extra["error"]
        assert results[1].ejected == 1 and results[2].ejected == 1
        assert ex.summary["failed"] == 1 and ex.summary["computed"] == 2

    def test_failure_marks_store_without_killing_run(self, selftest,
                                                     small_cfg, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite")
        pts = [Point.make("x", "selftest:fail", 0.0),
               Point.make("x", "selftest:ok", 1.0)]
        ex = CampaignExecutor(small_cfg, store=store, processes=1,
                              retry=RetryPolicy(max_attempts=2,
                                                backoff_s=0.01))
        results = ex.run(pts)
        assert results[0].extra.get("failed")
        counts = store.counts()
        assert counts["failed"] == 1 and counts["done"] == 1
        (_key, error, attempts) = store.failures()[0]
        assert "deliberate failure" in error and attempts == 2

    def test_timeout_terminates_point(self, selftest, small_cfg):
        pts = [Point.make("x", "selftest:sleep", 10.0)]
        ex = CampaignExecutor(small_cfg, processes=2,
                              retry=RetryPolicy(max_attempts=1,
                                                timeout_s=0.3))
        t0 = time.monotonic()
        results = ex.run(pts)
        assert time.monotonic() - t0 < 5.0
        assert results[0].extra.get("failed")
        assert "timeout" in results[0].extra["error"]

    def test_retry_recovers_flaky_point(self, selftest, small_cfg,
                                        tmp_path):
        flaky = Point("x", (), "selftest:flaky", 0.5,
                      (("dir", str(tmp_path)),))
        ex = CampaignExecutor(small_cfg, processes=2,
                              retry=RetryPolicy(max_attempts=3,
                                                backoff_s=0.01))
        results = ex.run([flaky])
        assert not results[0].extra.get("failed")
        assert results[0].avg_latency == 2.0

    def test_failed_points_are_not_cached(self, selftest, small_cfg,
                                          tmp_path):
        cache = RunCache(tmp_path / "cache", salt="s")
        pts = [Point.make("x", "selftest:fail", 0.0)]
        ex = CampaignExecutor(small_cfg, cache=cache, processes=1,
                              retry=RetryPolicy(max_attempts=1,
                                                backoff_s=0.01))
        assert ex.run(pts)[0].extra.get("failed")
        assert len(cache) == 0

    def test_duplicate_points_computed_once(self, selftest, small_cfg):
        point = Point.make("x", "selftest:ok", 1.0)
        ex = CampaignExecutor(small_cfg, processes=1)
        results = ex.run([point, point, point])
        assert len(results) == 3
        assert ex.summary["computed"] == 1

    def test_progress_reports_completion(self, selftest, small_cfg):
        events = []
        pts = [Point.make("x", "selftest:ok", float(i)) for i in range(3)]
        ex = CampaignExecutor(small_cfg, processes=1,
                              progress=events.append)
        ex.run(pts)
        assert events[-1].finished == 3
        assert events[-1].total == 3
        assert events[-1].eta_s == 0.0


class TestReplicaBatching:
    """Seed-only-differing points fold into lock-step batch tasks with
    unchanged per-point cache keys and bit-identical results."""

    def _seeded(self, rates=(0.02,), seeds=(1, 2, 3)):
        return [Point.make_seeded("escapevc", "uniform", r, seed=s)
                for r in rates for s in seeds]

    def test_grouped_by_signature(self, small_cfg):
        from repro.campaign.executor import _Task
        ex = CampaignExecutor(small_cfg)
        pending = [(f"k{i}", p)
                   for i, p in enumerate(self._seeded(rates=(0.02, 0.05)))]
        tasks = ex._group(pending)
        assert sorted(len(t.items) for t in tasks) == [3, 3]
        assert all(isinstance(t, _Task) for t in tasks)

    def test_batch_cap_chunks_large_groups(self, small_cfg, monkeypatch):
        import repro.campaign.executor as executor
        monkeypatch.setattr(executor, "BATCH_CAP", 4)
        ex = CampaignExecutor(small_cfg)
        pending = [(f"k{i}", p)
                   for i, p in enumerate(self._seeded(seeds=range(6)))]
        assert sorted(len(t.items) for t in ex._group(pending)) == [2, 4]

    def test_non_replicable_points_stay_singletons(self, small_cfg):
        ex = CampaignExecutor(small_cfg)
        pts = [Point.make_app("escapevc", "pagerank", txns=5, seed=1),
               Point.make_stress("escapevc")]
        tasks = ex._group([(f"k{i}", p) for i, p in enumerate(pts)])
        assert [len(t.items) for t in tasks] == [1, 1]

    def test_results_match_scalar_and_are_cached_per_point(
            self, small_cfg, tmp_cache_dir):
        from repro.campaign.worker import execute_point
        points = self._seeded()
        cache = RunCache(tmp_cache_dir)
        ex = CampaignExecutor(small_cfg, cache=cache, processes=1)
        got = ex.run(points)
        assert ex.summary["batched"] == 3
        assert ex.summary["computed"] == 3
        for point, res in zip(points, got):
            ref = execute_point(point, small_cfg)
            assert res.avg_latency == ref.avg_latency
            assert res.ejected == ref.ejected
        again = CampaignExecutor(small_cfg, cache=cache, processes=1)
        rerun = again.run(points)
        assert again.summary["cached"] == 3
        assert [r.ejected for r in rerun] == [r.ejected for r in got]

    def test_env_escape_hatch_disables_batching(self, small_cfg,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
        ex = CampaignExecutor(small_cfg, processes=1)
        ex.run(self._seeded(seeds=(1, 2)))
        assert ex.summary["batched"] == 0

    def test_auto_batch_false_disables_batching(self, small_cfg):
        ex = CampaignExecutor(small_cfg, processes=1, auto_batch=False)
        ex.run(self._seeded(seeds=(1, 2)))
        assert ex.summary["batched"] == 0

    def test_pool_size_respects_affinity(self, monkeypatch):
        """The fork pool never launches more workers than the affinity
        mask allows, even when more tasks (or a larger --jobs) ask."""
        import repro.sim.batch.shared as shared
        from repro.campaign.executor import _pool_size
        monkeypatch.setattr(shared, "default_workers", lambda: 2)
        assert _pool_size(8, 10) == 2       # affinity caps the request
        assert _pool_size(None, 10) == 2    # and the one-per-task default
        assert _pool_size(None, 1) == 1     # never more than tasks
        assert _pool_size(1, 10) == 1       # explicit request honoured
        monkeypatch.setattr(shared, "default_workers", lambda: 64)
        assert _pool_size(None, 3) == 3

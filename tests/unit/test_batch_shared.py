"""Unit tests for the replica-batch sharing layer: SharedStructures,
the process-level prewarm cache, the affinity-aware worker count, and
the cross-replica TrafficMatrix."""

import os

import pytest

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim.batch.shared import (
    SharedStructures,
    clear_process_cache,
    default_workers,
    process_shared,
    structures_key,
    warm_process_cache,
)
from repro.sim.batch.traffic import _FAR, TrafficMatrix
from repro.sim.engine import build_network
from repro.traffic.synthetic import SyntheticTraffic


@pytest.fixture(autouse=True)
def _clean_process_cache():
    clear_process_cache()
    yield
    clear_process_cache()


class TestSharedStructures:
    def test_first_network_donates_later_adopt(self, small_cfg):
        shared = SharedStructures()
        donor = build_network(small_cfg, get_scheme("escapevc"),
                              shared=shared)
        assert shared.mesh is donor.mesh
        assert shared.route_memos is not None
        adopter = build_network(small_cfg, get_scheme("escapevc"),
                                shared=shared)
        assert adopter.mesh is donor.mesh
        for a, b in zip(adopter.routers, donor.routers):
            assert a._mv_memo is b._mv_memo

    def test_claim_rejects_different_identity(self, small_cfg):
        shared = SharedStructures()
        build_network(small_cfg, get_scheme("escapevc"), shared=shared)
        with pytest.raises(ValueError, match="reused with"):
            build_network(small_cfg, get_scheme("fastpass", n_vcs=4),
                          shared=shared)

    def test_claim_rejects_different_mesh_size(self, small_cfg):
        shared = SharedStructures()
        build_network(small_cfg, get_scheme("escapevc"), shared=shared)
        bigger = small_cfg.with_(rows=8, cols=8)
        with pytest.raises(ValueError):
            build_network(bigger, get_scheme("escapevc"), shared=shared)

    def test_get_or_build_builds_once(self):
        shared = SharedStructures()
        calls = []
        a = shared.get_or_build("k", lambda: calls.append(1) or "v")
        b = shared.get_or_build("k", lambda: calls.append(1) or "other")
        assert a == b == "v"
        assert len(calls) == 1

    def test_fastpass_geometry_is_shared(self, small_cfg):
        shared = SharedStructures()
        donor = build_network(small_cfg, get_scheme("fastpass", n_vcs=2),
                              shared=shared)
        adopter = build_network(small_cfg,
                                get_scheme("fastpass", n_vcs=2),
                                shared=shared)
        assert adopter.fastpass.schedule is donor.fastpass.schedule
        assert adopter.fastpass._rt is donor.fastpass._rt

    def test_structures_key_uses_post_configure_config(self, small_cfg):
        scheme = get_scheme("fastpass", n_vcs=4)
        key = structures_key(scheme.configure(small_cfg), scheme)
        assert key != structures_key(
            scheme.configure(small_cfg.with_(rows=8)), scheme)


class TestProcessCache:
    def test_no_ambient_sharing_without_warm(self, small_cfg):
        scheme = get_scheme("escapevc")
        assert process_shared(scheme.configure(small_cfg), scheme) is None

    def test_warm_then_build_adopts(self, small_cfg):
        warmed = warm_process_cache(small_cfg, [("escapevc", ())])
        assert warmed == 1
        scheme = get_scheme("escapevc")
        shared = process_shared(scheme.configure(small_cfg), scheme)
        assert shared is not None and shared.route_memos is not None
        net = build_network(small_cfg, get_scheme("escapevc"))
        assert net.mesh is shared.mesh

    def test_warm_is_idempotent(self, small_cfg):
        assert warm_process_cache(small_cfg, [("escapevc", ())]) == 1
        assert warm_process_cache(small_cfg, [("escapevc", ())]) == 0

    def test_warm_distinguishes_scheme_kwargs(self, small_cfg):
        n = warm_process_cache(small_cfg, [
            ("fastpass", (("n_vcs", 2),)),
            ("fastpass", (("n_vcs", 4),)),
        ])
        assert n == 2

    def test_clear_empties_cache(self, small_cfg):
        warm_process_cache(small_cfg, [("escapevc", ())])
        clear_process_cache()
        scheme = get_scheme("escapevc")
        assert process_shared(scheme.configure(small_cfg), scheme) is None

    def test_explicit_shared_wins_over_cache(self, small_cfg):
        warm_process_cache(small_cfg, [("escapevc", ())])
        mine = SharedStructures()
        net = build_network(small_cfg, get_scheme("escapevc"),
                            shared=mine)
        assert mine.mesh is net.mesh


class TestDefaultWorkers:
    def test_respects_affinity_mask(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: {0, 1, 2}, raising=False)
        assert default_workers() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert default_workers() == 5

    def test_never_below_one(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_workers() == 1


class _MeshOnly:
    """The slice of Network that SyntheticTraffic.bind/_fill read."""

    def __init__(self):
        from repro.network.topology import Mesh
        self.mesh = Mesh(4, 4)


class TestTrafficMatrix:
    def _traffics(self, n=2, rate=0.05, stop=None):
        out = []
        for i in range(n):
            t = SyntheticTraffic("uniform", rate, seed=10 + i, stop=stop)
            t.bind(_MeshOnly())
            out.append(t)
        return out

    def test_counts_match_scalar_events(self):
        ts = self._traffics()
        m = TrafficMatrix(ts)
        m.ensure(0, range(len(ts)))
        for ri, t in enumerate(ts):
            for c in range(t._chunk_start, t._chunk_end):
                expected = len(t._by_cycle.get(c, ()))
                assert m.quiet_at(ri, c) == (expected == 0)
                assert m._counts[ri, c - t._chunk_start] == expected

    def test_next_event_is_first_busy_cycle(self):
        ts = self._traffics(n=1, rate=0.01)
        m = TrafficMatrix(ts)
        m.ensure(0, [0])
        t = ts[0]
        busy = sorted(t._by_cycle)
        if busy:
            assert m.next_event(0, 0) == busy[0]
            # From just past the last event, the refill boundary is next.
            assert m.next_event(0, busy[-1] + 1) == t._chunk_end
        else:
            assert m.next_event(0, 0) == t._chunk_end

    def test_next_event_outside_chunk_is_conservative(self):
        ts = self._traffics(n=1)
        m = TrafficMatrix(ts)
        m.ensure(0, [0])
        end = ts[0]._chunk_end
        assert m.next_event(0, end) == end  # unknown -> "busy now"

    def test_stopped_source_is_far(self):
        ts = self._traffics(n=1, rate=0.5, stop=10)
        m = TrafficMatrix(ts)
        m.ensure(0, [0])
        assert m.next_event(0, 10) == _FAR
        assert m.quiet_at(0, 10)

    def test_ensure_refills_at_exact_boundary(self):
        ts = self._traffics(n=1)
        m = TrafficMatrix(ts)
        m.ensure(0, [0])
        end = ts[0]._chunk_end
        m.ensure(end - 1, [0])
        assert ts[0]._chunk_end == end      # not yet
        m.ensure(end, [0])
        assert ts[0]._chunk_start == end    # refilled exactly at end
        assert ts[0]._chunk_end > end

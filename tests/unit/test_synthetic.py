"""Unit tests for synthetic traffic patterns and generation."""

import pytest

from repro.config import SimConfig
from repro.traffic.synthetic import (
    PATTERNS,
    SyntheticTraffic,
    dest_bit_complement,
    dest_bit_rotation,
    dest_bit_reverse,
    dest_shuffle,
    dest_transpose,
)
from tests.conftest import make_network


class TestPatternFunctions:
    def test_transpose_is_involution(self):
        for src in range(64):
            d = dest_transpose(src, 64, 8, 8)
            assert dest_transpose(d, 64, 8, 8) == src

    def test_transpose_swaps_coords(self):
        # src (x=2, y=1) in 8x8 -> id 10; dst (1, 2) -> id 17
        assert dest_transpose(10, 64, 8, 8) == 17

    def test_transpose_requires_square(self):
        with pytest.raises(ValueError):
            dest_transpose(0, 32, 4, 8)

    def test_shuffle_rotates_left(self):
        assert dest_shuffle(0b000001, 64) == 0b000010
        assert dest_shuffle(0b100000, 64) == 0b000001

    def test_bit_rotation_rotates_right(self):
        assert dest_bit_rotation(0b000010, 64) == 0b000001
        assert dest_bit_rotation(0b000001, 64) == 0b100000

    def test_shuffle_rotation_inverse(self):
        for src in range(64):
            assert dest_bit_rotation(dest_shuffle(src, 64), 64) == src

    def test_bit_complement(self):
        assert dest_bit_complement(0, 64) == 63
        assert dest_bit_complement(0b101010, 64) == 0b010101

    def test_bit_reverse(self):
        assert dest_bit_reverse(0b000001, 64) == 0b100000
        assert dest_bit_reverse(0b110000, 64) == 0b000011

    def test_patterns_are_permutations(self):
        for fn in (dest_shuffle, dest_bit_rotation, dest_bit_complement,
                   dest_bit_reverse):
            dsts = {fn(s, 64) for s in range(64)}
            assert dsts == set(range(64))

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            dest_shuffle(3, 48)


class TestSyntheticTraffic:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTraffic("zipf", 0.1)

    def test_all_declared_patterns_construct(self):
        for p in PATTERNS:
            SyntheticTraffic(p, 0.1)

    def _generate(self, pattern, rate, cycles=200, rows=4, cols=4, seed=1):
        cfg = SimConfig(rows=rows, cols=cols)
        net = make_network(cfg)
        tr = SyntheticTraffic(pattern, rate, seed=seed)
        tr.bind(net)
        tr.measure_window(0, cycles)
        net.traffic = tr
        for _ in range(cycles):
            net.step()
        return net, tr

    def test_rate_respected(self):
        net, tr = self._generate("uniform", 0.2, cycles=400)
        expected = 0.2 * 16 * 400
        assert abs(tr.measured_generated - expected) < 0.2 * expected

    def test_zero_rate_generates_nothing(self):
        net, tr = self._generate("uniform", 0.0)
        assert tr.measured_generated == 0

    def test_uniform_never_self(self):
        net, tr = self._generate("uniform", 0.3, cycles=100)
        # all generated packets entered pending or the network; none were
        # locally delivered (src == dst is excluded by construction)
        for ni in net.nis:
            for pkt in ni.pending:
                assert pkt.dst != pkt.src

    def test_deterministic_given_seed(self):
        _n1, t1 = self._generate("uniform", 0.1, seed=42)
        _n2, t2 = self._generate("uniform", 0.1, seed=42)
        assert t1.measured_generated == t2.measured_generated

    def test_seeds_differ(self):
        _n1, t1 = self._generate("uniform", 0.1, seed=1)
        _n2, t2 = self._generate("uniform", 0.1, seed=2)
        assert t1.measured_generated != t2.measured_generated

    def test_measure_window_limits_counting(self):
        cfg = SimConfig(rows=4, cols=4)
        net = make_network(cfg)
        tr = SyntheticTraffic("uniform", 0.2, seed=1)
        tr.bind(net)
        tr.measure_window(50, 100)
        net.traffic = tr
        for _ in range(150):
            net.step()
        full = 0.2 * 16 * 50
        assert 0 < tr.measured_generated < 2 * full

    def test_mix_contains_both_sizes(self):
        net, tr = self._generate("uniform", 0.3, cycles=200)
        sizes = set()
        for ni in net.nis:
            sizes.update(p.size for p in ni.pending)
        for r in net.routers:
            sizes.update(s.pkt.size for s in r.occupied if s.pkt)
        assert {1, 5} <= sizes

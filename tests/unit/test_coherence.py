"""Unit tests for the coherence-protocol traffic model."""

import pytest

from repro.config import SimConfig
from repro.network.packet import MessageClass
from repro.sim.engine import Simulation
from repro.schemes import get_scheme
from repro.traffic.coherence import CoherenceTraffic
from repro.traffic.workloads import WORKLOADS, workload_traffic


def run_coherence(txns=20, max_cycles=30000, scheme="escapevc", **params):
    cfg = SimConfig(rows=4, cols=4, fastpass_slot_cycles=64)
    traffic = CoherenceTraffic(txns_per_core=txns, seed=3, **params)
    sim = Simulation(cfg, get_scheme(scheme), traffic)
    res = sim.run_to_completion(max_cycles)
    return sim, res


class TestTransactions:
    def test_all_transactions_complete(self):
        sim, res = run_coherence(txns=15)
        assert sim.traffic.done()
        assert sim.traffic.completed == sim.traffic.total_txns

    def test_outstanding_returns_to_zero(self):
        sim, _res = run_coherence(txns=10)
        assert all(n.outstanding == 0 for n in sim.traffic.nodes)

    def test_mshr_limit_respected(self):
        sim, _ = run_coherence(txns=30, mshrs=4)
        # issued minus completed can never exceed MSHRs at any point;
        # check the invariant's residue at the end
        for node in sim.traffic.nodes:
            assert node.issued == sim.traffic.txns_per_core

    def test_request_and_response_classes_used(self):
        sim, _ = run_coherence(txns=10)
        counts = sim.net.stats.per_class_ejected
        assert counts[MessageClass.REQUEST] > 0
        assert counts[MessageClass.RESPONSE] > 0

    def test_writebacks_generated(self):
        sim, _ = run_coherence(txns=20, wb_frac=0.5)
        assert sim.net.stats.per_class_ejected[MessageClass.WRITEBACK] > 0

    def test_forwards_generated(self):
        sim, _ = run_coherence(txns=30, fwd_frac=0.5)
        assert sim.net.stats.per_class_ejected[MessageClass.FORWARD] > 0

    def test_no_forwards_when_disabled(self):
        sim, _ = run_coherence(txns=10, fwd_frac=0.0)
        assert sim.net.stats.per_class_ejected[MessageClass.FORWARD] == 0


class TestAddressDistribution:
    def test_home_never_self(self):
        cfg = SimConfig(rows=4, cols=4)
        traffic = CoherenceTraffic(txns_per_core=1, seed=1)
        sim = Simulation(cfg, get_scheme("escapevc"), traffic)
        for core in range(16):
            for _ in range(50):
                assert traffic.pick_home(core) != core

    def test_hotspot_concentrates(self):
        cfg = SimConfig(rows=4, cols=4)
        traffic = CoherenceTraffic(txns_per_core=1, seed=1, hotspot=0.9,
                                   n_hotspots=2)
        Simulation(cfg, get_scheme("escapevc"), traffic)
        homes = [traffic.pick_home(5) for _ in range(300)]
        hot = sum(1 for h in homes if h in traffic._hotspots)
        assert hot > 200

    def test_locality_prefers_neighbourhood(self):
        cfg = SimConfig(rows=4, cols=4)
        traffic = CoherenceTraffic(txns_per_core=1, seed=1, locality=0.9)
        sim = Simulation(cfg, get_scheme("escapevc"), traffic)
        mesh = sim.net.mesh
        homes = [traffic.pick_home(5) for _ in range(300)]
        near = sum(1 for h in homes if mesh.hops(5, h) <= 2)
        assert near > 200

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError):
            CoherenceTraffic(bogus=1)


class TestWorkloadPresets:
    def test_all_presets_build(self):
        for name in WORKLOADS:
            tr = workload_traffic(name, txns_per_core=5)
            assert tr.txns_per_core == 5

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            workload_traffic("SPECjbb")

    def test_intensity_ordering_radix_vs_volrend(self):
        """Radix (heavy) must be configured with clearly higher issue
        pressure than Volrend (light)."""
        assert WORKLOADS["Radix"]["think"] < WORKLOADS["Volrend"]["think"]

    @pytest.mark.parametrize("name", ["Radix", "Volrend"])
    def test_preset_completes(self, name):
        cfg = SimConfig(rows=4, cols=4)
        traffic = workload_traffic(name, txns_per_core=10, seed=1)
        sim = Simulation(cfg, get_scheme("escapevc"), traffic)
        sim.run_to_completion(60000)
        assert traffic.done()

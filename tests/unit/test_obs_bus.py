"""Unit tests for the observability event bus."""

from repro.obs import KINDS, EventBus


class TestSubscription:
    def test_emit_reaches_subscribers_in_order(self):
        bus = EventBus()
        got = []
        bus.subscribe("upgraded", lambda c, p, f: got.append(("a", c, p)))
        bus.subscribe("upgraded", lambda c, p, f: got.append(("b", c, p)))
        bus.emit("upgraded", 10, 3, lane=0)
        assert got == [("a", 10, 3), ("b", 10, 3)]

    def test_emit_without_subscribers_is_silent(self):
        bus = EventBus()
        bus.emit("upgraded", 1, 2)
        assert bus.emitted == 0

    def test_fields_payload_delivered(self):
        bus = EventBus()
        seen = {}
        bus.subscribe("ejected", lambda c, p, f: seen.update(f))
        bus.emit("ejected", 5, 9, dst=3, measured=True, latency=12)
        assert seen == {"dst": 3, "measured": True, "latency": 12}

    def test_default_pid_is_minus_one(self):
        bus = EventBus()
        pids = []
        bus.subscribe("lane_slot", lambda c, p, f: pids.append(p))
        bus.emit("lane_slot", 64, slot=1)
        assert pids == [-1]

    def test_subscribe_many(self):
        bus = EventBus()
        got = []
        bus.subscribe_many(("generated", "ejected"),
                           lambda c, p, f: got.append(c))
        bus.emit("generated", 1, 0)
        bus.emit("ejected", 2, 0)
        assert got == [1, 2]

    def test_unsubscribe(self):
        bus = EventBus()
        got = []
        fn = lambda c, p, f: got.append(c)          # noqa: E731
        bus.subscribe("dropped", fn)
        bus.unsubscribe("dropped", fn)
        bus.emit("dropped", 1, 0)
        assert got == []
        assert bus.subscriber_count("dropped") == 0
        bus.unsubscribe("dropped", fn)              # idempotent
        bus.unsubscribe("never-subscribed", fn)     # unknown kind ok

    def test_subscriber_count(self):
        bus = EventBus()
        bus.subscribe("generated", lambda c, p, f: None)
        bus.subscribe("generated", lambda c, p, f: None)
        bus.subscribe("ejected", lambda c, p, f: None)
        assert bus.subscriber_count("generated") == 2
        assert bus.subscriber_count("ejected") == 1
        assert bus.subscriber_count() == 3

    def test_emitted_counts_delivered_emissions(self):
        bus = EventBus()
        bus.subscribe("fault", lambda c, p, f: None)
        bus.emit("fault", 1, kind="link_fail")
        bus.emit("fault", 2, kind="recovered")
        bus.emit("generated", 3, 0)         # nobody listening: not counted
        assert bus.emitted == 2

    def test_custom_kinds_allowed(self):
        bus = EventBus()
        got = []
        bus.subscribe("my_scheme_event", lambda c, p, f: got.append(f))
        bus.emit("my_scheme_event", 7, probe=4)
        assert got == [{"probe": 4}]

    def test_stock_kind_list_is_complete(self):
        assert set(KINDS) == {
            "generated", "injected", "ejected", "upgraded", "bounced",
            "bounce_returned", "dropped", "regenerated", "lane_slot",
            "prime_rotation", "fault",
        }

"""Unit tests for the chaos package: seed-reproducible plans, the
transport injector's fault arithmetic, and quarantine records."""

from __future__ import annotations

import json

import pytest

from repro.chaos.plan import (CHAOS_KINDS, DUPLICATE, ChaosPlan,
                              mild_chaos)
from repro.chaos.quarantine import (field_diff, quarantine_payload,
                                    validate_quarantine,
                                    write_quarantine)
from repro.chaos.transport import ChaosInjector, _flip_bits
from repro.fabric.queue import Task
from repro.sim.parallel import Point


class TestChaosPlan:
    def test_token_round_trip(self):
        plan = mild_chaos(seed=42)
        assert ChaosPlan.from_token(plan.token()) == plan

    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            ChaosPlan(drop=1.5)
        with pytest.raises(ValueError):
            ChaosPlan(drop=-0.1)
        with pytest.raises(ValueError):
            ChaosPlan(drop=0.6, reset=0.6)       # sum > 1

    def test_zero_plan_is_falsy(self):
        assert not ChaosPlan()
        assert mild_chaos()

    def test_scaled_escalates_and_stays_valid(self):
        base = mild_chaos()
        double = base.scaled(2.0)
        assert double.drop == pytest.approx(base.drop * 2)
        assert double.total() <= 1.0
        assert base.scaled(0.0).total() == 0.0
        huge = base.scaled(100.0)                # clamps + renormalizes
        assert huge.total() == pytest.approx(1.0)
        with pytest.raises(ValueError):
            base.scaled(-1.0)

    def test_seed_distinguishes_tokens(self):
        assert mild_chaos(1).token() != mild_chaos(2).token()


class TestInjectorDeterminism:
    def test_same_seed_same_salt_same_stream(self):
        a = ChaosInjector(mild_chaos(7), salt=3)
        b = ChaosInjector(mild_chaos(7), salt=3)
        draws = [a._decide("/complete") for _ in range(200)]
        assert draws == [b._decide("/complete") for _ in range(200)]
        assert any(d is not None for d in draws)

    def test_salt_separates_sibling_workers(self):
        a = ChaosInjector(mild_chaos(7), salt=1)
        b = ChaosInjector(mild_chaos(7), salt=2)
        assert [a._decide("/complete") for _ in range(200)] != \
            [b._decide("/complete") for _ in range(200)]

    def test_duplicate_only_fires_on_complete(self):
        plan = ChaosPlan(duplicate=1.0)
        inj = ChaosInjector(plan, salt=0)
        assert all(inj._decide("/lease") is None for _ in range(50))
        assert inj._decide("/complete") == DUPLICATE

    def test_counts_start_at_zero_for_every_kind(self):
        inj = ChaosInjector(mild_chaos())
        assert set(inj.counts) == set(CHAOS_KINDS)
        assert all(v == 0 for v in inj.counts.values())

    def test_flip_bits_always_changes_the_body(self):
        import random
        rng = random.Random(0)
        for _ in range(20):
            body = b'{"a": 1, "b": [2, 3]}'
            assert _flip_bits(body, rng) != body


def _task(tid: str = "t0", redundancy: int = 2) -> Task:
    return Task(tid=tid,
                items=[(tid, Point.make("fastpass", "uniform", 0.02))],
                cfg_json={}, attempt=2, redundancy=redundancy)


def _cands(a_latency: float, b_latency: float) -> list[dict]:
    def res(lat):
        return {"scheme": "fastpass", "avg_latency": lat,
                "extra": {"p50": lat / 2}}
    return [{"worker": "wa", "results": [res(a_latency)]},
            {"worker": "wb", "results": [res(b_latency)]}]


class TestQuarantine:
    def test_field_diff_names_the_disagreeing_fields(self):
        cands = _cands(10.0, 99.0)
        diff = field_diff(cands[0]["results"], cands[1]["results"])
        fields = {d["field"] for d in diff}
        assert fields == {"avg_latency", "extra.p50"}
        assert all(d["index"] == 0 for d in diff)

    def test_field_diff_length_mismatch(self):
        diff = field_diff([{"a": 1}], [])
        assert diff == [{"index": -1, "field": "__len__",
                         "values": [1, 0]}]

    def test_payload_validates_and_diffs(self):
        payload = quarantine_payload(_task(), _cands(1.0, 2.0),
                                     "mismatch")
        validate_quarantine(payload)
        assert payload["workers"] == ["wa", "wb"]
        assert payload["diff"]
        with pytest.raises(ValueError):
            quarantine_payload(_task(), _cands(1.0, 2.0), "nonsense")

    def test_validate_rejects_missing_keys(self):
        payload = quarantine_payload(_task(), _cands(1.0, 2.0),
                                     "mismatch")
        del payload["diff"]
        with pytest.raises(ValueError, match="diff"):
            validate_quarantine(payload)

    def test_write_quarantine_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        payload = quarantine_payload(_task(), _cands(1.0, 2.0),
                                     "mismatch")
        path = write_quarantine(payload)
        assert path.parent == tmp_path / "quarantine"
        validate_quarantine(json.loads(path.read_text()))
        # A second record for the same task must not collide.
        other = write_quarantine(payload)
        assert other != path

"""Unit tests for the metrics registry."""

import math

import pytest

from repro.obs import MetricsRegistry
from repro.obs.registry import DEFAULT_BUCKETS, Histogram


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_inc(self, reg):
        c = reg.counter("c_total", "help text")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.help == "help text"

    def test_duplicate_name_rejected(self, reg):
        reg.counter("dup")
        with pytest.raises(ValueError, match="dup"):
            reg.counter("dup")
        with pytest.raises(ValueError, match="dup"):
            reg.gauge("dup", "", lambda: 0)


class TestCounterFamily:
    def test_children_keyed_by_labels(self, reg):
        fam = reg.counter_family("ups_total", "per lane", labels=("lane",))
        fam.labels(0).inc()
        fam.labels(1).inc(2)
        fam.labels(0).inc()
        assert fam.labels(0).value == 2
        assert fam.labels(1).value == 2
        assert fam.total() == 4
        assert [c.labels for c in fam.children()] == \
            [(("lane", "0"),), (("lane", "1"),)]

    def test_label_arity_checked(self, reg):
        fam = reg.counter_family("f_total", labels=("a", "b"))
        with pytest.raises(ValueError):
            fam.labels("only-one")


class TestGauge:
    def test_callback_read(self, reg):
        state = {"v": 1}
        g = reg.gauge("g", "", lambda: state["v"])
        assert g.read() == 1
        state["v"] = 42
        assert g.read() == 42

    def test_multi_gauge_stringifies_labels(self, reg):
        mg = reg.multi_gauge("occ", "", "router",
                             lambda: [(0, 3), (5, 1)])
        assert mg.read() == [("0", 3), ("5", 1)]


class TestHistogram:
    def test_observe_and_cumulative(self):
        h = Histogram("lat", buckets=(10, 20))
        for v in (5, 10, 15, 100):
            h.observe(v)
        assert h.counts == [2, 1, 1]
        assert h.cumulative() == [(10.0, 2), (20.0, 3), (math.inf, 4)]
        assert h.sum == 130
        assert h.count == 4

    def test_mean_and_quantile(self):
        h = Histogram("lat", buckets=(10, 20, 40))
        for v in (1, 2, 3, 15, 35):
            h.observe(v)
        assert h.mean() == pytest.approx(56 / 5)
        assert h.quantile(0.5) == 10.0     # 3/5 of mass in first bucket
        assert h.quantile(0.99) == 40.0
        assert Histogram("e").mean() != Histogram("e").mean()  # NaN empty

    def test_overflow_bucket(self):
        h = Histogram("lat", buckets=(10,))
        h.observe(10**9)
        assert h.counts[-1] == 1
        assert h.quantile(1.0) == math.inf

    def test_default_buckets_sorted_powerlike(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS
        assert DEFAULT_BUCKETS[0] >= 1


class TestRegistry:
    def test_lookup_and_iteration(self, reg):
        c = reg.counter("a")
        g = reg.gauge("b", "", lambda: 0)
        assert reg.get("a") is c
        assert "b" in reg and "missing" not in reg
        assert list(reg) == [c, g]
        assert reg.names() == ["a", "b"]

    def test_to_json_groups_by_metric_type(self, reg):
        reg.counter("c_total").inc(3)
        fam = reg.counter_family("f_total", labels=("lane",))
        fam.labels(2).inc()
        reg.gauge("g", "", lambda: 7)
        reg.multi_gauge("m", "", "r", lambda: [(1, 9)])
        h = reg.histogram("h", buckets=(10,))
        h.observe(4)
        snap = reg.to_json()
        assert snap["counters"]["c_total"] == 3
        assert snap["counters"]["f_total"] == {"lane=2": 1}
        assert snap["gauges"]["g"] == 7
        assert snap["gauges"]["m"] == {"1": 9}
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        assert snap["histograms"]["h"]["mean"] == 4

"""Unit tests for the gauge time-series sampler and its cycle-tail hook."""

from repro.config import SimConfig
from repro.obs import MetricsRegistry, Observability, TimeSeriesSampler
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic

from tests.conftest import make_network


class TestSampler:
    def _reg_with_gauge(self, values):
        reg = MetricsRegistry()
        it = iter(values)
        g = reg.gauge("g", "", lambda: next(it))
        return reg, g

    def test_sample_appends_cycle_value_pairs(self):
        reg, g = self._reg_with_gauge([10, 20])
        s = TimeSeriesSampler(reg)
        s.track(g)
        s.sample(100)
        s.sample(200)
        assert s.series["g"] == ([100, 200], [10, 20])

    def test_track_all_gauges(self):
        reg = MetricsRegistry()
        reg.counter("not_a_gauge")
        reg.gauge("a", "", lambda: 1)
        reg.gauge("b", "", lambda: 2)
        s = TimeSeriesSampler(reg)
        s.track_all_gauges()
        assert sorted(s.series) == ["a", "b"]

    def test_max_samples_cap_counts_drops(self):
        reg, g = self._reg_with_gauge(range(100))
        s = TimeSeriesSampler(reg, max_samples=3)
        s.track(g)
        for i in range(5):
            s.sample(i)
        assert len(s.series["g"][0]) == 3
        assert s.dropped_samples == 2

    def test_to_json_shape(self):
        reg, g = self._reg_with_gauge([7])
        s = TimeSeriesSampler(reg)
        s.track(g)
        s.sample(50)
        out = s.to_json()
        assert out["series"]["g"] == {"cycles": [50], "values": [7]}
        assert out["dropped_samples"] == 0


class TestCycleTailHook:
    def test_network_samples_on_cadence(self):
        net = make_network(SimConfig(rows=4, cols=4))
        obs = Observability(sample_every=10).attach(net)
        for _ in range(35):
            net.step()
        cycles = obs.sampler.series["noc_packets_in_flight"][0]
        assert cycles == [0, 10, 20, 30]

    def test_no_sampling_when_cadence_zero(self):
        net = make_network(SimConfig(rows=4, cols=4))
        obs = Observability().attach(net)
        for _ in range(20):
            net.step()
        assert all(c == [] for c, _v in obs.sampler.series.values())

    def test_series_tracks_real_occupancy(self):
        cfg = SimConfig(rows=4, cols=4, warmup_cycles=100,
                        measure_cycles=300, fastpass_slot_cycles=64)
        sim = Simulation(cfg, get_scheme("fastpass", n_vcs=2),
                         SyntheticTraffic("uniform", 0.10, seed=2))
        obs = Observability(sample_every=25).attach(sim.net)
        sim.run()
        cycles, values = obs.sampler.series["noc_total_backlog"]
        assert len(cycles) > 10
        assert max(values) > 0          # traffic actually showed up
        assert values[-1] == sim.net.total_backlog()

    def test_sampling_respects_parked_routers(self):
        """A sample is a pure read: parked routers stay parked (their
        wake bound is untouched) and results stay identical — the full
        differential proof lives in test_obs_neutrality.py."""
        net = make_network(SimConfig(rows=4, cols=4))
        obs = Observability(sample_every=1).attach(net)
        for _ in range(10):
            net.step()
        parked_before = [r._parked_sw for r in net.routers]
        obs.sampler.sample(net.cycle)
        assert [r._parked_sw for r in net.routers] == parked_before

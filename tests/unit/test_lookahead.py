"""Unit tests for the lookahead-signal encoding (Sec. III-C5)."""

import pytest

from repro.core import lanes
from repro.core.lookahead import (
    Lookahead,
    dst_bits,
    port_bits,
    signal_width,
    signals_along,
    verify_signals,
)
from repro.network.topology import Mesh


class TestWidths:
    def test_paper_8x8_is_ten_bits(self):
        """'Assuming an 8x8 mesh, this information requires 10 bits.'"""
        assert signal_width(Mesh(8, 8)) == 10

    def test_dst_bits(self):
        assert dst_bits(Mesh(8, 8)) == 6
        assert dst_bits(Mesh(4, 4)) == 4
        assert dst_bits(Mesh(16, 16)) == 8

    def test_port_bits(self):
        assert port_bits() == 4


class TestEncoding:
    def test_roundtrip(self):
        mesh = Mesh(8, 8)
        for dst in (0, 17, 63):
            for port in range(5):
                sig = Lookahead(dst, port)
                assert Lookahead.decode(sig.encode(mesh), mesh) == sig

    def test_encoded_fits_width(self):
        mesh = Mesh(8, 8)
        sig = Lookahead(dst=63, out_port=4)
        assert sig.encode(mesh) < (1 << signal_width(mesh))


class TestSignalChain:
    @pytest.mark.parametrize("prime,dst", [(0, 63), (9, 14), (56, 7),
                                           (27, 27 + 8)])
    def test_forward_lane_signals_verify(self, prime, dst):
        mesh = Mesh(8, 8)
        path = lanes.forward_path(mesh, prime, dst)
        verify_signals(mesh, path, dst)

    def test_return_path_signals_verify(self):
        mesh = Mesh(8, 8)
        path = lanes.return_path(mesh, 63, 0)
        verify_signals(mesh, path, 0)

    def test_one_signal_per_hop(self):
        mesh = Mesh(4, 4)
        path = lanes.forward_path(mesh, 0, 15)
        assert len(signals_along(mesh, path, 15)) == mesh.hops(0, 15)

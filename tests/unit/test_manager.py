"""Unit tests for the FastPass manager: prime scanning, upgrading, the
scan order guarantees of Qn 2 / Qn 6, and the green path."""

import pytest

from repro.network.packet import MessageClass, Packet
from repro.schemes import get_scheme
from tests.conftest import make_network, park


@pytest.fixture
def fp_net(small_cfg):
    return make_network(small_cfg, scheme=get_scheme("fastpass", n_vcs=2))


def put_in_slot(net, rid, port, vc, pkt):
    r = net.routers[rid]
    slot = r.slots[port][vc]
    park(net, r, slot, pkt)
    return slot


def put_in_inj(net, rid, pkt):
    """Queue ``pkt`` at an NI with the engine bookkeeping a real source
    would have done."""
    ni = net.nis[rid]
    ni.inj[pkt.mclass].append(pkt)
    ni.inj_count += 1
    net.inj_total += 1
    net.wake_inject(rid)


class TestEligibility:
    def test_dst_must_be_in_target_partition(self, fp_net):
        mgr = fp_net.fastpass
        # cycle 0: prime of partition 0 is router 0, target partition 0
        pkt_wrong = Packet(0, 3, MessageClass.REQUEST, 0)    # column 3
        assert not mgr._eligible(pkt_wrong, 0, 0, 0, 64)
        pkt_right = Packet(0, 12, MessageClass.REQUEST, 0)   # column 0
        assert mgr._eligible(pkt_right, 0, 0, 0, 64)

    def test_own_router_not_eligible(self, fp_net):
        mgr = fp_net.fastpass
        pkt = Packet(0, 0, MessageClass.REQUEST, 0)
        assert not mgr._eligible(pkt, 0, 0, 0, 64)

    def test_round_trip_must_fit_slot(self, fp_net):
        mgr = fp_net.fastpass
        pkt = Packet(0, 12, MessageClass.RESPONSE, 0)   # 3 hops, 5 flits
        rt = mgr.engine.round_trip_cycles(0, 12, 5)
        assert mgr._eligible(pkt, 0, 0, 0, rt)
        assert not mgr._eligible(pkt, 0, 0, 1, rt)


class TestUpgrading:
    def test_upgrades_eligible_injection_packet(self, fp_net):
        # prime 0, slot 0 targets partition 0: router 12 is in column 0
        pkt = Packet(0, 12, MessageClass.REQUEST, 0)
        put_in_inj(fp_net, 0, pkt)
        fp_net.step()
        assert pkt.was_fastpass
        assert fp_net.fastpass.upgrades == 1
        assert fp_net.fastpass.upgrades_from_injection == 1

    def test_request_queue_scanned_first(self, fp_net):
        """Qn 2: a (rejected) packet at the head of the request injection
        queue is always selected before anything else."""
        ni = fp_net.nis[0]
        rejected = Packet(0, 12, MessageClass.RESPONSE, 0)
        ni.accept_bounced(rejected, now=0)
        # competing eligible packet in an input VC
        other = Packet(5, 8, MessageClass.REQUEST, 0)   # column 0 too
        put_in_slot(fp_net, 0, 2, 0, other)
        fp_net.fastpass.step(0)
        assert rejected.was_fastpass
        assert not other.was_fastpass

    def test_upgrade_from_input_vc_frees_credit_early(self, fp_net):
        pkt = Packet(5, 12, MessageClass.REQUEST, 0)    # column 0
        slot = put_in_slot(fp_net, 0, 2, 0, pkt)
        fp_net.fastpass.step(0)
        assert pkt.was_fastpass
        assert slot.pkt is None
        assert slot.free_at == pkt.size    # credit at departure, not tail+1

    def test_green_path_moves_rejected_into_freed_slot(self, fp_net):
        """Qn 2 scenario 2: when a new FastPass-Packet departs an input VC
        and a rejected packet waits in the request injection queue, the
        rejected packet takes the freed slot (and no credit goes
        upstream)."""
        ni = fp_net.nis[0]
        rejected = Packet(0, 3, MessageClass.RESPONSE, 0)  # column 3: not
        ni.accept_bounced(rejected, now=0)                 # eligible now
        pkt = Packet(5, 12, MessageClass.REQUEST, 0)       # eligible
        slot = put_in_slot(fp_net, 0, 2, 0, pkt)
        fp_net.fastpass.step(0)
        assert pkt.was_fastpass
        assert slot.pkt is rejected
        assert rejected not in ni.inj[MessageClass.REQUEST]
        assert slot.free_at == 1 << 60      # upstream credit withheld

    def test_lane_serialization_between_launches(self, fp_net):
        a = Packet(0, 12, MessageClass.RESPONSE, 0)
        b = Packet(0, 8, MessageClass.REQUEST, 0)
        put_in_inj(fp_net, 0, a)
        put_in_inj(fp_net, 0, b)
        fp_net.fastpass.step(0)
        assert fp_net.fastpass.upgrades == 1
        # next launch only after the first tail clears the lane head
        assert fp_net.fastpass.lane_free_at[0] == \
            (b.size if b.was_fastpass else a.size)

    def test_all_primes_active_simultaneously(self, fp_net):
        # one eligible packet at each diagonal prime (slot 0: own column)
        pkts = []
        for c in range(4):
            prime = fp_net.fastpass.schedule.prime_of_partition(c, 0)
            dst_row = 3 if prime // 4 != 3 else 0
            dst = dst_row * 4 + c
            pkt = Packet(prime, dst, MessageClass.REQUEST, 0)
            put_in_inj(fp_net, prime, pkt)
            pkts.append(pkt)
        fp_net.fastpass.step(0)
        assert all(p.was_fastpass for p in pkts)
        assert fp_net.fastpass.upgrades == 4


class TestSlotRotation:
    def test_target_changes_after_slot(self, fp_net):
        """A packet pinned at router 0 and destined for column 1 is not
        upgraded in slot 0 (lane covers column 0) but is in slot 1."""
        K = fp_net.cfg.fastpass_slot()
        pkt = Packet(4, 13, MessageClass.REQUEST, 0)   # column 1
        put_in_slot(fp_net, 0, 1, 0, pkt)              # north input VC
        # pin it: park blockers in every VC the packet could move into
        blocker = Packet(0, 15, MessageClass.REQUEST, 0)
        for out in (1, 2):                             # N and E of router 0
            nbr = fp_net.routers[0].neighbors[out]
            link = fp_net.routers[0].links_out[out]
            for s in nbr.slots[link.dst_port]:
                s.pkt, s.ready_at = blocker, 1 << 60
        for _ in range(K):
            fp_net.fastpass.step(fp_net.cycle)
            fp_net.cycle += 1
        assert not pkt.was_fastpass        # slot 0 covers column 0 only
        for _ in range(K):
            fp_net.fastpass.step(fp_net.cycle)
            fp_net.cycle += 1
            if pkt.was_fastpass:
                break
        assert pkt.was_fastpass            # slot 1 covers column 1

"""Unit tests for the experiments' shared helpers."""

import json

from repro.experiments.cli import main
from repro.experiments.common import (
    FIG7_SCHEMES,
    FIG8_SCHEMES,
    FIG10_SCHEMES,
    app_config,
    app_txns,
    fmt_table,
    fnum,
    synthetic_config,
)


class TestConfigs:
    def test_quick_is_smaller(self):
        q, f = synthetic_config(True), synthetic_config(False)
        assert q.measure_cycles < f.measure_cycles
        assert q.warmup_cycles < f.warmup_cycles

    def test_mesh_dims_passed_through(self):
        cfg = synthetic_config(True, rows=16, cols=16)
        assert cfg.rows == cfg.cols == 16

    def test_app_config_sizes(self):
        assert app_config(True).rows == 4
        assert app_config(False).rows == 8

    def test_app_config_scales_drain_period(self):
        assert app_config(True).drain_period_cycles < 64000

    def test_app_txns(self):
        assert app_txns(True) < app_txns(False)


class TestSchemeSets:
    def test_fig7_has_eight_schemes(self):
        assert len(FIG7_SCHEMES) == 8
        assert FIG7_SCHEMES[-1][0] == "FastPass"

    def test_fig8_has_five_schemes(self):
        assert len(FIG8_SCHEMES) == 5

    def test_fig10_includes_both_fastpass_configs(self):
        labels = [s[0] for s in FIG10_SCHEMES]
        assert "FastPass(VN=0, VC=2)" in labels
        assert "FastPass(VN=0, VC=4)" in labels

    def test_fig7_fastpass_uses_four_vcs(self):
        kwargs = dict((name, kw) for _l, name, kw in FIG7_SCHEMES)
        assert kwargs["fastpass"] == {"n_vcs": 4}


class TestFormatting:
    def test_fnum_nan(self):
        assert fnum(float("nan")) == "-"

    def test_fnum_precision(self):
        assert fnum(3.14159, 2) == "3.14"

    def test_fmt_table_alignment(self):
        text = fmt_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert all(len(l) == len(lines[0]) for l in lines)


class TestJsonExport:
    def test_cli_json_dump(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        assert main(["table1", "--json", str(out)]) == 0
        data = json.loads(out.read_text())
        assert "table1" in data
        assert len(data["table1"]["rows"]) == 6

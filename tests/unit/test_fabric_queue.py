"""Unit tests for the leased work queue — the fabric's protocol core.

Everything here drives :class:`~repro.fabric.queue.LeaseQueue` with an
explicit clock, pinning the invariants the distributed layer relies on:
at-least-once execution via lease expiry, bounded retries with backoff,
and idempotent (first-completion-wins) settlement.
"""

from __future__ import annotations

import pytest

from repro.campaign.executor import RetryPolicy
from repro.fabric import queue as q
from repro.sim.parallel import Point


def task(tid: str, n_points: int = 1) -> q.Task:
    items = [(f"{tid}k{i}", Point.make("fastpass", "uniform", 0.01 * (i + 1)))
             for i in range(n_points)]
    return q.Task(tid=tid, items=items, cfg_json={})


def make_queue(max_attempts: int = 3, backoff_s: float = 0.0,
               ttl: float = 10.0) -> q.LeaseQueue:
    return q.LeaseQueue(RetryPolicy(max_attempts=max_attempts,
                                    backoff_s=backoff_s), lease_ttl_s=ttl)


class TestLeasing:
    def test_lease_grants_up_to_max_tasks(self):
        lq = make_queue()
        for i in range(3):
            lq.add(task(f"t{i}"))
        leases = lq.lease("w1", now=0.0, max_tasks=2)
        assert [l.task.tid for l in leases] == ["t0", "t1"]
        assert all(l.worker == "w1" for l in leases)
        assert all(l.deadline == 10.0 for l in leases)
        assert lq.counts() == {"pending": 1, "leased": 2, "done": 0,
                               "failed": 0}

    def test_empty_queue_grants_nothing(self):
        assert make_queue().lease("w1", now=0.0) == []

    def test_lease_increments_attempt(self):
        lq = make_queue()
        lq.add(task("t0"))
        (lease,) = lq.lease("w1", now=0.0)
        assert lease.task.attempt == 1

    def test_live_keys_tracks_leased_points(self):
        lq = make_queue()
        lq.add(task("t0", n_points=2))
        lq.add(task("t1"))
        lq.lease("w1", now=0.0)
        assert lq.live_keys() == {"t0k0", "t0k1"}

    def test_duplicate_tid_rejected(self):
        lq = make_queue()
        lq.add(task("t0"))
        with pytest.raises(ValueError):
            lq.add(task("t0"))


class TestCompletion:
    def test_complete_settles_task(self):
        lq = make_queue()
        lq.add(task("t0"))
        (lease,) = lq.lease("w1", now=0.0)
        disposition, done = lq.complete(lease.lease_id, now=1.0)
        assert disposition == q.OK
        assert done.tid == "t0"
        assert lq.drained
        assert lq.counters.completed == 1

    def test_duplicate_completion_is_idempotent(self):
        lq = make_queue()
        lq.add(task("t0"))
        (lease,) = lq.lease("w1", now=0.0)
        lq.complete(lease.lease_id, now=1.0)
        disposition, done = lq.complete(lease.lease_id, now=2.0)
        assert disposition == q.DUPLICATE
        assert done is None
        assert lq.counters.duplicates == 1
        assert lq.counts()["done"] == 1      # still exactly one settlement

    def test_unknown_lease_is_rejected(self):
        lq = make_queue()
        assert lq.complete("L999", now=0.0) == (q.UNKNOWN, None)


class TestExpiry:
    def test_expired_lease_requeues_with_backoff(self):
        lq = make_queue(backoff_s=5.0, ttl=10.0)
        lq.add(task("t0"))
        lq.lease("w1", now=0.0)
        settled = lq.expire(now=10.0)
        assert [(d, t.tid) for d, t in settled] == [(q.REQUEUED, "t0")]
        assert lq.counters.expiries == 1
        # Still backing off: not leasable until eligible.
        assert lq.lease("w2", now=11.0) == []
        (lease,) = lq.lease("w2", now=16.0)
        assert lease.task.attempt == 2
        assert "expired" in lq.error_of("t0")

    def test_expiry_exhausts_retry_budget(self):
        lq = make_queue(max_attempts=2, ttl=1.0)
        lq.add(task("t0"))
        lq.lease("w1", now=0.0)
        lq.expire(now=1.0)                       # attempt 1 gone
        lq.lease("w1", now=2.0)
        settled = lq.expire(now=3.0)             # attempt 2 gone
        assert [(d, t.tid) for d, t in settled] == [(q.FAILED, "t0")]
        assert lq.counts()["failed"] == 1
        assert lq.drained

    def test_lease_sweeps_expired_leases_first(self):
        """A single surviving worker reclaims a crashed worker's task."""
        lq = make_queue(ttl=1.0)
        lq.add(task("t0"))
        lq.lease("dead-worker", now=0.0)
        (lease,) = lq.lease("survivor", now=5.0)
        assert lease.worker == "survivor"
        assert lease.task.tid == "t0"
        assert lease.task.attempt == 2

    def test_expire_worker_short_circuits_ttl(self):
        lq = make_queue(ttl=1000.0)
        lq.add(task("t0"))
        lq.lease("w1", now=0.0)
        settled = lq.expire_worker("w1", now=0.5)
        assert [(d, t.tid) for d, t in settled] == [(q.REQUEUED, "t0")]

    def test_late_completion_wins_before_reexecution(self):
        """Slow worker finishes after expiry but before the retry does:
        its (deterministic) result is accepted, the retry cancelled."""
        lq = make_queue(ttl=1.0)
        lq.add(task("t0"))
        (old,) = lq.lease("slow", now=0.0)
        lq.expire(now=1.0)                       # requeued
        disposition, done = lq.complete(old.lease_id, now=1.5)
        assert disposition == q.LATE
        assert done.tid == "t0"
        assert lq.counters.late == 1
        # The requeued copy must never be granted again.
        assert lq.lease("w2", now=2.0) == []
        assert lq.drained

    def test_late_completion_after_release_beats_new_lease(self):
        lq = make_queue(ttl=1.0)
        lq.add(task("t0"))
        (old,) = lq.lease("slow", now=0.0)
        (new,) = lq.lease("fast", now=2.0)       # expiry swept, re-leased
        assert new.lease_id != old.lease_id
        assert lq.complete(old.lease_id, now=2.5)[0] == q.LATE
        # The re-executing worker's eventual report is a duplicate.
        assert lq.complete(new.lease_id, now=3.0)[0] == q.DUPLICATE
        assert lq.counts()["done"] == 1
        # And its expiry must not resurrect the task.
        assert lq.expire(now=100.0) == []
        assert lq.drained


class TestReportedFailure:
    def test_failure_requeues_until_budget_spent(self):
        lq = make_queue(max_attempts=2)
        lq.add(task("t0"))
        (l1,) = lq.lease("w1", now=0.0)
        assert lq.fail(l1.lease_id, "boom", now=1.0)[0] == q.REQUEUED
        (l2,) = lq.lease("w1", now=2.0)
        disposition, dead = lq.fail(l2.lease_id, "boom again", now=3.0)
        assert disposition == q.FAILED
        assert lq.error_of("t0") == "boom again"
        assert lq.counters.failures == 1

    def test_failure_after_settlement_is_duplicate(self):
        lq = make_queue(ttl=1.0)
        lq.add(task("t0"))
        (old,) = lq.lease("slow", now=0.0)
        (new,) = lq.lease("fast", now=2.0)
        lq.complete(new.lease_id, now=2.5)
        assert lq.fail(old.lease_id, "late crash", now=3.0)[0] \
            == q.DUPLICATE


class TestCounts:
    def test_point_counts_weigh_replica_batches(self):
        lq = make_queue()
        lq.add(task("t0", n_points=4))
        lq.add(task("t1"))
        lq.lease("w1", now=0.0)
        assert lq.point_counts() == {"pending": 1, "leased": 4,
                                     "done": 0, "failed": 0}

    def test_next_eligible_reports_backoff_horizon(self):
        lq = make_queue(backoff_s=4.0, ttl=1.0)
        lq.add(task("t0"))
        lq.lease("w1", now=0.0)
        lq.expire(now=1.0)
        assert lq.next_eligible() == pytest.approx(5.0)


def rtask(tid: str, redundancy: int = 2, n_points: int = 1) -> q.Task:
    t = task(tid, n_points=n_points)
    t.redundancy = redundancy
    return t


class TestRedundancy:
    def test_redundant_task_leases_to_two_workers(self):
        lq = make_queue()
        lq.add(rtask("t0"))
        (l1,) = lq.lease("w1", now=0.0)
        (l2,) = lq.lease("w2", now=0.0)
        assert {l1.worker, l2.worker} == {"w1", "w2"}
        assert l1.task.tid == l2.task.tid == "t0"
        assert lq.lease("w3", now=0.0) == []     # both slots granted

    def test_sibling_withheld_from_same_worker(self):
        lq = make_queue()
        lq.add(rtask("t0"))
        lq.lease("w1", now=0.0)
        assert lq.lease("w1", now=0.0, allow_self=False) == []
        (sibling,) = lq.lease("w2", now=0.0, allow_self=False)
        assert sibling.worker == "w2"

    def test_allow_self_keeps_single_worker_fleet_live(self):
        lq = make_queue()
        lq.add(rtask("t0"))
        lq.lease("w1", now=0.0)
        (sibling,) = lq.lease("w1", now=0.0, allow_self=True)
        assert sibling.worker == "w1"

    def test_partial_then_verify_then_settle(self):
        lq = make_queue()
        lq.add(rtask("t0"))
        (l1,) = lq.lease("w1", now=0.0)
        (l2,) = lq.lease("w2", now=0.0)
        assert lq.complete(l1.lease_id, now=1.0)[0] == q.PARTIAL
        assert not lq.drained
        disposition, t = lq.complete(l2.lease_id, now=2.0)
        assert disposition == q.VERIFY
        assert not lq.drained                    # awaiting cross-check
        lq.settle(t.tid)
        assert lq.drained
        assert lq.counters.completed == 1        # one settlement, ever
        assert lq.counters.partials == 1

    def test_reopen_demands_tiebreak_then_settles(self):
        lq = make_queue(max_attempts=3)
        lq.add(rtask("t0"))
        (l1,) = lq.lease("w1", now=0.0)
        (l2,) = lq.lease("w2", now=0.0)
        lq.complete(l1.lease_id, now=1.0)
        assert lq.complete(l2.lease_id, now=1.0)[0] == q.VERIFY
        disposition, t = lq.reopen("t0", now=2.0)
        assert disposition == q.REQUEUED
        assert lq.counters.reopens == 1
        (l3,) = lq.lease("w3", now=3.0)          # tie-break replay
        assert lq.complete(l3.lease_id, now=4.0)[0] == q.VERIFY
        lq.settle("t0")
        assert lq.drained

    def test_reopen_budget_is_widened_by_redundancy(self):
        # budget = max_attempts + redundancy - 1 = 2 + 2 - 1 = 3 grants
        lq = make_queue(max_attempts=2)
        lq.add(rtask("t0"))
        (l1,) = lq.lease("w1", now=0.0)
        (l2,) = lq.lease("w2", now=0.0)
        lq.complete(l1.lease_id, now=1.0)
        lq.complete(l2.lease_id, now=1.0)
        assert lq.reopen("t0", now=2.0)[0] == q.REQUEUED   # grant 3 ok
        (l3,) = lq.lease("w3", now=3.0)
        lq.complete(l3.lease_id, now=4.0)
        disposition, t = lq.reopen("t0", now=5.0)          # budget spent
        assert disposition == q.FAILED
        assert lq.counts()["failed"] == 1
        assert lq.drained

    def test_retried_completion_of_same_lease_is_duplicate(self):
        """A worker that lost the response and retried /complete must
        not have its second POST counted toward verification."""
        lq = make_queue()
        lq.add(rtask("t0"))
        (l1,) = lq.lease("w1", now=0.0)
        lq.lease("w2", now=0.0)
        assert lq.complete(l1.lease_id, now=1.0)[0] == q.PARTIAL
        assert lq.complete(l1.lease_id, now=1.1)[0] == q.DUPLICATE
        assert lq.counters.partials == 1         # not tripped to VERIFY

    def test_expired_sibling_requeues_without_losing_progress(self):
        lq = make_queue(ttl=1.0, backoff_s=0.0)
        lq.add(rtask("t0"))
        (l1,) = lq.lease("w1", now=0.0)
        lq.lease("w2", now=0.0)
        lq.complete(l1.lease_id, now=0.5)        # PARTIAL
        lq.expire(now=2.0)                       # sibling lease dies
        (l3,) = lq.lease("w3", now=3.0)          # re-granted
        assert lq.complete(l3.lease_id, now=4.0)[0] == q.VERIFY


class TestAdoption:
    def test_adopted_lease_completes_under_original_id(self):
        lq = make_queue(ttl=10.0)
        lq.adopt(task("t0"), "L7", "w1", now=0.0)
        assert lq.counts() == {"pending": 0, "leased": 1, "done": 0,
                               "failed": 0}
        assert lq.complete("L7", now=1.0)[0] == q.OK
        assert lq.drained

    def test_adoption_bumps_the_id_counter(self):
        lq = make_queue()
        lq.adopt(task("t0"), "L7", "w1", now=0.0)
        lq.add(task("t1"))
        (lease,) = lq.lease("w2", now=0.0)
        assert lease.lease_id == "L8"            # never re-issue L7

    def test_adopted_lease_expires_like_any_other(self):
        lq = make_queue(ttl=1.0, backoff_s=0.0)
        adopted = task("t0")
        adopted.attempt = 1                      # journaled attempt count
        lq.adopt(adopted, "L3", "w1", now=0.0)
        settled = lq.expire(now=2.0)
        assert [(d, t.tid) for d, t in settled] == [(q.REQUEUED, "t0")]
        (lease,) = lq.lease("w2", now=3.0)
        assert lease.task.attempt == 2           # journal count honoured

    def test_adopting_redundant_task_backs_remaining_slot(self):
        lq = make_queue()
        lq.adopt(rtask("t0"), "L5", "w1", now=0.0)
        (sibling,) = lq.lease("w2", now=0.0)     # second slot grantable
        assert sibling.task.tid == "t0"
        assert lq.complete("L5", now=1.0)[0] == q.PARTIAL
        assert lq.complete(sibling.lease_id, now=2.0)[0] == q.VERIFY

    def test_duplicate_lease_id_rejected(self):
        lq = make_queue()
        lq.adopt(task("t0"), "L1", "w1", now=0.0)
        with pytest.raises(ValueError):
            lq.adopt(task("t1"), "L1", "w1", now=0.0)

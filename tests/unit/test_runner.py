"""Unit tests for the engine and the sweep/saturation runners.

Uses the shared ``small_cfg`` fixture from tests/conftest.py.
"""

from repro.config import RunResult
from repro.schemes import get_scheme
from repro.sim.engine import Simulation, build_network
from repro.sim.runner import (
    is_saturated,
    run_point,
    saturation_throughput,
    sweep_latency,
)
from repro.traffic.synthetic import SyntheticTraffic


class TestBuildNetwork:
    def test_scheme_config_applied(self, small_cfg):
        net = build_network(small_cfg, get_scheme("fastpass", n_vcs=4))
        assert net.cfg.n_vns == 1
        assert net.cfg.n_vcs == 4

    def test_router_class_applied(self, small_cfg):
        from repro.schemes.minbd import MinBDRouter
        net = build_network(small_cfg, get_scheme("minbd"))
        assert isinstance(net.routers[0], MinBDRouter)


class TestSimulation:
    def test_run_produces_result(self, small_cfg):
        sim = Simulation(small_cfg, get_scheme("escapevc"),
                         SyntheticTraffic("uniform", 0.05, seed=1))
        res = sim.run()
        assert isinstance(res, RunResult)
        assert res.ejected > 0
        assert res.throughput > 0
        assert res.cycles >= small_cfg.warmup_cycles + small_cfg.measure_cycles

    def test_drain_stops_when_complete(self, small_cfg):
        sim = Simulation(small_cfg, get_scheme("escapevc"),
                         SyntheticTraffic("uniform", 0.02, seed=1))
        res = sim.run()
        assert res.extra["undelivered"] == 0
        assert res.cycles < small_cfg.warmup_cycles + small_cfg.measure_cycles + \
            small_cfg.drain_cycles

    def test_deterministic(self, small_cfg):
        r1 = run_point("escapevc", "uniform", 0.05, small_cfg)
        r2 = run_point("escapevc", "uniform", 0.05, small_cfg)
        assert r1.avg_latency == r2.avg_latency
        assert r1.ejected == r2.ejected


class TestRunPoint:
    def test_accepts_scheme_name(self, small_cfg):
        res = run_point("fastpass", "transpose", 0.05, small_cfg)
        assert "FastPass" in res.scheme
        assert res.extra["rate"] == 0.05
        assert res.extra["pattern"] == "transpose"

    def test_accepts_scheme_instance(self, small_cfg):
        res = run_point(get_scheme("swap"), "uniform", 0.05, small_cfg)
        assert res.ejected > 0


class TestSweep:
    def test_sweep_returns_point_per_rate(self, small_cfg):
        results = sweep_latency("escapevc", "uniform", [0.02, 0.05], small_cfg)
        assert len(results) == 2
        assert results[0].extra["rate"] == 0.02

    def test_sweep_stops_after_collapse(self, small_cfg):
        # a short drain window keeps the post-saturation backlog visible
        tight = small_cfg.with_(drain_cycles=50)
        results = sweep_latency("baseline", "transpose",
                                [0.02, 0.6, 0.65, 0.7], tight)
        assert len(results) < 4

    def test_latency_monotone_at_extremes(self, small_cfg):
        lo = run_point("escapevc", "uniform", 0.02, small_cfg)
        hi = run_point("escapevc", "uniform", 0.30, small_cfg)
        assert hi.avg_latency > lo.avg_latency


class TestSaturation:
    def test_is_saturated_criteria(self):
        res = RunResult(scheme="x")
        res.extra = {"measured_generated": 100, "undelivered": 0}
        res.avg_latency = 20.0
        assert not is_saturated(res, zero_load=10.0)
        res.avg_latency = 40.0
        assert is_saturated(res, zero_load=10.0)

    def test_undelivered_means_saturated(self):
        res = RunResult(scheme="x")
        res.extra = {"measured_generated": 100, "undelivered": 50}
        res.avg_latency = 5.0
        assert is_saturated(res, zero_load=10.0)

    def test_deadlock_means_saturated(self):
        res = RunResult(scheme="x")
        res.extra = {"measured_generated": 100, "undelivered": 0}
        res.avg_latency = 5.0
        res.deadlocked = True
        assert is_saturated(res, zero_load=10.0)

    def test_search_brackets_reasonably(self, small_cfg):
        sat = saturation_throughput("escapevc", "uniform", small_cfg,
                                    lo=0.02, hi=0.6, iters=3)
        assert 0.02 <= sat < 0.6


def _fake_curve(sat_rate, zero_lat=10.0, zero_nan=False, probes=None):
    """A deterministic latency curve: flat below ``sat_rate``, cliff at
    and above it.  Records every probed rate in ``probes``."""

    def rp(rate):
        if probes is not None:
            probes.append(rate)
        res = RunResult(scheme="fake")
        if rate >= sat_rate:
            res.avg_latency = 100.0 * zero_lat
            res.extra = {"measured_generated": 100, "undelivered": 60}
        else:
            res.avg_latency = float("nan") if zero_nan and rate <= 0.011 \
                else zero_lat * (1.0 + rate)
            res.extra = {"measured_generated": 100, "undelivered": 0}
        res.extra["rate"] = rate
        return res

    return rp


class TestSweepEarlyStop:
    """sweep_latency must cut off at the first badly saturated point
    instead of simulating the rest of the (equally saturated) grid."""

    def _patch(self, monkeypatch, sat_rate, probes):
        import repro.sim.runner as runner
        fake = _fake_curve(sat_rate, probes=probes)
        monkeypatch.setattr(runner, "run_point",
                            lambda scheme, pattern, rate, cfg: fake(rate))

    def test_stops_at_first_saturated_point(self, monkeypatch, small_cfg):
        probes = []
        self._patch(monkeypatch, sat_rate=0.10, probes=probes)
        out = sweep_latency("escapevc", "uniform",
                            [0.02, 0.06, 0.10, 0.14, 0.18], small_cfg)
        assert [r.extra["rate"] for r in out] == [0.02, 0.06, 0.10]
        assert probes == [0.02, 0.06, 0.10]   # 0.14/0.18 never simulated

    def test_deadlock_also_stops(self, monkeypatch, small_cfg):
        import repro.sim.runner as runner

        def rp(scheme, pattern, rate, cfg):
            res = RunResult(scheme="fake", deadlocked=rate >= 0.05)
            res.extra = {"measured_generated": 100, "undelivered": 0,
                         "rate": rate}
            return res

        monkeypatch.setattr(runner, "run_point", rp)
        out = sweep_latency("escapevc", "uniform",
                            [0.02, 0.05, 0.08], small_cfg)
        assert len(out) == 2 and out[-1].deadlocked

    def test_clean_curve_runs_every_rate(self, monkeypatch, small_cfg):
        probes = []
        self._patch(monkeypatch, sat_rate=9.9, probes=probes)
        out = sweep_latency("escapevc", "uniform",
                            [0.02, 0.06, 0.10], small_cfg)
        assert len(out) == 3 and probes == [0.02, 0.06, 0.10]


class TestSaturationBisection:
    """saturation_throughput against a synthetic curve with a known
    cliff: the search must bracket the cliff monotonically and converge
    to it from below."""

    def test_converges_below_the_cliff(self, small_cfg):
        sat = saturation_throughput(
            "escapevc", "uniform", small_cfg, lo=0.01, hi=0.7, iters=7,
            run_point_fn=_fake_curve(0.30))
        assert sat < 0.30                       # never reports past it
        assert sat > 0.30 - (0.7 - 0.01) / 2 ** 5   # and got close

    def test_bracket_is_monotone(self, small_cfg):
        probes = []
        saturation_throughput(
            "escapevc", "uniform", small_cfg, lo=0.01, hi=0.7, iters=6,
            run_point_fn=_fake_curve(0.30, probes=probes))
        # After the zero-load and hi probes, every probe must stay inside
        # the current bracket: the good side only rises, the saturated
        # side only falls.
        good, hi = 0.01, 0.7
        for rate in probes[2:]:
            assert good < rate < hi
            if rate >= 0.30:
                hi = rate
            else:
                good = rate

    def test_unsaturated_hi_returns_hi(self, small_cfg):
        sat = saturation_throughput(
            "escapevc", "uniform", small_cfg, lo=0.01, hi=0.4, iters=5,
            run_point_fn=_fake_curve(0.90))
        assert sat == 0.4

    def test_nan_zero_load_widens_reference(self, small_cfg):
        """A zero-load probe that delivered nothing (NaN latency) must
        not poison the criterion: the reference widens to 50.0 and the
        search still finds the cliff."""
        sat = saturation_throughput(
            "escapevc", "uniform", small_cfg, lo=0.01, hi=0.7, iters=7,
            run_point_fn=_fake_curve(0.30, zero_nan=True))
        assert 0.20 < sat < 0.30

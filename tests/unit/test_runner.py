"""Unit tests for the engine and the sweep/saturation runners.

Uses the shared ``small_cfg`` fixture from tests/conftest.py.
"""

from repro.config import RunResult
from repro.schemes import get_scheme
from repro.sim.engine import Simulation, build_network
from repro.sim.runner import (
    is_saturated,
    run_point,
    saturation_throughput,
    sweep_latency,
)
from repro.traffic.synthetic import SyntheticTraffic


class TestBuildNetwork:
    def test_scheme_config_applied(self, small_cfg):
        net = build_network(small_cfg, get_scheme("fastpass", n_vcs=4))
        assert net.cfg.n_vns == 1
        assert net.cfg.n_vcs == 4

    def test_router_class_applied(self, small_cfg):
        from repro.schemes.minbd import MinBDRouter
        net = build_network(small_cfg, get_scheme("minbd"))
        assert isinstance(net.routers[0], MinBDRouter)


class TestSimulation:
    def test_run_produces_result(self, small_cfg):
        sim = Simulation(small_cfg, get_scheme("escapevc"),
                         SyntheticTraffic("uniform", 0.05, seed=1))
        res = sim.run()
        assert isinstance(res, RunResult)
        assert res.ejected > 0
        assert res.throughput > 0
        assert res.cycles >= small_cfg.warmup_cycles + small_cfg.measure_cycles

    def test_drain_stops_when_complete(self, small_cfg):
        sim = Simulation(small_cfg, get_scheme("escapevc"),
                         SyntheticTraffic("uniform", 0.02, seed=1))
        res = sim.run()
        assert res.extra["undelivered"] == 0
        assert res.cycles < small_cfg.warmup_cycles + small_cfg.measure_cycles + \
            small_cfg.drain_cycles

    def test_deterministic(self, small_cfg):
        r1 = run_point("escapevc", "uniform", 0.05, small_cfg)
        r2 = run_point("escapevc", "uniform", 0.05, small_cfg)
        assert r1.avg_latency == r2.avg_latency
        assert r1.ejected == r2.ejected


class TestRunPoint:
    def test_accepts_scheme_name(self, small_cfg):
        res = run_point("fastpass", "transpose", 0.05, small_cfg)
        assert "FastPass" in res.scheme
        assert res.extra["rate"] == 0.05
        assert res.extra["pattern"] == "transpose"

    def test_accepts_scheme_instance(self, small_cfg):
        res = run_point(get_scheme("swap"), "uniform", 0.05, small_cfg)
        assert res.ejected > 0


class TestSweep:
    def test_sweep_returns_point_per_rate(self, small_cfg):
        results = sweep_latency("escapevc", "uniform", [0.02, 0.05], small_cfg)
        assert len(results) == 2
        assert results[0].extra["rate"] == 0.02

    def test_sweep_stops_after_collapse(self, small_cfg):
        # a short drain window keeps the post-saturation backlog visible
        tight = small_cfg.with_(drain_cycles=50)
        results = sweep_latency("baseline", "transpose",
                                [0.02, 0.6, 0.65, 0.7], tight)
        assert len(results) < 4

    def test_latency_monotone_at_extremes(self, small_cfg):
        lo = run_point("escapevc", "uniform", 0.02, small_cfg)
        hi = run_point("escapevc", "uniform", 0.30, small_cfg)
        assert hi.avg_latency > lo.avg_latency


class TestSaturation:
    def test_is_saturated_criteria(self):
        res = RunResult(scheme="x")
        res.extra = {"measured_generated": 100, "undelivered": 0}
        res.avg_latency = 20.0
        assert not is_saturated(res, zero_load=10.0)
        res.avg_latency = 40.0
        assert is_saturated(res, zero_load=10.0)

    def test_undelivered_means_saturated(self):
        res = RunResult(scheme="x")
        res.extra = {"measured_generated": 100, "undelivered": 50}
        res.avg_latency = 5.0
        assert is_saturated(res, zero_load=10.0)

    def test_deadlock_means_saturated(self):
        res = RunResult(scheme="x")
        res.extra = {"measured_generated": 100, "undelivered": 0}
        res.avg_latency = 5.0
        res.deadlocked = True
        assert is_saturated(res, zero_load=10.0)

    def test_search_brackets_reasonably(self, small_cfg):
        sat = saturation_throughput("escapevc", "uniform", small_cfg,
                                    lo=0.02, hi=0.6, iters=3)
        assert 0.02 <= sat < 0.6

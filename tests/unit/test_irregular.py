"""Unit tests for irregular-topology partition derivation (Sec. III-F)."""

import networkx as nx
import pytest

from repro.core import irregular
from repro.network.topology import Mesh


def ring_graph(n=8):
    g = nx.Graph()
    nodes = list(range(n))
    g.add_edges_from(zip(nodes, nodes[1:] + nodes[:1]))
    return g


class TestHolisticPath:
    def test_covers_every_directed_link_once(self):
        g = ring_graph(6)
        path = irregular.holistic_path(g)
        assert len(path) == 2 * g.number_of_edges()
        assert len(set(path)) == len(path)

    def test_is_closed_walk(self):
        g = ring_graph(5)
        path = irregular.holistic_path(g)
        for (u1, v1), (u2, _v2) in zip(path, path[1:]):
            assert v1 == u2
        assert path[-1][1] == path[0][0]

    def test_works_on_mesh_graph(self):
        g = Mesh(4, 4).to_graph()
        path = irregular.holistic_path(g)
        assert len(path) == 2 * g.number_of_edges()

    def test_disconnected_rejected(self):
        g = ring_graph(4)
        g.add_edge(10, 11)
        with pytest.raises(ValueError):
            irregular.holistic_path(g)

    def test_empty_graph(self):
        assert irregular.holistic_path(nx.Graph()) == []


class TestHolisticPathEdgeCases:
    def test_single_node_graph(self):
        """Connected but edgeless: one router, nothing to walk."""
        g = nx.Graph()
        g.add_node(0)
        assert irregular.holistic_path(g) == []

    def test_two_node_graph(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        path = irregular.holistic_path(g)
        assert sorted(path) == [(0, 1), (1, 0)]

    def test_star_center_repeats_but_links_unique(self):
        g = nx.star_graph(5)
        path = irregular.holistic_path(g)
        assert len(path) == 2 * g.number_of_edges()
        assert len(set(path)) == len(path)


class TestSegmentation:
    def test_segments_partition_the_path(self):
        g = ring_graph(8)
        path = irregular.holistic_path(g)
        segs = irregular.segment_path(path, 4)
        assert sum(len(s) for s in segs) == len(path)
        flat = [l for s in segs for l in s]
        assert flat == path

    def test_near_equal_lengths(self):
        g = ring_graph(8)
        segs = irregular.segment_path(irregular.holistic_path(g), 3)
        lengths = [len(s) for s in segs]
        assert max(lengths) - min(lengths) <= 1

    def test_too_many_segments_rejected(self):
        g = ring_graph(4)
        with pytest.raises(ValueError):
            irregular.segment_path(irregular.holistic_path(g), 100)

    def test_partitions_exceeding_circuit_length_rejected(self):
        """P > circuit length through the full derivation entry point:
        a 3-ring's circuit has 6 directed links, so P=7 cannot give
        every partition at least one."""
        g = ring_graph(3)
        with pytest.raises(ValueError):
            irregular.derive_partitions(g, 7)

    def test_zero_segments_rejected(self):
        with pytest.raises(ValueError):
            irregular.segment_path([(0, 1)], 0)


class TestVerification:
    def test_valid_segments_verify(self):
        g = ring_graph(8)
        segs, _ = irregular.derive_partitions(g, 4)
        irregular.verify_segments(g, segs)   # must not raise

    def test_duplicate_link_detected(self):
        g = ring_graph(4)
        segs, _ = irregular.derive_partitions(g, 2)
        bad = [segs[0] + [segs[0][0]], segs[1]]
        with pytest.raises(AssertionError):
            irregular.verify_segments(g, bad)

    def test_missing_link_detected(self):
        g = ring_graph(4)
        segs, _ = irregular.derive_partitions(g, 2)
        bad = [segs[0][:-1], segs[1]]
        with pytest.raises(AssertionError):
            irregular.verify_segments(g, bad)


class TestChannelCoverage:
    """Cross-check over the topology families the scenario CLI sweeps:
    the derived segments must cover every directed channel exactly once,
    whatever the graph's degree profile."""

    @pytest.mark.parametrize("topology", ["ring:8", "star:6", "mesh:3x5",
                                          "torus:4x4", "hypercube:4"])
    @pytest.mark.parametrize("parts", [1, 2, 4])
    def test_segments_cover_every_directed_channel_once(self, topology,
                                                        parts):
        from repro.scenario.irregular import build_graph
        g = build_graph(topology)
        segs, routers_of = irregular.derive_partitions(g, parts)
        want = {(u, v) for u, v in g.edges()} \
            | {(v, u) for u, v in g.edges()}
        got = [link for seg in segs for link in seg]
        assert len(got) == len(want), "a channel is missing or doubled"
        assert set(got) == want
        assert len(routers_of) == parts
        irregular.verify_segments(g, segs)


class TestIrregularSchedule:
    def test_covers_all_routers(self):
        g = Mesh(3, 3).to_graph()   # odd mesh: the TDM mesh schedule works,
        sched = irregular.IrregularSchedule(g, 3, slot_cycles=16)
        assert sched.covers_all()

    def test_primes_rotate_through_segment(self):
        g = ring_graph(8)
        sched = irregular.IrregularSchedule(g, 2, slot_cycles=16)
        routers = sched.routers_of[0]
        seen = {sched.prime_of_partition(0, ph)
                for ph in range(len(routers))}
        assert seen == set(routers)

    def test_targets_rotate(self):
        g = ring_graph(8)
        sched = irregular.IrregularSchedule(g, 4, slot_cycles=16)
        assert [sched.target_partition(1, s) for s in range(4)] == \
            [1, 2, 3, 0]

    def test_info(self):
        g = ring_graph(8)
        sched = irregular.IrregularSchedule(g, 2, slot_cycles=10)
        assert sched.info(0) == (0, 0)
        assert sched.info(15) == (0, 1)
        assert sched.info(20) == (1, 0)

"""Unit tests for the routing functions."""

import pytest

from repro.network.routing import (
    productive_ports,
    route_adaptive,
    route_west_first,
    route_xy,
    route_yx,
)
from repro.network.topology import (
    Mesh,
    PORT_E,
    PORT_LOCAL,
    PORT_N,
    PORT_S,
    PORT_W,
)

ALL_ROUTERS = [route_xy, route_yx, route_adaptive, route_west_first]


@pytest.fixture
def mesh():
    return Mesh(4, 4)


class TestCommonProperties:
    @pytest.mark.parametrize("fn", ALL_ROUTERS)
    def test_local_at_destination(self, mesh, fn):
        for rid in range(mesh.n_routers):
            assert fn(mesh, rid, rid) == (PORT_LOCAL,)

    @pytest.mark.parametrize("fn", ALL_ROUTERS)
    def test_always_returns_a_port(self, mesh, fn):
        for src in range(mesh.n_routers):
            for dst in range(mesh.n_routers):
                assert len(fn(mesh, src, dst)) >= 1

    @pytest.mark.parametrize("fn", ALL_ROUTERS)
    def test_minimal_every_port_productive(self, mesh, fn):
        for src in range(mesh.n_routers):
            for dst in range(mesh.n_routers):
                if src == dst:
                    continue
                prod = set(productive_ports(mesh, src, dst))
                assert set(fn(mesh, src, dst)) <= prod

    @pytest.mark.parametrize("fn", ALL_ROUTERS)
    def test_following_route_reaches_destination(self, mesh, fn):
        for src in range(mesh.n_routers):
            for dst in range(mesh.n_routers):
                at, steps = src, 0
                while at != dst:
                    port = fn(mesh, at, dst)[0]
                    at = mesh.neighbor(at, port)
                    steps += 1
                    assert steps <= mesh.diameter
                assert steps == mesh.hops(src, dst)


class TestXY:
    def test_x_resolved_first(self, mesh):
        assert route_xy(mesh, mesh.rid(0, 0), mesh.rid(2, 2)) == (PORT_E,)
        assert route_xy(mesh, mesh.rid(2, 0), mesh.rid(2, 2)) == (PORT_N,)

    def test_single_output(self, mesh):
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    assert len(route_xy(mesh, src, dst)) == 1


class TestYX:
    def test_y_resolved_first(self, mesh):
        assert route_yx(mesh, mesh.rid(0, 0), mesh.rid(2, 2)) == (PORT_N,)
        assert route_yx(mesh, mesh.rid(0, 2), mesh.rid(2, 2)) == (PORT_E,)


class TestAdaptive:
    def test_offers_both_productive_dimensions(self, mesh):
        outs = route_adaptive(mesh, mesh.rid(0, 0), mesh.rid(2, 2))
        assert set(outs) == {PORT_E, PORT_N}

    def test_single_dimension_when_aligned(self, mesh):
        outs = route_adaptive(mesh, mesh.rid(0, 0), mesh.rid(3, 0))
        assert outs == (PORT_E,)


class TestWestFirst:
    def test_west_taken_deterministically(self, mesh):
        outs = route_west_first(mesh, mesh.rid(3, 0), mesh.rid(0, 2))
        assert outs == (PORT_W,)

    def test_adaptive_when_no_west_component(self, mesh):
        outs = route_west_first(mesh, mesh.rid(0, 0), mesh.rid(2, 2))
        assert set(outs) == {PORT_E, PORT_N}

    def test_no_turn_into_west_ever(self, mesh):
        # After any non-West move, a packet never needs to go West again.
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                at = src
                gone_not_west = False
                while at != dst:
                    port = route_west_first(mesh, at, dst)[0]
                    if port == PORT_W:
                        assert not gone_not_west
                    else:
                        gone_not_west = True
                    at = mesh.neighbor(at, port)

    def test_pure_south(self, mesh):
        outs = route_west_first(mesh, mesh.rid(1, 3), mesh.rid(1, 0))
        assert outs == (PORT_S,)

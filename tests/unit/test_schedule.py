"""Unit tests for the TDM schedule (Sec. III-C1)."""

import pytest

from repro.core.schedule import TdmSchedule


@pytest.fixture
def sched():
    return TdmSchedule(rows=4, cols=4, slot_cycles=10)


class TestConstruction:
    def test_requires_square(self):
        with pytest.raises(ValueError):
            TdmSchedule(4, 8, 10)

    def test_requires_positive_slot(self):
        with pytest.raises(ValueError):
            TdmSchedule(4, 4, 0)

    def test_derived_lengths(self, sched):
        assert sched.P == 4
        assert sched.phase_len == 40
        assert sched.rotation_len == 160


class TestSlotInfo:
    def test_first_slot(self, sched):
        info = sched.info(0)
        assert (info.phase, info.slot) == (0, 0)
        assert (info.slot_start, info.slot_end) == (0, 10)

    def test_mid_slot(self, sched):
        info = sched.info(25)
        assert (info.phase, info.slot) == (0, 2)
        assert (info.slot_start, info.slot_end) == (20, 30)

    def test_phase_boundary(self, sched):
        assert sched.info(39).phase == 0
        assert sched.info(40).phase == 1
        assert sched.info(40).slot == 0

    def test_phase_counter_never_wraps(self, sched):
        assert sched.info(4000).phase == 100


class TestPrimes:
    def test_initial_diagonal(self, sched):
        # phase 0: partition c prime at (col=c, row=c)
        assert sched.primes(0) == [0, 5, 10, 15]

    def test_rotation_by_row(self, sched):
        # phase 1: row shifted by one within each column
        assert sched.primes(1) == [4, 9, 14, 3]

    def test_primes_never_share_row_or_column(self, sched):
        for phase in range(10):
            primes = sched.primes(phase)
            rows = [p // 4 for p in primes]
            cols = [p % 4 for p in primes]
            assert len(set(rows)) == 4
            assert len(set(cols)) == 4

    def test_every_router_becomes_prime(self, sched):
        seen = set()
        for phase in range(sched.rows):
            seen.update(sched.primes(phase))
        assert seen == set(range(16))

    def test_slots_until_prime(self, sched):
        for rid in range(16):
            phases = sched.slots_until_prime(rid)
            assert sched.prime_of_partition(rid % 4, phases) == rid


class TestTargets:
    def test_slot0_targets_own_partition(self, sched):
        for c in range(4):
            assert sched.target_partition(c, 0) == c

    def test_targets_rotate(self, sched):
        assert [sched.target_partition(1, s) for s in range(4)] == \
            [1, 2, 3, 0]

    def test_concurrent_targets_distinct(self, sched):
        for slot in range(4):
            targets = [sched.target_partition(c, slot) for c in range(4)]
            assert len(set(targets)) == 4

    def test_full_phase_covers_all_partitions(self, sched):
        for c in range(4):
            assert {sched.target_partition(c, s) for s in range(4)} == \
                set(range(4))

    def test_coverage_bound(self, sched):
        assert sched.coverage_bound() == 160

"""Unit tests for the scheme framework and per-scheme behaviours."""

import pytest

from repro.config import SimConfig
from repro.network.packet import MessageClass, Packet
from repro.schemes import SCHEMES, get_scheme, scheme_names
from repro.schemes.base import Scheme
from repro.schemes.escapevc import EscapeVCRouter
from repro.sim.engine import Simulation, build_network
from repro.traffic.synthetic import SyntheticTraffic
from tests.conftest import inject_now, make_network, park


class TestRegistry:
    def test_all_paper_schemes_registered(self):
        expected = {"escapevc", "spin", "swap", "drain", "pitstop",
                    "minbd", "tfc", "fastpass", "baseline"}
        assert expected <= set(scheme_names())

    def test_get_scheme_unknown(self):
        with pytest.raises(ValueError):
            get_scheme("nope")

    def test_every_scheme_has_table1_except_baseline(self):
        for name, cls in SCHEMES.items():
            if name == "baseline":
                continue
            assert cls.table1 is not None, name

    def test_fastpass_is_the_only_all_yes_row(self):
        for name, cls in SCHEMES.items():
            if cls.table1 is None:
                continue
            all_yes = all(v == "X" for v in cls.table1.cells())
            assert all_yes == (name == "fastpass"), name

    def test_vn_configuration_per_table2(self):
        assert SCHEMES["fastpass"].n_vns == 1
        assert SCHEMES["pitstop"].n_vns == 1
        for name in ("escapevc", "spin", "swap", "drain", "tfc"):
            assert SCHEMES[name].n_vns == 6

    def test_configure_applies_vns(self):
        cfg = get_scheme("fastpass", n_vcs=4).configure(SimConfig())
        assert cfg.n_vns == 1 and cfg.n_vcs == 4

    def test_labels_mention_configuration(self):
        assert "VN=0" in get_scheme("fastpass").label
        assert "VN=6" in get_scheme("escapevc").label


def _quick_run(name, rate=0.05, pattern="uniform", cfg=None, **kwargs):
    cfg = cfg or SimConfig(rows=4, cols=4, warmup_cycles=100,
                           measure_cycles=400, drain_cycles=1500,
                           fastpass_slot_cycles=64)
    sim = Simulation(cfg, get_scheme(name, **kwargs),
                     SyntheticTraffic(pattern, rate, seed=2))
    return sim, sim.run()


class TestAllSchemesDeliver:
    @pytest.mark.parametrize("name", ["escapevc", "spin", "swap", "drain",
                                      "pitstop", "minbd", "tfc", "fastpass",
                                      "baseline"])
    def test_low_load_delivery(self, name):
        sim, res = _quick_run(name)
        assert res.ejected > 0
        assert not res.deadlocked
        assert res.extra["undelivered"] == 0

    @pytest.mark.parametrize("name", ["escapevc", "swap", "fastpass"])
    def test_zero_load_latency_sane(self, name):
        _sim, res = _quick_run(name, rate=0.01)
        assert 4 < res.avg_latency < 40


class TestEscapeVC:
    def test_escape_vc_is_index_zero_of_vn(self, small_cfg):
        net = make_network(small_cfg, scheme=get_scheme("escapevc"))
        r = net.routers[5]
        pkt = Packet(5, 0, MessageClass.REQUEST, 0)
        slot = r.slots[2][0]   # escape VC of VN 0 (east input)
        slot.pkt = pkt
        mv = r.moves(pkt, slot)
        # in-escape: west-first only, escape VC only
        assert all(vcs == (0,) for _o, vcs in mv)

    def test_adaptive_vc_offers_escape_fallback(self, small_cfg):
        net = make_network(small_cfg, scheme=get_scheme("escapevc"))
        r = net.routers[5]
        pkt = Packet(5, 15, MessageClass.REQUEST, 0)
        slot = r.slots[2][1]   # non-escape VC
        slot.pkt = pkt
        mv = r.moves(pkt, slot)
        vcs_used = {vcs for _o, vcs in mv}
        assert (0,) in vcs_used          # escape fallback present
        assert any(vcs != (0,) for _o, vcs in mv)

    def test_injection_prefers_adaptive_vcs(self, small_cfg):
        net = make_network(small_cfg, scheme=get_scheme("escapevc"))
        r = net.routers[0]
        assert isinstance(r, EscapeVCRouter)
        vcs = r.vn_vcs(0)
        assert vcs[-1] == 0              # escape VC last


class TestSPIN:
    def test_spin_rotates_manufactured_cycle(self, small_cfg):
        cfg = small_cfg.with_(n_vns=1, n_vcs=1,
                              spin_detection_threshold=16)
        scheme = get_scheme("spin", n_vns=1, n_vcs=1)
        net = make_network(cfg, scheme=scheme)
        placements = [(0, 1, 5), (1, 4, 4), (5, 3, 0), (4, 2, 1)]
        pkts = []
        for rid, port, dst in placements:
            r = net.routers[rid]
            pkt = Packet(rid, dst, MessageClass.REQUEST, 0)
            park(net, r, r.slots[port][0], pkt)
            pkts.append(pkt)
        hops_before = [p.hops for p in pkts]
        for _ in range(200):
            net.step()
        assert scheme.spins >= 1
        assert all(p.eject_cycle >= 0 or p.hops > h
                   for p, h in zip(pkts, hops_before))


class TestSWAP:
    def test_swap_forces_blocked_packet(self, small_cfg):
        # paranoia off: the hand-built blockade below is intentionally
        # outside the occupied list and would trip the invariant audit
        cfg = small_cfg.with_(swap_duty_cycles=50, paranoia=0)
        scheme = get_scheme("swap")
        net = make_network(cfg, scheme=scheme)
        # Park a packet whose every downstream VC is held by stalled
        # packets; SWAP must exchange it forward.
        r0, r1 = net.routers[0], net.routers[1]
        pkt = Packet(0, 3, MessageClass.REQUEST, 0)
        slot = r0.slots[1][0]
        park(net, r0, slot, pkt)
        blocker = Packet(1, 2, MessageClass.REQUEST, 0)
        for vc in r1.vn_vcs(0):
            s = r1.slots[4][vc]
            # ready (so SWAP may exchange with them) but kept out of the
            # occupied list so they never move on their own
            s.pkt, s.ready_at = blocker, 0
        for _ in range(120):
            net.step()
        assert scheme.swaps >= 1
        assert slot.pkt is not pkt    # the blocked packet was pushed out


class TestDRAIN:
    def test_drain_triggers_periodically(self, small_cfg):
        cfg = small_cfg.with_(drain_period_cycles=100)
        scheme = get_scheme("drain")
        sim = Simulation(cfg, scheme, SyntheticTraffic("uniform", 0.05,
                                                       seed=1))
        sim.net.run(350)
        assert scheme.drains == 3

    def test_drain_rotation_preserves_packets(self, small_cfg):
        cfg = small_cfg.with_(drain_period_cycles=50, warmup_cycles=0)
        scheme = get_scheme("drain")
        sim = Simulation(cfg, scheme, SyntheticTraffic("uniform", 0.1,
                                                       seed=1))
        sim.traffic.measure_window(0, 200)
        net = sim.net
        for _ in range(200):
            net.step()
        in_flight = net.total_backlog()
        delivered = net.stats.ejected_total
        generated = sim.traffic.measured_generated
        assert delivered + in_flight == generated

    def test_drain_misroutes(self, small_cfg):
        cfg = small_cfg.with_(drain_period_cycles=60)
        scheme = get_scheme("drain")
        sim = Simulation(cfg, scheme, SyntheticTraffic("uniform", 0.15,
                                                       seed=1))
        sim.traffic.measure_window(0, 1 << 60)
        sim.net.run(300)
        assert scheme.drains >= 1


class TestPitstop:
    def test_bypass_rescues_blocked_packet(self, small_cfg):
        cfg = small_cfg.with_(pitstop_token_cycles=2, paranoia=0)
        scheme = get_scheme("pitstop")
        net = make_network(cfg, scheme=scheme)
        r0, r1 = net.routers[0], net.routers[1]
        pkt = Packet(0, 3, MessageClass.REQUEST, 0)
        slot = r0.slots[1][0]
        park(net, r0, slot, pkt)
        blocker = Packet(1, 2, MessageClass.REQUEST, 0)
        for vc in r1.vn_vcs(0):
            s = r1.slots[4][vc]
            s.pkt, s.ready_at = blocker, 1 << 60
        for _ in range(300):
            net.step()
        assert pkt.eject_cycle >= 0
        assert scheme.bypasses >= 1

    def test_single_bypass_at_a_time(self, small_cfg):
        scheme = get_scheme("pitstop")
        net = make_network(small_cfg.with_(paranoia=0), scheme=scheme)
        scheme._busy_until = 1 << 40
        pkt = Packet(0, 3, MessageClass.REQUEST, 0)
        r0 = net.routers[0]
        slot = r0.slots[1][0]
        park(net, r0, slot, pkt)
        blocker = Packet(1, 2, MessageClass.REQUEST, 0)
        r1 = net.routers[1]
        for vc in r1.vn_vcs(0):
            s = r1.slots[4][vc]
            s.pkt, s.ready_at = blocker, 1 << 60
        for _ in range(200):
            net.step()
        assert scheme.bypasses == 0       # the path is occupied


class TestMinBD:
    def test_deflections_recorded_under_contention(self, small_cfg):
        sim = Simulation(small_cfg, get_scheme("minbd"),
                         SyntheticTraffic("transpose", 0.25, seed=1))
        sim.traffic.measure_window(0, 1 << 60)
        net = sim.net
        for _ in range(500):
            net.step()
        total_defl = sum(s.pkt.deflections for r in net.routers
                         for s in r.occupied if s.pkt)
        done_defl = any(True for r in net.routers for s in r.occupied)
        assert net.stats.ejected_total > 0

    def test_side_buffer_used(self, small_cfg):
        sim = Simulation(small_cfg, get_scheme("minbd"),
                         SyntheticTraffic("transpose", 0.3, seed=1))
        sim.traffic.measure_window(0, 1 << 60)
        net = sim.net
        used = False
        for _ in range(400):
            net.step()
            used |= any(r.side.pkt is not None for r in net.routers)
        assert used


class TestTFC:
    def test_bypass_reduces_zero_load_latency(self, small_cfg):
        _sim_t, res_t = _quick_run("tfc", rate=0.01)
        _sim_b, res_b = _quick_run("baseline", rate=0.01)
        assert res_t.avg_latency < res_b.avg_latency

    def test_uses_west_first(self):
        assert SCHEMES["tfc"].routing == "west_first"

"""Unit tests for the SoA engine's gating, tables, and harness hooks.

The bit-identity differentials live in
``tests/integration/test_engine_equivalence.py``; this file covers the
pieces around the kernel: availability gating (``EngineUnavailable``
with the ``[soa]`` install hint), config validation, the dense route
tables' full ``(dst, vn, esc)`` cross-check, the campaign executor's
refusal to fold SoA-engined points into scalar-datapath batches, and
the ``run_soa_snapshot`` A/B harness including its drift hard-error.
"""

import pytest

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim import soa
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic


def _cfg(**over):
    base = dict(rows=4, cols=4, warmup_cycles=50, measure_cycles=150,
                drain_cycles=600, fastpass_slot_cycles=64)
    base.update(over)
    return SimConfig(**base)


def _sim(scheme="fastpass", pattern="uniform", rate=0.1, seed=7,
         cfg=None, **kwargs):
    return Simulation(cfg or _cfg(engine="soa"),
                      get_scheme(scheme, **kwargs),
                      SyntheticTraffic(pattern, rate, seed=seed))


class TestAvailability:
    def test_available_with_numpy(self):
        assert soa.soa_available()
        assert soa.best_engine() == "soa"
        soa.require_numpy()   # does not raise

    def test_unavailable_raises_with_install_hint(self, monkeypatch):
        monkeypatch.setattr(soa, "_FORCE_UNAVAILABLE", True)
        assert not soa.soa_available()
        assert soa.best_engine() == "active"
        with pytest.raises(soa.EngineUnavailable, match=r"\[soa\]"):
            soa.require_numpy()

    def test_simulation_build_raises_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(soa, "_FORCE_UNAVAILABLE", True)
        with pytest.raises(soa.EngineUnavailable):
            _sim()

    def test_scalar_engines_unaffected(self, monkeypatch):
        monkeypatch.setattr(soa, "_FORCE_UNAVAILABLE", True)
        sim = _sim(cfg=_cfg(engine="active"))
        assert sim.engine_used == "active"
        assert sim.run().ejected > 0


class TestConfigValidation:
    def test_engine_names_validated(self):
        for name in ("active", "naive", "soa"):
            assert SimConfig(engine=name).engine == name
        with pytest.raises(ValueError, match="engine"):
            SimConfig(engine="vector")


class TestFallbackReason:
    def test_supported_schemes_have_no_reason(self):
        for name in sorted(soa.SUPPORTED_SCHEMES):
            assert soa.fallback_reason(_cfg(), get_scheme(name)) is None

    def test_unsupported_scheme_reported(self):
        reason = soa.fallback_reason(_cfg(), get_scheme("spin"))
        assert reason is not None and "spin" in reason

    def test_fault_plan_reported(self):
        from repro.fault.plan import LINK_FLAP, FaultEvent, FaultPlan
        plan = FaultPlan(events=(FaultEvent(LINK_FLAP, at=10, router=1,
                                            port=2, duration=5),),
                         seed=1)
        cfg = _cfg().with_(fault_plan=plan)
        reason = soa.fallback_reason(cfg, get_scheme("fastpass"))
        assert reason is not None and "fault" in reason


class TestDenseTables:
    @pytest.mark.parametrize("scheme,kwargs",
                             [("baseline", {}), ("fastpass", {}),
                              ("fastpass", {"n_vcs": 2}),
                              ("escapevc", {})])
    def test_full_product_matches_memos(self, scheme, kwargs):
        from repro.sim.soa.tables import verify_tables
        sim = _sim(scheme, **kwargs)
        kernel = sim.net.soa
        checked = verify_tables(sim.net, kernel.tables)
        t = kernel.tables
        assert checked == t.R * t.R * sim.net.cfg.n_vns * t.E

    def test_rectangular_mesh(self):
        from repro.sim.soa.tables import verify_tables
        sim = _sim("escapevc", cfg=_cfg(rows=3, cols=5, engine="soa"))
        assert verify_tables(sim.net, sim.net.soa.tables) > 0


class TestCampaignIntegration:
    def test_executor_skips_folding_for_soa(self, tmp_path):
        from repro.campaign.executor import CampaignExecutor
        active = CampaignExecutor(_cfg(engine="active"))
        soa_ex = CampaignExecutor(_cfg(engine="soa"))
        assert active.auto_batch
        assert not soa_ex.auto_batch

    def test_fabric_executor_skips_folding_for_soa(self):
        from repro.fabric.executor import FabricExecutor
        assert not FabricExecutor(_cfg(engine="soa")).auto_batch
        assert FabricExecutor(_cfg(engine="active")).auto_batch

    def test_replica_batch_normalises_engine(self):
        """Direct construction with engine="soa" runs the replicas on
        the scalar datapath (results are engine-invariant) instead of
        attaching per-replica kernels under the batch scheduler."""
        from repro.sim.batch.engine import ReplicaBatch
        batch = ReplicaBatch(_cfg(engine="soa"), "fastpass", "uniform",
                             0.05, [3, 5], scheme_kwargs={"n_vcs": 2})
        assert all(s.net.soa is None for s in batch.sims)
        assert all(s.cfg.engine == "active" for s in batch.sims)
        assert all(r.ejected > 0 for r in batch.run())


class TestSoaSnapshotHarness:
    def _shrink(self, monkeypatch, tmp_path):
        from repro.experiments import perf
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        monkeypatch.setattr(perf, "SOA_POINTS",
                            [("fastpass", {}, "uniform", 0.2, 4, 4),
                             ("escapevc", {}, "uniform", 0.2, 4, 4)])
        monkeypatch.setattr(
            perf, "soa_config",
            lambda rows, cols, engine: SimConfig(
                rows=rows, cols=cols, warmup_cycles=50,
                measure_cycles=150, drain_cycles=600, engine=engine))
        return perf

    def test_ab_runs_and_gates_structure(self, tmp_path, monkeypatch):
        perf = self._shrink(monkeypatch, tmp_path)
        snap = perf.run_soa_snapshot(repeat=1)
        assert snap["kind"] == "repro-soa-snapshot"
        assert len(snap["points"]) == 2
        assert all(p["identical"] for p in snap["points"])
        gated = [p for p in snap["points"] if p["gated"]]
        assert [p["key"] for p in gated] == snap["gate_points"]
        assert snap["gate_speedup"] == min(p["speedup"] for p in gated)

    def test_drift_is_a_hard_error(self, tmp_path, monkeypatch):
        perf = self._shrink(monkeypatch, tmp_path)
        from repro.sim.engine import Simulation as Sim
        orig = Sim.run

        def corrupt(self):
            res = orig(self)
            if self.engine_used == "soa":
                res.ejected += 1
            return res

        monkeypatch.setattr(Sim, "run", corrupt)
        with pytest.raises(perf.ResultDrift, match="drifted"):
            perf.run_soa_snapshot(repeat=1)

    def test_fallback_poisons_the_ab(self, tmp_path, monkeypatch):
        """If the SoA side silently lands on the scalar engine the A/B
        would compare the scalar loop against itself — hard error."""
        perf = self._shrink(monkeypatch, tmp_path)
        monkeypatch.setattr(perf, "SOA_POINTS",
                            [("spin", {}, "uniform", 0.1, 4, 4)])
        with pytest.raises(RuntimeError, match="ran as"):
            perf.run_soa_snapshot(repeat=1)

"""Unit tests for the SoA engine's gating, tables, and harness hooks.

The bit-identity differentials live in
``tests/integration/test_engine_equivalence.py``; this file covers the
pieces around the kernel: availability gating (``EngineUnavailable``
with the ``[soa]`` install hint), config validation, the dense route
tables' full ``(dst, vn, esc)`` cross-check, the campaign executors'
folding of SoA-engined points into fused replica batches, and the
``run_soa_snapshot`` A/B harness including its drift hard-error.
"""

import pytest

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim import soa
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic


def _cfg(**over):
    base = dict(rows=4, cols=4, warmup_cycles=50, measure_cycles=150,
                drain_cycles=600, fastpass_slot_cycles=64)
    base.update(over)
    return SimConfig(**base)


def _sim(scheme="fastpass", pattern="uniform", rate=0.1, seed=7,
         cfg=None, **kwargs):
    return Simulation(cfg or _cfg(engine="soa"),
                      get_scheme(scheme, **kwargs),
                      SyntheticTraffic(pattern, rate, seed=seed))


class TestAvailability:
    def test_available_with_numpy(self):
        assert soa.soa_available()
        assert soa.best_engine() == "soa"
        soa.require_numpy()   # does not raise

    def test_unavailable_raises_with_install_hint(self, monkeypatch):
        monkeypatch.setattr(soa, "_FORCE_UNAVAILABLE", True)
        assert not soa.soa_available()
        assert soa.best_engine() == "active"
        with pytest.raises(soa.EngineUnavailable, match=r"\[soa\]"):
            soa.require_numpy()

    def test_simulation_build_raises_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(soa, "_FORCE_UNAVAILABLE", True)
        with pytest.raises(soa.EngineUnavailable):
            _sim()

    def test_scalar_engines_unaffected(self, monkeypatch):
        monkeypatch.setattr(soa, "_FORCE_UNAVAILABLE", True)
        sim = _sim(cfg=_cfg(engine="active"))
        assert sim.engine_used == "active"
        assert sim.run().ejected > 0


class TestConfigValidation:
    def test_engine_names_validated(self):
        for name in ("active", "naive", "soa"):
            assert SimConfig(engine=name).engine == name
        with pytest.raises(ValueError, match="engine"):
            SimConfig(engine="vector")


class TestFallbackReason:
    def test_supported_schemes_have_no_reason(self):
        for name in sorted(soa.SUPPORTED_SCHEMES):
            assert soa.fallback_reason(_cfg(), get_scheme(name)) is None

    def test_unsupported_scheme_reported(self):
        reason = soa.fallback_reason(_cfg(), get_scheme("spin"))
        assert reason is not None and "spin" in reason

    def test_fault_plan_reported(self):
        from repro.fault.plan import LINK_FLAP, FaultEvent, FaultPlan
        plan = FaultPlan(events=(FaultEvent(LINK_FLAP, at=10, router=1,
                                            port=2, duration=5),),
                         seed=1)
        cfg = _cfg().with_(fault_plan=plan)
        reason = soa.fallback_reason(cfg, get_scheme("fastpass"))
        assert reason is not None and "fault" in reason


class TestDenseTables:
    @pytest.mark.parametrize("scheme,kwargs",
                             [("baseline", {}), ("fastpass", {}),
                              ("fastpass", {"n_vcs": 2}),
                              ("escapevc", {})])
    def test_full_product_matches_memos(self, scheme, kwargs):
        from repro.sim.soa.tables import verify_tables
        sim = _sim(scheme, **kwargs)
        kernel = sim.net.soa
        checked = verify_tables(sim.net, kernel.tables)
        t = kernel.tables
        assert checked == t.R * t.R * sim.net.cfg.n_vns * t.E

    def test_rectangular_mesh(self):
        from repro.sim.soa.tables import verify_tables
        sim = _sim("escapevc", cfg=_cfg(rows=3, cols=5, engine="soa"))
        assert verify_tables(sim.net, sim.net.soa.tables) > 0

    def test_tables_are_int64(self):
        """The flat-index arithmetic assumes int64 throughout; a silent
        dtype downgrade would reintroduce the overflow this guard
        exists to catch."""
        import numpy as np
        t = _sim("fastpass", n_vcs=2).net.soa.tables
        for name in ("dport_base", "mv_plo", "mv_phi"):
            assert getattr(t, name).dtype == np.int64, name

    def test_flat_index_bound_at_int64_boundary(self):
        """The guard trips exactly when ``replicas*R*5*V`` reaches
        ``int64 max`` and returns the bound just below it."""
        import numpy as np
        from repro.sim.soa.tables import flat_index_bound
        assert flat_index_bound(16, 3, replicas=8) == 8 * 16 * 5 * 3
        lim = int(np.iinfo(np.int64).max)
        r = lim // (5 * 7)          # replicas * R folded into one axis
        assert flat_index_bound(r, 7) == r * 5 * 7
        with pytest.raises(OverflowError, match="overflows int64"):
            flat_index_bound(r + 1, 7)
        with pytest.raises(OverflowError, match="replicas="):
            flat_index_bound(r, 7, replicas=2)


class TestCampaignIntegration:
    def test_executor_folds_soa_points(self, tmp_path):
        from repro.campaign.executor import CampaignExecutor
        assert CampaignExecutor(_cfg(engine="active")).auto_batch
        assert CampaignExecutor(_cfg(engine="soa")).auto_batch

    def test_fabric_executor_folds_soa_points(self):
        from repro.fabric.executor import FabricExecutor
        assert FabricExecutor(_cfg(engine="soa")).auto_batch
        assert FabricExecutor(_cfg(engine="active")).auto_batch

    def test_replica_batch_attaches_fused_kernels(self):
        """Direct construction with engine="soa" leases every replica's
        state into the batch-owned parents and screens them fused —
        ``engine_used`` attributes each result to the kernel."""
        from repro.sim.batch.engine import ReplicaBatch
        batch = ReplicaBatch(_cfg(engine="soa"), "fastpass", "uniform",
                             0.05, [3, 5], scheme_kwargs={"n_vcs": 2})
        assert batch.soa is not None
        assert all(s.net.soa is not None for s in batch.sims)
        assert all(s.cfg.engine == "soa" for s in batch.sims)
        assert batch.soa.vectorized == [0, 1]
        results = batch.run()
        assert all(r.ejected > 0 for r in results)
        assert all(r.engine_used == "soa" for r in results)

    def test_replica_batch_soa_respects_naive_flag(self):
        """The differential ``naive`` batches must keep the scalar
        datapath even when the config asks for SoA."""
        from repro.sim.batch.engine import ReplicaBatch
        batch = ReplicaBatch(_cfg(engine="soa"), "fastpass", "uniform",
                             0.05, [3], naive=True,
                             scheme_kwargs={"n_vcs": 2})
        assert batch.soa is None
        assert all(s.net.soa is None for s in batch.sims)


class TestSoaSnapshotHarness:
    def _shrink(self, monkeypatch, tmp_path):
        from repro.experiments import perf
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        monkeypatch.setattr(perf, "SOA_POINTS",
                            [("fastpass", {}, "uniform", 0.2, 4, 4),
                             ("escapevc", {}, "uniform", 0.2, 4, 4)])
        monkeypatch.setattr(
            perf, "soa_config",
            lambda rows, cols, engine: SimConfig(
                rows=rows, cols=cols, warmup_cycles=50,
                measure_cycles=150, drain_cycles=600, engine=engine))
        return perf

    def test_ab_runs_and_gates_structure(self, tmp_path, monkeypatch):
        perf = self._shrink(monkeypatch, tmp_path)
        snap = perf.run_soa_snapshot(repeat=1)
        assert snap["kind"] == "repro-soa-snapshot"
        assert len(snap["points"]) == 2
        assert all(p["identical"] for p in snap["points"])
        gated = [p for p in snap["points"] if p["gated"]]
        assert [p["key"] for p in gated] == snap["gate_points"]
        assert snap["gate_speedup"] == min(p["speedup"] for p in gated)

    def test_drift_is_a_hard_error(self, tmp_path, monkeypatch):
        perf = self._shrink(monkeypatch, tmp_path)
        from repro.sim.engine import Simulation as Sim
        orig = Sim.run

        def corrupt(self):
            res = orig(self)
            if self.engine_used == "soa":
                res.ejected += 1
            return res

        monkeypatch.setattr(Sim, "run", corrupt)
        with pytest.raises(perf.ResultDrift, match="drifted"):
            perf.run_soa_snapshot(repeat=1)

    def test_fallback_poisons_the_ab(self, tmp_path, monkeypatch):
        """If the SoA side silently lands on the scalar engine the A/B
        would compare the scalar loop against itself — hard error."""
        perf = self._shrink(monkeypatch, tmp_path)
        monkeypatch.setattr(perf, "SOA_POINTS",
                            [("spin", {}, "uniform", 0.1, 4, 4)])
        with pytest.raises(RuntimeError, match="ran as"):
            perf.run_soa_snapshot(repeat=1)

    def test_batch_ab_runs_and_gates_structure(self, tmp_path,
                                               monkeypatch):
        perf = self._shrink(monkeypatch, tmp_path)
        snap = perf.run_soa_batch_snapshot(replicas=3, repeat=1)
        assert snap["kind"] == "repro-soa-batch-snapshot"
        assert snap["replicas"] == 3
        assert len(snap["points"]) == 2
        assert all(p["identical"] for p in snap["points"])
        gated = [p for p in snap["points"] if p["gated"]]
        assert [p["key"] for p in gated] == snap["gate_points"]
        assert snap["aggregate_speedup"] == (
            sum(p["scalar_wall_s"] for p in gated)
            / sum(p["batch_wall_s"] for p in gated))

    def test_batch_drift_is_a_hard_error(self, tmp_path, monkeypatch):
        """A batched replica that diverges from its scalar twin must
        kill the snapshot, not quietly publish a timing."""
        perf = self._shrink(monkeypatch, tmp_path)
        from repro.sim.batch.engine import ReplicaBatch
        orig = ReplicaBatch.run

        def corrupt(self):
            results = orig(self)
            results[0].ejected += 1
            return results

        monkeypatch.setattr(ReplicaBatch, "run", corrupt)
        with pytest.raises(perf.ResultDrift, match="drifted"):
            perf.run_soa_batch_snapshot(replicas=2, repeat=1)

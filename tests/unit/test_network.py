"""Unit tests for the network assembly, event wheel and watchdog."""

import pytest

from repro.network.packet import MessageClass, Packet
from repro.network.watchdog import Watchdog, find_blocked_cycle
from tests.conftest import inject_now, make_network, park


@pytest.fixture
def net(small_cfg):
    return make_network(small_cfg, routing="adaptive")


class TestWiring:
    def test_link_count(self, net):
        # 4x4 mesh: 2*(rows*(cols-1) + cols*(rows-1)) directed links
        assert len(net.links) == 2 * (4 * 3 + 4 * 3)

    def test_links_are_paired(self, net):
        for link in net.links:
            back = net.routers[link.dst].links_out
            assert any(l is not None and l.dst == link.src for l in back)

    def test_link_for_lookup(self, net):
        link = net.link_for(0, 2)    # East out of router 0
        assert link.src == 0 and link.dst == 1

    def test_link_for_missing_raises(self, net):
        with pytest.raises(ValueError):
            net.link_for(0, 4)       # no West link at the corner


class TestEventWheel:
    def test_event_fires_at_cycle(self, net):
        fired = []
        net.schedule(5, lambda now: fired.append(now))
        for _ in range(10):
            net.step()
        assert fired == [5]

    def test_event_args_passed(self, net):
        fired = []
        net.schedule(3, lambda now, a, b: fired.append((now, a, b)), 1, 2)
        for _ in range(5):
            net.step()
        assert fired == [(3, 1, 2)]

    def test_multiple_events_same_cycle(self, net):
        fired = []
        net.schedule(2, lambda now: fired.append("a"))
        net.schedule(2, lambda now: fired.append("b"))
        for _ in range(4):
            net.step()
        assert fired == ["a", "b"]


class TestInFlightAccounting:
    def test_empty_network(self, net):
        assert net.packets_in_flight() == 0
        assert net.total_backlog() == 0

    def test_counts_injected_packet(self, net):
        inject_now(net, 0, 15, MessageClass.REQUEST)
        net.step()
        net.step()
        assert net.packets_in_flight() >= 1

    def test_drains_to_zero(self, net):
        inject_now(net, 0, 15, MessageClass.REQUEST)
        for _ in range(100):
            net.step()
        assert net.packets_in_flight() == 0


class TestWatchdog:
    def test_no_fire_when_idle(self, net):
        for _ in range(net.cfg.watchdog_cycles + 100):
            net.step()
        assert not net.watchdog.deadlocked

    def test_fires_on_stuck_packet(self, small_cfg):
        # Park a packet in a router slot with no way to move (dst full).
        # The hand-built blockade below shares one packet object across
        # slots outside the occupied list — intentionally non-physical
        # state, so the paranoia audit must stay off for this net.
        net = make_network(small_cfg.with_(paranoia=0),
                           routing="adaptive")
        r = net.routers[0]
        pkt = Packet(0, 5, MessageClass.REQUEST, 0)
        park(net, r, r.slots[1][0], pkt)
        blocker = Packet(0, 5, MessageClass.REQUEST, 0)
        r1 = net.routers[1]
        for vc in r1.vn_vcs(0):
            s = r1.slots[4][vc]
            s.pkt, s.ready_at = blocker, 1 << 60
        r5 = net.routers[4]
        for vc in r5.vn_vcs(0):
            s = r5.slots[3][vc]
            s.pkt, s.ready_at = blocker, 1 << 60
        for _ in range(net.cfg.watchdog_cycles + 50):
            net.step()
        assert net.watchdog.deadlocked

    def test_progress_resets_timer(self, net):
        wd = Watchdog(net, threshold=10)
        net.last_progress = 0
        assert not wd.check(5)
        net.last_progress = 8
        assert not wd.check(15)


class TestWaitForGraph:
    def test_finds_simple_cycle(self, small_cfg):
        """Construct the classic 4-router turn cycle by hand and detect it.

        Each head packet sits in the input VC the previous one is waiting
        on: (router, input-port, dst) chosen so the adaptive route's
        productive VC is exactly the next occupied slot.
        """
        net = make_network(small_cfg.with_(n_vns=1, n_vcs=1),
                           routing="adaptive")
        # square 0 (0,0), 1 (1,0), 5 (1,1), 4 (0,1)
        placements = [
            (0, 1, 5),   # A: router 0, North input, dst 5 -> waits East on B
            (1, 4, 4),   # B: router 1, West input, dst 4 -> waits North on C
            (5, 3, 0),   # C: router 5, South input, dst 0 -> waits West on D
            (4, 2, 1),   # D: router 4, East input, dst 1 -> waits South on A
        ]
        for rid, port, dst in placements:
            r = net.routers[rid]
            pkt = Packet(rid, dst, MessageClass.REQUEST, 0)
            park(net, r, r.slots[port][0], pkt)
        cyc = find_blocked_cycle(net, now=10, min_blocked=1)
        assert cyc is not None
        assert len(cyc) == 4
        assert {rid for rid, _slot in cyc} == {0, 1, 5, 4}

    def test_no_cycle_in_empty_network(self, net):
        assert find_blocked_cycle(net, 100) is None

"""Round-trip tests for the fabric wire format.

The bit-identity guarantee of the fabric rests on these encodings being
lossless: a config, point, or result that crosses the HTTP boundary must
reconstruct exactly — including the awkward cases (FaultPlan inside
SimConfig, NaN metric values, replica seeds in point meta).
"""

from __future__ import annotations

import dataclasses
import json
import math

from repro.campaign.cache import result_from_json, result_to_json
from repro.config import RunResult, SimConfig
from repro.fabric import protocol, queue as q
from repro.fault.plan import fault_storm, link_cut
from repro.sim.parallel import Point


class TestConfig:
    def test_cfg_round_trip(self):
        cfg = SimConfig(rows=4, cols=4, warmup_cycles=100,
                        measure_cycles=300, drain_cycles=800)
        assert protocol.cfg_from_json(protocol.cfg_to_json(cfg)) == cfg

    def test_cfg_json_is_json(self):
        cfg = SimConfig(rows=8, cols=8)
        json.dumps(protocol.cfg_to_json(cfg))    # must not raise

    def test_fault_plan_rides_as_token(self):
        plan = fault_storm(rate=1e-4, start=100, stop=500, seed=3)
        cfg = SimConfig(rows=4, cols=4, fault_plan=plan)
        blob = protocol.cfg_to_json(cfg)
        assert isinstance(blob["fault_plan"], str)
        back = protocol.cfg_from_json(blob)
        assert back.fault_plan == plan
        assert back == cfg

    def test_link_cut_plan_round_trip(self):
        cfg = SimConfig(rows=4, cols=4,
                        fault_plan=link_cut(5, 2, at=1000))
        back = protocol.cfg_from_json(protocol.cfg_to_json(cfg))
        assert back.fault_plan.events == cfg.fault_plan.events


class TestItems:
    def test_points_round_trip(self):
        items = [
            ("k0", Point.make("fastpass", "uniform", 0.02)),
            ("k1", Point.make("baseline_1cy", "transpose", 0.10,
                              fastpass_slot_cycles=32)),
            ("k2", Point.make_seeded("fastpass", "uniform", 0.02, seed=7)),
            ("k3", Point.make_app("fastpass", "fft", txns=100, seed=2)),
        ]
        blob = json.loads(json.dumps(protocol.items_to_json(items)))
        assert protocol.items_from_json(blob) == items


class TestLease:
    def test_lease_to_json_shape(self):
        items = [("k0", Point.make("fastpass", "uniform", 0.02))]
        task = q.Task(tid="k0", items=items,
                      cfg_json=protocol.cfg_to_json(SimConfig(rows=4,
                                                              cols=4)))
        lq = q.LeaseQueue(lease_ttl_s=42.0)
        lq.add(task)
        (lease,) = lq.lease("w1", now=100.0)
        blob = protocol.lease_to_json(lease)
        assert blob["lease_id"] == lease.lease_id
        assert blob["ttl_s"] == 42.0
        assert blob["attempt"] == 1
        assert protocol.items_from_json(blob["items"]) == items
        assert protocol.cfg_from_json(blob["cfg"]) == SimConfig(rows=4,
                                                                cols=4)


class TestResults:
    def test_result_json_round_trips_nan(self):
        """Undefined latencies ride as NaN; Python's json emits/reads
        them (non-strict JSON) on both ends of the loopback wire."""
        res = RunResult(scheme="fastpass", injected=0, ejected=0,
                        extra={"note": "drained"})
        wire = json.loads(json.dumps(result_to_json(res)))
        back = result_from_json(wire)
        assert math.isnan(back.avg_latency)
        assert math.isnan(back.p99_latency)
        assert back.extra == res.extra
        assert dataclasses.asdict(
            dataclasses.replace(back, avg_latency=0.0, p99_latency=0.0,
                                fp_buffered_time=0.0,
                                fp_bufferless_time=0.0, reg_latency=0.0,
                                degraded_latency=0.0)) == \
            dataclasses.asdict(
            dataclasses.replace(res, avg_latency=0.0, p99_latency=0.0,
                                fp_buffered_time=0.0,
                                fp_bufferless_time=0.0, reg_latency=0.0,
                                degraded_latency=0.0))

    def test_result_round_trip_is_exact(self):
        res = RunResult(scheme="fastpass", injected=1200, ejected=1199,
                        avg_latency=13.5703125, p99_latency=41.0,
                        throughput=0.019999, cycles=1200,
                        fp_buffered_time=3.25, fp_bufferless_time=9.75,
                        reg_latency=15.125, degraded_latency=0.0,
                        extra={"metrics": {"path": "metrics/x.json"},
                               "batched": True})
        back = result_from_json(json.loads(json.dumps(
            result_to_json(res))))
        assert back == res

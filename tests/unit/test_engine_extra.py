"""Additional engine behaviours: suspension, determinism, run modes."""

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.coherence import CoherenceTraffic
from repro.traffic.synthetic import SyntheticTraffic
from tests.conftest import inject_now, make_network


class TestSuspension:
    def test_suspended_network_freezes_motion(self, small_cfg):
        net = make_network(small_cfg, routing="xy")
        pkt = inject_now(net, 0, 5)
        net.step()
        net.step()
        net.suspended = True
        hops_before = pkt.hops
        entry_before = pkt.net_entry
        for _ in range(20):
            net.step()
        assert pkt.hops == hops_before
        assert pkt.eject_cycle < 0 or entry_before < 0

    def test_resume_after_suspension(self, small_cfg):
        net = make_network(small_cfg, routing="xy")
        pkt = inject_now(net, 0, 5)
        net.suspended = True
        for _ in range(10):
            net.step()
        net.suspended = False
        for _ in range(100):
            net.step()
        assert pkt.eject_cycle >= 0


class TestDeterminism:
    def test_closed_loop_deterministic(self):
        def run():
            cfg = SimConfig(rows=4, cols=4, fastpass_slot_cycles=64)
            tr = CoherenceTraffic(txns_per_core=25, seed=9)
            sim = Simulation(cfg, get_scheme("fastpass", n_vcs=2), tr)
            res = sim.run_to_completion(100000)
            return res.cycles, res.avg_latency, tr.completed

        assert run() == run()

    def test_open_loop_seed_sensitivity(self, small_cfg):
        def run(seed):
            sim = Simulation(small_cfg, get_scheme("escapevc"),
                             SyntheticTraffic("uniform", 0.08, seed=seed))
            return sim.run().avg_latency

        assert run(1) != run(2)

    def test_fastpass_fixture_deterministic(self, fastpass_sim):
        a = fastpass_sim(rate=0.05).run()
        b = fastpass_sim(rate=0.05).run()
        assert a.ejected > 0
        assert (a.avg_latency, a.ejected) == (b.avg_latency, b.ejected)


class TestRunModes:
    def test_run_to_completion_respects_cap(self):
        cfg = SimConfig(rows=4, cols=4, fastpass_slot_cycles=64)
        tr = CoherenceTraffic(txns_per_core=10 ** 6, seed=1)   # impossible
        sim = Simulation(cfg, get_scheme("escapevc"), tr)
        res = sim.run_to_completion(500)
        assert res.cycles == 500
        assert not tr.done()

    def test_open_loop_result_has_rate_metadata(self, small_cfg):
        from repro.sim.runner import run_point
        res = run_point("escapevc", "uniform", 0.05, small_cfg)
        assert res.extra["pattern"] == "uniform"
        assert res.extra["rate"] == 0.05
        assert "undelivered" in res.extra

    def test_nan_latency_when_no_traffic(self, small_cfg, caplog):
        import logging
        sim = Simulation(small_cfg, get_scheme("escapevc"),
                         SyntheticTraffic("uniform", 0.0, seed=1))
        with caplog.at_level(logging.WARNING, logger="repro.sim.stats"):
            res = sim.run()
        assert res.avg_latency != res.avg_latency
        assert res.ejected == 0
        # The empty measurement window is reported, not silently NaN.
        assert any("zero measured packets" in rec.message
                   for rec in caplog.records)

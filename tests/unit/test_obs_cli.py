"""End-to-end tests of ``repro-experiments obs`` and the run_point /
campaign-worker metrics wiring."""

import json

import pytest

from repro.experiments.cli import main as cli_main

from tests.unit.test_obs_exporters import parse_prometheus

SMALL = ["--rows", "4", "--cols", "4", "--rate", "0.06",
         "--warmup", "50", "--measure", "200"]


@pytest.fixture(autouse=True)
def _results_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


class TestObsCli:
    def test_report_prints_counters(self, capsys):
        assert cli_main(["obs", "report", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "noc_generated_total" in out
        assert "latency histogram" in out
        assert "metrics artifact:" in out

    def test_export_prometheus_parses(self, capsys):
        assert cli_main(["obs", "export", *SMALL,
                         "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        samples, helps, types = parse_prometheus(out)
        gen = samples[("noc_generated_total", ())]
        assert gen > 0
        assert types["noc_packet_latency_cycles"] == "histogram"
        # bucket series is cumulative and ends at +Inf == _count
        inf = samples[("noc_packet_latency_cycles_bucket",
                       (("le", "+Inf"),))]
        assert inf == samples[("noc_packet_latency_cycles_count", ())]

    def test_export_json_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "snap.json"
        assert cli_main(["obs", "export", *SMALL, "--format", "json",
                         "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["kind"] == "repro-metrics"
        assert payload["metrics"]["counters"]["noc_generated_total"] > 0
        assert payload["series"]          # sampling on by default cadence

    def test_artifact_written_under_results_dir(self, _results_dir,
                                                capsys):
        assert cli_main(["obs", "report", *SMALL]) == 0
        files = list((_results_dir / "metrics").glob("metrics_*.json"))
        assert len(files) == 1


class TestRunPointMetrics:
    def test_run_point_metrics_artifact_and_extra(self, _results_dir):
        from repro.config import SimConfig
        from repro.sim.runner import run_point

        cfg = SimConfig(rows=4, cols=4, warmup_cycles=50,
                        measure_cycles=200, fastpass_slot_cycles=64)
        res = run_point("fastpass", "uniform", 0.06, cfg, metrics=50)
        meta = res.extra["metrics"]
        assert meta["events"] > 0
        assert meta["counters"]["noc_generated_total"] > 0
        from pathlib import Path
        artifact = Path(meta["path"])
        assert artifact.parent == _results_dir / "metrics"
        payload = json.loads(artifact.read_text())
        assert payload["kind"] == "repro-metrics"
        assert payload["series"]["noc_packets_in_flight"]["cycles"]

    def test_run_point_metrics_is_result_neutral(self):
        from repro.config import SimConfig
        from repro.sim.runner import run_point

        cfg = SimConfig(rows=4, cols=4, warmup_cycles=50,
                        measure_cycles=200, fastpass_slot_cycles=64)
        plain = run_point("fastpass", "uniform", 0.06, cfg)
        inst = run_point("fastpass", "uniform", 0.06, cfg, metrics=True)
        assert plain.avg_latency == inst.avg_latency
        assert plain.ejected == inst.ejected
        assert plain.cycles == inst.cycles

    def test_worker_env_opt_in(self, monkeypatch, _results_dir):
        from repro.campaign.worker import execute_point
        from repro.config import SimConfig
        from repro.sim.parallel import Point

        monkeypatch.setenv("REPRO_METRICS", "100")
        cfg = SimConfig(rows=4, cols=4, warmup_cycles=50,
                        measure_cycles=200, fastpass_slot_cycles=64)
        point = Point(scheme="fastpass", scheme_kwargs=(("n_vcs", 2),),
                      pattern="uniform", rate=0.06)
        res = execute_point(point, cfg)
        assert "metrics" in res.extra
        assert (_results_dir / "metrics").exists()

    def test_worker_defaults_to_no_metrics(self, monkeypatch,
                                           _results_dir):
        from repro.campaign.worker import execute_point
        from repro.config import SimConfig
        from repro.sim.parallel import Point

        monkeypatch.delenv("REPRO_METRICS", raising=False)
        cfg = SimConfig(rows=4, cols=4, warmup_cycles=50,
                        measure_cycles=200, fastpass_slot_cycles=64)
        point = Point(scheme="fastpass", scheme_kwargs=(("n_vcs", 2),),
                      pattern="uniform", rate=0.06)
        res = execute_point(point, cfg)
        assert "metrics" not in res.extra
        assert not (_results_dir / "metrics").exists()

"""Unit tests for statistics collection."""

from repro.network.packet import MessageClass, Packet
from repro.sim.stats import StatsCollector, percentile


class TestPercentile:
    def test_empty_is_nan(self):
        assert percentile([], 99) != percentile([], 99)

    def test_single_value(self):
        assert percentile([7], 50) == 7
        assert percentile([7], 99) == 7

    def test_median_of_ten(self):
        vals = list(range(1, 11))
        assert percentile(vals, 50) == 5

    def test_p99_of_100(self):
        vals = list(range(1, 101))
        assert percentile(vals, 99) == 99

    def test_p100_is_max(self):
        assert percentile([1, 5, 9], 100) == 9


def _pkt(gen=0, eject=10, fastpass=False, upgrade=-1, measured=True,
         mclass=MessageClass.REQUEST):
    p = Packet(0, 1, mclass, gen)
    p.eject_cycle = eject
    p.was_fastpass = fastpass
    p.fp_upgrade = upgrade
    p.measured = measured
    return p


class TestStatsCollector:
    def test_counts_all_ejections(self):
        s = StatsCollector()
        s.record_ejected(_pkt(measured=False))
        s.record_ejected(_pkt())
        assert s.ejected_total == 2
        assert s.ejected_measured == 1

    def test_latency_only_for_measured(self):
        s = StatsCollector()
        s.record_ejected(_pkt(gen=0, eject=50, measured=False))
        s.record_ejected(_pkt(gen=0, eject=10))
        assert s.avg_latency() == 10

    def test_fastpass_split(self):
        s = StatsCollector()
        s.record_ejected(_pkt(gen=0, eject=30, fastpass=True, upgrade=20))
        assert s.fp_buffered == [20]
        assert s.fp_bufferless == [10]
        assert s.fastpass_delivered == 1
        assert s.reg_latencies == []

    def test_regular_latency_tracked_separately(self):
        s = StatsCollector()
        s.record_ejected(_pkt(gen=0, eject=12))
        assert s.reg_latencies == [12]
        assert s.regular_delivered == 1

    def test_per_class_counts(self):
        s = StatsCollector()
        s.record_ejected(_pkt(mclass=MessageClass.RESPONSE))
        s.record_ejected(_pkt(mclass=MessageClass.RESPONSE))
        s.record_ejected(_pkt(mclass=MessageClass.REQUEST))
        assert s.per_class_ejected[MessageClass.RESPONSE] == 2
        assert s.per_class_ejected[MessageClass.REQUEST] == 1

    def test_throughput(self):
        s = StatsCollector()
        for _ in range(100):
            s.record_ejected(_pkt())
        assert s.throughput(n_nodes=10, cycles=100) == 0.1

    def test_throughput_zero_cycles(self):
        assert StatsCollector().throughput(10, 0) == 0.0

    def test_p99(self):
        s = StatsCollector()
        for i in range(1, 101):
            s.record_ejected(_pkt(gen=0, eject=i))
        assert s.p99_latency() == 99

    def test_mean_empty_is_nan(self):
        s = StatsCollector()
        assert s.mean([]) != s.mean([])


class TestNaNSafety:
    def test_percentile_skips_nan_samples(self):
        nan = float("nan")
        assert percentile([1.0, 2.0, 3.0, nan], 100) == 3.0
        assert percentile(sorted([nan, 5.0]), 50) == 5.0

    def test_percentile_all_nan_is_nan(self):
        nan = float("nan")
        assert percentile([nan, nan], 99) != percentile([nan, nan], 99)

    def test_mean_skips_nan_samples(self):
        s = StatsCollector()
        assert s.mean([2.0, float("nan"), 4.0]) == 3.0

    def test_warn_if_empty_logs(self, caplog):
        import logging
        s = StatsCollector()
        with caplog.at_level(logging.WARNING, logger="repro.sim.stats"):
            assert s.warn_if_empty("TestScheme")
        assert any("zero measured packets" in rec.message
                   for rec in caplog.records)

    def test_warn_if_empty_quiet_when_measured(self, caplog):
        import logging
        s = StatsCollector()
        s.record_ejected(_pkt())
        with caplog.at_level(logging.WARNING, logger="repro.sim.stats"):
            assert not s.warn_if_empty("TestScheme")
        assert not caplog.records

"""Unit tests for the scenario traffic source (fill semantics)."""

from types import SimpleNamespace

import pytest

from repro.network.topology import Mesh
from repro.scenario.source import ScenarioTraffic
from repro.scenario.spec import BurstSpec, PhaseSpec, ScenarioSpec


def stub_net(rows=4, cols=4):
    """The minimal network surface ``bind``/``_fill`` touch."""
    return SimpleNamespace(mesh=Mesh(rows, cols))


def bound(spec, seed=1, rows=4, cols=4):
    t = ScenarioTraffic(spec, seed=seed)
    t.bind(stub_net(rows, cols))
    return t


def drain_fills(t, until):
    """Run fills over [0, until) and return the raw event stream."""
    while t._chunk_end < until:
        t._fill(t._chunk_end)
    return dict(t._by_cycle)


class TestFillClamping:
    def test_fill_clamps_at_phase_boundary(self):
        spec = ScenarioSpec("clamp", (PhaseSpec(duration=300, rate=0.05),
                                      PhaseSpec(duration=212, rate=0.05)))
        t = bound(spec)
        t._fill(0)
        assert t._chunk_end == 256          # CHUNK within the phase
        t._fill(256)
        assert t._chunk_end == 300          # clamped at the boundary
        t._fill(300)
        assert t._chunk_end == 512          # next phase, clamped at 512
        t._fill(512)
        assert t._chunk_end == 768          # wrapped, full chunk again

    def test_aligned_spec_fills_are_full_chunks(self):
        spec = ScenarioSpec("al", (PhaseSpec(duration=256, rate=0.05),
                                   PhaseSpec(duration=512, rate=0.05)))
        t = bound(spec)
        for start in range(0, 2048, 256):
            t._fill(start)
            assert t._chunk_end == start + 256

    def test_counts_match_events(self):
        t = bound(ScenarioSpec("c", (PhaseSpec(duration=256, rate=0.2),)))
        t._fill(0)
        for cyc in range(256):
            staged = len(t._by_cycle.get(cyc, ()))
            assert staged == t._chunk_counts[cyc]


class TestPatternsAndHotspots:
    def test_phase_pattern_respected(self):
        spec = ScenarioSpec("pat", (
            PhaseSpec(duration=256, pattern="transpose", rate=0.3),))
        t = bound(spec)
        events = drain_fills(t, 256)
        n, cols = 16, 4
        assert events
        for evs in events.values():
            for src, dst, _cls in evs:
                x, y = src % cols, src // cols
                assert dst == x * cols + y

    def test_hotspot_redirection(self):
        spec = ScenarioSpec("hot", (
            PhaseSpec(duration=1024, rate=0.3, hotspot_frac=1.0,
                      hotspots=((5, 1.0),)),))
        t = bound(spec)
        events = drain_fills(t, 1024)
        dsts = [dst for evs in events.values() for _s, dst, _c in evs]
        assert dsts and set(dsts) == {5}

    def test_hotspot_fraction_partial(self):
        spec = ScenarioSpec("hot2", (
            PhaseSpec(duration=4096, rate=0.3, hotspot_frac=0.5,
                      hotspots=((5, 1.0),)),))
        t = bound(spec)
        events = drain_fills(t, 4096)
        dsts = [dst for evs in events.values() for _s, dst, _c in evs]
        frac = sum(1 for d in dsts if d == 5) / len(dsts)
        # ~0.5 plus the uniform background's 1/15 share landing on 5
        assert 0.4 < frac < 0.7

    def test_no_self_traffic(self):
        spec = ScenarioSpec("self", (
            PhaseSpec(duration=1024, rate=0.3, hotspot_frac=1.0,
                      hotspots=((0, 1.0),)),))
        t = bound(spec)
        events = drain_fills(t, 1024)
        for evs in events.values():
            for src, dst, _cls in evs:
                assert src != dst

    def test_hotspot_out_of_range_rejected_at_bind(self):
        spec = ScenarioSpec("big", (
            PhaseSpec(duration=256, rate=0.1, hotspot_frac=0.5,
                      hotspots=((40, 1.0),)),))
        t = ScenarioTraffic(spec)
        with pytest.raises(ValueError, match="out of range"):
            t.bind(stub_net(4, 4))
        # but fine on a mesh large enough
        ScenarioTraffic(spec).bind(stub_net(8, 8))


class TestBurstModulation:
    def test_burst_produces_fewer_events_than_steady(self):
        steady = ScenarioSpec("s", (PhaseSpec(duration=4096, rate=0.2),))
        bursty = ScenarioSpec("b", (
            PhaseSpec(duration=4096, rate=0.2,
                      burst=BurstSpec(on_cycles=32, off_cycles=96,
                                      off_scale=0.0)),))
        n_steady = sum(len(v) for v in
                       drain_fills(bound(steady, seed=9), 4096).values())
        n_burst = sum(len(v) for v in
                      drain_fills(bound(bursty, seed=9), 4096).values())
        assert n_burst < 0.7 * n_steady

    def test_burst_chain_continues_across_fills(self):
        """State must persist between the 256-cycle fills of one long
        phase occurrence — a chain reset every fill would inflate the
        on-time far above the duty cycle."""
        spec = ScenarioSpec("dwell", (
            PhaseSpec(duration=65536, rate=1.0,
                      burst=BurstSpec(on_cycles=16, off_cycles=1024,
                                      off_scale=0.0)),))
        t = bound(spec, seed=3)
        events = drain_fills(t, 65536)
        busy = sum(1 for evs in events.values() if evs)
        duty = BurstSpec(16, 1024).duty
        # a per-fill reset would put every fill ~16/256 on => busy share
        # >= ~6%; the true duty is ~1.5%
        assert busy / 65536 < 2.5 * duty


class TestDeterminism:
    def test_same_seed_same_stream(self):
        spec = ScenarioSpec("det", (
            PhaseSpec(duration=512, rate=0.1,
                      burst=BurstSpec(16, 48, 0.2)),
            PhaseSpec(duration=256, pattern="shuffle", rate=0.05),
            PhaseSpec(duration=256, rate=0.08, hotspot_frac=0.4,
                      hotspots=((3, 1.0), (12, 2.0))),))
        a = drain_fills(bound(spec, seed=42), 4096)
        b = drain_fills(bound(spec, seed=42), 4096)
        assert a == b

    def test_different_seed_different_stream(self):
        spec = ScenarioSpec("det2", (PhaseSpec(duration=512, rate=0.1),))
        a = drain_fills(bound(spec, seed=1), 2048)
        b = drain_fills(bound(spec, seed=2), 2048)
        assert a != b

    def test_pattern_and_rate_surface(self):
        spec = ScenarioSpec("meta", (PhaseSpec(duration=256, rate=0.1),))
        t = ScenarioTraffic(spec)
        assert t.pattern == "scenario:meta"
        assert t.rate == pytest.approx(spec.mean_rate())

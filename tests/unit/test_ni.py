"""Unit tests for network interfaces: injection/ejection queues,
reservations, and the dynamic-bubble dropping machinery."""

import pytest

from repro.network.ni import EjectionQueue
from repro.network.packet import MessageClass, Packet
from tests.conftest import inject_now, make_network


@pytest.fixture
def net(small_cfg):
    return make_network(small_cfg, routing="xy")


class TestEjectionQueue:
    def test_accepts_until_cap(self):
        q = EjectionQueue(cap=2)
        a, b, c = (Packet(0, 1, 0, 0) for _ in range(3))
        assert q.can_accept(a)
        q.push(a)
        assert q.can_accept(b)
        q.push(b)
        assert not q.can_accept(c)

    def test_reservation_blocks_regular_arrivals(self):
        q = EjectionQueue(cap=2)
        reserved = Packet(0, 1, 0, 0)
        other = Packet(0, 1, 0, 0)
        q.push(Packet(0, 1, 0, 0))
        q.reserve(reserved)
        # one slot physically free, but it is spoken for
        assert not q.can_accept(other)
        assert q.can_accept(reserved)

    def test_push_clears_reservation(self):
        q = EjectionQueue(cap=2)
        pkt = Packet(0, 1, 0, 0)
        q.reserve(pkt)
        q.push(pkt)
        assert pkt.pid not in q.reservations

    def test_multiple_reservations(self):
        q = EjectionQueue(cap=3)
        r1, r2 = Packet(0, 1, 0, 0), Packet(0, 1, 0, 0)
        q.reserve(r1)
        q.reserve(r2)
        q.push(Packet(0, 1, 0, 0))
        assert not q.can_accept(Packet(0, 1, 0, 0))
        assert q.can_accept(r1)


class TestInjection:
    def test_injection_enters_local_vc(self, net):
        pkt = inject_now(net, 0, 5, MessageClass.REQUEST)
        net.step()
        net.step()
        assert pkt.net_entry >= 0
        assert net.stats.injected == 1

    def test_bounded_class_queue_backpressure(self, net):
        cap = net.cfg.inj_queue_pkts
        ni = net.nis[0]
        for _ in range(cap + 3):
            inject_now(net, 0, 5, MessageClass.REQUEST)
        ni.inject_step(net.cycle)
        assert len(ni.inj[MessageClass.REQUEST]) <= cap
        assert len(ni.pending) >= 2

    def test_injection_port_serializes(self, net):
        inject_now(net, 0, 5, MessageClass.RESPONSE)   # 5 flits
        net.step()
        ni = net.nis[0]
        assert ni.inj_busy_until == 5          # streaming for 5 cycles
        # A second packet cannot enter the network while streaming.
        late = inject_now(net, 0, 5, MessageClass.REQUEST)
        net.step()
        assert late.net_entry == -1

    def test_round_robin_across_classes(self, net):
        a = inject_now(net, 0, 5, MessageClass.REQUEST)
        b = inject_now(net, 0, 5, MessageClass.RESPONSE)
        for _ in range(20):
            net.step()
        assert a.net_entry >= 0 and b.net_entry >= 0


class TestDynamicBubble:
    def test_make_bubble_drops_a_request(self, net):
        ni = net.nis[0]
        for _ in range(net.cfg.inj_queue_pkts):
            inject_now(net, 0, 5, MessageClass.REQUEST)
        ni.inject_step(0)
        before = len(ni.inj[MessageClass.REQUEST])
        assert ni.make_bubble(now=0)
        assert len(ni.inj[MessageClass.REQUEST]) == before - 1
        assert ni.dropped == 1
        assert net.stats.dropped == 1

    def test_dropped_request_regenerated(self, net):
        ni = net.nis[0]
        pkt = Packet(0, 5, MessageClass.REQUEST, 0)
        ni.inj[MessageClass.REQUEST].append(pkt)
        assert ni.make_bubble(now=net.cycle)
        for _ in range(net.cfg.mshr_regen_cycles + 3):
            net.step()
        assert ni.regenerated == 1
        assert pkt.drop_count == 1

    def test_rejected_packets_never_dropped(self, net):
        ni = net.nis[0]
        for _ in range(2):
            p = Packet(0, 5, MessageClass.REQUEST, 0)
            p.rejected = True
            ni.inj[MessageClass.REQUEST].append(p)
        assert not ni.make_bubble(now=0)
        assert ni.dropped == 0

    def test_accept_bounced_goes_to_queue_head(self, net):
        ni = net.nis[0]
        regular = Packet(0, 5, MessageClass.REQUEST, 0)
        ni.inj[MessageClass.REQUEST].append(regular)
        bounced = Packet(0, 9, MessageClass.RESPONSE, 0)
        ni.accept_bounced(bounced, now=10)
        q = ni.inj[MessageClass.REQUEST]
        assert q[0] is bounced
        assert bounced.rejected

    def test_accept_bounced_makes_bubble_when_full(self, net):
        ni = net.nis[0]
        cap = net.cfg.inj_queue_pkts
        for _ in range(cap):
            ni.inj[MessageClass.REQUEST].append(
                Packet(0, 5, MessageClass.REQUEST, 0))
        bounced = Packet(0, 9, MessageClass.RESPONSE, 0)
        ni.accept_bounced(bounced, now=10)
        assert ni.dropped == 1
        assert ni.inj[MessageClass.REQUEST][0] is bounced

    def test_injection_clears_rejected_flag(self, net):
        ni = net.nis[0]
        bounced = Packet(0, 5, MessageClass.REQUEST, 0)
        ni.accept_bounced(bounced, now=0)
        for _ in range(10):
            net.step()
        assert bounced.net_entry >= 0
        assert not bounced.rejected   # travelling as a regular packet now


class TestLocalDelivery:
    def test_local_consumer_notified(self, net):
        seen = []

        class Consumer:
            def on_local(self, ni, pkt):
                seen.append(pkt)

            def consume(self, ni, now):
                pass

        net.nis[3].consumer = Consumer()
        pkt = inject_now(net, 3, 3, MessageClass.RESPONSE)
        assert seen == [pkt]

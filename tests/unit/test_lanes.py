"""Unit tests for FastPass-Lane geometry and the non-overlap claims."""

import pytest

from repro.core import lanes
from repro.core.schedule import TdmSchedule
from repro.network.topology import Mesh


@pytest.fixture
def mesh():
    return Mesh(4, 4)


class TestPaths:
    def test_forward_path_is_xy(self, mesh):
        path = lanes.forward_path(mesh, mesh.rid(0, 0), mesh.rid(2, 2))
        assert path == mesh.xy_path(mesh.rid(0, 0), mesh.rid(2, 2))

    def test_return_path_is_yx(self, mesh):
        path = lanes.return_path(mesh, mesh.rid(2, 2), mesh.rid(0, 0))
        assert path == mesh.yx_path(mesh.rid(2, 2), mesh.rid(0, 0))

    def test_forward_and_return_disjoint_same_lane(self, mesh):
        """Within one lane, forward and returning paths never share a
        directed link (Fig. 4)."""
        for prime in range(mesh.n_routers):
            for tcol in range(mesh.cols):
                fwd = lanes.lane_links(mesh, prime, tcol)
                ret = lanes.return_links(mesh, prime, tcol)
                assert not (fwd & ret)


class TestLaneLinks:
    def test_lane_covers_target_column(self, mesh):
        links = lanes.lane_links(mesh, mesh.rid(0, 0), 2)
        dsts = {mesh.neighbor(rid, port) for rid, port in links}
        for row in range(4):
            assert mesh.rid(2, row) in dsts

    def test_own_partition_lane_is_column_only(self, mesh):
        prime = mesh.rid(1, 2)
        links = lanes.lane_links(mesh, prime, 1)
        for rid, port in links:
            x, _y = mesh.xy(rid)
            assert x == 1   # never leaves the column


class TestNonOverlap:
    def test_diagonal_primes_all_slots(self, mesh):
        sched = TdmSchedule(4, 4, 10)
        for phase in range(4):
            primes = sched.primes(phase)
            for slot in range(4):
                targets = [sched.target_partition(c, slot)
                           for c in range(4)]
                lanes.verify_slot_nonoverlap(mesh, primes, targets)

    def test_same_row_primes_do_overlap(self, mesh):
        """Sanity check that the verifier can fail: primes sharing a row
        produce overlapping lanes."""
        bad_primes = [mesh.rid(c, 0) for c in range(4)]  # all in row 0
        targets = [(c + 1) % 4 for c in range(4)]
        with pytest.raises(AssertionError):
            lanes.verify_slot_nonoverlap(mesh, bad_primes, targets)

    def test_same_target_columns_do_overlap(self, mesh):
        primes = [mesh.rid(c, c) for c in range(4)]
        with pytest.raises(AssertionError):
            lanes.verify_slot_nonoverlap(mesh, primes, [0, 0, 1, 2])


class TestCoverage:
    def test_full_rotation_covers_everything(self, mesh):
        sched = TdmSchedule(4, 4, 10)
        assert lanes.lanes_cover_network(mesh, sched)

    def test_coverage_8x8(self):
        mesh = Mesh(8, 8)
        sched = TdmSchedule(8, 8, 10)
        assert lanes.lanes_cover_network(mesh, sched)

"""Unit tests for trace record/replay artifacts and schema handling."""

import json

import pytest

from repro.config import SimConfig
from repro.scenario.runner import record_scenario, replay_trace
from repro.scenario.spec import PhaseSpec, ScenarioSpec
from repro.scenario.trace import (TRACE_SCHEMA, TraceReplay,
                                  TraceSchemaError, load_trace)


def small_spec():
    return ScenarioSpec("tiny", (PhaseSpec(duration=256, rate=0.05),))


def cfg4():
    return SimConfig(rows=4, cols=4, warmup_cycles=50, measure_cycles=200,
                     drain_cycles=800, watchdog_cycles=600,
                     fastpass_slot_cycles=64)


@pytest.fixture
def trace_path(tmp_path):
    _res, path = record_scenario("fastpass", small_spec(), cfg4(),
                                 tmp_path / "t.jsonl", seed=7)
    return path


class TestArtifact:
    def test_header_fields(self, trace_path):
        header, events = load_trace(trace_path)
        assert header["format"] == "repro-trace"
        assert header["schema"] == TRACE_SCHEMA
        assert header["mesh"] == [4, 4]
        assert header["label"] == "tiny"
        assert header["seed"] == 7
        assert header["scenario"] == "tiny"
        assert header["events"] == len(events)
        assert events, "recording captured nothing"

    def test_events_sorted_by_generation_order(self, trace_path):
        _header, events = load_trace(trace_path)
        cycles = [e[0] for e in events]
        assert cycles == sorted(cycles)

    def test_round_trip_values(self, trace_path):
        _header, events = load_trace(trace_path)
        for cycle, src, dst, mclass in events:
            assert 0 <= src < 16 and 0 <= dst < 16 and src != dst
            assert cycle >= 0 and 0 <= mclass < 6


class TestSchemaErrors:
    def test_schema_bump_fails_loudly(self, trace_path, tmp_path):
        lines = trace_path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema"] = TRACE_SCHEMA + 1
        bumped = tmp_path / "bumped.jsonl"
        bumped.write_text("\n".join([json.dumps(header)] + lines[1:])
                          + "\n")
        with pytest.raises(TraceSchemaError) as err:
            load_trace(bumped)
        msg = str(err.value)
        assert f"schema {TRACE_SCHEMA + 1}" in msg
        assert f"schema {TRACE_SCHEMA}" in msg

    def test_not_a_trace_file(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(TraceSchemaError, match="format marker"):
            load_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceSchemaError, match="empty"):
            load_trace(path)

    def test_garbage_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(TraceSchemaError, match="unreadable header"):
            load_trace(path)

    def test_truncated_trace_detected(self, trace_path, tmp_path):
        lines = trace_path.read_text().splitlines()
        cut = tmp_path / "cut.jsonl"
        cut.write_text("\n".join(lines[:-3]) + "\n")
        with pytest.raises(TraceSchemaError, match="truncated"):
            load_trace(cut)

    def test_bad_event_line(self, trace_path, tmp_path):
        lines = trace_path.read_text().splitlines()
        lines[1] = "[1, 2]"
        bad = tmp_path / "badev.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceSchemaError, match="bad event line"):
            load_trace(bad)


class TestReplaySource:
    def test_replay_reproduces_recorded_run(self, tmp_path):
        res, path = record_scenario("fastpass", small_spec(), cfg4(),
                                    tmp_path / "t.jsonl", seed=11)
        rep = replay_trace("fastpass", path, cfg4())
        assert rep.ejected == res.ejected
        assert rep.avg_latency == res.avg_latency
        assert rep.throughput == res.throughput

    def test_mesh_mismatch_rejected(self, trace_path):
        replay = TraceReplay.from_file(trace_path)
        big = cfg4().with_(rows=8, cols=8)
        with pytest.raises(ValueError, match="4x4 mesh"):
            replay_trace("fastpass", replay, big)

    def test_out_of_range_event_rejected(self, tmp_path):
        header = {"format": "repro-trace", "schema": TRACE_SCHEMA,
                  "mesh": [4, 4], "label": "x", "events": 1}
        path = tmp_path / "oob.jsonl"
        path.write_text(json.dumps(header) + "\n[0, 0, 99, 0]\n")
        with pytest.raises(ValueError, match="out of range"):
            replay_trace("fastpass", path, cfg4())

    def test_pattern_identity(self, trace_path):
        replay = TraceReplay.from_file(trace_path)
        assert replay.pattern == "trace:tiny"
        assert replay.rate > 0

"""Unit tests for experiment-module helper functions (no simulation)."""

import math

from repro.experiments.fig7 import saturation_of
from repro.experiments.fig10 import _avg
from repro.experiments.fig13 import _breakdown
from repro.config import RunResult


class TestSaturationOf:
    def test_empty(self):
        assert saturation_of([]) == 0.0

    def test_never_saturates(self):
        pts = [(0.02, 10.0, False), (0.06, 12.0, False)]
        assert saturation_of(pts) == 0.06

    def test_deadlock_stops(self):
        pts = [(0.02, 10.0, False), (0.06, 11.0, True)]
        assert saturation_of(pts) == 0.02

    def test_nan_latency_stops(self):
        pts = [(0.02, 10.0, False), (0.06, float("nan"), False)]
        assert saturation_of(pts) == 0.02

    def test_explicit_zero_load(self):
        pts = [(0.02, 50.0, False), (0.06, 70.0, False)]
        assert saturation_of(pts, zero_load=10.0) == 0.02
        # first point itself above 3x zero-load: saturation pinned there
        assert saturation_of(pts, zero_load=30.0) == 0.06


class TestFig10Avg:
    def test_skips_nan(self):
        d = {"a": {"s": 1.0}, "b": {"s": float("nan")}, "c": {"s": 3.0}}
        assert _avg(d, ["a", "b", "c"], "s") == 2.0

    def test_all_nan_is_nan(self):
        d = {"a": {"s": float("nan")}}
        assert math.isnan(_avg(d, ["a"], "s"))


class TestFig13Breakdown:
    def _res(self, reg, fp, drop):
        r = RunResult(scheme="x")
        r.regular_delivered = reg
        r.fastpass_delivered = fp
        r.dropped = drop
        return r

    def test_fractions_sum_to_one(self):
        b = _breakdown(self._res(70, 25, 5))
        assert abs(b["regular"] + b["fastpass"] + b["dropped"] - 1) < 1e-12
        assert b["dropped"] == 0.05

    def test_empty_run(self):
        b = _breakdown(self._res(0, 0, 0))
        assert b == {"regular": 1.0, "fastpass": 0.0, "dropped": 0.0}

"""Unit tests for runtime fault application: one activation-window test
per fault kind, plus reroute installation and cache invalidation."""

from repro.config import SimConfig
from repro.fault.injector import FOREVER, FaultInjector, RerouteTable
from repro.fault.plan import (
    EJECT_FREEZE,
    FaultEvent,
    FaultPlan,
    LINK_FLAP,
    LOOKAHEAD_CORRUPT,
    LOOKAHEAD_DROP,
    PORT_STALL,
    link_cut,
)
from repro.network.packet import Packet
from repro.network.topology import PORT_E, PORT_LOCAL, PORT_S

from tests.conftest import make_network


def _cfg(**kw) -> SimConfig:
    return SimConfig(rows=4, cols=4, **kw)


def _net_with(plan, scheme=None):
    net = make_network(_cfg(fault_plan=plan), scheme=scheme)
    assert isinstance(net.faults, FaultInjector)
    return net


def _run_to(net, cycle):
    while net.cycle <= cycle:
        net.step()


class TestActivationWindows:
    def test_link_fail_is_permanent(self):
        net = _net_with(link_cut(5, PORT_E, at=10))
        link = net.link_for(5, PORT_E)
        _run_to(net, 9)
        assert link.busy_until < FOREVER
        assert not net.fault_exposed
        _run_to(net, 11)
        assert link.busy_until >= FOREVER
        assert net.faults.link_dead(5, PORT_E)
        assert net.fault_exposed
        _run_to(net, 500)
        assert link.busy_until >= FOREVER  # never recovers

    def test_link_flap_recovers(self):
        plan = FaultPlan(events=(FaultEvent(LINK_FLAP, 10, 5, PORT_E, 40),))
        net = _net_with(plan)
        link = net.link_for(5, PORT_E)
        _run_to(net, 11)
        assert link.busy_until >= FOREVER
        assert net.faults.link_dead(5, PORT_E)
        _run_to(net, 50)   # recovery applies at cycle until == 50
        assert link.busy_until < FOREVER
        assert not net.faults.link_dead(5, PORT_E)
        assert not net.fault_exposed

    def test_port_stall_window(self):
        plan = FaultPlan(events=(FaultEvent(PORT_STALL, 20, 6, PORT_S, 15),))
        net = _net_with(plan)
        router = net.routers[6]
        _run_to(net, 19)
        assert router.in_busy[PORT_S] <= 19
        _run_to(net, 21)
        assert router.in_busy[PORT_S] == 35   # at + duration
        _run_to(net, 40)
        assert not net.fault_exposed          # expired

    def test_eject_freeze_window(self):
        plan = FaultPlan(events=(FaultEvent(EJECT_FREEZE, 30, 9, -1, 25),))
        net = _net_with(plan)
        _run_to(net, 31)
        assert net.routers[9].eject_busy_until == 55
        assert net.fault_exposed

    def test_lookahead_drop_blocks_lane(self):
        plan = FaultPlan(
            events=(FaultEvent(LOOKAHEAD_DROP, 10, 5, PORT_E, 50),))
        net = _net_with(plan)
        _run_to(net, 11)
        faults = net.faults
        # Lane 4 -> 7 crosses the 5 --E--> 6 hop while its lookahead is
        # dark; the prime must refuse the launch.
        assert not faults.lane_ok(prime=4, dst=7, now=net.cycle, size=1)
        assert faults.lane_skips == 1
        # A lane avoiding that hop stays trusted.
        assert faults.lane_ok(prime=8, dst=12, now=net.cycle, size=1)
        _run_to(net, 70)
        assert faults.lane_ok(prime=4, dst=7, now=net.cycle, size=1)

    def test_lookahead_corrupt_phantom_busy(self):
        plan = FaultPlan(
            events=(FaultEvent(LOOKAHEAD_CORRUPT, 10, 5, PORT_E, 30),))
        net = _net_with(plan)
        link = net.link_for(5, PORT_E)
        _run_to(net, 11)
        assert link.busy_until == 40          # at + duration, not forever
        assert not net.faults.link_dead(5, PORT_E)

    def test_summary_counts(self):
        plan = FaultPlan(events=(
            FaultEvent(PORT_STALL, 5, 1, PORT_E, 10),
            FaultEvent(PORT_STALL, 6, 2, PORT_E, 10),
            FaultEvent(LINK_FLAP, 7, 5, PORT_E, 10),
        ))
        net = _net_with(plan)
        _run_to(net, 8)
        s = net.faults.summary()
        assert s["applied"] == {"link_flap": 1, "port_stall": 2}
        assert s["pending"] == 0
        assert s["plan_events"] == 3


class TestDegradation:
    def test_reroute_installed_for_capable_scheme(self):
        from repro.schemes import get_scheme
        net = _net_with(link_cut(5, PORT_E, at=10),
                        scheme=get_scheme("escapevc"))
        assert net.reroute is None
        _run_to(net, 11)
        assert isinstance(net.reroute, RerouteTable)
        # Shortest surviving routes from 5 to 6 dodge the dead East link.
        assert PORT_E not in net.reroute.ports(5, 6)
        assert net.reroute.ports(5, 6)

    def test_no_reroute_for_baseline(self):
        net = _net_with(link_cut(5, PORT_E, at=10))  # bare net, no scheme
        _run_to(net, 11)
        assert net.reroute is None

    def test_reroute_removed_after_flap_heals(self):
        from repro.schemes import get_scheme
        plan = FaultPlan(events=(FaultEvent(LINK_FLAP, 10, 5, PORT_E, 20),))
        net = _net_with(plan, scheme=get_scheme("escapevc"))
        _run_to(net, 11)
        assert net.reroute is not None
        _run_to(net, 31)
        assert net.reroute is None

    def test_route_caches_invalidated_on_activation(self):
        net = _net_with(link_cut(5, PORT_E, at=10))
        router = net.routers[5]
        pkt = Packet(5, 6, 0, 0)
        slot = router.slots[0][0]
        slot.pkt = pkt
        slot.ready_at = FOREVER   # parked: keep it out of the switch
        router.occupied.append(slot)
        pkt.set_route_cache(5, ((PORT_E, (0,)),))
        _run_to(net, 11)
        assert pkt.route_cache(5) is None

    def test_buffered_packets_marked_exposed(self):
        net = _net_with(link_cut(5, PORT_E, at=10))
        router = net.routers[8]
        pkt = Packet(8, 3, 0, 0)
        slot = router.slots[0][0]
        slot.pkt = pkt
        slot.ready_at = FOREVER   # parked: keep it out of the switch
        router.occupied.append(slot)
        assert not pkt.fault_exposed
        _run_to(net, 11)
        assert pkt.fault_exposed

    def test_lane_ok_blocks_dead_forward_and_return(self):
        net = _net_with(link_cut(5, PORT_E, at=0))
        net.step()
        faults = net.faults
        # Forward XY path 4 -> 7 crosses 5 --E--> 6.
        assert not faults.lane_ok(prime=4, dst=7, now=net.cycle, size=1)
        # Lanes not touching the dead link stay usable.
        assert faults.lane_ok(prime=0, dst=12, now=net.cycle, size=1)


class TestRerouteTable:
    def test_avoids_dead_link(self, mesh4):
        table = RerouteTable(mesh4, {(5, PORT_E)})
        ports = table.ports(5, 6)
        assert ports and PORT_E not in ports

    def test_local_delivery(self, mesh4):
        assert table_ports(mesh4, 3, 3) == (PORT_LOCAL,)

    def test_unreachable_destination(self, mesh4):
        dead = {(0, p) for p in mesh4.ports_of(0)}
        table = RerouteTable(mesh4, dead)
        assert table.ports(0, 5) == ()
        assert not table.reachable(0, 5)
        # Inbound links to router 0 are alive: 0 stays reachable as a dst.
        assert table.reachable(5, 0)
        assert table.ports(5, 0)

    def test_preserves_shortest_path_diversity(self, mesh4):
        table = RerouteTable(mesh4, set())
        # 0 -> 5 is one row hop + one column hop: both orders minimal, so
        # both ports toward the adjacent routers 1 and 4 must be offered.
        expected = {p for p in mesh4.ports_of(0)
                    if mesh4.neighbor(0, p) in (1, 4)}
        assert len(expected) == 2
        assert set(table.ports(0, 5)) == expected


def table_ports(mesh, src, dst):
    return RerouteTable(mesh, set()).ports(src, dst)

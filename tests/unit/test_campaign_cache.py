"""Unit tests for the content-addressed run cache."""

import json
import math

from repro.campaign.cache import (
    RunCache,
    code_version,
    point_key,
    result_from_json,
    result_to_json,
)
from repro.config import RunResult, SimConfig
from repro.sim.parallel import Point


def _res(**kw) -> RunResult:
    # Finite values everywhere: NaN breaks == in round-trip assertions.
    res = RunResult(scheme="Test", ejected=10, avg_latency=12.5,
                    p99_latency=40.0, throughput=0.1, cycles=1000,
                    fp_buffered_time=1.0, fp_bufferless_time=2.0,
                    reg_latency=3.0, degraded_latency=4.0)
    for key, value in kw.items():
        setattr(res, key, value)
    return res


class TestPointKey:
    def test_stable_across_calls(self, small_cfg):
        p = Point.make("fastpass", "uniform", 0.1, n_vcs=2)
        assert point_key(p, small_cfg, "s") == point_key(p, small_cfg, "s")

    def test_kwarg_order_irrelevant(self, small_cfg):
        a = Point("x", (("a", 1), ("b", 2)), "uniform", 0.1)
        b = Point("x", (("b", 2), ("a", 1)), "uniform", 0.1)
        assert point_key(a, small_cfg, "s") == point_key(b, small_cfg, "s")

    def test_distinct_points_distinct_keys(self, small_cfg):
        a = Point.make("fastpass", "uniform", 0.1, n_vcs=2)
        b = Point.make("fastpass", "uniform", 0.1, n_vcs=4)
        c = Point.make("fastpass", "uniform", 0.2, n_vcs=2)
        keys = {point_key(p, small_cfg, "s") for p in (a, b, c)}
        assert len(keys) == 3

    def test_config_changes_key(self, small_cfg):
        p = Point.make("fastpass", "uniform", 0.1)
        assert point_key(p, small_cfg, "s") != \
            point_key(p, small_cfg.with_(measure_cycles=999), "s")

    def test_salt_changes_key(self, small_cfg):
        p = Point.make("fastpass", "uniform", 0.1)
        assert point_key(p, small_cfg, "a") != point_key(p, small_cfg, "b")


class TestFaultKeys:
    """Fault plans must flow into the content address (satellite of the
    robustness subsystem): same sweep, different plan, different key."""

    def test_distinct_plans_distinct_point_keys(self, small_cfg):
        from repro.fault.plan import link_cut

        healthy = Point.make_fault("fastpass", "uniform", 0.1)
        cut_a = Point.make_fault("fastpass", "uniform", 0.1,
                                 plan=link_cut(5, 2, at=100))
        cut_b = Point.make_fault("fastpass", "uniform", 0.1,
                                 plan=link_cut(5, 2, at=200))
        keys = {point_key(p, small_cfg, "s")
                for p in (healthy, cut_a, cut_b)}
        assert len(keys) == 3

    def test_traffic_stop_changes_key(self, small_cfg):
        a = Point.make_fault("fastpass", "uniform", 0.1, traffic_stop=500)
        b = Point.make_fault("fastpass", "uniform", 0.1, traffic_stop=900)
        assert point_key(a, small_cfg, "s") != point_key(b, small_cfg, "s")

    def test_plan_in_config_changes_key(self, small_cfg):
        from repro.fault.plan import link_cut

        p = Point.make("fastpass", "uniform", 0.1)
        faulty_cfg = small_cfg.with_(fault_plan=link_cut(5, 2, at=100))
        # asdict(cfg) must stay JSON-serializable with the plan embedded.
        assert point_key(p, small_cfg, "s") != \
            point_key(p, faulty_cfg, "s")


class TestResultJson:
    def test_round_trip(self):
        res = _res()
        res.extra["rate"] = 0.1
        back = result_from_json(json.loads(json.dumps(result_to_json(res))))
        assert back == res

    def test_nan_fields_survive(self):
        res = _res(avg_latency=float("nan"))
        back = result_from_json(json.loads(json.dumps(result_to_json(res))))
        assert math.isnan(back.avg_latency)

    def test_unknown_fields_ignored(self):
        blob = result_to_json(_res())
        blob["from_the_future"] = 1
        assert result_from_json(blob).scheme == "Test"

    def test_engine_attribution_round_trips(self):
        res = _res()
        res.engine_used = "soa"
        back = result_from_json(
            json.loads(json.dumps(result_to_json(res))))
        assert back.engine_used == "soa"
        # Results that never ran through an engine-aware path stay
        # attribute-free, so comparisons remain engine-blind.
        plain = result_from_json(result_to_json(_res()))
        assert not hasattr(plain, "engine_used")


class TestRunCache:
    def test_miss_then_hit(self, tmp_path, small_cfg):
        cache = RunCache(tmp_path, salt="s")
        p = Point.make("fastpass", "uniform", 0.1, n_vcs=2)
        key = cache.key_for(p, small_cfg)
        assert cache.get(key) is None
        cache.put(key, p, small_cfg, _res())
        hit = cache.get(key)
        assert hit is not None and hit.avg_latency == 12.5
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_version_salt_invalidates(self, tmp_path, small_cfg):
        p = Point.make("fastpass", "uniform", 0.1)
        old = RunCache(tmp_path, salt="v1")
        old.put(old.key_for(p, small_cfg), p, small_cfg, _res())
        new = RunCache(tmp_path, salt="v2")
        assert new.get_point(p, small_cfg) is None
        assert old.get_point(p, small_cfg) is not None

    def test_clear(self, tmp_path, small_cfg):
        cache = RunCache(tmp_path, salt="s")
        p = Point.make("fastpass", "uniform", 0.1)
        cache.put(cache.key_for(p, small_cfg), p, small_cfg, _res())
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path, small_cfg):
        cache = RunCache(tmp_path, salt="s")
        p = Point.make("fastpass", "uniform", 0.1)
        key = cache.key_for(p, small_cfg)
        cache.put(key, p, small_cfg, _res())
        path = cache._path(key)
        path.write_text("{ truncated")
        assert cache.get(key) is None

    def test_default_salt_is_code_version(self, tmp_path):
        assert RunCache(tmp_path).salt == code_version()
        assert len(code_version()) == 16

    def test_engine_counts_breakdown(self, tmp_path, small_cfg):
        cache = RunCache(tmp_path, salt="s")
        for i, engine in enumerate(["soa", "soa", "active", None]):
            p = Point.make("fastpass", "uniform", 0.1 + i * 0.01)
            res = _res()
            if engine is not None:
                res.engine_used = engine
            cache.put(cache.key_for(p, small_cfg), p, small_cfg, res)
        assert cache.engine_counts() == {
            "soa": 2, "active": 1, "unrecorded": 1}

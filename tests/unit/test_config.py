"""Unit tests for the configuration objects."""

import pytest

from repro.config import RunResult, SimConfig


class TestSimConfig:
    def test_defaults_match_table2(self):
        cfg = SimConfig()
        assert (cfg.rows, cfg.cols) == (8, 8)
        assert cfg.n_vns == 6
        assert cfg.n_vcs == 2
        assert cfg.buffer_flits == 5
        assert cfg.router_latency == 1
        assert cfg.spin_detection_threshold == 128
        assert cfg.swap_duty_cycles == 1000
        assert cfg.drain_period_cycles == 64000

    def test_derived_quantities(self):
        cfg = SimConfig(rows=8, cols=8)
        assert cfg.n_routers == 64
        assert cfg.diameter == 14
        assert cfg.n_inputs == 5
        assert cfg.total_vcs == 12

    def test_fastpass_slot_formula(self):
        """Qn 5: K = (2 x #Hops) x #Inputs x #VCs."""
        cfg = SimConfig(rows=8, cols=8, n_vns=1, n_vcs=4)
        assert cfg.fastpass_slot() == 2 * 14 * 5 * 4

    def test_fastpass_slot_override(self):
        cfg = SimConfig(fastpass_slot_cycles=99)
        assert cfg.fastpass_slot() == 99

    def test_with_replaces_fields(self):
        cfg = SimConfig().with_(rows=4, cols=4, n_vcs=3)
        assert cfg.rows == 4 and cfg.n_vcs == 3
        assert cfg.n_vns == 6            # untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            SimConfig().rows = 3

    def test_validation_rejects_tiny_mesh(self):
        with pytest.raises(ValueError):
            SimConfig(rows=1, cols=8)

    def test_validation_rejects_zero_vcs(self):
        with pytest.raises(ValueError):
            SimConfig(n_vcs=0)

    def test_validation_rejects_negative_windows(self):
        with pytest.raises(ValueError):
            SimConfig(measure_cycles=-1)

    def test_validation_rejects_zero_slot(self):
        with pytest.raises(ValueError):
            SimConfig(fastpass_slot_cycles=0)


class TestRunResult:
    def test_defaults(self):
        res = RunResult(scheme="x")
        assert res.ejected == 0
        assert res.avg_latency != res.avg_latency   # NaN
        assert not res.deadlocked
        assert res.extra == {}

    def test_extra_is_per_instance(self):
        a, b = RunResult(scheme="a"), RunResult(scheme="b")
        a.extra["k"] = 1
        assert "k" not in b.extra

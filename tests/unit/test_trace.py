"""Unit tests for the packet tracer."""

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.sim.trace import PacketTracer
from repro.traffic.synthetic import SyntheticTraffic


def traced_sim(scheme="fastpass", rate=0.1, **kw):
    cfg = SimConfig(rows=4, cols=4, fastpass_slot_cycles=64)
    sim = Simulation(cfg, get_scheme(scheme, **kw),
                     SyntheticTraffic("uniform", rate, seed=5))
    sim.traffic.measure_window(0, 1 << 60)
    tracer = PacketTracer(sim.net)
    return sim, tracer


class TestTracer:
    def test_generation_and_ejection_recorded(self):
        sim, tracer = traced_sim(n_vcs=2)
        for _ in range(300):
            sim.net.step()
        counts = tracer.counts()
        assert counts["generated"] > 0
        assert counts["ejected"] > 0
        assert counts["ejected"] <= counts["generated"]

    def test_upgrades_recorded_for_fastpass(self):
        sim, tracer = traced_sim(n_vcs=2, rate=0.15)
        for _ in range(400):
            sim.net.step()
        assert tracer.counts().get("upgraded", 0) > 0

    def test_timeline_ordered(self):
        sim, tracer = traced_sim(n_vcs=2)
        for _ in range(300):
            sim.net.step()
        done = [pid for pid, evs in tracer.events.items()
                if any(e.kind == "ejected" for e in evs)]
        assert done
        for pid in done[:20]:
            evs = tracer.timeline(pid)
            assert evs[0].kind == "generated"
            cycles = [e.cycle for e in evs]
            assert cycles == sorted(cycles)

    def test_format_timeline(self):
        sim, tracer = traced_sim(n_vcs=2)
        for _ in range(100):
            sim.net.step()
        pid = next(iter(tracer.events))
        text = tracer.format_timeline(pid)
        assert f"packet {pid}:" in text
        assert "generated" in text

    def test_reuses_attached_observability(self):
        from repro.obs import attach_observability
        cfg = SimConfig(rows=4, cols=4, fastpass_slot_cycles=64)
        sim = Simulation(cfg, get_scheme("fastpass", n_vcs=2),
                         SyntheticTraffic("uniform", 0.05, seed=5))
        obs = attach_observability(sim.net)
        tracer = PacketTracer(sim.net)
        assert tracer.obs is obs
        tracer.detach()
        assert obs.bus.subscriber_count("generated") >= 1  # metrics stay

    def test_tracing_does_not_change_results(self):
        cfg = SimConfig(rows=4, cols=4, warmup_cycles=100,
                        measure_cycles=300, drain_cycles=800,
                        fastpass_slot_cycles=64)

        def run(with_tracer):
            sim = Simulation(cfg, get_scheme("fastpass", n_vcs=2),
                             SyntheticTraffic("uniform", 0.08, seed=3))
            if with_tracer:
                PacketTracer(sim.net)
            return sim.run()

        a, b = run(False), run(True)
        assert a.avg_latency == b.avg_latency
        assert a.ejected == b.ejected


class TestTracerActiveEngine:
    """Regression: the bus-based tracer must observe upgrades and bounces
    through the active-set engine with the router's inlined transfer and
    ejection paths — the code the old monkey-patching tracer could not
    hook (inlined calls never went through the patched methods)."""

    def test_upgrades_and_bounces_recorded_inline(self):
        from repro.network.packet import MessageClass, Packet

        sim, tracer = traced_sim(n_vcs=2, rate=0.2)
        net = sim.net
        assert not net.force_naive_step           # active-set engine
        assert all(r._inline_xfer for r in net.routers)
        # Wedge node 3's ejection queues so FastPass deliveries there
        # must bounce back to their prime.
        ni = net.nis[3]
        for cls in MessageClass:
            q = ni.ej[cls]
            while q.can_accept(Packet(0, 3, cls, 0)):
                q.push(Packet(0, 3, cls, 0))
        ni.consumer = type("Stall", (), {
            "consume": lambda *a, **k: None,
            "on_local": lambda *a, **k: None})()
        for _ in range(600):
            net.step()
        counts = tracer.counts()
        assert counts.get("upgraded", 0) > 0
        assert counts.get("bounced", 0) > 0
        assert counts["ejected"] > 0              # inlined _try_eject seen

    def test_active_and_naive_trace_identically(self):
        def run(naive):
            sim, tracer = traced_sim(n_vcs=2, rate=0.12)
            sim.net.force_naive_step = naive
            for _ in range(400):
                sim.net.step()
            return tracer.counts()

        assert run(False) == run(True)

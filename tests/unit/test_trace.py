"""Unit tests for the packet tracer."""

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.sim.trace import PacketTracer
from repro.traffic.synthetic import SyntheticTraffic


def traced_sim(scheme="fastpass", rate=0.1, **kw):
    cfg = SimConfig(rows=4, cols=4, fastpass_slot_cycles=64)
    sim = Simulation(cfg, get_scheme(scheme, **kw),
                     SyntheticTraffic("uniform", rate, seed=5))
    sim.traffic.measure_window(0, 1 << 60)
    tracer = PacketTracer(sim.net)
    return sim, tracer


class TestTracer:
    def test_generation_and_ejection_recorded(self):
        sim, tracer = traced_sim(n_vcs=2)
        for _ in range(300):
            sim.net.step()
        counts = tracer.counts()
        assert counts["generated"] > 0
        assert counts["ejected"] > 0
        assert counts["ejected"] <= counts["generated"]

    def test_upgrades_recorded_for_fastpass(self):
        sim, tracer = traced_sim(n_vcs=2, rate=0.15)
        for _ in range(400):
            sim.net.step()
        assert tracer.counts().get("upgraded", 0) > 0

    def test_timeline_ordered(self):
        sim, tracer = traced_sim(n_vcs=2)
        for _ in range(300):
            sim.net.step()
        done = [pid for pid, evs in tracer.events.items()
                if any(e.kind == "ejected" for e in evs)]
        assert done
        for pid in done[:20]:
            evs = tracer.timeline(pid)
            assert evs[0].kind == "generated"
            cycles = [e.cycle for e in evs]
            assert cycles == sorted(cycles)

    def test_format_timeline(self):
        sim, tracer = traced_sim(n_vcs=2)
        for _ in range(100):
            sim.net.step()
        pid = next(iter(tracer.events))
        text = tracer.format_timeline(pid)
        assert f"packet {pid}:" in text
        assert "generated" in text

    def test_tracing_does_not_change_results(self):
        cfg = SimConfig(rows=4, cols=4, warmup_cycles=100,
                        measure_cycles=300, drain_cycles=800,
                        fastpass_slot_cycles=64)

        def run(with_tracer):
            sim = Simulation(cfg, get_scheme("fastpass", n_vcs=2),
                             SyntheticTraffic("uniform", 0.08, seed=3))
            if with_tracer:
                PacketTracer(sim.net)
            return sim.run()

        a, b = run(False), run(True)
        assert a.avg_latency == b.avg_latency
        assert a.ejected == b.ejected

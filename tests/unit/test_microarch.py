"""Unit tests for the structural FastPass-hardware inventory (Fig. 6)."""

import pytest

from repro.core.microarch import (
    FastPassHardware,
    inventory,
    overhead_area,
    overhead_fraction,
    overhead_power,
)
from repro.network.topology import Mesh


class TestInventory:
    def test_path_table_matches_paper(self):
        """'The FastPass-Lane table has P entries ... for an 8x8 mesh, it
        translates into 3-bits for each entry.'"""
        hw = inventory(Mesh(8, 8), n_vcs=2)
        assert hw.path_table_bits == 8 * 3

    def test_prime_id_six_bits_for_8x8(self):
        """'the PrimeID (6 bits for an 8x8 mesh)'"""
        assert inventory(Mesh(8, 8), 2).prime_id_bits == 6

    def test_lookahead_latches_ten_bits_per_port(self):
        hw = inventory(Mesh(8, 8), 2)
        assert hw.lookahead_latch_bits == 5 * 10

    def test_counter_covers_rotation(self):
        hw = inventory(Mesh(8, 8), 2)
        rotation = 8 * 8 * (2 * 14 * 5 * 2)
        assert 2 ** hw.counter_bits > rotation

    def test_register_bits_total(self):
        hw = FastPassHardware(path_table_bits=10, counter_bits=5,
                              prime_id_bits=6, lookahead_latch_bits=50,
                              mux_bit_slices=100, dropping_cmp_bits=12)
        assert hw.register_bits == 10 + 5 + 6 + 50 + 12


class TestOverheadMagnitude:
    @pytest.mark.parametrize("n,vcs", [(4, 2), (8, 2), (8, 4), (16, 2)])
    def test_fraction_in_papers_band(self, n, vcs):
        """The FastPass overhead is a few percent of its own router —
        the same magnitude as the paper's ~4%."""
        frac = overhead_fraction(Mesh(n, n), vcs)
        assert 0.005 < frac < 0.06

    def test_overhead_grows_with_mesh(self):
        small = overhead_area(Mesh(4, 4), 2)
        big = overhead_area(Mesh(16, 16), 2)
        assert big > small

    def test_power_positive(self):
        assert overhead_power(Mesh(8, 8), 2) > 0

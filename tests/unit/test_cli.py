"""Unit tests for the experiments CLI."""

import pytest

from repro.experiments.cli import main


class TestCLI:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_single_cheap_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "VCT" in out

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "fastpass" in out

    def test_fig11_runs(self, capsys):
        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "paper: 40%" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "=== table1" in out and "=== table2" in out

"""Coordinator HTTP service tests: the work-queue API and the read-side
results service, exercised over real sockets (loopback, ephemeral port).
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.campaign.cache import result_to_json
from repro.campaign.executor import RetryPolicy
from repro.config import RunResult, SimConfig
from repro.fabric import protocol
from repro.fabric.coordinator import Coordinator
from repro.fabric.httpd import HttpError, http_json
from repro.sim.parallel import Point

CFG = SimConfig(rows=4, cols=4, warmup_cycles=100, measure_cycles=200,
                drain_cycles=400)
KEY = "a" * 16


def result(scheme: str = "fastpass") -> RunResult:
    return RunResult(scheme=scheme, injected=10, ejected=10,
                     avg_latency=12.0, p99_latency=20.0, throughput=0.02,
                     cycles=700)


@pytest.fixture
def coord():
    c = Coordinator(cache=None, retry=RetryPolicy(max_attempts=2,
                                                  backoff_s=0.0),
                    lease_ttl_s=30.0, campaign="svc-test")
    url = c.start("127.0.0.1", 0)
    try:
        yield c, url
    finally:
        c.stop()


def submit_one(c: Coordinator, key: str = KEY):
    c.submit([[(key, Point.make("fastpass", "uniform", 0.02))]], CFG,
             store=None)


class TestProbes:
    def test_healthz(self, coord):
        c, url = coord
        out = http_json("GET", f"{url}/healthz")
        assert out == {"ok": True, "state": "ok",
                       "version": protocol.PROTOCOL_VERSION}

    def test_unknown_endpoint_is_404(self, coord):
        _, url = coord
        with pytest.raises(HttpError) as exc:
            http_json("GET", f"{url}/nope")
        assert exc.value.status == 404

    def test_malformed_json_body_is_400(self, coord):
        _, url = coord
        req = urllib.request.Request(
            f"{url}/lease", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json",
                     "Connection": "close"})
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400


class TestWorkQueueApi:
    def test_version_mismatch_is_409(self, coord):
        _, url = coord
        with pytest.raises(HttpError) as exc:
            http_json("POST", f"{url}/lease",
                      {"version": 999, "worker": "w1"})
        assert exc.value.status == 409
        assert "version" in str(exc.value)

    def test_empty_queue_leases_idle(self, coord):
        _, url = coord
        out = http_json("POST", f"{url}/lease",
                        {"version": protocol.PROTOCOL_VERSION,
                         "worker": "w1"})
        assert out["state"] == protocol.STATE_IDLE

    def test_lease_complete_duplicate_over_http(self, coord):
        c, url = coord
        submit_one(c)
        out = http_json("POST", f"{url}/lease",
                        {"version": protocol.PROTOCOL_VERSION,
                         "worker": "w1"})
        assert out["state"] == protocol.STATE_OK
        (lease,) = out["leases"]
        assert protocol.cfg_from_json(lease["cfg"]) == CFG
        completion = {"lease_id": lease["lease_id"], "worker": "w1",
                      "ok": True,
                      "results": [result_to_json(result())]}
        assert http_json("POST", f"{url}/complete",
                         completion)["disposition"] == "ok"
        # Idempotence: the same POST again is acknowledged, not re-settled.
        assert http_json("POST", f"{url}/complete",
                         completion)["disposition"] == "duplicate"
        assert c.collect([KEY])[KEY].avg_latency == 12.0

    def test_result_count_mismatch_retries_task(self, coord):
        c, url = coord
        submit_one(c)
        out = http_json("POST", f"{url}/lease",
                        {"version": protocol.PROTOCOL_VERSION,
                         "worker": "w1"})
        (lease,) = out["leases"]
        bad = {"lease_id": lease["lease_id"], "worker": "w1", "ok": True,
               "results": []}
        assert http_json("POST", f"{url}/complete",
                         bad)["disposition"] == "requeued"
        # The task is leasable again and completes normally.
        out = http_json("POST", f"{url}/lease",
                        {"version": protocol.PROTOCOL_VERSION,
                         "worker": "w2"})
        (lease,) = out["leases"]
        assert lease["attempt"] == 2
        good = {"lease_id": lease["lease_id"], "worker": "w2", "ok": True,
                "results": [result_to_json(result())]}
        assert http_json("POST", f"{url}/complete",
                         good)["disposition"] == "ok"

    def test_shutdown_state_reaches_workers(self, coord):
        c, url = coord
        c.shutdown()
        out = http_json("POST", f"{url}/lease",
                        {"version": protocol.PROTOCOL_VERSION,
                         "worker": "w1"})
        assert out["state"] == protocol.STATE_SHUTDOWN


class TestResultsService:
    def test_status_shape_and_worker_stats(self, coord):
        c, url = coord
        submit_one(c)
        http_json("POST", f"{url}/lease",
                  {"version": protocol.PROTOCOL_VERSION, "worker": "w1"})
        status = http_json("GET", f"{url}/status")
        assert status["campaign"] == "svc-test"
        assert status["counts"]["leased"] == 1
        assert status["queue"]["granted"] == 1
        assert "w1" in status["workers"]
        assert status["workers"]["w1"]["leases"] == 1

    def test_result_endpoint(self, coord):
        c, url = coord
        c.seed_results({KEY: result()})
        out = http_json("GET", f"{url}/result/{KEY}")
        assert out["key"] == KEY
        assert out["result"] == json.loads(json.dumps(
            result_to_json(result())))

    def test_result_malformed_key_is_400(self, coord):
        _, url = coord
        with pytest.raises(HttpError) as exc:
            http_json("GET", f"{url}/result/..%2Fetc")
        assert exc.value.status == 400

    def test_result_missing_key_is_404(self, coord):
        _, url = coord
        with pytest.raises(HttpError) as exc:
            http_json("GET", f"{url}/result/{'b' * 16}")
        assert exc.value.status == 404

    def test_metrics_prometheus_text(self, coord):
        c, url = coord
        submit_one(c)
        http_json("POST", f"{url}/lease",
                  {"version": protocol.PROTOCOL_VERSION, "worker": "w1"})
        with urllib.request.urlopen(f"{url}/metrics", timeout=10) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        assert "fabric_granted_total 1" in text
        assert 'fabric_points{state="leased"} 1' in text
        assert "fabric_workers 1" in text

    def test_perf_trend_endpoint(self, coord, tmp_path, monkeypatch):
        _, url = coord
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        perf = tmp_path / "perf"
        perf.mkdir()
        entries = [{"ts": "2026-08-08T00:00:00", "cps": 1000.0},
                   {"ts": "2026-08-08T01:00:00", "cps": 1100.0}]
        (perf / "history.jsonl").write_text(
            "".join(json.dumps(e) + "\n" for e in entries))
        out = http_json("GET", f"{url}/perf/trend")
        assert out["entries"] == entries


class TestFramingIntegrity:
    """Satellite hardening: a mangled request body must be rejected
    with an explicit 400 — never partially parsed, never settled."""

    def test_truncated_body_is_400(self, coord):
        _, url = coord
        from repro.chaos.transport import _raw_post
        from repro.fabric.httpd import body_checksum
        body = json.dumps({"worker": "w1", "version":
                           protocol.PROTOCOL_VERSION}).encode()
        status, blob = _raw_post(f"{url}/lease", body[: len(body) // 2],
                                 declared_len=len(body),
                                 checksum=body_checksum(body),
                                 shut_wr=True)
        assert status == 400
        assert "truncated" in json.loads(blob)["error"]

    def test_corrupted_body_fails_checksum_with_400(self, coord):
        _, url = coord
        from repro.chaos.transport import _raw_post
        from repro.fabric.httpd import body_checksum
        body = json.dumps({"worker": "w1", "version":
                           protocol.PROTOCOL_VERSION}).encode()
        mangled = bytearray(body)
        mangled[5] ^= 0x40
        status, blob = _raw_post(f"{url}/lease", bytes(mangled),
                                 declared_len=len(body),
                                 checksum=body_checksum(body))
        assert status == 400
        assert "checksum" in json.loads(blob)["error"]

    def test_mangled_completion_settles_nothing(self, coord):
        """The case that matters: a corrupted /complete is refused, the
        task stays leased, and the intact retry settles it exactly
        once."""
        c, url = coord
        from repro.chaos.transport import _raw_post
        from repro.fabric.httpd import body_checksum
        submit_one(c)
        resp = http_json("POST", f"{url}/lease", {
            "version": protocol.PROTOCOL_VERSION, "worker": "w1"})
        lease = resp["leases"][0]
        payload = {"lease_id": lease["lease_id"], "worker": "w1",
                   "ok": True, "results": [result_to_json(result())]}
        body = json.dumps(payload).encode()
        mangled = bytearray(body)
        mangled[-10] ^= 0x01
        status, _ = _raw_post(f"{url}/complete", bytes(mangled),
                              declared_len=len(body),
                              checksum=body_checksum(body))
        assert status == 400
        assert c.queue.counts()["leased"] == 1   # nothing settled
        out = http_json("POST", f"{url}/complete", payload)
        assert out["disposition"] == "ok"
        assert c.queue.counts()["done"] == 1


class TestDuplicatedDelivery:
    def test_duplicated_complete_settles_exactly_once(self, coord):
        """The chaos DUPLICATE fault deterministically reaches this
        path: the same completion delivered twice settles once and the
        second delivery reports 'duplicate'."""
        c, url = coord
        submit_one(c)
        resp = http_json("POST", f"{url}/lease", {
            "version": protocol.PROTOCOL_VERSION, "worker": "w1"})
        payload = {"lease_id": resp["leases"][0]["lease_id"],
                   "worker": "w1", "ok": True,
                   "results": [result_to_json(result())]}
        first = http_json("POST", f"{url}/complete", payload)
        second = http_json("POST", f"{url}/complete", payload)
        assert first["disposition"] == "ok"
        assert second["disposition"] == "duplicate"
        assert c.queue.counts()["done"] == 1
        assert c.queue.counters.completed == 1
        assert c.queue.counters.duplicates == 1


class TestChaosSurface:
    def test_worker_chaos_totals_reach_status_and_metrics(self, coord):
        c, url = coord
        http_json("POST", f"{url}/lease", {
            "version": protocol.PROTOCOL_VERSION, "worker": "w1",
            "chaos": {"drop": 3, "reset": 1}})
        http_json("POST", f"{url}/lease", {
            "version": protocol.PROTOCOL_VERSION, "worker": "w2",
            "chaos": {"drop": 2}})
        status = http_json("GET", f"{url}/status")
        assert status["chaos"] == {"drop": 5, "reset": 1}
        assert status["quarantine"]["total"] == 0
        req = urllib.request.Request(f"{url}/metrics")
        text = urllib.request.urlopen(req, timeout=10).read().decode()
        assert 'fabric_chaos_injected_total{kind="drop"} 5' in text
        assert "fabric_quarantined_total 0" in text


class TestRedundancyVerification:
    def _lease_for(self, url, worker):
        resp = http_json("POST", f"{url}/lease", {
            "version": protocol.PROTOCOL_VERSION, "worker": worker})
        leases = resp.get("leases") or []
        return leases[0] if leases else None

    def _complete(self, url, lease, worker, res):
        return http_json("POST", f"{url}/complete", {
            "lease_id": lease["lease_id"], "worker": worker, "ok": True,
            "results": [result_to_json(res)]})["disposition"]

    def test_agreeing_replicas_settle_once(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        c = Coordinator(retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
                        lease_ttl_s=30.0, redundancy=1.0)
        url = c.start("127.0.0.1", 0)
        try:
            submit_one(c)
            l1 = self._lease_for(url, "w1")
            l2 = self._lease_for(url, "w2")
            assert self._complete(url, l1, "w1", result()) == "partial"
            assert self._complete(url, l2, "w2", result()) == "ok"
            assert c.queue.counts()["done"] == 1
            assert c.quarantined == 0
            assert KEY in c.results
        finally:
            c.stop()

    def test_lying_worker_is_quarantined_then_outvoted(self, monkeypatch,
                                                       tmp_path):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro.chaos.quarantine import validate_quarantine
        c = Coordinator(retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
                        lease_ttl_s=30.0, redundancy=1.0)
        url = c.start("127.0.0.1", 0)
        try:
            submit_one(c)
            honest = result()
            lie = result()
            lie.avg_latency = 999.0                  # perturbed stat
            l1 = self._lease_for(url, "honest-1")
            l2 = self._lease_for(url, "liar")
            assert self._complete(url, l1, "honest-1", honest) == "partial"
            assert self._complete(url, l2, "liar", lie) == "quarantined"
            assert c.quarantined == 1
            # Tie-break replay goes out; an honest third vote wins.
            l3 = self._lease_for(url, "honest-2")
            assert l3 is not None
            assert self._complete(url, l3, "honest-2", honest) == "ok"
            assert c.queue.counts()["done"] == 1
            assert c.results[KEY].avg_latency == honest.avg_latency
            # The post-mortem trail: a mismatch record, then a majority
            # verdict naming the liar.
            records = sorted((tmp_path / "quarantine").glob("*.json"))
            assert len(records) == 2
            payloads = [validate_quarantine(json.loads(p.read_text()))
                        for p in records]
            verdicts = {p["verdict"] for p in payloads}
            assert verdicts == {"mismatch", "settled_majority"}
            majority = next(p for p in payloads
                            if p["verdict"] == "settled_majority")
            assert majority["liars"] == ["liar"]
            assert any(d["field"] == "avg_latency"
                       for p in payloads for d in p["diff"])
            status = c.status()
            assert status["quarantine"]["total"] == 1
            assert len(status["quarantine"]["events"]) == 2
        finally:
            c.stop()

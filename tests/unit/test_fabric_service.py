"""Coordinator HTTP service tests: the work-queue API and the read-side
results service, exercised over real sockets (loopback, ephemeral port).
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.campaign.cache import result_to_json
from repro.campaign.executor import RetryPolicy
from repro.config import RunResult, SimConfig
from repro.fabric import protocol
from repro.fabric.coordinator import Coordinator
from repro.fabric.httpd import HttpError, http_json
from repro.sim.parallel import Point

CFG = SimConfig(rows=4, cols=4, warmup_cycles=100, measure_cycles=200,
                drain_cycles=400)
KEY = "a" * 16


def result(scheme: str = "fastpass") -> RunResult:
    return RunResult(scheme=scheme, injected=10, ejected=10,
                     avg_latency=12.0, p99_latency=20.0, throughput=0.02,
                     cycles=700)


@pytest.fixture
def coord():
    c = Coordinator(cache=None, retry=RetryPolicy(max_attempts=2,
                                                  backoff_s=0.0),
                    lease_ttl_s=30.0, campaign="svc-test")
    url = c.start("127.0.0.1", 0)
    try:
        yield c, url
    finally:
        c.stop()


def submit_one(c: Coordinator, key: str = KEY):
    c.submit([[(key, Point.make("fastpass", "uniform", 0.02))]], CFG,
             store=None)


class TestProbes:
    def test_healthz(self, coord):
        c, url = coord
        out = http_json("GET", f"{url}/healthz")
        assert out == {"ok": True, "state": "ok",
                       "version": protocol.PROTOCOL_VERSION}

    def test_unknown_endpoint_is_404(self, coord):
        _, url = coord
        with pytest.raises(HttpError) as exc:
            http_json("GET", f"{url}/nope")
        assert exc.value.status == 404

    def test_malformed_json_body_is_400(self, coord):
        _, url = coord
        req = urllib.request.Request(
            f"{url}/lease", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json",
                     "Connection": "close"})
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400


class TestWorkQueueApi:
    def test_version_mismatch_is_409(self, coord):
        _, url = coord
        with pytest.raises(HttpError) as exc:
            http_json("POST", f"{url}/lease",
                      {"version": 999, "worker": "w1"})
        assert exc.value.status == 409
        assert "version" in str(exc.value)

    def test_empty_queue_leases_idle(self, coord):
        _, url = coord
        out = http_json("POST", f"{url}/lease",
                        {"version": protocol.PROTOCOL_VERSION,
                         "worker": "w1"})
        assert out["state"] == protocol.STATE_IDLE

    def test_lease_complete_duplicate_over_http(self, coord):
        c, url = coord
        submit_one(c)
        out = http_json("POST", f"{url}/lease",
                        {"version": protocol.PROTOCOL_VERSION,
                         "worker": "w1"})
        assert out["state"] == protocol.STATE_OK
        (lease,) = out["leases"]
        assert protocol.cfg_from_json(lease["cfg"]) == CFG
        completion = {"lease_id": lease["lease_id"], "worker": "w1",
                      "ok": True,
                      "results": [result_to_json(result())]}
        assert http_json("POST", f"{url}/complete",
                         completion)["disposition"] == "ok"
        # Idempotence: the same POST again is acknowledged, not re-settled.
        assert http_json("POST", f"{url}/complete",
                         completion)["disposition"] == "duplicate"
        assert c.collect([KEY])[KEY].avg_latency == 12.0

    def test_result_count_mismatch_retries_task(self, coord):
        c, url = coord
        submit_one(c)
        out = http_json("POST", f"{url}/lease",
                        {"version": protocol.PROTOCOL_VERSION,
                         "worker": "w1"})
        (lease,) = out["leases"]
        bad = {"lease_id": lease["lease_id"], "worker": "w1", "ok": True,
               "results": []}
        assert http_json("POST", f"{url}/complete",
                         bad)["disposition"] == "requeued"
        # The task is leasable again and completes normally.
        out = http_json("POST", f"{url}/lease",
                        {"version": protocol.PROTOCOL_VERSION,
                         "worker": "w2"})
        (lease,) = out["leases"]
        assert lease["attempt"] == 2
        good = {"lease_id": lease["lease_id"], "worker": "w2", "ok": True,
                "results": [result_to_json(result())]}
        assert http_json("POST", f"{url}/complete",
                         good)["disposition"] == "ok"

    def test_shutdown_state_reaches_workers(self, coord):
        c, url = coord
        c.shutdown()
        out = http_json("POST", f"{url}/lease",
                        {"version": protocol.PROTOCOL_VERSION,
                         "worker": "w1"})
        assert out["state"] == protocol.STATE_SHUTDOWN


class TestResultsService:
    def test_status_shape_and_worker_stats(self, coord):
        c, url = coord
        submit_one(c)
        http_json("POST", f"{url}/lease",
                  {"version": protocol.PROTOCOL_VERSION, "worker": "w1"})
        status = http_json("GET", f"{url}/status")
        assert status["campaign"] == "svc-test"
        assert status["counts"]["leased"] == 1
        assert status["queue"]["granted"] == 1
        assert "w1" in status["workers"]
        assert status["workers"]["w1"]["leases"] == 1

    def test_result_endpoint(self, coord):
        c, url = coord
        c.seed_results({KEY: result()})
        out = http_json("GET", f"{url}/result/{KEY}")
        assert out["key"] == KEY
        assert out["result"] == json.loads(json.dumps(
            result_to_json(result())))

    def test_result_malformed_key_is_400(self, coord):
        _, url = coord
        with pytest.raises(HttpError) as exc:
            http_json("GET", f"{url}/result/..%2Fetc")
        assert exc.value.status == 400

    def test_result_missing_key_is_404(self, coord):
        _, url = coord
        with pytest.raises(HttpError) as exc:
            http_json("GET", f"{url}/result/{'b' * 16}")
        assert exc.value.status == 404

    def test_metrics_prometheus_text(self, coord):
        c, url = coord
        submit_one(c)
        http_json("POST", f"{url}/lease",
                  {"version": protocol.PROTOCOL_VERSION, "worker": "w1"})
        with urllib.request.urlopen(f"{url}/metrics", timeout=10) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        assert "fabric_granted_total 1" in text
        assert 'fabric_points{state="leased"} 1' in text
        assert "fabric_workers 1" in text

    def test_perf_trend_endpoint(self, coord, tmp_path, monkeypatch):
        _, url = coord
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        perf = tmp_path / "perf"
        perf.mkdir()
        entries = [{"ts": "2026-08-08T00:00:00", "cps": 1000.0},
                   {"ts": "2026-08-08T01:00:00", "cps": 1100.0}]
        (perf / "history.jsonl").write_text(
            "".join(json.dumps(e) + "\n" for e in entries))
        out = http_json("GET", f"{url}/perf/trend")
        assert out["entries"] == entries

"""Unit tests for link-utilization analysis."""

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.sim.linkstats import format_heatmap, hotspots, summary, utilization
from repro.traffic.synthetic import SyntheticTraffic


def run_sim(scheme="escapevc", rate=0.1, cycles=400, **kw):
    cfg = SimConfig(rows=4, cols=4, fastpass_slot_cycles=64)
    sim = Simulation(cfg, get_scheme(scheme, **kw),
                     SyntheticTraffic("transpose", rate, seed=3))
    sim.traffic.measure_window(0, 1 << 60)
    for _ in range(cycles):
        sim.net.step()
    return sim.net


class TestUtilization:
    def test_idle_network_zero(self):
        cfg = SimConfig(rows=4, cols=4)
        from tests.conftest import make_network
        net = make_network(cfg)
        net.run(50)
        assert all(u.total == 0 for u in utilization(net))

    def test_loaded_network_nonzero(self):
        net = run_sim()
        assert any(u.regular > 0 for u in utilization(net))

    def test_fractions_bounded(self):
        net = run_sim(rate=0.25)
        for u in utilization(net):
            assert 0 <= u.regular <= 1.01
            assert 0 <= u.fastflow <= 1.01

    def test_fastflow_share_only_for_fastpass(self):
        reg = summary(run_sim("escapevc"))
        fp = summary(run_sim("fastpass", n_vcs=2, rate=0.15))
        assert reg["fastflow_share"] == 0.0
        assert fp["fastflow_share"] > 0.0

    def test_hotspots_sorted(self):
        net = run_sim(rate=0.2)
        hs = hotspots(net, top=4)
        assert len(hs) == 4
        assert all(hs[i].total >= hs[i + 1].total for i in range(3))

    def test_heatmap_dimensions(self):
        net = run_sim()
        lines = format_heatmap(net).splitlines()
        assert len(lines) == 4
        assert all(len(l.split()) == 4 for l in lines)

    def test_transpose_loads_unevenly(self):
        net = run_sim(rate=0.2)
        utils = [u.total for u in utilization(net)]
        mean = sum(utils) / len(utils)
        assert max(utils) > 1.4 * mean     # diagonal corridor runs hot
        assert min(utils) < 0.5 * mean     # edge links stay cool

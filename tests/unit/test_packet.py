"""Unit tests for packets and message classes."""

import pytest

from repro.network.packet import (
    MessageClass,
    N_CLASSES,
    Packet,
    SINK_CLASSES,
    flits_for_class,
)


class TestMessageClasses:
    def test_six_classes(self):
        assert N_CLASSES == 6
        assert len(list(MessageClass)) == 6

    def test_sink_classes_end_transactions(self):
        assert MessageClass.RESPONSE in SINK_CLASSES
        assert MessageClass.REQUEST not in SINK_CLASSES
        assert MessageClass.FORWARD not in SINK_CLASSES

    def test_flit_sizes(self):
        # 1-flit control, 5-flit data (64B payload over 128-bit flits)
        assert flits_for_class(MessageClass.REQUEST) == 1
        assert flits_for_class(MessageClass.RESPONSE) == 5
        assert flits_for_class(MessageClass.WRITEBACK) == 5
        assert flits_for_class(MessageClass.UNBLOCK) == 1


class TestPacket:
    def test_defaults(self):
        pkt = Packet(src=1, dst=2, mclass=MessageClass.REQUEST, gen_cycle=10)
        assert pkt.size == 1
        assert pkt.vn == int(MessageClass.REQUEST)
        assert pkt.net_entry == -1
        assert pkt.eject_cycle == -1
        assert not pkt.was_fastpass
        assert not pkt.rejected

    def test_explicit_size_overrides_class(self):
        pkt = Packet(0, 1, MessageClass.REQUEST, 0, size=3)
        assert pkt.size == 3

    def test_pids_unique_and_increasing(self):
        a = Packet(0, 1, 0, 0)
        b = Packet(0, 1, 0, 0)
        assert b.pid == a.pid + 1

    def test_latency(self):
        pkt = Packet(0, 1, 0, gen_cycle=5)
        pkt.eject_cycle = 42
        assert pkt.latency == 37

    def test_is_sink(self):
        assert Packet(0, 1, MessageClass.RESPONSE, 0).is_sink
        assert not Packet(0, 1, MessageClass.REQUEST, 0).is_sink

    def test_route_cache_roundtrip(self):
        pkt = Packet(0, 5, 0, 0)
        assert pkt.route_cache(3) is None
        pkt.set_route_cache(3, ((1, (0, 1)),))
        assert pkt.route_cache(3) == ((1, (0, 1)),)
        assert pkt.route_cache(4) is None

    def test_route_cache_invalidation(self):
        pkt = Packet(0, 5, 0, 0)
        pkt.set_route_cache(3, ("x",))
        pkt.invalidate_route()
        assert pkt.route_cache(3) is None

    def test_slots_prevent_arbitrary_attrs(self):
        pkt = Packet(0, 1, 0, 0)
        with pytest.raises(AttributeError):
            pkt.bogus = 1

"""Unit tests for the guaranteed-delivery liveness auditor."""

import pytest

from repro.config import SimConfig
from repro.fault.auditor import (
    LivenessAuditor,
    LivenessViolation,
    delivery_bound,
)
from repro.network.packet import Packet
from repro.schemes import get_scheme

from tests.conftest import make_network


def _wedge(net, rid=5, src=5, dst=6, ready_at=0):
    """Park a packet in a VC slot so it looks stuck to the auditor."""
    router = net.routers[rid]
    pkt = Packet(src, dst, 0, 0)
    slot = router.slots[0][0]
    slot.pkt = pkt
    slot.ready_at = ready_at
    router.occupied.append(slot)
    return pkt, slot


class TestDeliveryBound:
    def test_override_wins(self):
        cfg = SimConfig(rows=4, cols=4, liveness_bound_cycles=777)
        assert delivery_bound(cfg) == 777

    def test_fastpass_schedule_formula(self):
        cfg = SimConfig(rows=4, cols=4, fastpass_slot_cycles=64)
        net = make_network(cfg, scheme=get_scheme("fastpass", n_vcs=2))
        sched = net.fastpass.schedule
        assert delivery_bound(net.cfg, net) == \
            2 * sched.rotation_len + sched.phase_len

    def test_watchdog_fallback(self):
        cfg = SimConfig(rows=4, cols=4, watchdog_cycles=900)
        net = make_network(cfg)   # no scheme, no schedule
        assert delivery_bound(cfg, net) == 3600

    def test_rejects_nonpositive_bound(self, mesh4):
        net = make_network(SimConfig(rows=4, cols=4))
        with pytest.raises(ValueError, match="positive"):
            LivenessAuditor(net, bound=0)


class TestAuditor:
    def test_flags_wedged_packet(self):
        net = make_network(SimConfig(rows=4, cols=4))
        pkt, _slot = _wedge(net, ready_at=0)
        auditor = LivenessAuditor(net, bound=10)
        assert auditor.check(now=10) == []     # stuck == bound: still legal
        fresh = auditor.check(now=50)
        assert len(fresh) == 1
        report = fresh[0]
        assert report["pid"] == pkt.pid
        assert report["router"] == 5
        assert report["stuck_for"] == 50
        assert report["bound"] == 10
        assert auditor.violation_count == 1

    def test_one_entry_per_packet_kept_at_worst(self):
        net = make_network(SimConfig(rows=4, cols=4))
        _wedge(net, ready_at=0)
        auditor = LivenessAuditor(net, bound=10)
        auditor.check(now=20)
        auditor.check(now=80)
        assert auditor.violation_count == 1
        assert auditor.violations[0]["stuck_for"] == 80
        assert auditor.summary()["worst"] == 80

    def test_strict_raises_with_structured_report(self):
        net = make_network(SimConfig(rows=4, cols=4))
        pkt, _ = _wedge(net, ready_at=0)
        auditor = LivenessAuditor(net, bound=10, strict=True)
        with pytest.raises(LivenessViolation) as exc:
            auditor.check(now=99)
        assert exc.value.report["pid"] == pkt.pid
        assert exc.value.report["stuck_for"] == 99
        assert f"packet {pkt.pid}" in str(exc.value)

    def test_interval_derived_from_bound(self):
        net = make_network(SimConfig(rows=4, cols=4))
        assert LivenessAuditor(net, bound=4000).interval == 1000
        assert LivenessAuditor(net, bound=40).interval == 32  # floor

    def test_healthy_fastpass_run_has_zero_violations(self, small_cfg):
        from repro.sim.engine import Simulation
        from repro.traffic.synthetic import SyntheticTraffic

        cfg = small_cfg.with_(liveness_audit=True)
        sim = Simulation(cfg, get_scheme("fastpass", n_vcs=2),
                         SyntheticTraffic("uniform", 0.05, seed=3))
        res = sim.run()
        assert res.ejected > 0
        assert res.liveness_violations == 0
        assert res.extra["liveness"]["violations"] == 0
        assert res.extra["liveness"]["checks"] > 0

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import signal

import pytest

from repro.config import SimConfig
from repro.network.network import Network
from repro.network.packet import Packet
from repro.network.routing import ROUTERS
from repro.network.topology import Mesh

#: per-test wall-clock ceiling (seconds) when pytest-timeout is absent.
#: CI installs pytest-timeout and passes ``--timeout`` explicitly; this
#: SIGALRM fallback keeps a wedged simulation from hanging a local run
#: where the plugin is not installed.  Set REPRO_TEST_TIMEOUT=0 to disable.
_FALLBACK_TIMEOUT = int(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


def pytest_configure(config):
    config._repro_alarm_timeout = (
        _FALLBACK_TIMEOUT
        if _FALLBACK_TIMEOUT > 0
        and not config.pluginmanager.hasplugin("timeout")
        and hasattr(signal, "SIGALRM")
        else 0)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    limit = getattr(item.config, "_repro_alarm_timeout", 0)
    if not limit:
        yield
        return

    def _alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {limit}s fallback ceiling "
            f"(REPRO_TEST_TIMEOUT)")

    old = signal.signal(signal.SIGALRM, _alarm)
    signal.alarm(limit)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


@pytest.fixture(autouse=True)
def _reset_pid_counter():
    """Keep packet ids deterministic per test."""
    Packet._next_pid = 0
    yield


@pytest.fixture(autouse=True)
def _campaign_isolation(tmp_path, monkeypatch):
    """Point the campaign layer and results tree at a per-test directory.

    Without this, any test that touches an experiment module would write
    cached results into the repository's ``results/`` tree and could see
    stale results from earlier tests.  ``REPRO_RESULTS_DIR`` covers the
    non-campaign writers too (fault post-mortems, metrics artifacts, the
    perf snapshot history).
    """
    from repro.campaign import context
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    context.configure(cache_dir=tmp_path / "cache",
                      campaign_dir=tmp_path / "campaigns",
                      enabled=True, jobs=None, campaign=None,
                      progress=None)
    yield
    context.reset()


@pytest.fixture
def tmp_cache_dir(tmp_path) -> "Path":
    """The run-cache directory the campaign layer uses in this test."""
    from repro.campaign import context
    return context.get_context().cache_dir


@pytest.fixture
def small_cfg() -> SimConfig:
    """4x4 mesh with short windows and a small FastPass slot: fast tests.

    ``paranoia`` runs the full invariant audit every 50 cycles, so any
    tier-1 test built on this fixture catches structural corruption at
    its source rather than as a downstream miscount.
    """
    return SimConfig(rows=4, cols=4, warmup_cycles=100, measure_cycles=400,
                     drain_cycles=1200, watchdog_cycles=800,
                     fastpass_slot_cycles=64, paranoia=50)


@pytest.fixture
def fastpass_sim(small_cfg):
    """Factory for ready-to-run FastPass simulations on the small mesh."""
    from repro.schemes import get_scheme
    from repro.sim.engine import Simulation
    from repro.traffic.synthetic import SyntheticTraffic

    def _make(pattern: str = "uniform", rate: float = 0.05,
              n_vcs: int = 2, cfg: SimConfig | None = None,
              seed: int = 1) -> Simulation:
        cfg = cfg or small_cfg
        return Simulation(cfg, get_scheme("fastpass", n_vcs=n_vcs),
                          SyntheticTraffic(pattern, rate, seed=seed))

    return _make


@pytest.fixture
def mesh4() -> Mesh:
    return Mesh(4, 4)


@pytest.fixture
def mesh8() -> Mesh:
    return Mesh(8, 8)


def make_network(cfg: SimConfig, routing: str = "xy",
                 scheme=None) -> Network:
    """A bare network with no scheme hooks (for unit tests)."""
    mesh = Mesh(cfg.rows, cfg.cols)
    router_cls = scheme.router_cls if scheme else None
    if scheme is not None:
        cfg = scheme.configure(cfg)
        net = Network(cfg, mesh, ROUTERS[scheme.routing],
                      router_cls=router_cls, scheme=scheme)
        scheme.build(net)
        return net
    return Network(cfg, mesh, ROUTERS[routing])


def park(net: Network, router, slot, pkt: Packet, ready_at: int = 0) -> None:
    """Hand-place ``pkt`` into ``slot`` with full engine bookkeeping.

    Tests that build network states by hand must keep the occupied list,
    the active set, and the ``buffered`` counter consistent — otherwise
    the active-set engine never steps the router and the paranoia audit
    (rightly) reports corruption."""
    slot.pkt = pkt
    slot.ready_at = ready_at
    slot.free_at = 1 << 60
    router.admit(slot)
    net.buffered += 1


def drain_packet(net: Network, pkt: Packet, max_cycles: int = 5000) -> bool:
    """Step the network until ``pkt`` is ejected (or give up)."""
    for _ in range(max_cycles):
        if pkt.eject_cycle >= 0:
            return True
        net.step()
    return pkt.eject_cycle >= 0


def inject_now(net: Network, src: int, dst: int, mclass: int = 0,
               size: int | None = None) -> Packet:
    """Hand a packet straight to the source NI."""
    pkt = Packet(src, dst, mclass, net.cycle, size=size)
    net.nis[src].source(pkt)
    return pkt

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import SimConfig
from repro.network.network import Network
from repro.network.packet import Packet
from repro.network.routing import ROUTERS
from repro.network.topology import Mesh


@pytest.fixture(autouse=True)
def _reset_pid_counter():
    """Keep packet ids deterministic per test."""
    Packet._next_pid = 0
    yield


@pytest.fixture
def small_cfg() -> SimConfig:
    """4x4 mesh with short windows and a small FastPass slot: fast tests."""
    return SimConfig(rows=4, cols=4, warmup_cycles=100, measure_cycles=400,
                     drain_cycles=1200, watchdog_cycles=800,
                     fastpass_slot_cycles=64)


@pytest.fixture
def mesh4() -> Mesh:
    return Mesh(4, 4)


@pytest.fixture
def mesh8() -> Mesh:
    return Mesh(8, 8)


def make_network(cfg: SimConfig, routing: str = "xy",
                 scheme=None) -> Network:
    """A bare network with no scheme hooks (for unit tests)."""
    mesh = Mesh(cfg.rows, cfg.cols)
    router_cls = scheme.router_cls if scheme else None
    if scheme is not None:
        cfg = scheme.configure(cfg)
        net = Network(cfg, mesh, ROUTERS[scheme.routing],
                      router_cls=router_cls, scheme=scheme)
        scheme.build(net)
        return net
    return Network(cfg, mesh, ROUTERS[routing])


def drain_packet(net: Network, pkt: Packet, max_cycles: int = 5000) -> bool:
    """Step the network until ``pkt`` is ejected (or give up)."""
    for _ in range(max_cycles):
        if pkt.eject_cycle >= 0:
            return True
        net.step()
    return pkt.eject_cycle >= 0


def inject_now(net: Network, src: int, dst: int, mclass: int = 0,
               size: int | None = None) -> Packet:
    """Hand a packet straight to the source NI."""
    pkt = Packet(src, dst, mclass, net.cycle, size=size)
    net.nis[src].source(pkt)
    return pkt

"""Property tests for mesh topology and routing functions."""

from hypothesis import given, settings, strategies as st

from repro.network.routing import (
    productive_ports,
    route_adaptive,
    route_west_first,
    route_xy,
    route_yx,
)
from repro.network.topology import Mesh, OPPOSITE

dims = st.integers(min_value=2, max_value=10)


@st.composite
def mesh_and_pair(draw):
    rows = draw(dims)
    cols = draw(dims)
    mesh = Mesh(rows, cols)
    src = draw(st.integers(0, mesh.n_routers - 1))
    dst = draw(st.integers(0, mesh.n_routers - 1))
    return mesh, src, dst


@given(mesh_and_pair())
@settings(max_examples=100, deadline=None)
def test_hops_is_a_metric(args):
    mesh, a, b = args
    assert mesh.hops(a, b) == mesh.hops(b, a)
    assert (mesh.hops(a, b) == 0) == (a == b)


@given(mesh_and_pair(), st.data())
@settings(max_examples=100, deadline=None)
def test_triangle_inequality(args, data):
    mesh, a, b = args
    c = data.draw(st.integers(0, mesh.n_routers - 1))
    assert mesh.hops(a, b) <= mesh.hops(a, c) + mesh.hops(c, b)


@given(mesh_and_pair())
@settings(max_examples=100, deadline=None)
def test_neighbor_symmetry(args):
    mesh, rid, _ = args
    for port in mesh.ports_of(rid):
        nbr = mesh.neighbor(rid, port)
        assert mesh.neighbor(nbr, OPPOSITE[port]) == rid


@given(mesh_and_pair())
@settings(max_examples=100, deadline=None)
def test_xy_and_yx_paths_minimal_and_correct(args):
    mesh, src, dst = args
    for path in (mesh.xy_path(src, dst), mesh.yx_path(src, dst)):
        assert len(path) == mesh.hops(src, dst)
        at = src
        for rid, port in path:
            assert rid == at
            at = mesh.neighbor(rid, port)
        assert at == dst


@given(mesh_and_pair())
@settings(max_examples=100, deadline=None)
def test_every_routing_function_productive(args):
    mesh, src, dst = args
    if src == dst:
        return
    prod = set(productive_ports(mesh, src, dst))
    for fn in (route_xy, route_yx, route_adaptive, route_west_first):
        outs = set(fn(mesh, src, dst))
        assert outs and outs <= prod


@given(mesh_and_pair())
@settings(max_examples=60, deadline=None)
def test_adaptive_offers_all_productive(args):
    mesh, src, dst = args
    if src == dst:
        return
    assert set(route_adaptive(mesh, src, dst)) == \
        set(productive_ports(mesh, src, dst))

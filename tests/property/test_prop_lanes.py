"""Property tests (hypothesis): the lane non-overlap and coverage
invariants hold for every mesh size, phase and slot — the paper's Fig. 1 /
Fig. 4 claims in full generality."""

from hypothesis import given, settings, strategies as st

from repro.core import lanes
from repro.core.schedule import TdmSchedule
from repro.network.topology import Mesh

mesh_sizes = st.integers(min_value=2, max_value=9)


@st.composite
def mesh_phase_slot(draw):
    n = draw(mesh_sizes)
    phase = draw(st.integers(min_value=0, max_value=3 * n))
    slot = draw(st.integers(min_value=0, max_value=n - 1))
    return n, phase, slot


@given(mesh_phase_slot())
@settings(max_examples=60, deadline=None)
def test_forward_lanes_pairwise_disjoint(args):
    n, phase, slot = args
    mesh = Mesh(n, n)
    sched = TdmSchedule(n, n, 10)
    primes = sched.primes(phase)
    targets = [sched.target_partition(c, slot) for c in range(n)]
    lanes.verify_slot_nonoverlap(mesh, primes, targets)


@given(mesh_sizes)
@settings(max_examples=8, deadline=None)
def test_rotation_covers_every_pair(n):
    mesh = Mesh(n, n)
    sched = TdmSchedule(n, n, 10)
    assert lanes.lanes_cover_network(mesh, sched)


@given(mesh_sizes, st.integers(min_value=0, max_value=50))
@settings(max_examples=40, deadline=None)
def test_primes_form_permutation(n, phase):
    sched = TdmSchedule(n, n, 10)
    primes = sched.primes(phase)
    rows = [p // n for p in primes]
    cols = [p % n for p in primes]
    assert sorted(cols) == list(range(n))
    assert sorted(rows) == list(range(n))


@given(mesh_sizes, st.data())
@settings(max_examples=40, deadline=None)
def test_forward_path_head_advances_one_hop_per_cycle(n, data):
    """Lemma 1 geometry: the k-th link of a forward path starts at the
    router reached after k hops."""
    mesh = Mesh(n, n)
    prime = data.draw(st.integers(0, mesh.n_routers - 1))
    dst = data.draw(st.integers(0, mesh.n_routers - 1))
    if dst == prime:
        return
    path = lanes.forward_path(mesh, prime, dst)
    assert len(path) == mesh.hops(prime, dst)
    at = prime
    for rid, port in path:
        assert rid == at
        at = mesh.neighbor(rid, port)
    assert at == dst


@given(mesh_sizes, st.data())
@settings(max_examples=40, deadline=None)
def test_return_path_reverses_reachability(n, data):
    mesh = Mesh(n, n)
    prime = data.draw(st.integers(0, mesh.n_routers - 1))
    dst = data.draw(st.integers(0, mesh.n_routers - 1))
    if dst == prime:
        return
    ret = lanes.return_path(mesh, dst, prime)
    assert len(ret) == mesh.hops(prime, dst)
    at = dst
    for rid, port in ret:
        assert rid == at
        at = mesh.neighbor(rid, port)
    assert at == prime

"""Property tests: Eulerian segmentation on random connected topologies
(Sec. III-F holds for *any* bidirectional-channel topology)."""

import networkx as nx
from hypothesis import assume, given, settings, strategies as st

from repro.core import irregular


@st.composite
def connected_graph(draw):
    """A random connected graph: a spanning tree plus random chords."""
    n = draw(st.integers(min_value=3, max_value=14))
    g = nx.Graph()
    g.add_node(0)
    for v in range(1, n):
        u = draw(st.integers(0, v - 1))
        g.add_edge(u, v)
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            g.add_edge(u, v)
    return g


@given(connected_graph())
@settings(max_examples=60, deadline=None)
def test_holistic_path_covers_each_direction_once(g):
    path = irregular.holistic_path(g)
    assert len(path) == 2 * g.number_of_edges()
    assert len(set(path)) == len(path)
    for (u1, v1), (u2, _) in zip(path, path[1:]):
        assert v1 == u2


@given(connected_graph(), st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_segments_verify(g, p):
    path = irregular.holistic_path(g)
    assume(p <= len(path))
    segments = irregular.segment_path(path, p)
    irregular.verify_segments(g, segments)


@given(connected_graph(), st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_schedule_covers_all_routers(g, p):
    path = irregular.holistic_path(g)
    assume(p <= len(path))
    sched = irregular.IrregularSchedule(g, p, slot_cycles=8)
    assert sched.covers_all()


@given(connected_graph(), st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=30))
@settings(max_examples=40, deadline=None)
def test_every_segment_router_becomes_prime(g, p, extra_phases):
    path = irregular.holistic_path(g)
    assume(p <= len(path))
    sched = irregular.IrregularSchedule(g, p, slot_cycles=8)
    for c in range(p):
        routers = set(sched.routers_of[c])
        seen = {sched.prime_of_partition(c, ph)
                for ph in range(len(sched.routers_of[c]))}
        assert seen == routers

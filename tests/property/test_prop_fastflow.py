"""Property tests: FastFlow reservations and arrival arithmetic under
randomized launch schedules.

The engine's own `ReservationConflict` check turns any collision into an
exception, so these tests double as fuzzing of the non-overlap machinery.
"""

from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.core.schedule import TdmSchedule
from repro.network.packet import MessageClass, Packet
from repro.schemes import get_scheme
from tests.conftest import make_network


def build_net(n=4, vcs=2, slot=64):
    cfg = SimConfig(rows=n, cols=n, fastpass_slot_cycles=slot)
    return make_network(cfg, scheme=get_scheme("fastpass", n_vcs=vcs))


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_schedule_compliant_launches_never_collide(data):
    """Launches that follow the TDM discipline (right prime, right target
    partition, round trip inside the slot, lane serialized) never raise a
    reservation conflict, whatever the interleaving."""
    n = data.draw(st.integers(3, 6))
    net = build_net(n=n, slot=96)
    sched: TdmSchedule = net.fastpass.schedule
    eng = net.fastpass.engine
    lane_free = [0] * sched.P
    pkts = []
    now = 0
    for _ in range(data.draw(st.integers(1, 25))):
        now += data.draw(st.integers(0, 5))
        info = sched.info(now)
        c = data.draw(st.integers(0, sched.P - 1))
        if lane_free[c] > now:
            continue
        prime = sched.prime_of_partition(c, info.phase)
        tcol = sched.target_partition(c, info.slot)
        row = data.draw(st.integers(0, n - 1))
        dst = row * n + tcol
        if dst == prime:
            continue
        mclass = data.draw(st.sampled_from([MessageClass.REQUEST,
                                            MessageClass.RESPONSE]))
        pkt = Packet(prime, dst, mclass, now)
        rt = eng.round_trip_cycles(prime, dst, pkt.size)
        if now + rt > info.slot_end:
            continue
        lane_free[c] = eng.launch_forward(pkt, prime, now)  # must not raise
        pkts.append((pkt, now, net.mesh.hops(prime, dst)))
    # drive the network to complete all traversals
    end = now + 4 * n + 20
    while net.cycle < end:
        net.step()
    for pkt, t0, dist in pkts:
        assert pkt.eject_cycle == t0 + dist + 1   # fixed arrival (Lemma 1)


@given(st.integers(3, 7), st.integers(0, 2 ** 12))
@settings(max_examples=30, deadline=None)
def test_round_trip_budget_bounds_rotation(n, seed):
    """The slot formula K always admits a round trip to the farthest
    destination for every packet size (Qn 5)."""
    cfg = SimConfig(rows=n, cols=n, n_vns=1, n_vcs=1)
    net = build_net(n=n, vcs=1, slot=None if False else cfg.fastpass_slot())
    eng = net.fastpass.engine
    K = net.cfg.fastpass_slot()
    diameter = net.mesh.diameter
    for size in (1, 5):
        worst = 2 * diameter + 2 * size + eng.RETURN_SLACK
        assert worst <= K, (worst, K)

"""Property tests: packet conservation under randomized scenarios.

Whatever the scheme, pattern, load and seed, the simulator must neither
lose nor duplicate packets: generated = delivered + in-flight + awaiting
MSHR regeneration, at every observation point.
"""

from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.synthetic import PATTERNS, SyntheticTraffic

scheme_names = st.sampled_from(
    ["escapevc", "spin", "swap", "drain", "pitstop", "minbd", "tfc",
     "fastpass"])
patterns = st.sampled_from(sorted(PATTERNS))
rates = st.floats(min_value=0.01, max_value=0.3)
seeds = st.integers(min_value=0, max_value=2 ** 16)


def accounting(net, traffic):
    pending_regen = sum(ni.dropped - ni.regenerated for ni in net.nis)
    return (net.stats.ejected_total + net.total_backlog() + pending_regen,
            traffic.measured_generated)


@given(scheme=scheme_names, pattern=patterns, rate=rates, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_no_loss_no_duplication(scheme, pattern, rate, seed):
    cfg = SimConfig(rows=4, cols=4, fastpass_slot_cycles=64,
                    drain_period_cycles=500, swap_duty_cycles=200)
    sim = Simulation(cfg, get_scheme(scheme),
                     SyntheticTraffic(pattern, rate, seed=seed))
    sim.traffic.measure_window(0, 1 << 60)
    net = sim.net
    for _ in range(400):
        net.step()
    accounted, generated = accounting(net, sim.traffic)
    assert accounted == generated


@given(rate=rates, seed=seeds)
@settings(max_examples=15, deadline=None)
def test_fastpass_conservation_through_bounces(rate, seed):
    """Tiny ejection queues force bounces and drops; conservation must
    survive the whole dynamic-bubble machinery."""
    cfg = SimConfig(rows=4, cols=4, fastpass_slot_cycles=48,
                    ej_queue_pkts=1, inj_queue_pkts=2)
    sim = Simulation(cfg, get_scheme("fastpass", n_vcs=1),
                     SyntheticTraffic("uniform", rate, seed=seed))
    sim.traffic.measure_window(0, 1 << 60)
    net = sim.net
    for _ in range(600):
        net.step()
    accounted, generated = accounting(net, sim.traffic)
    assert accounted == generated


@given(seed=seeds)
@settings(max_examples=10, deadline=None)
def test_ejected_packets_have_consistent_timestamps(seed):
    cfg = SimConfig(rows=4, cols=4, fastpass_slot_cycles=64)
    sim = Simulation(cfg, get_scheme("fastpass", n_vcs=2),
                     SyntheticTraffic("uniform", 0.1, seed=seed))
    net = sim.net
    seen = []
    net.stats.on_ejected = seen.append
    sim.traffic.measure_window(0, 1 << 60)
    for _ in range(400):
        net.step()
    for pkt in seen:
        assert pkt.eject_cycle > pkt.gen_cycle
        if pkt.was_fastpass:
            assert pkt.gen_cycle <= pkt.fp_upgrade <= pkt.eject_cycle
        if pkt.net_entry >= 0:
            assert pkt.gen_cycle <= pkt.net_entry

"""Property tests: the network-deadlock-freedom claims of Table I, under
randomized high-load synthetic traffic.

Schemes claiming network-level deadlock freedom must never trip the
watchdog, whatever the seed, pattern and (high) load.  The unprotected
adaptive baseline carries no such obligation — it is the control.
"""

from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic

PROTECTED = ["escapevc", "tfc", "minbd", "fastpass", "pitstop", "swap",
             "spin", "drain"]

seeds = st.integers(min_value=0, max_value=2 ** 16)
rates = st.floats(min_value=0.15, max_value=0.5)
patterns = st.sampled_from(["uniform", "transpose", "shuffle"])


def run(scheme_name, pattern, rate, seed, cycles=1200):
    cfg = SimConfig(rows=4, cols=4, watchdog_cycles=400,
                    fastpass_slot_cycles=64,
                    swap_duty_cycles=150, drain_period_cycles=400,
                    spin_detection_threshold=64)
    kwargs = {"n_vcs": 2} if scheme_name == "fastpass" else {}
    sim = Simulation(cfg, get_scheme(scheme_name, **kwargs),
                     SyntheticTraffic(pattern, rate, seed=seed))
    sim.traffic.measure_window(0, 1 << 60)
    for _ in range(cycles):
        sim.net.step()
    return sim


@given(scheme=st.sampled_from(PROTECTED), pattern=patterns, rate=rates,
       seed=seeds)
@settings(max_examples=25, deadline=None)
def test_protected_schemes_never_deadlock(scheme, pattern, rate, seed):
    sim = run(scheme, pattern, rate, seed)
    assert not sim.net.watchdog.deadlocked, (
        f"{scheme} deadlocked under {pattern}@{rate} seed={seed}")


@given(pattern=patterns, rate=rates, seed=seeds)
@settings(max_examples=10, deadline=None)
def test_protected_schemes_keep_delivering(pattern, rate, seed):
    """Beyond not deadlocking, FastPass keeps ejecting packets through the
    entire post-saturation regime."""
    sim = run("fastpass", pattern, rate, seed)
    assert sim.net.stats.ejected_total > 0
    third = sim.net.stats.ejected_total
    for _ in range(400):
        sim.net.step()
    assert sim.net.stats.ejected_total > third   # still making progress

"""Property tests: the observability counters obey packet conservation.

The metrics registry is fed purely by bus events, an entirely separate
code path from the engine's incremental accounting — so for any scheme,
load and seed, the counter algebra must close exactly:

    generated == ejected + in-flight backlog + (dropped - regenerated)

and the per-counter values must agree with the engine's own
:class:`~repro.sim.stats.StatsCollector` and per-NI tallies.
"""

from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.obs import Observability
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.synthetic import PATTERNS, SyntheticTraffic

scheme_names = st.sampled_from(
    ["escapevc", "spin", "drain", "minbd", "fastpass"])
patterns = st.sampled_from(sorted(PATTERNS))
rates = st.floats(min_value=0.01, max_value=0.25)
seeds = st.integers(min_value=0, max_value=2 ** 16)


def _instrumented(scheme, pattern, rate, seed, **cfg_kw):
    cfg = SimConfig(rows=4, cols=4, fastpass_slot_cycles=64,
                    drain_period_cycles=500, swap_duty_cycles=200,
                    **cfg_kw)
    kwargs = {"n_vcs": 1} if scheme == "fastpass" else {}
    sim = Simulation(cfg, get_scheme(scheme, **kwargs),
                     SyntheticTraffic(pattern, rate, seed=seed))
    obs = Observability().attach(sim.net)
    return sim, obs


def _counters(obs):
    return obs.registry.to_json()["counters"]


@given(scheme=scheme_names, pattern=patterns, rate=rates, seed=seeds)
@settings(max_examples=20, deadline=None)
def test_counter_algebra_closes(scheme, pattern, rate, seed):
    sim, obs = _instrumented(scheme, pattern, rate, seed)
    net = sim.net
    for _ in range(400):
        net.step()
    c = _counters(obs)
    in_limbo = c["noc_dropped_total"] - c["noc_regenerated_total"]
    assert c["noc_generated_total"] == \
        c["noc_ejected_total"] + net.total_backlog() + in_limbo
    assert in_limbo == net.limbo


@given(scheme=scheme_names, rate=rates, seed=seeds)
@settings(max_examples=15, deadline=None)
def test_counters_track_engine_accounting(scheme, rate, seed):
    """Every bus-fed counter equals the engine's independent tally."""
    sim, obs = _instrumented(scheme, "uniform", rate, seed)
    net = sim.net
    for _ in range(400):
        net.step()
    c = _counters(obs)
    assert c["noc_injected_total"] == net.stats.injected
    assert c["noc_ejected_total"] == net.stats.ejected_total
    assert c["noc_dropped_total"] == sum(ni.dropped for ni in net.nis)
    assert c["noc_regenerated_total"] == \
        sum(ni.regenerated for ni in net.nis)


@given(rate=st.floats(min_value=0.05, max_value=0.3), seed=seeds)
@settings(max_examples=15, deadline=None)
def test_fastpass_upgrades_cover_lane_deliveries(rate, seed):
    """Every FastPass delivery rode a lane upgrade first, and bounced
    packets return to their prime at most once per bounce — tiny
    ejection queues force the whole bounce machinery to run."""
    sim, obs = _instrumented("fastpass", "uniform", rate, seed,
                             ej_queue_pkts=1, inj_queue_pkts=2)
    net = sim.net
    for _ in range(600):
        net.step()
    c = _counters(obs)
    upgrades = obs.registry.get("noc_upgrades_total").total()
    assert upgrades >= net.stats.fastpass_delivered
    assert c["noc_bounce_returned_total"] <= c["noc_bounced_total"]
    # conservation survives bounces and dynamic-bubble drops
    in_limbo = c["noc_dropped_total"] - c["noc_regenerated_total"]
    assert c["noc_generated_total"] == \
        c["noc_ejected_total"] + net.total_backlog() + in_limbo

"""Property test: graceful degradation under a permanent link failure.

A reroute-capable scheme (EscapeVC) at low load must absorb any single
directed-link cut — whatever link and seed — without deadlocking, and
still deliver every generated packet: a 4x4 mesh minus one directed link
stays strongly connected, so the fault-aware reroute table always has a
surviving path.  Packet conservation must hold exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.fault.plan import link_cut
from repro.network.topology import Mesh
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic

MESH = Mesh(4, 4)

seeds = st.integers(min_value=0, max_value=2 ** 16)
rates = st.floats(min_value=0.02, max_value=0.06)
routers = st.integers(min_value=0, max_value=MESH.n_routers - 1)
port_picks = st.integers(min_value=0, max_value=7)


@given(seed=seeds, rate=rates, rid=routers, pidx=port_picks)
@settings(max_examples=10, deadline=None)
def test_reroute_survives_any_single_link_cut(seed, rate, rid, pidx):
    ports = MESH.ports_of(rid)
    port = ports[pidx % len(ports)]
    stop = 400  # warmup + measure: generation halts, the network drains
    cfg = SimConfig(rows=4, cols=4, warmup_cycles=100, measure_cycles=300,
                    drain_cycles=2500, watchdog_cycles=600,
                    fault_plan=link_cut(rid, port, at=150))
    sim = Simulation(cfg, get_scheme("escapevc"),
                     SyntheticTraffic("uniform", rate, seed=seed,
                                      stop=stop))
    res = sim.run()

    assert not res.deadlocked, (
        f"escapevc deadlocked after cutting ({rid}, {port}) seed={seed}")
    stats = sim.net.stats
    # Conservation and full delivery: every packet that entered the
    # network left it through an ejection port.
    assert sim.net.total_backlog() == 0, (
        f"undelivered packets after cutting ({rid}, {port}) seed={seed}")
    assert stats.injected == stats.ejected_total
    assert res.dropped == 0
    assert res.ejected > 0

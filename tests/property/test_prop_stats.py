"""Property tests for the statistics helpers (cross-checked against
numpy)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.stats import StatsCollector, percentile

values = st.lists(st.integers(min_value=0, max_value=10 ** 6), min_size=1,
                  max_size=500)


@given(values)
@settings(max_examples=100, deadline=None)
def test_percentile_matches_numpy_nearest_rank(vals):
    vals = sorted(vals)
    for q in (50, 90, 99, 100):
        ours = percentile(vals, q)
        ref = float(np.percentile(vals, q, method="inverted_cdf"))
        assert ours == ref


@given(values)
@settings(max_examples=50, deadline=None)
def test_percentile_bounds(vals):
    vals = sorted(vals)
    for q in (1, 50, 99):
        p = percentile(vals, q)
        assert vals[0] <= p <= vals[-1]


@given(values)
@settings(max_examples=50, deadline=None)
def test_percentile_monotone_in_q(vals):
    vals = sorted(vals)
    ps = [percentile(vals, q) for q in (10, 50, 90, 99)]
    assert ps == sorted(ps)


@given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1,
                max_size=200))
@settings(max_examples=50, deadline=None)
def test_avg_latency_matches_mean(lats):
    from repro.network.packet import Packet

    s = StatsCollector()
    for lat in lats:
        p = Packet(0, 1, 0, 0)
        p.eject_cycle = lat
        p.measured = True
        s.record_ejected(p)
    assert abs(s.avg_latency() - float(np.mean(lats))) < 1e-9
    assert s.ejected_measured == len(lats)

"""Property tests for the scenario compiler.

For any well-formed spec the phase clock must partition time exactly,
the compiled source must honour the per-phase offered rate, an equal
seed must produce an equal stream, and the JSON form must be lossless.
"""

from types import SimpleNamespace

from hypothesis import given, settings, strategies as st

from repro.network.topology import Mesh
from repro.scenario.source import ScenarioTraffic
from repro.scenario.spec import BurstSpec, PhaseSpec, ScenarioSpec

bursts = st.builds(
    BurstSpec,
    on_cycles=st.integers(min_value=1, max_value=64),
    off_cycles=st.integers(min_value=1, max_value=256),
    off_scale=st.floats(min_value=0.0, max_value=1.0),
)

hotspot_sets = st.lists(
    st.tuples(st.integers(min_value=0, max_value=15),
              st.floats(min_value=0.1, max_value=8.0)),
    min_size=1, max_size=3).map(tuple)

phases = st.builds(
    PhaseSpec,
    duration=st.integers(min_value=1, max_value=1024),
    pattern=st.sampled_from(["uniform", "transpose", "shuffle"]),
    rate=st.floats(min_value=0.0, max_value=0.5),
    hotspot_frac=st.just(0.0),
    burst=st.none() | bursts,
)

hotspot_phases = st.builds(
    PhaseSpec,
    duration=st.integers(min_value=1, max_value=1024),
    pattern=st.just("uniform"),
    rate=st.floats(min_value=0.0, max_value=0.5),
    hotspot_frac=st.floats(min_value=0.1, max_value=1.0),
    hotspots=hotspot_sets,
    burst=st.none() | bursts,
)

specs = st.builds(
    ScenarioSpec,
    name=st.just("prop"),
    phases=st.lists(phases | hotspot_phases,
                    min_size=1, max_size=4).map(tuple),
)


def _bound(spec, seed):
    t = ScenarioTraffic(spec, seed=seed)
    t.bind(SimpleNamespace(mesh=Mesh(4, 4)))
    return t


def _stream(spec, seed, until):
    t = _bound(spec, seed)
    while t._chunk_end < until:
        t._fill(t._chunk_end)
    return dict(t._by_cycle)


@given(spec=specs, cycle=st.integers(min_value=0, max_value=2 ** 20))
@settings(max_examples=60, deadline=None)
def test_phase_windows_partition_time_exactly(spec, cycle):
    """Durations tile the period with no gap or overlap, and every
    cycle falls in exactly one window that contains it."""
    bounds = spec.boundaries()
    assert bounds[0] == 0
    assert bounds[-1] == spec.total_cycles
    assert all(b < a for b, a in zip(bounds, bounds[1:]))
    assert sum(p.duration for p in spec.phases) == spec.total_cycles

    idx, lo, hi = spec.window_at(cycle)
    assert lo <= cycle < hi
    assert hi - lo == spec.phases[idx].duration
    # window edges map back to themselves / the next phase
    assert spec.window_at(lo) == (idx, lo, hi)
    if hi > lo + 1:
        assert spec.window_at(hi - 1) == (idx, lo, hi)
    assert spec.window_at(hi)[1] == hi


@given(seed=st.integers(min_value=0, max_value=2 ** 16),
       rate=st.floats(min_value=0.05, max_value=0.4))
@settings(max_examples=20, deadline=None)
def test_offered_rate_within_tolerance(seed, rate):
    """A long steady uniform phase must offer ~rate packets per node per
    cycle (generous statistical band; 16 nodes x 8192 cycles)."""
    span = 8192
    spec = ScenarioSpec("r", (PhaseSpec(duration=span, rate=rate),))
    events = _stream(spec, seed, span)
    offered = sum(len(v) for v in events.values()) / (span * 16)
    # self-traffic redraws discard ~1/16 of hits before staging
    expect = rate * 15 / 16
    assert abs(offered - expect) < 0.15 * rate + 0.01


@given(spec=specs, seed=st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=25, deadline=None)
def test_same_seed_same_stream(spec, seed):
    until = min(2048, 4 * spec.total_cycles)
    assert _stream(spec, seed, until) == _stream(spec, seed, until)


@given(spec=specs)
@settings(max_examples=60, deadline=None)
def test_json_round_trip_lossless(spec):
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    assert ScenarioSpec.from_token(spec.token()) == spec
    assert spec.sha() == ScenarioSpec.from_token(spec.token()).sha()

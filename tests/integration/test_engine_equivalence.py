"""Differential proof that the active-set engine is bit-identical to the
naive all-components sweep.

Every scheme runs the same seeded workload twice — once through the
active-set fast path (the default) and once with ``force_naive_step``
pinned on — and the two :class:`~repro.config.RunResult` objects must
agree on every field.  The paranoia audit stays on throughout, so the
incremental occupancy counters are also cross-checked against a full
rescan while both engines run.
"""

import dataclasses
import math

import pytest

from repro.config import SimConfig
from repro.schemes import get_scheme, scheme_names
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic

SCHEMES = sorted(scheme_names())


def _cfg():
    return SimConfig(rows=4, cols=4, warmup_cycles=100, measure_cycles=300,
                     drain_cycles=1200, fastpass_slot_cycles=64,
                     paranoia=50)


def _run(name, pattern, rate, seed, naive):
    sim = Simulation(_cfg(), get_scheme(name),
                     SyntheticTraffic(pattern, rate, seed=seed))
    sim.net.force_naive_step = naive
    return sim.run()


def _same(a, b):
    if isinstance(a, float) and isinstance(b, float) \
            and math.isnan(a) and math.isnan(b):
        return True
    return a == b


def assert_results_equal(fast, slow, label):
    for f in dataclasses.fields(fast):
        va, vb = getattr(fast, f.name), getattr(slow, f.name)
        assert _same(va, vb), \
            f"{label}: field {f.name!r} differs: active={va!r} naive={vb!r}"


@pytest.mark.parametrize("name", SCHEMES)
@pytest.mark.parametrize("pattern,rate", [("uniform", 0.08),
                                          ("transpose", 0.06)])
@pytest.mark.parametrize("seed", [3, 11])
def test_active_matches_naive(name, pattern, rate, seed):
    fast = _run(name, pattern, rate, seed, naive=False)
    slow = _run(name, pattern, rate, seed, naive=True)
    assert_results_equal(fast, slow, f"{name}/{pattern}@{rate} seed={seed}")
    assert fast.ejected > 0


def test_naive_flag_actually_switches_paths(monkeypatch):
    """Guard against the differential test silently comparing the fast
    path with itself."""
    from repro.network.network import Network

    calls = []
    orig = Network._step_naive

    def spy(self):
        calls.append(True)
        orig(self)

    monkeypatch.setattr(Network, "_step_naive", spy)
    _run("baseline", "uniform", 0.05, 3, naive=True)
    assert calls


# -- SoA kernel differentials --------------------------------------------
#
# The SoA engine is a write-through overlay over the scalar object graph,
# so its results must match both scalar engines bit-for-bit wherever it
# engages — and where it cannot engage (unsupported scheme, fault plan)
# the silent fallback must land on the active-set path with, again,
# identical results.

def _run_engine(name, pattern, rate, seed, engine, cfg=None, **kwargs):
    cfg = (cfg or _cfg()).with_(engine=engine)
    sim = Simulation(cfg, get_scheme(name, **kwargs),
                     SyntheticTraffic(pattern, rate, seed=seed))
    return sim.run(), sim


@pytest.mark.parametrize("name", ["fastpass", "escapevc", "spin"])
@pytest.mark.parametrize("rate", [0.02, 0.1, 0.3])
def test_soa_matches_naive_and_active(name, rate):
    """SoA vs active-set vs naive on the supported schemes, low load
    through saturation — plus ``spin``, whose out-of-band probe state
    the kernel refuses: it must fall back and still match."""
    seed = 5
    soa_res, soa_sim = _run_engine(name, "uniform", rate, seed, "soa")
    act_res, _ = _run_engine(name, "uniform", rate, seed, "active")
    naive_res = _run(name, "uniform", rate, seed, naive=True)
    label = f"{name}/uniform@{rate}"
    assert_results_equal(soa_res, act_res, f"{label} soa vs active")
    assert_results_equal(soa_res, naive_res, f"{label} soa vs naive")
    if name == "spin":
        assert soa_sim.net.soa is None
        assert "fallback" in soa_sim.engine_used
    else:
        assert soa_sim.engine_used == "soa"
        assert soa_sim.net.soa is not None
        assert soa_sim.net.soa.cycles > 0, "kernel never stepped"


def test_soa_matches_scalar_with_bounces(monkeypatch):
    """A FastPass run in which the bounce protocol demonstrably fires
    (zero consume bandwidth + single-entry ejection queues), forcing the
    kernel through its manager-absorb and scalar-fallback corners."""
    from repro.network.ni import NetworkInterface
    monkeypatch.setattr(NetworkInterface, "CONSUME_RATE", 0)
    cfg = _cfg().with_(ej_queue_pkts=1)
    soa_res, soa_sim = _run_engine("fastpass", "uniform", 0.3, 5, "soa",
                                   cfg=cfg, n_vcs=2)
    act_res, _ = _run_engine("fastpass", "uniform", 0.3, 5, "active",
                             cfg=cfg, n_vcs=2)
    assert soa_sim.engine_used == "soa"
    assert soa_sim.net.fastpass.engine.bounced > 0, "no bounces provoked"
    assert_results_equal(soa_res, act_res, "soa bounces")


def test_soa_falls_back_under_transient_faults():
    """A fault plan mutates link timers and routes out of band, so
    ``engine="soa"`` must silently run the scalar path — reported via
    ``engine_used`` — with bit-identical results."""
    from repro.fault.plan import LINK_FLAP, FaultEvent, FaultPlan
    plan = FaultPlan(
        events=(FaultEvent(LINK_FLAP, at=150, router=5, port=2,
                           duration=120),),
        rate=0.002, start=100, stop=400, seed=3)
    cfg = _cfg().with_(fault_plan=plan, paranoia=0)
    soa_res, soa_sim = _run_engine("fastpass", "uniform", 0.08, 5,
                                   "soa", cfg=cfg)
    act_res, _ = _run_engine("fastpass", "uniform", 0.08, 5,
                             "active", cfg=cfg)
    assert soa_sim.net.soa is None
    assert "fallback" in soa_sim.engine_used
    assert_results_equal(soa_res, act_res, "soa fault fallback")


def test_soa_transpose_and_seeds():
    """Pattern and seed sweep on the supported schemes at a blocked
    rate — the regime the kernel's screen actually exercises."""
    for name in ("baseline", "fastpass", "escapevc"):
        for seed in (3, 11):
            soa_res, soa_sim = _run_engine(name, "transpose", 0.3,
                                           seed, "soa")
            act_res, _ = _run_engine(name, "transpose", 0.3,
                                     seed, "active")
            assert soa_sim.engine_used == "soa"
            assert_results_equal(soa_res, act_res,
                                 f"{name}/transpose seed={seed}")


# -- Scenario-source differentials ---------------------------------------
#
# Every scenario source (bursty/MMPP, hotspot shift, mixed lanes) and the
# trace-replay source must drive all three engines to bit-identical
# results: they sit on the same TrafficSource seam, so any divergence
# means an engine is consuming traffic state out of order.

from repro.scenario.source import ScenarioTraffic  # noqa: E402
from repro.scenario.spec import SCENARIOS  # noqa: E402
from repro.scenario.trace import TraceReplay  # noqa: E402


def _run_scenario(scheme, spec, seed, engine, cfg=None, naive=False):
    cfg = (cfg or _cfg()).with_(engine=engine)
    sim = Simulation(cfg, get_scheme(scheme),
                     ScenarioTraffic(spec, seed=seed))
    sim.net.force_naive_step = naive
    return sim.run(), sim


@pytest.mark.parametrize("scenario",
                         ["bursty", "hotspot_shift", "mixed_lanes"])
def test_scenario_sources_match_across_engines(scenario):
    spec = SCENARIOS[scenario]
    seed = 7
    soa_res, soa_sim = _run_scenario("fastpass", spec, seed, "soa")
    act_res, _ = _run_scenario("fastpass", spec, seed, "active")
    naive_res, _ = _run_scenario("fastpass", spec, seed, "active",
                                 naive=True)
    assert_results_equal(soa_res, act_res, f"{scenario} soa vs active")
    assert_results_equal(soa_res, naive_res, f"{scenario} soa vs naive")
    assert soa_res.ejected > 0
    assert soa_sim.engine_used == "soa"
    assert soa_sim.net.soa is not None and soa_sim.net.soa.cycles > 0


def test_scenario_under_transient_faults_matches():
    """A scenario source driven through a transient fault plan: SoA must
    fall back, and all three paths must still agree bit for bit."""
    from repro.fault.plan import LINK_FLAP, FaultEvent, FaultPlan
    plan = FaultPlan(
        events=(FaultEvent(LINK_FLAP, at=150, router=5, port=2,
                           duration=120),),
        rate=0.002, start=100, stop=400, seed=3)
    cfg = _cfg().with_(fault_plan=plan, paranoia=0)
    spec = SCENARIOS["bursty"]
    soa_res, soa_sim = _run_scenario("fastpass", spec, 5, "soa", cfg=cfg)
    act_res, _ = _run_scenario("fastpass", spec, 5, "active", cfg=cfg)
    naive_res, _ = _run_scenario("fastpass", spec, 5, "active", cfg=cfg,
                                 naive=True)
    assert soa_sim.net.soa is None
    assert "fallback" in soa_sim.engine_used
    assert_results_equal(soa_res, act_res, "scenario faults soa vs active")
    assert_results_equal(soa_res, naive_res, "scenario faults vs naive")


def test_trace_replay_matches_across_engines(tmp_path):
    """Record once, then replay the identical stream through every
    engine — the recorded run and all three replays must agree."""
    from repro.scenario.runner import record_scenario, replay_trace
    rec_res, path = record_scenario("fastpass", SCENARIOS["bursty"],
                                    _cfg(), tmp_path / "t.jsonl", seed=9)
    act_res = replay_trace("fastpass", path, _cfg().with_(engine="active"))
    soa_res = replay_trace("fastpass", path, _cfg().with_(engine="soa"))
    naive_sim = Simulation(_cfg(), get_scheme("fastpass"),
                           TraceReplay.from_file(path))
    naive_sim.net.force_naive_step = True
    naive_res = naive_sim.run()
    naive_res.extra["rate"] = naive_sim.traffic.rate
    naive_res.extra["pattern"] = naive_sim.traffic.pattern
    # The recorded run labels itself "scenario:..." while replays say
    # "trace:..." — everything else must match bit for bit.
    for f in dataclasses.fields(act_res):
        if f.name == "extra":
            continue
        assert _same(getattr(act_res, f.name), getattr(rec_res, f.name)), \
            f"replay vs recorded: field {f.name!r} differs"
    assert {k: v for k, v in act_res.extra.items() if k != "pattern"} \
        == {k: v for k, v in rec_res.extra.items() if k != "pattern"}
    assert_results_equal(soa_res, act_res, "replay soa vs active")
    assert_results_equal(naive_res, act_res, "replay naive vs active")
    assert act_res.ejected > 0


def test_soa_kernel_fast_paths_engage():
    """The perf-bearing fast paths must demonstrably fire: cycles where
    the whole router phase is screened out, injection-step skips, and
    scalar materialisation staying the exception, not the rule."""
    _, sim = _run_engine("fastpass", "uniform", 0.1, 5, "soa")
    k = sim.net.soa
    assert k.cycles > 0
    assert k.skipped > 0, "screen never skipped a router phase"
    assert k.inject_skips > 0, "injection screen never engaged"
    assert k.materialized < k.cycles * sim.net.mesh.n_routers, \
        "every router materialised every cycle — the screen is dead"

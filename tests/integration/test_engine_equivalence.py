"""Differential proof that the active-set engine is bit-identical to the
naive all-components sweep.

Every scheme runs the same seeded workload twice — once through the
active-set fast path (the default) and once with ``force_naive_step``
pinned on — and the two :class:`~repro.config.RunResult` objects must
agree on every field.  The paranoia audit stays on throughout, so the
incremental occupancy counters are also cross-checked against a full
rescan while both engines run.
"""

import dataclasses
import math

import pytest

from repro.config import SimConfig
from repro.schemes import get_scheme, scheme_names
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic

SCHEMES = sorted(scheme_names())


def _cfg():
    return SimConfig(rows=4, cols=4, warmup_cycles=100, measure_cycles=300,
                     drain_cycles=1200, fastpass_slot_cycles=64,
                     paranoia=50)


def _run(name, pattern, rate, seed, naive):
    sim = Simulation(_cfg(), get_scheme(name),
                     SyntheticTraffic(pattern, rate, seed=seed))
    sim.net.force_naive_step = naive
    return sim.run()


def _same(a, b):
    if isinstance(a, float) and isinstance(b, float) \
            and math.isnan(a) and math.isnan(b):
        return True
    return a == b


def assert_results_equal(fast, slow, label):
    for f in dataclasses.fields(fast):
        va, vb = getattr(fast, f.name), getattr(slow, f.name)
        assert _same(va, vb), \
            f"{label}: field {f.name!r} differs: active={va!r} naive={vb!r}"


@pytest.mark.parametrize("name", SCHEMES)
@pytest.mark.parametrize("pattern,rate", [("uniform", 0.08),
                                          ("transpose", 0.06)])
@pytest.mark.parametrize("seed", [3, 11])
def test_active_matches_naive(name, pattern, rate, seed):
    fast = _run(name, pattern, rate, seed, naive=False)
    slow = _run(name, pattern, rate, seed, naive=True)
    assert_results_equal(fast, slow, f"{name}/{pattern}@{rate} seed={seed}")
    assert fast.ejected > 0


def test_naive_flag_actually_switches_paths(monkeypatch):
    """Guard against the differential test silently comparing the fast
    path with itself."""
    from repro.network.network import Network

    calls = []
    orig = Network._step_naive

    def spy(self):
        calls.append(True)
        orig(self)

    monkeypatch.setattr(Network, "_step_naive", spy)
    _run("baseline", "uniform", 0.05, 3, naive=True)
    assert calls

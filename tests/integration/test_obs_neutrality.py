"""Differential proof that observability is result-neutral.

The same seeded workload runs twice — once bare, once fully instrumented
(event bus with every standard metric wired, periodic gauge sampling,
and the packet tracer subscribed) — and the two
:class:`~repro.config.RunResult` objects must agree on every field.  The
matrix covers both step engines (active-set and naive sweep) and a
transient-fault run so the fault emit points are exercised too.

A second family of checks cross-validates the bus-derived counters
against the engine's own :class:`~repro.sim.stats.StatsCollector`: the
two are maintained by entirely independent code paths, so agreement
means the emit points fire exactly once per real event.
"""

import pytest

from repro.config import SimConfig
from repro.fault.plan import fault_storm
from repro.obs import Observability
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.sim.trace import PacketTracer
from repro.traffic.synthetic import SyntheticTraffic

from tests.integration.test_engine_equivalence import assert_results_equal


def _cfg(**overrides):
    base = dict(rows=4, cols=4, warmup_cycles=100, measure_cycles=300,
                drain_cycles=1200, fastpass_slot_cycles=64, seed=7)
    base.update(overrides)
    return SimConfig(**base)


def _simulation(scheme, cfg, rate=0.08, seed=13):
    kwargs = {"n_vcs": 2} if scheme == "fastpass" else {}
    return Simulation(cfg, get_scheme(scheme, **kwargs),
                      SyntheticTraffic("uniform", rate, seed=seed))


def _run(scheme, cfg, naive, instrument):
    sim = _simulation(scheme, cfg)
    sim.net.force_naive_step = naive
    obs = tracer = None
    if instrument:
        obs = Observability(sample_every=7).attach(sim.net)
        tracer = PacketTracer(sim.net)
    res = sim.run()
    return res, obs, tracer


class TestResultNeutrality:
    @pytest.mark.parametrize("naive", [False, True],
                             ids=["active-set", "naive"])
    @pytest.mark.parametrize("scheme", ["fastpass", "escapevc"])
    def test_instrumented_run_is_bit_identical(self, scheme, naive):
        cfg = _cfg()
        bare, _, _ = _run(scheme, cfg, naive, instrument=False)
        inst, obs, tracer = _run(scheme, cfg, naive, instrument=True)
        assert_results_equal(bare, inst, f"{scheme} naive={naive}")
        # guard: the instrumented leg really observed the run
        assert obs.bus.emitted > 0
        assert tracer.counts()["ejected"] == inst.ejected
        assert obs.sampler.series["noc_packets_in_flight"][0]

    @pytest.mark.parametrize("naive", [False, True],
                             ids=["active-set", "naive"])
    def test_neutral_under_transient_faults(self, naive):
        """Fault activation/recovery emits fire without perturbing the
        run — and the fault-event counter sees them."""
        cfg = _cfg(fault_plan=fault_storm(0.03, start=120, stop=300,
                                          mean_duration=40, seed=5))
        bare, _, _ = _run("fastpass", cfg, naive, instrument=False)
        inst, obs, _ = _run("fastpass", cfg, naive, instrument=True)
        assert_results_equal(bare, inst, f"faults naive={naive}")
        fam = obs.registry.get("noc_fault_events_total")
        assert fam.total() > 0
        kinds = {labels[0][1] for labels in
                 ((c.labels) for c in fam.children())}
        assert "recovered" in kinds


class TestMetricsMatchStats:
    """Bus-derived counters vs the engine's own StatsCollector."""

    @pytest.mark.parametrize("scheme", ["fastpass", "baseline"])
    def test_counters_agree_with_stats(self, scheme):
        sim = _simulation(scheme, _cfg())
        obs = Observability().attach(sim.net)
        sim.run()
        stats = sim.net.stats
        counters = obs.registry.to_json()["counters"]
        assert counters["noc_injected_total"] == stats.injected
        assert counters["noc_ejected_total"] == stats.ejected_total
        assert counters["noc_dropped_total"] == stats.dropped
        hist = obs.registry.get("noc_packet_latency_cycles")
        assert hist.count == stats.ejected_measured
        assert hist.sum == sum(stats.latencies)

    def test_upgrades_cover_fastpass_deliveries(self):
        sim = _simulation("fastpass", _cfg())
        obs = Observability().attach(sim.net)
        sim.run()
        ups = obs.registry.get("noc_upgrades_total").total()
        assert ups >= sim.net.stats.fastpass_delivered > 0
        assert obs.registry.to_json()["counters"][
            "noc_lane_slots_total"] > 0

"""Integration: every experiment regenerator runs and produces the shape
of output the paper reports (miniature configurations)."""

import pytest

from repro.experiments import (
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
    table2,
)


class TestTable1:
    def test_matrix_generated(self):
        result = table1.run()
        assert len(result["rows"]) == 6
        assert result["rows"][-1]["scheme"] == "fastpass"
        assert all(c == "X" for c in result["rows"][-1]["cells"])

    def test_formatting(self):
        text = table1.format_result(table1.run())
        assert "fastpass" in text
        assert "Protocol DF" in text


class TestTable2:
    def test_parameters_present(self):
        result = table2.run()
        keys = {k for k, _v in result["rows"]}
        assert {"Topology", "Buffer size", "SWAP duty",
                "FastPass slot K"} <= keys

    def test_formatting(self):
        assert "VCT" in table2.format_result(table2.run())


class TestFig7:
    def test_small_sweep(self):
        result = fig7.run(quick=True, patterns=("transpose",),
                          schemes=[("EscapeVC", "escapevc", {}),
                                   ("FastPass", "fastpass", {"n_vcs": 4})],
                          rates=[0.02, 0.10])
        series = result["series"]["transpose"]
        assert set(series) == {"EscapeVC", "FastPass"}
        for pts in series.values():
            assert len(pts) >= 1
            assert pts[0][1] > 0
        text = fig7.format_result(result)
        assert "saturation" in text

    def test_saturation_helper(self):
        pts = [(0.02, 10.0, False), (0.06, 12.0, False),
               (0.10, 50.0, False), (0.14, 900.0, False)]
        assert fig7.saturation_of(pts) == 0.06


class TestFig8:
    def test_scaling_table(self):
        result = fig8.run(quick=True, sizes=(4,),
                          schemes=[("SWAP", "swap", {}),
                                   ("FastPass", "fastpass", {"n_vcs": 4})],
                          iters=2)
        assert set(result["table"]) == {"SWAP", "FastPass"}
        for row in result["table"].values():
            assert 0 < row[4] <= 0.4
        assert "FastPass over SWAP" in fig8.format_result(result)


class TestFig9:
    def test_breakdown_columns(self):
        result = fig9.run(quick=True, rates=[0.02, 0.10])
        assert len(result["rows"]) == 2
        low, high = result["rows"]
        assert high["fp_share"] > 0
        text = fig9.format_result(result)
        assert "bufferless" in text

    def test_bufferless_time_small_and_flat(self):
        """The paper's Fig. 9 claim, in miniature."""
        result = fig9.run(quick=True, rates=[0.02, 0.12])
        rows = [r for r in result["rows"]
                if r["fp_bufferless"] == r["fp_bufferless"]]
        assert rows
        for r in rows:
            assert r["fp_bufferless"] < 30


class TestFig10:
    def test_two_benchmarks_two_schemes(self):
        result = fig10.run(
            quick=True, benchmarks=("Volrend",),
            schemes=[("EscapeVC(VN=6, VC=2)", "escapevc", {}),
                     ("FastPass(VN=0, VC=2)", "fastpass", {"n_vcs": 2})])
        assert result["exec_norm"]["Volrend"]["EscapeVC(VN=6, VC=2)"] == 1.0
        fp = result["exec_norm"]["Volrend"]["FastPass(VN=0, VC=2)"]
        assert 0.5 < fp < 2.0
        assert "normalized execution time" in fig10.format_result(result)


class TestFig11:
    def test_reduction_claim(self):
        result = fig11.run()
        fp = next(r for r in result["rows"] if r["scheme"] == "fastpass")
        assert 0.5 < fp["area_vs_escape"] < 0.7
        assert "paper: 40%" in fig11.format_result(result)


class TestFig12:
    def test_tail_latency_table(self):
        result = fig12.run(
            quick=True, benchmarks=("Volrend",),
            schemes=[("SWAP (VN=6, VC=2)", "swap", {}),
                     ("FastPass(VN=0, VC=2)", "fastpass", {"n_vcs": 2})])
        row = result["p99"]["Volrend"]
        assert all(v > 0 for v in row.values())


class TestFig13:
    def test_breakdown_sums_to_one(self):
        result = fig13.run(quick=True, rates=[0.04, 0.12],
                           benchmarks=("Volrend",))
        for r in result["uniform"] + result["apps"]:
            total = r["regular"] + r["fastpass"] + r["dropped"]
            assert total == pytest.approx(1.0)

    def test_fastflow_kicks_in_with_load(self):
        result = fig13.run(quick=True, rates=[0.02, 0.14],
                           benchmarks=())
        lo, hi = result["uniform"]
        assert hi["fastpass"] >= lo["fastpass"]

    def test_drops_negligible(self):
        result = fig13.run(quick=True, rates=[0.10],
                           benchmarks=("Volrend",))
        for r in result["uniform"] + result["apps"]:
            assert r["dropped"] < 0.06   # paper: <= 5.9% post-saturation

    def test_stress_section_exercises_dropping(self):
        result = fig13.run(quick=True, rates=[0.04], benchmarks=())
        stress = result["stress"]
        assert stress["completed"]
        assert 0 < stress["dropped"] < 0.09
        assert "SCARAB" in fig13.format_result(result)

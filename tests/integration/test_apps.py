"""Integration: the application-workload pipeline (Fig. 10/12/13(b)
substrate) across schemes."""

import pytest

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.workloads import WORKLOADS, workload_traffic

APP_SCHEMES = ["escapevc", "spin", "swap", "drain", "pitstop", "tfc",
               "fastpass"]


def run_app(scheme, bench="Volrend", txns=60, **kw):
    cfg = SimConfig(rows=4, cols=4)
    traffic = workload_traffic(bench, txns_per_core=txns, seed=2)
    sim = Simulation(cfg, get_scheme(scheme, **kw), traffic)
    res = sim.run_to_completion(max_cycles=300000)
    return sim, res


class TestAllSchemesRunApps:
    @pytest.mark.parametrize("scheme", APP_SCHEMES)
    def test_light_workload_completes(self, scheme):
        kw = {"n_vcs": 2} if scheme == "fastpass" else {}
        sim, res = run_app(scheme, "Volrend", **kw)
        assert sim.traffic.done()
        assert not res.deadlocked

    @pytest.mark.parametrize("bench", sorted(WORKLOADS))
    def test_fastpass_completes_every_benchmark(self, bench):
        sim, res = run_app("fastpass", bench, n_vcs=2)
        assert sim.traffic.done()
        assert not res.deadlocked


class TestWorkloadCharacter:
    def test_heavy_benchmarks_produce_higher_latency(self):
        _s_hot, hot = run_app("escapevc", "Radix", txns=80)
        _s_cold, cold = run_app("escapevc", "Volrend", txns=80)
        assert hot.avg_latency > cold.avg_latency

    def test_execution_time_scales_with_think_time(self):
        _s1, fast = run_app("escapevc", "Radix", txns=40)
        _s2, slow = run_app("escapevc", "Lu_cb", txns=40)
        assert slow.cycles > fast.cycles

    def test_hotspot_benchmark_has_higher_tail(self):
        _s1, hs = run_app("escapevc", "Streamcluster", txns=80)
        _s2, no = run_app("escapevc", "Volrend", txns=80)
        assert hs.p99_latency >= no.p99_latency


class TestClosedLoopProperties:
    def test_latency_stats_cover_all_classes(self):
        sim, res = run_app("fastpass", "Barnes", n_vcs=2)
        counts = sim.net.stats.per_class_ejected
        assert counts[0] > 0 and counts[1] > 0      # REQ and RESP

    def test_fastpass_upgrades_occur_in_apps(self):
        sim, _res = run_app("fastpass", "Radix", txns=80, n_vcs=2)
        assert sim.net.fastpass.upgrades > 0

    def test_result_cycles_equals_completion_time(self):
        sim, res = run_app("escapevc", "Volrend", txns=30)
        assert res.cycles < 300000
        assert sim.traffic.done()

"""Integration: the fault-injection sweep end to end, certifying the
acceptance criteria of the robustness subsystem — reroute-capable schemes
deliver 100% around a permanent cut, the plain baseline wedges and leaves
a JSON post-mortem, and a healthy FastPass run passes the liveness audit
with zero violations."""

import json
import math
from pathlib import Path

from repro.experiments import faults
from repro.experiments.cli import main


SCHEMES = [
    ("FastPass", "fastpass", {"n_vcs": 4}),
    ("EscapeVC", "escapevc", {}),
    ("Baseline", "baseline", {}),
]


def _row(result, scheme, fault):
    rows = [r for r in result["rows"]
            if r["scheme"] == scheme and r["fault"] == fault]
    assert len(rows) == 1, (scheme, fault, result["rows"])
    return rows[0]


class TestFaultsSweep:
    def test_cut_sweep_meets_acceptance_criteria(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        result = faults.run(quick=True, rows=4, cols=4, schemes=SCHEMES,
                            rates=[0.05], fault_rates=[0.01],
                            modes=["none", "cut"])
        assert len(result["rows"]) == len(SCHEMES) * 2

        for r in result["rows"]:
            assert not r["failed"]
            assert r["generated"] > 0

        # Healthy FastPass passes the liveness audit: zero violations.
        healthy = _row(result, "FastPass", "none")
        assert not healthy["deadlocked"]
        assert healthy["liveness_violations"] == 0
        assert healthy["liveness_bound"] > 0

        # Reroute-capable schemes deliver everything around the cut.
        for scheme in ("FastPass", "EscapeVC"):
            r = _row(result, scheme, "cut")
            assert not r["deadlocked"], scheme
            assert r["delivered"] == r["generated"], scheme
            assert r["fault_events"] == 1
            assert r["degraded_delivered"] > 0
            assert not math.isnan(r["degraded_latency"])

        # The plain baseline wedges, terminates via the watchdog, and
        # leaves a JSON post-mortem under <results>/diagnostics/.
        wedged = _row(result, "Baseline", "cut")
        assert wedged["deadlocked"]
        assert wedged["postmortem"]
        path = Path(wedged["postmortem"])
        assert path.parent == tmp_path / "diagnostics"
        payload = json.loads(path.read_text())
        assert payload["reason"] == "watchdog"
        assert payload["faults"]["dead_links"]
        assert payload["vc_occupancy"]

    def test_storm_mode_runs_without_wedging_fastpass(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        result = faults.run(quick=True, rows=4, cols=4,
                            schemes=[("FastPass", "fastpass",
                                      {"n_vcs": 4})],
                            rates=[0.05], fault_rates=[0.01],
                            modes=["storm"])
        r = _row(result, "FastPass", "storm@0.01")
        assert not r["failed"]
        assert r["fault_events"] > 0
        assert r["delivered"] > 0

    def test_formatting(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        result = faults.run(quick=True, rows=4, cols=4,
                            schemes=[("Baseline", "baseline", {})],
                            rates=[0.05], fault_rates=[0.01],
                            modes=["cut"])
        text = faults.format_result(result)
        assert "WATCHDOG" in text
        assert "post-mortem" in text


class TestFaultsCLI:
    def test_sweep_subcommand(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        out_json = tmp_path / "faults.json"
        rc = main(["faults", "sweep", "--schemes", "fastpass",
                   "--rates", "0.05", "--modes", "none",
                   "--json", str(out_json)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "FastPass" in text
        assert "viol" in text
        payload = json.loads(out_json.read_text())
        assert payload["rows"][0]["liveness_violations"] == 0

    def test_rejects_unknown_mode(self, capsys):
        try:
            main(["faults", "sweep", "--modes", "earthquake"])
        except SystemExit as exc:
            assert exc.code != 0
        else:  # pragma: no cover - argparse always exits
            raise AssertionError("expected SystemExit")
        assert "unknown fault modes" in capsys.readouterr().err

"""Golden-trace regression: a committed trace fixture must replay to
pinned statistics on every engine.

The fixture (``tests/data/golden_trace.jsonl``) was recorded once from
the ``golden`` two-phase scenario (bursty uniform then transpose) on a
4x4 FastPass mesh, seed 2026.  Any drift in router arbitration, traffic
staging, or the trace reader shows up here as a hard number mismatch —
and a trace schema bump must fail loudly, not replay garbage.
"""

import json
from pathlib import Path

import pytest

from repro.config import SimConfig
from repro.scenario.runner import replay_trace
from repro.scenario.trace import TraceSchemaError, load_trace
from repro.schemes import get_scheme
from repro.sim.engine import Simulation

GOLDEN = Path(__file__).resolve().parents[1] / "data" / "golden_trace.jsonl"

# Pinned at recording time — do not "refresh" these to make a failure
# pass; a change here means replay semantics changed.
PINNED_DELIVERED = 95
PINNED_AVG_LATENCY = 7.661538461538462
PINNED_THROUGHPUT = 0.015869140625


def _cfg():
    # Inline and frozen: the golden numbers are only meaningful against
    # exactly this window geometry.
    return SimConfig(rows=4, cols=4, warmup_cycles=64, measure_cycles=256,
                     drain_cycles=800, fastpass_slot_cycles=64)


def test_fixture_is_well_formed():
    header, events = load_trace(GOLDEN)
    assert header["scenario"] == "golden"
    assert header["mesh"] == [4, 4]
    assert header["seed"] == 2026
    assert len(events) == header["events"] > 0


@pytest.mark.parametrize("engine", ["active", "soa"])
def test_replay_reproduces_pinned_stats(engine):
    res = replay_trace("fastpass", GOLDEN, _cfg().with_(engine=engine))
    assert res.ejected == PINNED_DELIVERED
    assert res.avg_latency == PINNED_AVG_LATENCY
    assert res.throughput == PINNED_THROUGHPUT


def test_replay_reproduces_pinned_stats_naive():
    from repro.scenario.trace import TraceReplay
    sim = Simulation(_cfg(), get_scheme("fastpass"),
                     TraceReplay.from_file(GOLDEN))
    sim.net.force_naive_step = True
    res = sim.run()
    assert res.ejected == PINNED_DELIVERED
    assert res.avg_latency == PINNED_AVG_LATENCY


def test_schema_bump_fails_loudly(tmp_path):
    lines = GOLDEN.read_text().splitlines()
    header = json.loads(lines[0])
    header["schema"] += 1
    bumped = tmp_path / "golden_v2.jsonl"
    bumped.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    with pytest.raises(TraceSchemaError, match="not supported"):
        replay_trace("fastpass", bumped, _cfg())

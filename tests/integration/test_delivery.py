"""Integration: packet conservation and delivery across schemes/patterns.

The fundamental invariant of the simulator: no packet is ever lost or
duplicated — everything generated is eventually delivered (or accounted
for as in-flight/dropped-and-regenerating when a run is cut short).
"""

import pytest

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic

ALL_SCHEMES = ["escapevc", "spin", "swap", "drain", "pitstop", "minbd",
               "tfc", "fastpass", "baseline"]


def quick_cfg(**kw):
    base = dict(rows=4, cols=4, warmup_cycles=100, measure_cycles=400,
                drain_cycles=2500, fastpass_slot_cycles=64)
    base.update(kw)
    return SimConfig(**base)


class TestConservation:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_all_measured_packets_delivered_at_low_load(self, name):
        sim = Simulation(quick_cfg(), get_scheme(name),
                         SyntheticTraffic("uniform", 0.05, seed=11))
        res = sim.run()
        assert res.extra["undelivered"] == 0
        assert not res.deadlocked

    @pytest.mark.parametrize("pattern", ["uniform", "transpose", "shuffle",
                                         "bit_rotation", "bit_complement"])
    def test_fastpass_delivers_every_pattern(self, pattern):
        sim = Simulation(quick_cfg(), get_scheme("fastpass", n_vcs=2),
                         SyntheticTraffic(pattern, 0.05, seed=11))
        res = sim.run()
        assert res.extra["undelivered"] == 0

    @pytest.mark.parametrize("name", ["fastpass", "escapevc", "minbd"])
    def test_no_duplication(self, name):
        """Ejected count never exceeds generated count."""
        sim = Simulation(quick_cfg(), get_scheme(name),
                         SyntheticTraffic("uniform", 0.08, seed=3))
        res = sim.run()
        total_generated = (sim.traffic.measured_generated +
                           sum(1 for _ in ()))  # measured only tracked
        assert sim.net.stats.ejected_measured <= total_generated

    def test_inflight_plus_delivered_equals_generated(self):
        sim = Simulation(quick_cfg(), get_scheme("fastpass", n_vcs=2),
                         SyntheticTraffic("uniform", 0.1, seed=5))
        sim.traffic.measure_window(0, 1 << 60)
        net = sim.net
        for _ in range(600):
            net.step()
        pending_regen = sum(ni.dropped - ni.regenerated for ni in net.nis)
        accounted = (net.stats.ejected_total + net.total_backlog() +
                     pending_regen)
        assert accounted == sim.traffic.measured_generated


class TestLatencyOrdering:
    def test_latency_grows_with_load(self):
        lats = []
        for rate in (0.02, 0.10, 0.20):
            sim = Simulation(quick_cfg(), get_scheme("escapevc"),
                             SyntheticTraffic("transpose", rate, seed=2))
            lats.append(sim.run().avg_latency)
        assert lats[0] < lats[1] < lats[2]

    def test_fastpass_beats_escapevc_at_load(self):
        """The headline latency claim, miniaturised: near saturation,
        FastPass delivers lower average latency."""
        results = {}
        for name, kw in [("escapevc", {}), ("fastpass", {"n_vcs": 4})]:
            sim = Simulation(quick_cfg(), get_scheme(name, **kw),
                             SyntheticTraffic("transpose", 0.16, seed=2))
            results[name] = sim.run().avg_latency
        assert results["fastpass"] < results["escapevc"]


class TestHopCounts:
    def test_minimal_schemes_use_minimal_hops(self):
        """Every non-misrouting scheme delivers along minimal paths."""
        for name in ("escapevc", "fastpass", "tfc", "baseline"):
            cfg = quick_cfg()
            sim = Simulation(cfg, get_scheme(name),
                             SyntheticTraffic("uniform", 0.03, seed=9))
            net = sim.net
            seen = []
            net.stats.on_ejected = seen.append
            sim.run()
            assert seen, name
            for pkt in seen:
                assert pkt.hops == net.mesh.hops(pkt.src, pkt.dst), name

    def test_minbd_may_exceed_minimal(self):
        cfg = quick_cfg()
        sim = Simulation(cfg, get_scheme("minbd"),
                         SyntheticTraffic("transpose", 0.25, seed=9))
        net = sim.net
        over = []

        def spy(pkt):
            if pkt.hops > net.mesh.hops(pkt.src, pkt.dst):
                over.append(pkt)

        net.stats.on_ejected = spy
        sim.run()
        assert over          # deflections misroute under contention

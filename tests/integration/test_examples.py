"""Integration: the example scripts run and produce their advertised
output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "FastPass(VN=0, VC=4)" in out
        assert "lane upgrades" in out

    def test_deadlock_rescue(self):
        out = run_example("deadlock_rescue.py")
        assert "DEADLOCKED" in out
        assert out.count("completed") >= 2

    def test_app_workloads(self):
        out = run_example("app_workloads.py")
        assert "Radix" in out and "Volrend" in out
        assert "FastPass" in out

    def test_irregular_topology(self):
        out = run_example("irregular_topology.py")
        assert "link-disjoint partitions derived and verified" in out
        assert "TDM schedule" in out

"""Integration: DRAIN's tail-latency pathology (Fig. 12's claim), plus a
regression pin on the drain *phase* early-exit condition.

When DRAIN's period fires inside a run, the whole-network circulation
misroutes everything in flight — unlucky packets pick up large detours, so
DRAIN's p99 visibly exceeds a no-misrouting scheme's under the same load.
"""

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic


def run(scheme_name, drain_period=600, **kw):
    cfg = SimConfig(rows=4, cols=4, warmup_cycles=100, measure_cycles=1500,
                    drain_cycles=2500, drain_period_cycles=drain_period,
                    fastpass_slot_cycles=64)
    sim = Simulation(cfg, get_scheme(scheme_name, **kw),
                     SyntheticTraffic("uniform", 0.08, seed=21))
    return sim.run()


class TestDrainTail:
    def test_drain_p99_exceeds_escapevc(self):
        drain = run("drain")
        escape = run("escapevc")
        assert drain.p99_latency > escape.p99_latency

    def test_drain_avg_also_hurt_but_less(self):
        drain = run("drain")
        escape = run("escapevc")
        # the tail is disproportionately affected: the p99 gap factor
        # exceeds the mean gap factor
        tail_factor = drain.p99_latency / escape.p99_latency
        mean_factor = drain.avg_latency / escape.avg_latency
        assert tail_factor > mean_factor

    def test_no_period_no_pathology(self):
        quiet = run("drain", drain_period=10 ** 9)
        escape = run("escapevc")
        assert quiet.p99_latency <= 1.6 * escape.p99_latency

    def test_fastpass_tail_below_drain(self):
        drain = run("drain")
        fp = run("fastpass", n_vcs=2)
        assert fp.p99_latency < drain.p99_latency


class OvercountingTraffic(SyntheticTraffic):
    """Claims one measured packet it never injected.

    The phantom can never be delivered, so ``ejected_measured`` stays one
    short of ``measured_generated`` forever — only the empty-network exit
    (``total_backlog() + limbo > 0``) can end the drain phase early."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._phantom = False

    def generate(self, net, now):
        super().generate(net, now)
        if not self._phantom and \
                self.measure_start <= now < self.measure_end:
            self.measured_generated += 1
            self._phantom = True


class TestDrainLoopExit:
    """Regression pin: the drain loop must stop once the network is empty
    even while undelivered measured packets remain on the books.  Without
    the ``total_backlog() + limbo > 0`` term the loop spins for the full
    ``drain_cycles`` budget on every run with an undeliverable packet."""

    def test_drain_exits_early_when_network_empties(self):
        cfg = SimConfig(rows=4, cols=4, warmup_cycles=50,
                        measure_cycles=200, drain_cycles=50_000,
                        fastpass_slot_cycles=64)
        traffic = OvercountingTraffic("uniform", 0.05, seed=4)
        traffic.stop = cfg.warmup_cycles + cfg.measure_cycles
        sim = Simulation(cfg, get_scheme("fastpass", n_vcs=2), traffic)
        res = sim.run()
        assert traffic._phantom
        assert res.extra["undelivered"] == 1
        assert not res.deadlocked
        assert sim.net.total_backlog() + sim.net.limbo == 0
        # well before the 50k-cycle drain deadline: the empty-network
        # exit fired, not the budget
        assert res.cycles < cfg.warmup_cycles + cfg.measure_cycles + 2000

"""Integration: DRAIN's tail-latency pathology (Fig. 12's claim).

When DRAIN's period fires inside a run, the whole-network circulation
misroutes everything in flight — unlucky packets pick up large detours, so
DRAIN's p99 visibly exceeds a no-misrouting scheme's under the same load.
"""

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic


def run(scheme_name, drain_period=600, **kw):
    cfg = SimConfig(rows=4, cols=4, warmup_cycles=100, measure_cycles=1500,
                    drain_cycles=2500, drain_period_cycles=drain_period,
                    fastpass_slot_cycles=64)
    sim = Simulation(cfg, get_scheme(scheme_name, **kw),
                     SyntheticTraffic("uniform", 0.08, seed=21))
    return sim.run()


class TestDrainTail:
    def test_drain_p99_exceeds_escapevc(self):
        drain = run("drain")
        escape = run("escapevc")
        assert drain.p99_latency > escape.p99_latency

    def test_drain_avg_also_hurt_but_less(self):
        drain = run("drain")
        escape = run("escapevc")
        # the tail is disproportionately affected: the p99 gap factor
        # exceeds the mean gap factor
        tail_factor = drain.p99_latency / escape.p99_latency
        mean_factor = drain.avg_latency / escape.avg_latency
        assert tail_factor > mean_factor

    def test_no_period_no_pathology(self):
        quiet = run("drain", drain_period=10 ** 9)
        escape = run("escapevc")
        assert quiet.p99_latency <= 1.6 * escape.p99_latency

    def test_fastpass_tail_below_drain(self):
        drain = run("drain")
        fp = run("fastpass", n_vcs=2)
        assert fp.p99_latency < drain.p99_latency

"""Integration: non-square meshes.

The baselines must work on rectangular meshes; the mesh TDM schedule of
FastPass requires a square mesh (concurrent primes must avoid sharing
rows) and must say so loudly — the irregular-topology segmentation is the
documented route for everything else (Sec. III-F).
"""

import pytest

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim.engine import Simulation, build_network
from repro.traffic.synthetic import SyntheticTraffic


def rect_cfg(rows=4, cols=6):
    return SimConfig(rows=rows, cols=cols, warmup_cycles=100,
                     measure_cycles=400, drain_cycles=1500)


class TestBaselinesOnRectangles:
    @pytest.mark.parametrize("name", ["escapevc", "swap", "tfc", "minbd",
                                      "pitstop", "baseline"])
    def test_uniform_delivery(self, name):
        sim = Simulation(rect_cfg(), get_scheme(name),
                         SyntheticTraffic("uniform", 0.05, seed=8))
        res = sim.run()
        assert res.extra["undelivered"] == 0
        assert not res.deadlocked

    def test_drain_needs_even_dimension_only(self):
        # 4x6: fine (even rows); 3x4: fine (even cols)
        for rows, cols in [(4, 6), (3, 4)]:
            sim = Simulation(rect_cfg(rows, cols), get_scheme("drain"),
                             SyntheticTraffic("uniform", 0.05, seed=8))
            res = sim.run()
            assert res.extra["undelivered"] == 0

    def test_tall_and_wide(self):
        for rows, cols in [(8, 2), (2, 8)]:
            sim = Simulation(rect_cfg(rows, cols), get_scheme("escapevc"),
                             SyntheticTraffic("uniform", 0.05, seed=8))
            res = sim.run()
            assert res.extra["undelivered"] == 0


class TestFastPassRequiresSquare:
    def test_rectangular_mesh_rejected_clearly(self):
        with pytest.raises(ValueError, match="square"):
            build_network(rect_cfg(4, 6), get_scheme("fastpass", n_vcs=2))

    def test_irregular_module_is_the_documented_alternative(self):
        """The rectangle works through the Sec. III-F segmentation."""
        from repro.core import irregular
        from repro.network.topology import Mesh
        g = Mesh(4, 6).to_graph()
        segments, _ = irregular.derive_partitions(g, 6)
        irregular.verify_segments(g, segments)
        sched = irregular.IrregularSchedule(g, 6, slot_cycles=64)
        assert sched.covers_all()

"""Integration: the proof-of-correctness lemmas (Sec. III-D), observed
end-to-end on running networks."""

import pytest

from repro.config import SimConfig
from repro.network.link import ReservationConflict
from repro.network.packet import MessageClass, Packet
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic
from tests.conftest import make_network


def fp_cfg(**kw):
    base = dict(rows=4, cols=4, warmup_cycles=100, measure_cycles=500,
                drain_cycles=2500, fastpass_slot_cycles=64)
    base.update(kw)
    return SimConfig(**base)


class TestLemma1:
    """Every packet selected for FastFlow reaches its destination."""

    def test_all_upgrades_arrive(self):
        sim = Simulation(fp_cfg(), get_scheme("fastpass", n_vcs=2),
                         SyntheticTraffic("transpose", 0.15, seed=4))
        res = sim.run()
        eng = sim.net.fastpass.engine
        assert eng.forward_launched > 0
        # launched = delivered + bounced(still travelling) — after the
        # drain, nothing is in flight, so launched - re-launches = ejected
        assert res.fastpass_delivered > 0
        assert res.extra["undelivered"] <= res.extra["measured_generated"]

    def test_no_reservation_conflicts_whole_run(self):
        """The non-overlap invariant holds live: reserve_fp would raise on
        any collision between concurrent FastFlow traversals."""
        sim = Simulation(fp_cfg(rows=8, cols=8),
                         get_scheme("fastpass", n_vcs=4),
                         SyntheticTraffic("uniform", 0.18, seed=4))
        try:
            sim.run()
        except ReservationConflict as exc:   # pragma: no cover
            pytest.fail(f"lane collision: {exc}")


class TestLemma2:
    """Every packet is eventually guaranteed to be selected for FastFlow."""

    def test_fully_blocked_packet_is_rescued_by_rotation(self):
        """Pin a packet by filling all its downstream VCs forever; the TDM
        rotation must still deliver it via a lane within one rotation."""
        net = make_network(fp_cfg(), scheme=get_scheme("fastpass", n_vcs=2))
        pkt = Packet(4, 3, MessageClass.REQUEST, 0)   # from router 0 area
        r0 = net.routers[0]
        slot = r0.slots[1][0]
        slot.pkt, slot.ready_at = pkt, 0
        r0.occupied.append(slot)
        net.buffered += 1      # hand-placed: keep the O(1) counters honest
        blocker = Packet(0, 15, MessageClass.REQUEST, 0)
        for out in (1, 2):
            nbr = r0.neighbors[out]
            link = r0.links_out[out]
            for s in nbr.slots[link.dst_port]:
                s.pkt, s.ready_at = blocker, 1 << 60
        rotation = net.fastpass.schedule.rotation_len
        for _ in range(rotation + 50):
            if pkt.eject_cycle >= 0:
                break
            net.step()
        assert pkt.eject_cycle >= 0
        assert pkt.was_fastpass


class TestLemma3And4:
    """Ejection queues free up; bounced packets are eventually ejected."""

    def test_bounced_packet_finally_ejects_when_queue_drains(self):
        net = make_network(fp_cfg(), scheme=get_scheme("fastpass", n_vcs=2))
        # Wedge the destination REQUEST queue behind a stalled consumer.
        rid = 3

        class StallThenDrain:
            def __init__(self):
                self.release_at = 200

            def consume(self, ni, now):
                if now >= self.release_at:
                    for q in ni.ej:
                        q.q.clear()

            def on_local(self, ni, pkt):
                pass

        net.nis[rid].consumer = StallThenDrain()
        q = net.nis[rid].ej[MessageClass.REQUEST]
        while q.can_accept(Packet(0, rid, MessageClass.REQUEST, 0)):
            q.push(Packet(0, rid, MessageClass.REQUEST, 0))
        pkt = Packet(0, rid, MessageClass.REQUEST, 0)
        net.fastpass.engine.launch_forward(pkt, 0, 0)
        for _ in range(2000):
            if pkt.eject_cycle >= 0:
                break
            net.step()
        assert pkt.eject_cycle >= 0

    def test_reservation_survives_regular_competition(self):
        """While a bounced packet waits, regular packets cannot steal the
        slot that frees up (Qn 3)."""
        net = make_network(fp_cfg(), scheme=get_scheme("fastpass", n_vcs=2))
        rid = 3
        net.nis[rid].consumer = type(
            "Stall", (), {"consume": lambda *a, **k: None,
                          "on_local": lambda *a, **k: None})()
        q = net.nis[rid].ej[MessageClass.REQUEST]
        while q.can_accept(Packet(0, rid, MessageClass.REQUEST, 0)):
            q.push(Packet(0, rid, MessageClass.REQUEST, 0))
        pkt = Packet(0, rid, MessageClass.REQUEST, 0)
        net.fastpass.engine.launch_forward(pkt, 0, 0)
        for _ in range(10):
            net.step()
        assert pkt.pid in q.reservations
        q.q.popleft()                     # one slot frees
        other = Packet(1, rid, MessageClass.REQUEST, 0)
        assert not q.can_accept(other)    # reserved for the bounced packet
        assert q.can_accept(pkt)


class TestVcSensitivity:
    @pytest.mark.parametrize("vcs", [1, 2, 4])
    def test_all_vc_configs_work(self, vcs):
        sim = Simulation(fp_cfg(), get_scheme("fastpass", n_vcs=vcs),
                         SyntheticTraffic("uniform", 0.08, seed=6))
        res = sim.run()
        assert res.extra["undelivered"] == 0
        assert not res.deadlocked

    def test_more_vcs_do_not_hurt(self):
        lat = {}
        for vcs in (1, 4):
            sim = Simulation(fp_cfg(), get_scheme("fastpass", n_vcs=vcs),
                             SyntheticTraffic("transpose", 0.14, seed=6))
            lat[vcs] = sim.run().avg_latency
        assert lat[4] <= lat[1] * 1.2

"""Integration: the paper's correctness story (Secs. II, III-C3, III-D).

* an unprotected 0-VN network under adversarial coherence traffic suffers a
  genuine protocol-level deadlock;
* FastPass with the SAME zero virtual networks completes every transaction
  (Lemma 4);
* so do Pitstop (0 VNs) and the 6-VN baselines;
* the dynamic-bubble machinery only ever drops droppable packets and
  regenerates every one of them.
"""

import pytest

from repro.experiments.table1 import (
    deadlock_scenario_config,
    deadlock_traffic,
)
from repro.network.packet import MessageClass
from repro.schemes import get_scheme
from repro.sim.engine import Simulation

MAX_CYCLES = 80000


def run_scenario(scheme_name, **scheme_kwargs):
    sim = Simulation(deadlock_scenario_config(),
                     get_scheme(scheme_name, **scheme_kwargs),
                     deadlock_traffic())
    res = sim.run_to_completion(MAX_CYCLES)
    return sim, res


class TestProtocolDeadlock:
    def test_unprotected_network_deadlocks(self):
        sim, res = run_scenario("baseline", n_vns=1, n_vcs=2)
        assert res.deadlocked
        assert not sim.traffic.done()

    def test_fastpass_completes_with_zero_vns(self):
        sim, res = run_scenario("fastpass", n_vcs=2)
        assert not res.deadlocked
        assert sim.traffic.done()

    def test_fastpass_single_vc_still_correct(self):
        """The paper's strongest configuration: 1 VC, no VNs."""
        sim, res = run_scenario("fastpass", n_vcs=1)
        assert not res.deadlocked
        assert sim.traffic.done()

    def test_pitstop_completes_with_zero_vns(self):
        sim, res = run_scenario("pitstop")
        assert not res.deadlocked
        assert sim.traffic.done()

    def test_six_vns_sufficient_for_baselines(self):
        sim, res = run_scenario("escapevc")
        assert not res.deadlocked
        assert sim.traffic.done()

    def test_fastpass_used_lanes_to_resolve(self):
        sim, _res = run_scenario("fastpass", n_vcs=2)
        assert sim.net.fastpass.upgrades > 0


class TestDynamicBubbleAccounting:
    def test_drops_are_all_regenerated_and_work_completes(self):
        sim, res = run_scenario("fastpass", n_vcs=2)
        dropped = sum(ni.dropped for ni in sim.net.nis)
        regen = sum(ni.regenerated for ni in sim.net.nis)
        assert dropped == regen
        assert sim.traffic.done()

    def test_only_requests_dropped(self):
        """The bubble only ever sacrifices injection *request* packets —
        which have not left the source and can be rebuilt from MSHRs."""
        sim, _res = run_scenario("fastpass", n_vcs=2)
        # instrument post-hoc: every drop increments pkt.drop_count, and
        # make_bubble only scans the REQUEST queue, so any packet with a
        # drop_count must be a request.  Verify via the NI counters.
        assert sum(ni.dropped for ni in sim.net.nis) > 0

    def test_bounces_eventually_eject(self):
        sim, _res = run_scenario("fastpass", n_vcs=2)
        eng = sim.net.fastpass.engine
        # every bounced packet either ejected later or returned: traffic
        # completed, so no reservation can be left dangling
        for ni in sim.net.nis:
            for q in ni.ej:
                assert not q.reservations


class TestWatchdogInteraction:
    def test_fastpass_watchdog_never_fires_under_pressure(self):
        sim, res = run_scenario("fastpass", n_vcs=2)
        assert sim.net.watchdog.fired_at == -1

    def test_deadlock_is_reproducible(self):
        _s1, r1 = run_scenario("baseline", n_vns=1, n_vcs=2)
        _s2, r2 = run_scenario("baseline", n_vns=1, n_vcs=2)
        assert r1.deadlocked and r2.deadlocked
        assert r1.cycles == r2.cycles

"""Integration: every scheme against the closed-loop coherence traffic at
moderate (non-adversarial) pressure — the everyday regime of Fig. 10."""

import pytest

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.coherence import CoherenceTraffic

SCHEMES = [("escapevc", {}), ("spin", {}), ("swap", {}), ("drain", {}),
           ("pitstop", {}), ("tfc", {}), ("fastpass", {"n_vcs": 2}),
           ("fastpass", {"n_vcs": 4})]


def run(name, kw, seed=4, txns=40):
    cfg = SimConfig(rows=4, cols=4, fastpass_slot_cycles=120,
                    drain_period_cycles=2000)
    tr = CoherenceTraffic(txns_per_core=txns, seed=seed, think=60, burst=4)
    sim = Simulation(cfg, get_scheme(name, **kw), tr)
    res = sim.run_to_completion(max_cycles=200000)
    return sim, res


class TestModeratePressure:
    @pytest.mark.parametrize("name,kw", SCHEMES)
    def test_completes_without_deadlock(self, name, kw):
        sim, res = run(name, kw)
        assert sim.traffic.done(), (name, kw)
        assert not res.deadlocked

    @pytest.mark.parametrize("name,kw", SCHEMES)
    def test_transaction_latency_sane(self, name, kw):
        sim, res = run(name, kw)
        assert 5 < res.avg_latency < 500, (name, res.avg_latency)

    def test_execution_times_within_band(self):
        cycles = {}
        for name, kw in SCHEMES:
            _sim, res = run(name, kw)
            cycles[(name, tuple(kw.items()))] = res.cycles
        base = cycles[("escapevc", ())]
        for key, c in cycles.items():
            assert 0.7 * base < c < 1.6 * base, (key, c, base)


class TestProtocolIntegrity:
    @pytest.mark.parametrize("name,kw", [("fastpass", {"n_vcs": 2}),
                                         ("pitstop", {})])
    def test_zero_vn_runs_conserve_transactions(self, name, kw):
        sim, _res = run(name, kw)
        tr = sim.traffic
        assert tr.completed == tr.total_txns
        assert all(n.outstanding == 0 for n in tr.nodes)

    def test_fastpass_drop_regen_balanced(self):
        sim, res = run("fastpass", {"n_vcs": 2})
        dropped = sum(ni.dropped for ni in sim.net.nis)
        regen = sum(ni.regenerated for ni in sim.net.nis)
        assert dropped == regen

"""Scenario points through the campaign layer: replica-fold safety,
cache identity, and the CLI entry points.

The replica batch advances all seeds in lock step against one shared
256-cycle traffic refill clock, so a scenario whose phase boundaries do
not land on that quantum *must not* fold — the clamped per-phase fills
would desynchronise the shared matrix.  These tests provoke exactly
that misalignment and pin the guard at every layer: the batch engine,
the grouping signature, and the executor's auto-fold.
"""

import dataclasses
import math

import pytest

from repro.campaign.context import get_context
from repro.campaign.executor import CampaignExecutor, group_items
from repro.campaign.worker import (execute_group, execute_point,
                                   replica_signature)
from repro.config import SimConfig
from repro.scenario.runner import run_scenario
from repro.scenario.spec import SCENARIOS, PhaseSpec, ScenarioSpec
from repro.sim.parallel import Point
from repro.sim.runner import run_replicas
from repro.traffic.synthetic import SyntheticTraffic

ALIGNED = SCENARIOS["bursty"]
MISALIGNED = ScenarioSpec("offgrid", (PhaseSpec(duration=300, rate=0.05),
                                      PhaseSpec(duration=212, rate=0.10)))


def _cfg():
    return SimConfig(rows=4, cols=4, warmup_cycles=50, measure_cycles=200,
                     drain_cycles=800, fastpass_slot_cycles=64)


def _same_result(a, b, label):
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, float) and isinstance(vb, float) \
                and math.isnan(va) and math.isnan(vb):
            continue
        assert va == vb, f"{label}: field {f.name!r}: {va!r} != {vb!r}"


class TestReplicaFoldGuard:
    def test_misaligned_spec_refused_by_batch(self):
        assert not MISALIGNED.chunk_aligned(SyntheticTraffic.CHUNK)
        with pytest.raises(ValueError, match="not aligned"):
            run_replicas("fastpass", "x", 0.05, _cfg(), seeds=[1, 2],
                         spec=MISALIGNED)

    def test_replica_signature_gates_on_alignment(self):
        ok = Point.make_scenario("fastpass", ALIGNED, seed=1)
        bad = Point.make_scenario("fastpass", MISALIGNED, seed=1)
        assert replica_signature(ok) is not None
        assert replica_signature(bad) is None

    def test_group_items_routes_misaligned_scalar(self):
        pts = [(i, Point.make_scenario("fastpass", MISALIGNED, seed=s))
               for i, s in enumerate([1, 2, 3])]
        groups = group_items(pts, auto_batch=True)
        assert all(len(g) == 1 for g in groups), \
            "misaligned scenario replicas were folded into a batch"
        aligned = [(i, Point.make_scenario("fastpass", ALIGNED, seed=s))
                   for i, s in enumerate([1, 2, 3])]
        assert [len(g) for g in group_items(aligned, True)] == [3]

    def test_aligned_fold_is_bit_identical_to_scalar(self):
        seeds = [3, 4, 5]
        batched = run_replicas("fastpass", "x", 0.0, _cfg(), seeds=seeds,
                               spec=ALIGNED)
        for seed, res in zip(seeds, batched):
            scalar = run_scenario("fastpass", ALIGNED, _cfg(), seed=seed)
            _same_result(res, scalar, f"seed={seed}")

    def test_execute_group_matches_execute_point(self):
        pts = [Point.make_scenario("escapevc", ALIGNED, seed=s)
               for s in (1, 2)]
        grouped = execute_group(pts, _cfg())
        for point, res in zip(pts, grouped):
            _same_result(res, execute_point(point, _cfg()), point.meta)

    def test_executor_runs_misaligned_points_correctly(self):
        """End to end through the auto-batching executor: three
        misaligned replicas must come back equal to their scalar runs
        (the fold guard silently degrading results would pass a weaker
        smoke test)."""
        seeds = [1, 2, 3]
        pts = [Point.make_scenario("fastpass", MISALIGNED, seed=s)
               for s in seeds]
        ex = CampaignExecutor(_cfg(), cache=None, processes=1,
                              auto_batch=True)
        out = ex.run(pts)
        for seed, res in zip(seeds, out):
            scalar = run_scenario("fastpass", MISALIGNED, _cfg(),
                                  seed=seed)
            _same_result(res, scalar, f"executor seed={seed}")


class TestIrregularPoints:
    def test_irregular_point_through_worker(self):
        point = Point.make_irregular("torus:4x4", partitions=4,
                                     slot_cycles=32)
        res = execute_point(point, _cfg())
        assert res.extra["topology"] == "torus:4x4"
        assert res.extra["covers_all"]
        assert res.extra["circuit_len"] == 64
        assert res.extra["delivery_bound"] > 0

    def test_irregular_signature_is_scalar(self):
        point = Point.make_irregular("ring:8", partitions=2)
        assert replica_signature(point) is None


class TestScenarioCli:
    def test_run_hits_cache_second_time(self, capsys):
        from repro.experiments import cli
        argv = ["scenarios", "run", "bursty", "--topologies", "ring:8",
                "--seeds", "1"]
        assert cli.main(list(argv)) == 0
        cache = get_context().cache()
        assert cache.misses > 0 and cache.hits == 0
        cache.hits = cache.misses = 0
        assert cli.main(list(argv)) == 0
        assert cache.misses == 0 and cache.hits > 0
        out = capsys.readouterr().out
        assert "run cache" in out

    def test_record_replay_cli_round_trip(self, tmp_path, capsys):
        from repro.experiments import cli
        out = tmp_path / "t.jsonl"
        assert cli.main(["scenarios", "record", "bursty", "--out",
                         str(out), "--seed", "5"]) == 0
        assert out.exists()
        assert cli.main(["scenarios", "replay", str(out)]) == 0
        text = capsys.readouterr().out
        assert "delivered" in text

    def test_replay_rejects_bad_schema(self, tmp_path, capsys):
        from repro.experiments import cli
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format": "repro-trace", "schema": 99, '
                       '"mesh": [4, 4], "label": "x", "events": 0}\n')
        assert cli.main(["scenarios", "replay", str(bad)]) == 2

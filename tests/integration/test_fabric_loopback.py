"""Integration: the campaign fabric is a transparent executor.

Acceptance properties of the fabric subsystem (ISSUE 6):

* a loopback fabric run (coordinator + pulling worker subprocesses) is
  **bit-identical** to the local campaign executor, replica batching
  included;
* a worker crash mid-point delays the point, never loses it — and the
  supervisor respawns the worker;
* an expired lease is observably re-executed with no result drift;
* an interrupted fabric campaign resumes from its store exactly like a
  local campaign does.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import pytest

from repro.campaign import RetryPolicy, RunCache, CampaignStore, run_points
from repro.config import SimConfig
from repro.fabric.coordinator import Coordinator
from repro.fabric.executor import FabricExecutor
from repro.fabric.httpd import http_json
from repro.fabric.worker import FabricWorker
from repro.fabric import protocol
from repro.sim.parallel import Point, grid


@pytest.fixture
def sweep_cfg() -> SimConfig:
    return SimConfig(rows=4, cols=4, warmup_cycles=100, measure_cycles=300,
                     drain_cycles=800, fastpass_slot_cycles=64)


#: 8 scalar points plus 4 seed replicas of one point — the replicas fold
#: into a single lock-step batch task on both sides of the differential.
POINTS = grid([("escapevc", {}), ("fastpass", {"n_vcs": 2})],
              ["uniform", "transpose"], [0.02, 0.05]) + \
    [Point.make_seeded("fastpass", "uniform", 0.03, seed=s, n_vcs=2)
     for s in (1, 2, 3, 4)]


def _fields(res) -> tuple:
    d = dataclasses.asdict(res)
    return tuple(sorted((k, repr(v)) for k, v in d.items()))


class TestBitIdentity:
    def test_loopback_fabric_matches_local_executor(self, tmp_path,
                                                    sweep_cfg):
        """The headline invariant: 1 coordinator + 2 pulling workers
        produce byte-for-byte the results of the local executor."""
        ex = FabricExecutor(sweep_cfg, cache=None, store=None, workers=2)
        fabric = ex.run(POINTS)
        local = run_points(POINTS, sweep_cfg, processes=2, cache=False,
                           store=False)
        assert [_fields(r) for r in fabric] == \
            [_fields(r) for r in local]
        assert ex.summary["computed"] == len(POINTS)
        assert ex.summary["failed"] == 0
        # Replica batching survived the trip over the wire.
        assert ex.summary["batched"] == 4
        assert ex.summary["fabric"]["loopback_workers"] == 2

    def test_fabric_fills_and_reuses_the_cache(self, tmp_path, sweep_cfg):
        cache = RunCache(tmp_path / "cache", salt="s")
        points = POINTS[:4]
        first = FabricExecutor(sweep_cfg, cache=cache, workers=2)
        a = first.run(points)
        assert first.summary["computed"] == len(points)
        assert len(cache) == len(points)
        second = FabricExecutor(sweep_cfg, cache=cache, workers=2)
        b = second.run(points)
        assert second.summary["computed"] == 0
        assert second.summary["cached"] == len(points)
        assert [_fields(r) for r in a] == [_fields(r) for r in b]


class TestWorkerCrash:
    def test_crash_mid_point_fails_task_not_campaign(self, monkeypatch,
                                                     sweep_cfg):
        """A worker that dies mid-execution (os._exit) costs the task its
        attempts, is respawned by the supervisor, and never takes the
        rest of the campaign down with it."""
        monkeypatch.setenv("REPRO_CAMPAIGN_SELFTEST", "1")
        crash = Point.make("x", "selftest:crash", 0.0)
        ok = Point.make("x", "selftest:ok", 0.1)
        ex = FabricExecutor(sweep_cfg, cache=None, store=None, workers=1,
                            retry=RetryPolicy(max_attempts=2,
                                              backoff_s=0.01))
        res_crash, res_ok = ex.run([crash, ok])
        assert res_crash.extra.get("failed")
        assert "expired" in res_crash.extra.get("error", "")
        assert res_ok.ejected == 1
        assert ex.summary["failed"] == 1
        assert ex.summary["computed"] == 1
        assert ex.summary["fabric"]["respawns"] >= 1


class TestLeaseExpiry:
    def test_expired_lease_reexecutes_without_drift(self, sweep_cfg):
        """A zombie worker leases a point and never reports; after the
        TTL the lease expires, the point is re-leased to a live worker,
        and the final result is bit-identical to a local execution."""
        point = POINTS[0]
        key = "deadbeef"
        coord = Coordinator(cache=None,
                            retry=RetryPolicy(max_attempts=3,
                                              backoff_s=0.0),
                            lease_ttl_s=0.3)
        url = coord.start("127.0.0.1", 0)
        worker = FabricWorker(url, worker_id="survivor", poll_s=0.02)
        thread = threading.Thread(target=worker.run, daemon=True)
        try:
            coord.submit([[(key, point)]], sweep_cfg, store=None)
            out = http_json("POST", f"{url}/lease",
                            {"version": protocol.PROTOCOL_VERSION,
                             "worker": "zombie"})
            assert out["state"] == protocol.STATE_OK
            time.sleep(0.4)                       # let the lease lapse
            thread.start()
            deadline = time.monotonic() + 60
            while not coord.resolved([key]) and \
                    time.monotonic() < deadline:
                time.sleep(0.02)
            assert coord.resolved([key]), "re-execution never completed"
            assert coord.queue.counters.expiries == 1
            assert coord.queue.counters.granted == 2
            assert coord.queue.counters.completed == 1
            fabric_res = coord.collect([key])[key]
        finally:
            coord.shutdown()
            thread.join(timeout=10)
            coord.stop()
        assert not thread.is_alive()
        from repro.campaign.worker import execute_point
        assert _fields(fabric_res) == _fields(execute_point(point,
                                                            sweep_cfg))


class _InterruptAfter:
    """Progress callback that aborts the campaign after N computations."""

    def __init__(self, n: int):
        self.n = n

    def __call__(self, progress) -> None:
        if progress.done >= self.n:
            raise KeyboardInterrupt


class TestResume:
    def test_interrupted_fabric_campaign_resumes_identically(
            self, tmp_path, sweep_cfg):
        cache = RunCache(tmp_path / "cache", salt="s")
        store = CampaignStore(tmp_path / "campaign.sqlite")
        points = POINTS[:8]

        with pytest.raises(KeyboardInterrupt):
            FabricExecutor(sweep_cfg, cache=cache, store=store, workers=2,
                           progress=_InterruptAfter(3)).run(points)

        counts = store.counts()
        assert counts["done"] >= 3
        # Shutdown released every live lease back to pending: nothing is
        # stuck 'running' in the store.
        assert counts["running"] == 0
        assert counts["done"] + counts["pending"] == len(points)

        ex = FabricExecutor(sweep_cfg, cache=cache, store=store,
                            workers=2)
        resumed = ex.run(points)
        assert ex.summary["cached"] == counts["done"]
        assert ex.summary["computed"] == len(points) - counts["done"]
        assert store.counts()["done"] == len(points)

        clean = run_points(points, sweep_cfg, processes=2, cache=False,
                           store=False)
        assert [_fields(r) for r in resumed] == \
            [_fields(r) for r in clean]

"""Differential proof that lock-step replica batching is bit-identical
to scalar execution.

Every replica of a :class:`~repro.sim.batch.engine.ReplicaBatch` must
return exactly the :class:`~repro.config.RunResult` that a scalar
``run_point`` with the same seed produces — every dataclass field plus
the ``extra`` dict — on all three step engines (active-set, naive and
the fused replica-batched SoA kernel), with FastPass bounces occurring,
under transient faults, mid-run per-replica demotion, and while the
whole-replica parking fast-path is engaging.  The paranoia audit stays
on for the plain runs, so structural corruption introduced by structure
sharing would be caught at its source.
"""

import dataclasses
import math

import pytest

from repro.config import SimConfig
from repro.fault.plan import LINK_FLAP, FaultEvent, FaultPlan
from repro.schemes import get_scheme
from repro.sim.batch.engine import ReplicaBatch
from repro.sim.runner import run_point, run_replicas

SEEDS = [3, 5, 7, 11]


def _cfg(**over):
    base = dict(rows=4, cols=4, warmup_cycles=100, measure_cycles=400,
                drain_cycles=1200, watchdog_cycles=800,
                fastpass_slot_cycles=64, paranoia=50)
    base.update(over)
    return SimConfig(**base)


def _same(a, b):
    if isinstance(a, float) and isinstance(b, float) \
            and math.isnan(a) and math.isnan(b):
        return True
    return a == b


def assert_results_equal(scalar, batched, label):
    for f in dataclasses.fields(scalar):
        if f.name == "extra":
            continue
        va, vb = getattr(scalar, f.name), getattr(batched, f.name)
        assert _same(va, vb), (f"{label}: field {f.name!r} differs: "
                               f"scalar={va!r} batch={vb!r}")
    assert set(scalar.extra) == set(batched.extra), \
        f"{label}: extra keys differ"
    for k in scalar.extra:
        assert _same(scalar.extra[k], batched.extra[k]), \
            f"{label}: extra[{k!r}] differs"


def _scalar(scheme, pattern, rate, cfg, seed, naive=False, **kwargs):
    import repro.sim.runner as runner
    if naive:
        # run_point has no naive switch; pin the flag via Simulation.
        from repro.sim.engine import Simulation
        from repro.traffic.synthetic import SyntheticTraffic
        sim = Simulation(cfg, get_scheme(scheme, **kwargs),
                         SyntheticTraffic(pattern, rate, seed=seed))
        sim.net.force_naive_step = True
        res = sim.run()
        res.extra["rate"] = rate
        res.extra["pattern"] = pattern
        return res
    return runner.run_point(get_scheme(scheme, **kwargs), pattern, rate,
                            cfg, seed=seed)


@pytest.mark.parametrize("naive", [False, True],
                         ids=["active-set", "naive"])
@pytest.mark.parametrize("scheme,kwargs,rate", [
    ("fastpass", {"n_vcs": 2}, 0.30),
    ("escapevc", {}, 0.08),
])
def test_batch_matches_scalar(scheme, kwargs, rate, naive):
    cfg = _cfg()
    batch = ReplicaBatch(cfg, scheme, "uniform", rate, SEEDS,
                         scheme_kwargs=kwargs, naive=naive)
    batched = batch.run()
    for seed, res in zip(SEEDS, batched):
        scalar = _scalar(scheme, "uniform", rate, cfg, seed,
                         naive=naive, **kwargs)
        assert_results_equal(scalar, res,
                             f"{scheme}@{rate} seed={seed} naive={naive}")
        assert res.ejected > 0


@pytest.mark.parametrize("naive", [False, True],
                         ids=["active-set", "naive"])
def test_batch_matches_scalar_with_bounces(monkeypatch, naive):
    """A FastPass run in which the bounce protocol demonstrably fires.

    Synthetic sinks normally drain too fast for ejection queues to fill,
    so throttle the NI consume bandwidth to zero (equally for both
    sides) with single-entry ejection queues: FastPass deliveries then
    find full queues and must reserve-and-bounce — the scalar-fallback
    corner the batch engine must reproduce exactly."""
    from repro.network.ni import NetworkInterface
    monkeypatch.setattr(NetworkInterface, "CONSUME_RATE", 0)
    cfg = _cfg(ej_queue_pkts=1)
    batch = ReplicaBatch(cfg, "fastpass", "uniform", 0.30, SEEDS,
                         scheme_kwargs={"n_vcs": 2}, naive=naive)
    batched = batch.run()
    assert sum(s.net.fastpass.engine.bounced
               for s in batch.sims) > 0, "no bounces provoked"
    for seed, res in zip(SEEDS, batched):
        scalar = _scalar("fastpass", "uniform", 0.30, cfg, seed,
                         naive=naive, n_vcs=2)
        assert_results_equal(scalar, res,
                             f"bounces seed={seed} naive={naive}")


@pytest.mark.parametrize("scheme,kwargs", [("fastpass", {"n_vcs": 2}),
                                           ("escapevc", {})])
def test_batch_matches_scalar_under_faults(scheme, kwargs):
    """Transient faults force every replica onto the scalar step path
    (no parking) and mutate routing state mid-run — results must still
    match scalar runs field for field."""
    plan = FaultPlan(
        events=(FaultEvent(LINK_FLAP, at=150, router=5, port=2,
                           duration=120),),
        rate=0.002, start=100, stop=400, seed=3)
    cfg = _cfg(paranoia=0).with_(fault_plan=plan)
    seeds = SEEDS[:3]
    batched = run_replicas(scheme, "uniform", 0.08, cfg, seeds,
                           scheme_kwargs=kwargs, traffic_stop=500)
    for seed, res in zip(seeds, batched):
        scalar = run_point(get_scheme(scheme, **kwargs), "uniform", 0.08,
                           cfg, seed=seed, traffic_stop=500)
        assert_results_equal(scalar, res, f"{scheme} faults seed={seed}")
        assert "faults" in res.extra


def test_parking_engages_and_stays_bit_identical():
    """At a very low rate whole replicas go idle for long stretches; the
    batch must actually fast-forward them (the perf win) while staying
    bit-identical to the scalar runs it skipped cycles of."""
    cfg = _cfg(paranoia=0)
    seeds = SEEDS
    batch = ReplicaBatch(cfg, "fastpass", "uniform", 0.002, seeds,
                         scheme_kwargs={"n_vcs": 2})
    batched = batch.run()
    assert batch.skipped_cycles > 0, "parking never engaged"
    for seed, res in zip(seeds, batched):
        scalar = run_point(get_scheme("fastpass", n_vcs=2), "uniform",
                           0.002, cfg, seed=seed)
        assert_results_equal(scalar, res, f"parked seed={seed}")


def test_paranoia_disables_parking_but_not_batching():
    """With the paranoia audit on, replicas are never quiet (the audit
    is a per-cycle side effect the fast-forward cannot replay), yet the
    batch still runs and matches scalar."""
    cfg = _cfg(paranoia=50)
    batch = ReplicaBatch(cfg, "escapevc", "uniform", 0.002, SEEDS[:2])
    batched = batch.run()
    assert batch.skipped_cycles == 0
    for seed, res in zip(SEEDS[:2], batched):
        scalar = run_point(get_scheme("escapevc"), "uniform", 0.002,
                           cfg, seed=seed)
        assert_results_equal(scalar, res, f"paranoia seed={seed}")


def test_run_replicas_defaults_seed_from_config():
    cfg = _cfg(seed=9, paranoia=0)
    batched = run_replicas("baseline", "uniform", 0.05, cfg, [None, 9])
    assert_results_equal(batched[0], batched[1], "default-seed")


def test_aggregate_reduces_across_replicas():
    cfg = _cfg(paranoia=0)
    batch = ReplicaBatch(cfg, "escapevc", "uniform", 0.05, SEEDS[:3])
    agg = batch.aggregate(batch.run())
    assert agg["replicas"] == 3
    assert agg["avg_latency_min"] <= agg["avg_latency_mean"] \
        <= agg["avg_latency_max"]
    assert agg["deadlocked"] == 0
    assert agg["cycles_total"] > 0


# ----------------------------------------------------------------------
# Replica-batched SoA: one fused numpy screen across all seeds.

@pytest.mark.parametrize("rate", [0.20, 0.30])
def test_soa_batch_matches_scalar(rate):
    """The fused replica-axis kernel must be bit-identical on both
    differential axes: versus a scalar run with the standalone SoA
    kernel, and versus the active-set reference engine."""
    cfg = _cfg(engine="soa")
    batch = ReplicaBatch(cfg, "fastpass", "uniform", rate, SEEDS,
                         scheme_kwargs={"n_vcs": 2})
    batched = batch.run()
    assert batch.soa is not None, "batch never built a fused kernel"
    assert batch.soa.demoted == {}
    assert batch.soa.vectorized == list(range(len(SEEDS)))
    for seed, res in zip(SEEDS, batched):
        assert res.engine_used == "soa"
        soa_scalar = run_point(get_scheme("fastpass", n_vcs=2),
                               "uniform", rate, cfg, seed=seed)
        assert soa_scalar.engine_used == "soa"
        assert_results_equal(soa_scalar, res,
                             f"vs scalar-soa @{rate} seed={seed}")
        active = run_point(get_scheme("fastpass", n_vcs=2), "uniform",
                           rate, _cfg(), seed=seed)
        assert_results_equal(active, res,
                             f"vs active-set @{rate} seed={seed}")
        assert res.ejected > 0


def test_soa_batch_matches_scalar_with_bounces(monkeypatch):
    """Provoked FastPass bounces (zero NI consume bandwidth, one-entry
    ejection queues) are handled inside the fused kernel — no replica
    may silently demote, and every field must still match scalar."""
    from repro.network.ni import NetworkInterface
    monkeypatch.setattr(NetworkInterface, "CONSUME_RATE", 0)
    cfg = _cfg(engine="soa", ej_queue_pkts=1)
    batch = ReplicaBatch(cfg, "fastpass", "uniform", 0.30, SEEDS,
                         scheme_kwargs={"n_vcs": 2})
    batched = batch.run()
    assert batch.soa is not None
    assert batch.soa.demoted == {}
    assert sum(s.net.fastpass.engine.bounced
               for s in batch.sims) > 0, "no bounces provoked"
    for seed, res in zip(SEEDS, batched):
        assert res.engine_used == "soa"
        scalar = run_point(get_scheme("fastpass", n_vcs=2), "uniform",
                           0.30, cfg, seed=seed)
        assert_results_equal(scalar, res, f"soa bounces seed={seed}")


def test_soa_batch_demotes_one_replica_mid_run():
    """A mid-run demotion drops exactly one replica to the scalar step
    path while the rest of the batch stays vectorized — and every
    replica, demoted or not, remains bit-identical to its scalar run."""
    cfg = _cfg(engine="soa")
    seeds = SEEDS[:3]
    batch = ReplicaBatch(cfg, "fastpass", "uniform", 0.20, seeds,
                         scheme_kwargs={"n_vcs": 2})
    assert batch.soa is not None
    batch.sims[1].net.schedule(
        137, lambda now: batch.soa.demote(1, "test-demotion"))
    batched = batch.run()
    assert batch.soa.demoted == {1: "test-demotion"}
    assert batch.soa.vectorized == [0, 2]
    assert [r.engine_used for r in batched] == \
        ["soa", "active (soa demoted: test-demotion)", "soa"]
    for seed, res in zip(seeds, batched):
        scalar = run_point(get_scheme("fastpass", n_vcs=2), "uniform",
                           0.20, cfg, seed=seed)
        assert_results_equal(scalar, res, f"demoted seed={seed}")


def test_soa_batch_falls_back_under_faults():
    """Transient faults mutate timers and routes out of band, which the
    fused kernel cannot screen; the batch must decline to vectorize
    (whole-run scalar fallback) and still match scalar bit for bit."""
    plan = FaultPlan(
        events=(FaultEvent(LINK_FLAP, at=150, router=5, port=2,
                           duration=120),),
        rate=0.002, start=100, stop=400, seed=3)
    cfg = _cfg(engine="soa", paranoia=0).with_(fault_plan=plan)
    seeds = SEEDS[:3]
    batch = ReplicaBatch(cfg, "fastpass", "uniform", 0.08, seeds,
                         scheme_kwargs={"n_vcs": 2},
                         traffic_stop=500)
    batched = batch.run()
    assert batch.soa is None, "fused kernel must refuse fault plans"
    for seed, res in zip(seeds, batched):
        assert "fallback" in res.engine_used
        scalar = run_point(get_scheme("fastpass", n_vcs=2), "uniform",
                           0.08, cfg, seed=seed, traffic_stop=500)
        assert_results_equal(scalar, res, f"soa faults seed={seed}")

"""Integration: the fabric survives chaos without bending a bit.

Acceptance properties of the chaos subsystem (ISSUE 7):

* a campaign run under a seeded :class:`~repro.chaos.plan.ChaosPlan`
  (delays, drops, resets, truncation, corruption, duplicated
  completions on the real wire) is **bit-identical** to the local
  executor, with every point settled exactly once in the store;
* a coordinator that dies without cleanup leaves its lease journal
  behind, and a restarted coordinator adopts the outstanding leases —
  a surviving worker's completion under the *old* lease id still
  counts;
* a full campaign process SIGKILLed mid-run resumes via
  ``--resume`` semantics (journal adoption + store resume) to the same
  bits as a clean local run;
* an intentionally-lying worker under redundant execution is detected,
  quarantined with a validating post-mortem JSON, outvoted on the
  tie-break replay, and the campaign completes with the honest bits.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import signal
import socket
import threading
import time

import pytest

from repro.campaign import (CampaignStore, RetryPolicy, RunCache,
                            run_points)
from repro.campaign import cache as cache_mod
from repro.campaign.worker import execute_point
from repro.chaos.plan import mild_chaos
from repro.chaos.quarantine import validate_quarantine
from repro.config import SimConfig
from repro.fabric import protocol
from repro.fabric.coordinator import Coordinator
from repro.fabric.executor import FabricExecutor, FabricSession
from repro.fabric.httpd import http_json
from repro.fabric.worker import FabricWorker
from repro.sim.parallel import Point, grid

#: small-but-real config: every scheme feature exercised, seconds not
#: minutes per campaign
CHAOS_CFG = SimConfig(rows=4, cols=4, warmup_cycles=50,
                      measure_cycles=150, drain_cycles=400,
                      fastpass_slot_cycles=64)

#: four scalar points plus three seed replicas (one lock-step batch
#: task) — every task shape the fabric knows
CHAOS_POINTS = grid([("escapevc", {}), ("fastpass", {"n_vcs": 2})],
                    ["uniform"], [0.02, 0.05]) + \
    [Point.make_seeded("fastpass", "uniform", 0.03, seed=s, n_vcs=2)
     for s in (1, 2, 3)]

#: the SIGKILL differential wants a longer campaign so the kill lands
#: mid-run with work on both sides of it
CRASH_CFG = SimConfig(rows=4, cols=4, warmup_cycles=100,
                      measure_cycles=300, drain_cycles=800,
                      fastpass_slot_cycles=64)
CRASH_POINTS = grid([("escapevc", {}), ("fastpass", {"n_vcs": 2})],
                    ["uniform", "transpose"], [0.02, 0.05]) + \
    [Point.make_seeded("fastpass", "uniform", 0.03, seed=s, n_vcs=2)
     for s in (1, 2, 3, 4)]

_RETRY = RetryPolicy(max_attempts=12, backoff_s=0.05)


def _fields(res) -> tuple:
    d = dataclasses.asdict(res)
    return tuple(sorted((k, repr(v)) for k, v in d.items()))


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestChaosConvergence:
    def test_seeded_chaos_run_is_bit_identical_exactly_once(
            self, tmp_path):
        """The headline invariant: under a heavy seeded fault plan the
        fabric still produces the local executor's bytes, and the store
        shows every point settled exactly once."""
        plan = mild_chaos(7).scaled(2.0)
        store = CampaignStore(tmp_path / "campaign.sqlite")
        session = FabricSession(cache=None, retry=_RETRY,
                                lease_ttl_s=8.0, workers=2,
                                chaos_token=plan.token())
        try:
            ex = FabricExecutor(CHAOS_CFG, cache=None, store=store,
                                retry=_RETRY, session=session)
            fabric = ex.run(CHAOS_POINTS)
            coord = session.coordinator
            counters = coord.queue.counters
            injected = coord._chaos_totals()
            summary = ex.summary
        finally:
            session.close()
            counts = store.counts()
            store.close()

        local = run_points(CHAOS_POINTS, CHAOS_CFG, processes=2,
                           cache=False, store=False)
        assert [_fields(r) for r in fabric] == \
            [_fields(r) for r in local]
        # The plan actually fired — this run earned its verdict.
        assert sum(injected.values()) > 0
        # Exactly once, verified against the store: all points done,
        # none lost, none stuck, none failed.
        assert counts.get("done", 0) == len(CHAOS_POINTS)
        assert counts.get("pending", 0) == 0
        assert counts.get("running", 0) == 0
        assert counts.get("failed", 0) == 0
        assert counters.failures == 0
        assert summary["computed"] == len(CHAOS_POINTS)
        assert summary["failed"] == 0


class TestCrashAdoption:
    def test_journaled_lease_survives_coordinator_restart(self,
                                                          tmp_path):
        """Coordinator A grants a lease and dies without cleanup; B
        adopts the journal and honours the old lease id when the
        surviving worker reports in."""
        salt = "s"
        points = CHAOS_POINTS[:3]
        keys = [cache_mod.point_key(p, CHAOS_CFG, salt) for p in points]
        store = CampaignStore(tmp_path / "campaign.sqlite")
        store.register(list(zip(keys, points)))
        retry = RetryPolicy(max_attempts=3, backoff_s=0.0)

        coord_a = Coordinator(cache=None, retry=retry, lease_ttl_s=30.0)
        url_a = coord_a.start("127.0.0.1", 0)
        coord_a.submit([[(k, p)] for k, p in zip(keys, points)],
                       CHAOS_CFG, store)
        out = http_json("POST", f"{url_a}/lease",
                        {"version": protocol.PROTOCOL_VERSION,
                         "worker": "survivor"})
        assert out["state"] == protocol.STATE_OK
        lease = out["leases"][0]
        leased = [k for k, _ in protocol.items_from_json(lease["items"])]
        coord_a.stop()            # hard stop: no release_leases — crash

        rows = store.outstanding_leases()
        assert [r["lease_id"] for r in rows] == [lease["lease_id"]]

        coord_b = Coordinator(cache=None, retry=retry, lease_ttl_s=30.0)
        url_b = coord_b.start("127.0.0.1", 0)
        try:
            adopted = coord_b.adopt_leases(store, CHAOS_CFG)
            assert adopted == set(leased)
            # The worker finished the old lease against the *new*
            # coordinator: the adopted claim settles it as a
            # first-class completion, not a duplicate or unknown.
            by_key = dict(zip(keys, points))
            res = execute_point(by_key[leased[0]], CHAOS_CFG)
            out = http_json("POST", f"{url_b}/complete", {
                "lease_id": lease["lease_id"], "worker": "survivor",
                "ok": True,
                "results": [cache_mod.result_to_json(res)],
                "artifacts": []})
            assert out["disposition"] == "ok"
            # Points the dead coordinator never leased re-enter as
            # fresh work; the same worker drains them.
            remaining = [(k, p) for k, p in zip(keys, points)
                         if k not in adopted]
            coord_b.submit([[kp] for kp in remaining], CHAOS_CFG, store)
            deadline = time.monotonic() + 60
            while not coord_b.resolved(keys) and \
                    time.monotonic() < deadline:
                out = http_json("POST", f"{url_b}/lease",
                                {"version": protocol.PROTOCOL_VERSION,
                                 "worker": "survivor"})
                for granted in out.get("leases") or []:
                    items = protocol.items_from_json(granted["items"])
                    results = [execute_point(p, CHAOS_CFG)
                               for _, p in items]
                    http_json("POST", f"{url_b}/complete", {
                        "lease_id": granted["lease_id"],
                        "worker": "survivor", "ok": True,
                        "results": [cache_mod.result_to_json(r)
                                    for r in results],
                        "artifacts": []})
            assert coord_b.resolved(keys), "campaign never drained"
            collected = coord_b.collect(keys)
            for key, point in zip(keys, points):
                assert _fields(collected[key]) == \
                    _fields(execute_point(point, CHAOS_CFG))
            assert coord_b.queue.counters.completed == len(points)
            assert coord_b.queue.counters.failures == 0
        finally:
            coord_b.stop()
        assert store.counts().get("done", 0) == len(points)
        # The last settlement emptied the journal: nothing left for a
        # third coordinator to adopt.
        assert store.outstanding_leases() == []


def _crash_campaign(store_path: str, cache_dir: str, port: int) -> None:
    """Child-process body for the SIGKILL differential: a whole fabric
    campaign (coordinator + loopback workers) pinned to a known port so
    the resuming parent binds the same address and orphaned workers
    reconnect to it."""
    # Own process group: the test SIGKILLs the whole campaign tree at
    # once (coordinator and workers), the way an OOM-kill or a node
    # loss would take it out.  Forked workers would otherwise inherit
    # the coordinator's listening socket and keep the port bound.
    os.setpgid(0, 0)
    os.environ["REPRO_FABRIC_PATIENCE_S"] = "8"
    store = CampaignStore(store_path)
    cache = RunCache(cache_dir, salt="s")
    session = FabricSession(cache=cache, retry=_RETRY, lease_ttl_s=8.0,
                            port=port, workers=2)
    try:
        FabricExecutor(CRASH_CFG, cache=cache, store=store,
                       retry=_RETRY, session=session).run(CRASH_POINTS)
    finally:
        session.close()


class TestSigkillResume:
    def test_sigkilled_campaign_resumes_to_identical_bits(self,
                                                          tmp_path):
        """SIGKILL the entire campaign process mid-run — coordinator,
        journal unflushed leases and all — then resume on the same port
        with ``--resume`` semantics: journal adoption plus store/cache
        resume converge to the bits of a clean local run."""
        port = _free_port()
        store_path = tmp_path / "campaign.sqlite"
        cache_dir = tmp_path / "cache"
        store = CampaignStore(store_path)   # create schema before child
        proc = multiprocessing.Process(
            target=_crash_campaign,
            args=(str(store_path), str(cache_dir), port))
        proc.start()
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline and \
                    store.counts().get("done", 0) < 1:
                time.sleep(0.05)
            assert store.counts().get("done", 0) >= 1, \
                "campaign never made progress"
            assert proc.is_alive(), "campaign finished before the kill"
        finally:
            if proc.pid:
                try:
                    os.killpg(proc.pid, signal.SIGKILL)
                except ProcessLookupError:
                    if proc.is_alive():
                        proc.kill()
            proc.join(timeout=10)
        killed_at = store.counts()
        assert killed_at.get("done", 0) < len(CRASH_POINTS), \
            "nothing left to resume"

        cache = RunCache(cache_dir, salt="s")
        # Reclaim the same port, 'fabric serve --resume' style.  The
        # orphaned workers hold an inherited copy of the dead listener
        # until their outage patience runs out, so retry the bind.
        session = None
        deadline = time.monotonic() + 45
        while session is None:
            try:
                session = FabricSession(cache=cache, retry=_RETRY,
                                        lease_ttl_s=4.0, port=port,
                                        workers=2, resume=True)
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.5)
        try:
            ex = FabricExecutor(CRASH_CFG, cache=cache, store=store,
                                retry=_RETRY, session=session)
            resumed = ex.run(CRASH_POINTS)
            failures = session.coordinator.queue.counters.failures
        finally:
            session.close()

        assert failures == 0
        clean = run_points(CRASH_POINTS, CRASH_CFG, processes=2,
                           cache=False, store=False)
        assert [_fields(r) for r in resumed] == \
            [_fields(r) for r in clean]
        final = store.counts()
        assert final.get("done", 0) == len(CRASH_POINTS)
        assert final.get("pending", 0) == 0
        assert final.get("running", 0) == 0
        assert final.get("failed", 0) == 0
        assert store.outstanding_leases() == []


class _LiarOnce(FabricWorker):
    """Corrupts the first execution of every task it sees, then runs
    honestly — a transient-fault model: the mismatch is guaranteed to
    be detected, and the tie-break replay is guaranteed to outvote it
    whichever worker runs it."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._lied: set[str] = set()

    def _execute(self, lease: dict) -> dict:
        payload = super()._execute(lease)
        tid = lease["items"][0][0]
        if tid not in self._lied:
            self._lied.add(tid)
            for res in payload["results"]:
                res["avg_latency"] = 9999.0
        return payload


class TestLyingWorker:
    def test_liar_is_quarantined_outvoted_and_named(self, tmp_path,
                                                    monkeypatch):
        """Full redundancy (every task runs twice) with one honest and
        one lying worker over real HTTP: mismatches are quarantined
        with validating post-mortems, the tie-break replay settles the
        honest bits, and the liar is named."""
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        points = CHAOS_POINTS[:4]
        keys = [cache_mod.point_key(p, CHAOS_CFG, "s") for p in points]
        retry = RetryPolicy(max_attempts=4, backoff_s=0.0)
        coord = Coordinator(cache=None, retry=retry, lease_ttl_s=30.0,
                            redundancy=1.0)
        url = coord.start("127.0.0.1", 0)
        workers = [FabricWorker(url, worker_id="honest", poll_s=0.02),
                   _LiarOnce(url, worker_id="liar", poll_s=0.02)]
        threads = [threading.Thread(target=w.run, daemon=True)
                   for w in workers]
        try:
            coord.submit([[(k, p)] for k, p in zip(keys, points)],
                         CHAOS_CFG, store=None)
            for t in threads:
                t.start()
            deadline = time.monotonic() + 120
            while not coord.resolved(keys) and \
                    time.monotonic() < deadline:
                coord.tick()
                time.sleep(0.02)
            assert coord.resolved(keys), "campaign never drained"
            collected = coord.collect(keys)
            counters = coord.queue.counters
            quarantined = coord.quarantined
            events = list(coord.quarantine_events)
        finally:
            coord.shutdown()
            for t in threads:
                t.join(timeout=15)
            coord.stop()
        assert not any(t.is_alive() for t in threads)

        # The campaign completed with the honest bits everywhere.
        for key, point in zip(keys, points):
            assert _fields(collected[key]) == \
                _fields(execute_point(point, CHAOS_CFG))
        assert counters.failures == 0
        # The liar was caught at least once (it lies on every task it
        # touches first; with two workers racing four tasks, at least
        # one task sees both of them).
        assert quarantined >= 1
        verdicts = [e["verdict"] for e in events]
        assert "mismatch" in verdicts
        majorities = [e for e in events
                      if e["verdict"] == "settled_majority"]
        assert majorities and all(e["liars"] == ["liar"]
                                  for e in majorities)
        # Every event left a validating post-mortem on disk.
        qdir = tmp_path / "quarantine"
        records = sorted(qdir.glob("quarantine_*.json"))
        assert len(records) == len(events)
        for rec in records:
            payload = json.loads(rec.read_text())
            validate_quarantine(payload)
            assert payload["verdict"] in ("mismatch",
                                          "settled_majority")

"""Integration: campaigns are interruptible, resumable, and incremental.

The acceptance properties of the campaign subsystem:

* a campaign killed mid-sweep resumes from where it stopped, recomputing
  only unfinished points, and the final results are identical to an
  uninterrupted run;
* rerunning a figure script immediately hits the cache for (nearly) all
  of its points.
"""

import dataclasses

import pytest

from repro.campaign import CampaignStore, RetryPolicy, RunCache, run_points
from repro.campaign.executor import CampaignExecutor
from repro.config import SimConfig
from repro.sim.parallel import grid


@pytest.fixture
def sweep_cfg() -> SimConfig:
    return SimConfig(rows=4, cols=4, warmup_cycles=100, measure_cycles=300,
                     drain_cycles=800, fastpass_slot_cycles=64)


POINTS = grid([("escapevc", {}), ("fastpass", {"n_vcs": 2})],
              ["uniform", "transpose"], [0.02, 0.05])   # 8 points


def _fields(res) -> tuple:
    d = dataclasses.asdict(res)
    return tuple(sorted((k, repr(v)) for k, v in d.items()))


class _InterruptAfter:
    """Progress callback that aborts the campaign after N computations."""

    def __init__(self, n: int):
        self.n = n

    def __call__(self, progress) -> None:
        if progress.done >= self.n:
            raise KeyboardInterrupt


class TestResume:
    def test_interrupted_campaign_resumes_identically(self, tmp_path,
                                                      sweep_cfg):
        cache = RunCache(tmp_path / "cache", salt="s")
        store = CampaignStore(tmp_path / "campaign.sqlite")

        with pytest.raises(KeyboardInterrupt):
            CampaignExecutor(sweep_cfg, cache=cache, store=store,
                             processes=1,
                             progress=_InterruptAfter(3)).run(POINTS)

        counts = store.counts()
        assert counts["done"] == 3
        assert counts["done"] + counts["pending"] == len(POINTS)
        assert len(cache) == 3

        # Resume: only the unfinished points are recomputed.
        ex = CampaignExecutor(sweep_cfg, cache=cache, store=store,
                              processes=1)
        resumed = ex.run(POINTS)
        assert ex.summary["cached"] == 3
        assert ex.summary["computed"] == len(POINTS) - 3
        assert store.counts()["done"] == len(POINTS)

        # And the results match a clean, uninterrupted run exactly.
        clean = run_points(POINTS, sweep_cfg, processes=1, cache=False,
                           store=False)
        assert [_fields(r) for r in resumed] == [_fields(r) for r in clean]

    def test_second_run_is_fully_cached(self, tmp_path, sweep_cfg):
        cache = RunCache(tmp_path / "cache", salt="s")
        first = CampaignExecutor(sweep_cfg, cache=cache,
                                 processes=1).run(POINTS)
        ex = CampaignExecutor(sweep_cfg, cache=cache, processes=1)
        second = ex.run(POINTS)
        assert ex.summary["computed"] == 0
        assert ex.summary["cached"] == len(POINTS)
        assert [_fields(r) for r in first] == [_fields(r) for r in second]


class TestFigureScriptsAreIncremental:
    def test_fig7_second_run_hits_cache(self):
        """Acceptance: rerunning a figure script hits the cache for >= 95%
        of its points (here: all of them)."""
        from repro.campaign import get_context
        from repro.experiments import fig7
        schemes = [("EscapeVC", "escapevc", {}),
                   ("FastPass", "fastpass", {"n_vcs": 2})]
        kwargs = dict(quick=True, patterns=("transpose",),
                      schemes=schemes, rates=[0.02, 0.06])
        first = fig7.run(**kwargs)
        cache = get_context().cache()
        assert len(cache) > 0
        cache.reset_stats()
        second = fig7.run(**kwargs)
        assert cache.misses == 0
        assert cache.hit_rate >= 0.95
        assert first == second

    def test_fig9_second_run_hits_cache(self):
        from repro.campaign import get_context
        from repro.experiments import fig9
        first = fig9.run(quick=True, rates=[0.01, 0.02])
        cache = get_context().cache()
        cache.reset_stats()
        second = fig9.run(quick=True, rates=[0.01, 0.02])
        assert cache.hit_rate >= 0.95
        assert first == second

    def test_stale_cache_survives_failed_points(self, sweep_cfg,
                                                monkeypatch, tmp_path):
        """A point that fails is not cached, so a later run retries it."""
        monkeypatch.setenv("REPRO_CAMPAIGN_SELFTEST", "1")
        from repro.sim.parallel import Point
        cache = RunCache(tmp_path / "cache", salt="s")
        bad = [Point.make("x", "selftest:fail", 0.0)]
        retry = RetryPolicy(max_attempts=1, backoff_s=0.01)
        ex = CampaignExecutor(sweep_cfg, cache=cache, processes=1,
                              retry=retry)
        assert ex.run(bad)[0].extra.get("failed")
        ex2 = CampaignExecutor(sweep_cfg, cache=cache, processes=1,
                               retry=retry)
        ex2.run(bad)
        assert ex2.summary["cached"] == 0      # it was retried, not reused

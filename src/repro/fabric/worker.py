"""Pull-based fabric worker.

A worker is a loop: lease, execute, report.  Execution goes through the
*unchanged* campaign datapath — :func:`~repro.campaign.worker
.execute_point` for singletons, :func:`~repro.campaign.worker
.execute_group` for replica batches — so a point computed by a remote
worker is bit-identical to the same point computed by the local
executor; the fabric moves work, never semantics.

Failure behaviour:

* an exception inside a task is caught and reported as a failed
  completion — the coordinator charges the attempt and re-queues or
  fails the task per its retry policy;
* a worker crash (segfault, OOM-kill, ``os._exit``) simply lets the
  lease expire — same outcome, just on the lease-timeout clock;
* a coordinator that stops answering is retried with backoff up to
  ``max_connect_failures`` consecutive misses, then the worker exits —
  a fleet never spins forever against a dead coordinator.

Workers keep polling through idle periods (a ``serve`` session feeds the
queue experiment by experiment) and exit only on the coordinator's
explicit ``shutdown`` state.
"""

from __future__ import annotations

import os
import socket
import time
import urllib.error

from repro.campaign import cache as cache_mod
from repro.fabric import protocol
from repro.fabric.httpd import HttpError, http_json


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class FabricWorker:
    def __init__(self, url: str, worker_id: str | None = None,
                 poll_s: float = 0.25, max_tasks: int = 1,
                 max_connect_failures: int = 40,
                 connect_backoff_s: float = 0.25):
        self.url = url.rstrip("/")
        self.worker_id = worker_id or default_worker_id()
        self.poll_s = poll_s
        self.max_tasks = max_tasks
        self.max_connect_failures = max_connect_failures
        self.connect_backoff_s = connect_backoff_s
        self.stats = {"leases": 0, "points": 0, "failures": 0,
                      "connect_failures": 0}

    # -- the loop -------------------------------------------------------
    def run(self) -> dict:
        misses = 0
        while True:
            try:
                resp = http_json("POST", self.url + "/lease", {
                    "version": protocol.PROTOCOL_VERSION,
                    "worker": self.worker_id,
                    "max_tasks": self.max_tasks,
                })
            except HttpError:
                raise            # 4xx/5xx: a real protocol error, surface it
            except (urllib.error.URLError, ConnectionError, OSError):
                misses += 1
                self.stats["connect_failures"] += 1
                if misses >= self.max_connect_failures:
                    raise
                time.sleep(min(self.connect_backoff_s * misses, 5.0))
                continue
            misses = 0
            state = resp.get("state")
            if state == protocol.STATE_SHUTDOWN:
                return self.stats
            if state == protocol.STATE_IDLE or not resp.get("leases"):
                time.sleep(self.poll_s)
                continue
            for lease in resp["leases"]:
                self._run_lease(lease)

    # -- one lease ------------------------------------------------------
    def _run_lease(self, lease: dict) -> None:
        self.stats["leases"] += 1
        try:
            payload = self._execute(lease)
        except Exception as exc:  # noqa: BLE001 - reported, never fatal
            self.stats["failures"] += 1
            payload = {"ok": False,
                       "error": f"{type(exc).__name__}: {exc}"}
        payload.update({"lease_id": lease["lease_id"],
                        "worker": self.worker_id})
        try:
            http_json("POST", self.url + "/complete", payload)
        except (urllib.error.URLError, ConnectionError, OSError):
            # Coordinator unreachable at report time: the lease will
            # expire and the task re-run — exactly the at-least-once
            # contract.  Nothing to do here.
            self.stats["connect_failures"] += 1

    def _execute(self, lease: dict) -> dict:
        cfg = protocol.cfg_from_json(lease["cfg"])
        items = protocol.items_from_json(lease["items"])
        points = [p for _, p in items]
        from repro.campaign.worker import execute_group, execute_point
        if len(points) == 1:
            results = [execute_point(points[0], cfg)]
        else:
            results = execute_group(points, cfg)
        self.stats["points"] += len(points)
        return {"ok": True,
                "results": [cache_mod.result_to_json(r) for r in results],
                "artifacts": self._gather_artifacts(results)}

    @staticmethod
    def _gather_artifacts(results) -> list:
        """Metrics snapshots written by instrumented runs live on the
        worker's disk; ship their contents home so the coordinator owns
        the artifacts."""
        out = []
        for res in results:
            metrics = res.extra.get("metrics")
            if not isinstance(metrics, dict):
                continue
            path = metrics.get("path")
            if path and os.path.exists(path):
                out.append({"name": path,
                            "text": open(path).read()})
        return out


def worker_process_main(url: str, worker_id: str | None = None,
                        poll_s: float = 0.25, max_tasks: int = 1) -> None:
    """Entry point for loopback worker subprocesses."""
    FabricWorker(url, worker_id=worker_id, poll_s=poll_s,
                 max_tasks=max_tasks).run()

"""Pull-based fabric worker.

A worker is a loop: lease, execute, report.  Execution goes through the
*unchanged* campaign datapath — :func:`~repro.campaign.worker
.execute_point` for singletons, :func:`~repro.campaign.worker
.execute_group` for replica batches — so a point computed by a remote
worker is bit-identical to the same point computed by the local
executor; the fabric moves work, never semantics.

Failure behaviour:

* an exception inside a task is caught and reported as a failed
  completion — the coordinator charges the attempt and re-queues or
  fails the task per its retry policy;
* a worker crash (segfault, OOM-kill, ``os._exit``) simply lets the
  lease expire — same outcome, just on the lease-timeout clock;
* a coordinator that stops answering is ridden out: the worker retries
  with capped, jittered exponential backoff (jitter keeps a restarted
  coordinator from being stampeded by its whole fleet at once) for up
  to ``patience_s`` of continuous outage, then exits — a fleet never
  spins forever against a coordinator that is truly gone, but survives
  one that is merely restarting;
* a ``/complete`` that fails in flight is retried a few times (the
  coordinator's completions are idempotent, so retrying a delivered-
  but-unacknowledged report is safe); past that budget the lease is
  abandoned to expiry — the at-least-once contract converges either
  way.

Workers keep polling through idle periods (a ``serve`` session feeds the
queue experiment by experiment) and exit only on the coordinator's
explicit ``shutdown`` state.

A worker can run under a :class:`~repro.chaos.transport.ChaosInjector`
(``chaos=``), which sabotages its *own* HTTP requests per a seeded
:class:`~repro.chaos.plan.ChaosPlan`; the worker treats the resulting
failures exactly like real network trouble, which is the point.
"""

from __future__ import annotations

import os
import random
import socket
import time
import urllib.error

from repro.campaign import cache as cache_mod
from repro.fabric import protocol
from repro.fabric.httpd import HttpError, http_json

#: continuous-outage budget (seconds) before a worker gives up on its
#: coordinator; override per-worker or via REPRO_FABRIC_PATIENCE_S
DEFAULT_PATIENCE_S = 300.0

#: errors that mean "the request did not get through cleanly" — always
#: worth retrying against a coordinator that may just be restarting
_TRANSIENT = (urllib.error.URLError, ConnectionError, OSError)


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _patience_from_env() -> float:
    try:
        return float(os.environ.get("REPRO_FABRIC_PATIENCE_S",
                                    DEFAULT_PATIENCE_S))
    except ValueError:
        return DEFAULT_PATIENCE_S


class FabricWorker:
    def __init__(self, url: str, worker_id: str | None = None,
                 poll_s: float = 0.25, max_tasks: int = 1,
                 patience_s: float | None = None,
                 connect_backoff_s: float = 0.25,
                 complete_retries: int = 4,
                 chaos=None):
        self.url = url.rstrip("/")
        self.worker_id = worker_id or default_worker_id()
        self.poll_s = poll_s
        self.max_tasks = max_tasks
        self.patience_s = patience_s if patience_s is not None \
            else _patience_from_env()
        self.connect_backoff_s = connect_backoff_s
        self.complete_retries = complete_retries
        self.chaos = chaos
        self._rng = random.Random(self.worker_id)   # backoff jitter
        self.stats = {"leases": 0, "points": 0, "failures": 0,
                      "connect_failures": 0}

    # -- transport ------------------------------------------------------
    def _post(self, path: str, payload: dict):
        if self.chaos is not None:
            return self.chaos.request("POST", self.url, path, payload)
        return http_json("POST", self.url + path, payload)

    def _backoff(self, misses: int) -> float:
        base = min(self.connect_backoff_s * 2 ** min(misses - 1, 6), 5.0)
        return base * (0.5 + self._rng.random())

    # -- the loop -------------------------------------------------------
    def run(self) -> dict:
        misses = 0
        outage_started: float | None = None
        while True:
            body = {"version": protocol.PROTOCOL_VERSION,
                    "worker": self.worker_id,
                    "max_tasks": self.max_tasks}
            if self.chaos is not None:
                body["chaos"] = dict(self.chaos.counts)
            try:
                resp = self._post("/lease", body)
            except HttpError as exc:
                if exc.status != 400:
                    raise    # 404/409/...: a real protocol error
                # 400 on a lease poll means the request arrived mangled
                # (chaos truncation/corruption); the poll is stateless,
                # so just poll again.
                resp = None
            except _TRANSIENT:
                resp = None
            if resp is None:
                misses += 1
                self.stats["connect_failures"] += 1
                now = time.monotonic()
                if outage_started is None:
                    outage_started = now
                if now - outage_started > self.patience_s:
                    raise ConnectionError(
                        f"coordinator at {self.url} unreachable for "
                        f"{now - outage_started:.0f}s "
                        f"(patience {self.patience_s:.0f}s)")
                time.sleep(self._backoff(misses))
                continue
            misses = 0
            outage_started = None
            state = resp.get("state")
            if state == protocol.STATE_SHUTDOWN:
                return self.stats
            if state == protocol.STATE_IDLE or not resp.get("leases"):
                time.sleep(self.poll_s)
                continue
            for lease in resp["leases"]:
                self._run_lease(lease)

    # -- one lease ------------------------------------------------------
    def _run_lease(self, lease: dict) -> None:
        self.stats["leases"] += 1
        try:
            payload = self._execute(lease)
        except Exception as exc:  # noqa: BLE001 - reported, never fatal
            self.stats["failures"] += 1
            payload = {"ok": False,
                       "error": f"{type(exc).__name__}: {exc}"}
        payload.update({"lease_id": lease["lease_id"],
                        "worker": self.worker_id})
        for attempt in range(1, self.complete_retries + 1):
            try:
                self._post("/complete", payload)
                return
            except HttpError as exc:
                if exc.status != 400:
                    return        # protocol-level refusal; expiry wins
                # 400: the report arrived mangled (truncated/corrupted
                # in flight) — the server settled nothing, retry intact.
                self.stats["connect_failures"] += 1
            except _TRANSIENT:
                # Includes the reset-after-delivery case: the server
                # may have settled the completion already, and the
                # retry lands as a harmless idempotent duplicate.
                self.stats["connect_failures"] += 1
            if attempt < self.complete_retries:
                time.sleep(self._backoff(attempt))
        # Budget spent with the report undelivered: the lease expires
        # and the task re-runs — exactly the at-least-once contract.

    def _execute(self, lease: dict) -> dict:
        cfg = protocol.cfg_from_json(lease["cfg"])
        items = protocol.items_from_json(lease["items"])
        points = [p for _, p in items]
        from repro.campaign.worker import execute_group, execute_point
        if len(points) == 1:
            results = [execute_point(points[0], cfg)]
        else:
            results = execute_group(points, cfg)
        self.stats["points"] += len(points)
        return {"ok": True,
                "results": [cache_mod.result_to_json(r) for r in results],
                "artifacts": self._gather_artifacts(results)}

    @staticmethod
    def _gather_artifacts(results) -> list:
        """Metrics snapshots written by instrumented runs live on the
        worker's disk; ship their contents home so the coordinator owns
        the artifacts."""
        out = []
        for res in results:
            metrics = res.extra.get("metrics")
            if not isinstance(metrics, dict):
                continue
            path = metrics.get("path")
            if path and os.path.exists(path):
                out.append({"name": path,
                            "text": open(path).read()})
        return out


def worker_process_main(url: str, worker_id: str | None = None,
                        poll_s: float = 0.25, max_tasks: int = 1,
                        chaos_token: str | None = None,
                        chaos_salt: int = 0) -> None:
    """Entry point for loopback worker subprocesses.  ``chaos_token``
    (a :meth:`ChaosPlan.token`) arms the chaos layer; ``chaos_salt``
    separates sibling workers' fault streams."""
    chaos = None
    if chaos_token:
        from repro.chaos.plan import ChaosPlan
        from repro.chaos.transport import ChaosInjector
        chaos = ChaosInjector(ChaosPlan.from_token(chaos_token),
                              salt=chaos_salt)
    FabricWorker(url, worker_id=worker_id, poll_s=poll_s,
                 max_tasks=max_tasks, chaos=chaos).run()

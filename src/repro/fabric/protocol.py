"""Wire format of the campaign fabric.

Everything that crosses the coordinator/worker HTTP boundary is plain
JSON built from the same canonical forms the run cache already uses:
:meth:`~repro.sim.parallel.Point.to_json` for points,
:func:`~repro.campaign.cache.result_to_json` for results, and
``dataclasses.asdict`` for the :class:`~repro.config.SimConfig` (with the
one non-JSON field, ``fault_plan``, replaced by its canonical token).
Because the run cache round-trips results through exactly the same JSON
encoding, a result that travelled over the fabric is byte-for-byte the
result a local cache hit would have returned — the bit-identity invariant
costs nothing extra.

A lease is ``(lease id, task, deadline)``: the unit of work plus the time
by which the worker must have completed it.  Tasks mirror the campaign
executor's units exactly — a single point, or a group of seed replicas
that the worker runs as one lock-step batch — so the fabric changes *who*
executes, never *what* is executed.
"""

from __future__ import annotations

import dataclasses

from repro.config import SimConfig
from repro.sim.parallel import Point

#: Bumped whenever a payload changes shape.  Workers refuse to pull from
#: a coordinator speaking a different version — mixed fleets fail loudly
#: at lease time instead of corrupting results.
PROTOCOL_VERSION = 1

#: Lease states a worker can see in a ``POST /lease`` response.
STATE_OK = "ok"              # leases granted
STATE_IDLE = "idle"          # nothing eligible right now, poll again
STATE_SHUTDOWN = "shutdown"  # coordinator is done; workers should exit


def cfg_to_json(cfg: SimConfig) -> dict:
    """Canonical JSON form of a config (the cache-key encoding)."""
    d = dataclasses.asdict(cfg)
    d["fault_plan"] = cfg.fault_plan.token() if cfg.fault_plan else None
    return d


def cfg_from_json(d: dict) -> SimConfig:
    d = dict(d)
    token = d.pop("fault_plan", None)
    if token:
        from repro.fault.plan import FaultPlan
        d["fault_plan"] = FaultPlan.from_token(token)
    return SimConfig(**d)


def items_to_json(items: list[tuple[str, Point]]) -> list[list]:
    """``[(key, Point), ...]`` -> ``[[key, point_json], ...]``."""
    return [[key, point.to_json()] for key, point in items]


def items_from_json(blob: list[list]) -> list[tuple[str, Point]]:
    return [(key, Point.from_json(pj)) for key, pj in blob]


def lease_to_json(lease) -> dict:
    """One granted lease, as the worker sees it."""
    task = lease.task
    return {
        "lease_id": lease.lease_id,
        "ttl_s": lease.deadline - lease.granted,
        "attempt": task.attempt,
        "cfg": task.cfg_json,
        "items": items_to_json(task.items),
    }

"""Fabric-backed campaign execution.

Two pieces:

* :class:`FabricSession` — a running coordinator (HTTP server thread)
  plus, optionally, locally-spawned loopback worker processes.  A
  ``fabric serve`` CLI session keeps one of these alive across many
  ``run_points`` calls so remote workers can drain experiment after
  experiment; the differential tests use one per call.
* :class:`FabricExecutor` — the drop-in counterpart of
  :class:`~repro.campaign.executor.CampaignExecutor`: same ``run(points)
  -> results-in-input-order`` contract, same cache-first/store/resume
  behaviour, same replica auto-batching (via the shared
  :func:`~repro.campaign.executor.group_items`), but execution happens
  wherever workers pull from — local loopback subprocesses, other
  terminals, other hosts.

Because workers run the unmodified ``execute_point``/``execute_group``
datapath and results round-trip through the same JSON encoding the run
cache uses, a loopback fabric run is bit-identical to the local
executor — enforced by ``tests/integration/test_fabric_loopback.py``.
"""

from __future__ import annotations

import itertools
import os
import time

from repro.campaign import cache as cache_mod
from repro.campaign.executor import Progress, RetryPolicy, group_items
from repro.fabric.coordinator import Coordinator
from repro.fabric.worker import worker_process_main
from repro.sim.parallel import pool_context

#: poll cadence of the waiting executor (expiry sweeps, progress, worker
#: supervision).  Short: every tick is sub-millisecond bookkeeping.
_POLL_S = 0.05


class FabricSession:
    """A live coordinator plus supervised local loopback workers."""

    _ids = itertools.count(1)

    def __init__(self, cache=None, retry: RetryPolicy | None = None,
                 lease_ttl_s: float = 60.0, host: str = "127.0.0.1",
                 port: int = 0, workers: int = 0,
                 campaign: str | None = None,
                 redundancy: float = 0.0, redundancy_seed: int = 0,
                 resume: bool = False, chaos_token: str | None = None):
        self.coordinator = Coordinator(cache=cache, retry=retry,
                                       lease_ttl_s=lease_ttl_s,
                                       campaign=campaign,
                                       redundancy=redundancy,
                                       redundancy_seed=redundancy_seed)
        self.url = self.coordinator.start(host, port)
        self.resume = resume          # adopt journaled leases on run()
        self.chaos_token = chaos_token
        self._ctx = pool_context()
        self._workers: dict[str, object] = {}      # worker_id -> Process
        self._spawns = 0              # session-local chaos salt stream
        self.respawns = 0
        for _ in range(workers):
            self.spawn_worker()

    # -- local worker supervision --------------------------------------
    def spawn_worker(self) -> str:
        wid = f"loopback-{os.getpid()}-{next(self._ids)}"
        self._spawns += 1
        kwargs = {"worker_id": wid, "poll_s": _POLL_S}
        if self.chaos_token:
            # salt by spawn index: siblings share a plan but not a
            # fault stream, and a respawned worker gets a fresh one
            kwargs.update(chaos_token=self.chaos_token,
                          chaos_salt=self._spawns)
        proc = self._ctx.Process(target=worker_process_main,
                                 args=(self.url,),
                                 kwargs=kwargs,
                                 daemon=True)
        proc.start()
        self._workers[wid] = proc
        return wid

    def maintain(self) -> list[str]:
        """Reap dead local workers and replace them; returns the ids of
        the dead so their leases can be force-expired (no need to wait
        out the TTL when the supervisor *saw* the crash)."""
        dead = [wid for wid, p in self._workers.items()
                if not p.is_alive()]
        for wid in dead:
            self._workers.pop(wid).join(timeout=1)
            self.coordinator.expire_dead_worker(wid)
            if self.coordinator.state == "ok":
                self.spawn_worker()
                self.respawns += 1
        return dead

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    # -- lifecycle ------------------------------------------------------
    def close(self, linger_s: float = 5.0) -> None:
        """Shut down: workers see the shutdown state on their next poll
        and exit; anything still leased is re-marked pending in its
        store so a later run resumes it.

        Remote pullers are given up to ``linger_s`` to observe the
        shutdown state before the server goes away — otherwise they
        would grind through their connection-retry budget against a
        vanished coordinator instead of exiting cleanly.
        """
        self.coordinator.shutdown()
        local = set(self._workers)
        deadline = time.monotonic() + 10
        for wid, proc in self._workers.items():
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1)
        self._workers.clear()
        deadline = time.monotonic() + linger_s
        while time.monotonic() < deadline and \
                self.coordinator.workers_pending_dismissal(exclude=local):
            time.sleep(0.05)
        self.coordinator.release_leases()
        self.coordinator.stop()

    def __enter__(self) -> "FabricSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FabricExecutor:
    """Coordinator/worker counterpart of ``CampaignExecutor``.

    With ``session=None`` an ephemeral loopback session is created for
    the duration of :meth:`run`: coordinator on an OS-assigned localhost
    port, ``workers`` pulling subprocesses, everything torn down before
    returning.  Pass a long-lived :class:`FabricSession` (the ``serve``
    CLI does) to feed an existing fleet instead.
    """

    def __init__(self, cfg, cache=None, store=None,
                 workers: int = 2, retry: RetryPolicy | None = None,
                 progress=None, auto_batch: bool = True,
                 session: FabricSession | None = None,
                 lease_ttl_s: float = 60.0,
                 redundancy: float = 0.0,
                 resume: bool | None = None):
        self.cfg = cfg
        self.cache = cache
        self.store = store
        self.workers = workers
        self.retry = retry or RetryPolicy()
        self.progress = progress
        # SoA points fold like any others — ReplicaBatch runs them under
        # the fused multi-replica screen (repro.sim.soa.batch).
        self.auto_batch = auto_batch and \
            os.environ.get("REPRO_NO_BATCH") != "1"
        self.session = session
        self.lease_ttl_s = lease_ttl_s
        self.redundancy = redundancy   # only used for ephemeral sessions
        # resume (adopt journaled leases) follows the session's setting
        # unless overridden; an ephemeral session has no prior life to
        # resume, so the default is False there.
        self.resume = resume if resume is not None else \
            (session.resume if session is not None else False)
        self.summary: dict = {}

    # ------------------------------------------------------------------
    def run(self, points: list) -> list:
        """Execute ``points`` on the fabric; results in input order."""
        t0 = time.monotonic()
        salt = self.cache.salt if self.cache is not None \
            else cache_mod.code_version()
        keys = [cache_mod.point_key(p, self.cfg, salt) for p in points]
        unique: dict = {}
        for key, point in zip(keys, points):
            unique.setdefault(key, point)

        session = self.session
        owns_session = session is None
        adopted: set = set()
        if self.store is not None:
            self.store.register(list(unique.items()))
            if session is not None and self.resume:
                # Crash recovery: re-create the leases a previous
                # coordinator journaled before dying, restricted to the
                # points this run actually wants.
                adopted = session.coordinator.adopt_leases(
                    self.store, self.cfg) & set(unique)
            else:
                # Fresh run: stale journal rows (from a crash nobody
                # resumed) must not outlive this campaign — the live
                # session re-journals its own leases as it grants them.
                self.store.clear_leases()
            live = session.coordinator.live_lease_keys() \
                if session is not None else ()
            self.store.reset_running(exclude=live)

        results: dict = {}
        cached = 0
        if self.cache is not None:
            for key, point in unique.items():
                hit = self.cache.get(key)
                if hit is not None and key not in adopted:
                    results[key] = hit
                    cached += 1
                    if self.store is not None:
                        self.store.mark(key, "done")
        pending = [(k, p) for k, p in unique.items()
                   if k not in results and k not in adopted]
        grouped = group_items(pending, self.auto_batch)

        state = {"total": len(unique), "cached": cached, "done": 0,
                 "failed": 0, "running": 0, "t0": t0}
        self._report(state)
        if owns_session and grouped:
            self._warm_fork_cache(grouped)
            session = FabricSession(cache=self.cache, retry=self.retry,
                                    lease_ttl_s=self.lease_ttl_s,
                                    workers=self.workers,
                                    redundancy=self.redundancy)
        fabric_info = {
            "url": session.url if session is not None else None,
            "loopback_workers": session.n_workers
            if session is not None else 0,
            "respawns": 0,
        }
        try:
            if grouped or adopted:
                coord = session.coordinator
                coord.seed_results(results)
                if grouped:
                    coord.submit(grouped, self.cfg, self.store)
                wait_keys = [k for k, _ in pending] + sorted(adopted)
                self._wait(coord, session, wait_keys, results, state)
        finally:
            if session is not None:
                fabric_info["respawns"] = session.respawns
                if owns_session:
                    session.close()

        self.summary = {
            "total": len(unique), "cached": cached,
            "computed": state["done"], "failed": state["failed"],
            "batched": sum(len(g) for g in grouped if len(g) > 1),
            "elapsed_s": time.monotonic() - t0,
            "fabric": fabric_info,
        }
        return [results[key] for key in keys]

    # ------------------------------------------------------------------
    def _wait(self, coord: Coordinator, session: FabricSession,
              pending_keys: list, results: dict, state: dict) -> None:
        pending_set = set(pending_keys)
        while pending_set:
            coord.tick()
            if session is not None:
                session.maintain()
            fresh = coord.collect(list(pending_set))
            for key, res in fresh.items():
                results[key] = res
                pending_set.discard(key)
                if res.extra.get("failed"):
                    state["failed"] += 1
                else:
                    state["done"] += 1
            if fresh:
                state["running"] = coord.status()["counts"]["leased"]
                self._report(state)
            if pending_set:
                time.sleep(_POLL_S)

    def _warm_fork_cache(self, grouped: list) -> None:
        if pool_context().get_start_method() != "fork":
            return
        from repro.sim.batch.shared import warm_process_cache
        warm_process_cache(self.cfg, sorted(
            {(p.scheme, p.scheme_kwargs)
             for items in grouped for _, p in items
             if ":" not in p.pattern}))

    def _report(self, state: dict) -> None:
        if self.progress is None:
            return
        elapsed = time.monotonic() - state["t0"]
        done = state["done"] + state["failed"]
        remaining = state["total"] - state["cached"] - done
        eta = elapsed / done * remaining if done and remaining else \
            (0.0 if not remaining else None)
        self.progress(Progress(total=state["total"],
                               cached=state["cached"], done=state["done"],
                               failed=state["failed"],
                               running=state["running"],
                               elapsed_s=elapsed, eta_s=eta))

"""The leased work queue at the heart of the campaign fabric.

Pure bookkeeping — no I/O, no clocks (every method takes ``now``), no
threads — so the lease protocol is unit-testable in microseconds and the
coordinator stays a thin shell around it.

Protocol invariants (the ones the tests pin):

* **At-least-once execution.**  A lease that is not completed by its
  deadline is *expired*: the attempt is charged against the task's
  :class:`~repro.campaign.executor.RetryPolicy` budget and the task is
  re-queued after the policy's backoff — or permanently failed once the
  budget is spent.  A crashed or partitioned worker therefore delays a
  task, never loses it.
* **Idempotent completion.**  The first completion of a task wins;
  every later completion (a duplicate POST, or a slow worker finishing
  after its lease expired and the task was re-leased) is acknowledged
  and discarded.  Because every execution of a point is deterministic
  and bit-identical, *which* completion wins is unobservable — that is
  what makes duplicate/late workers harmless rather than merely
  tolerated.
* **Late completions still count.**  A worker that finishes after its
  lease expired — but before any re-execution finished — delivers a
  perfectly good (deterministic) result; it is accepted and the
  re-queued/re-leased copy of the task is cancelled.  Only results for
  tasks already completed, or from lease ids the queue never issued,
  are dropped.
* **Redundant execution (opt-in).**  A task with ``redundancy = R > 1``
  is leased to R distinct workers; each completion lands as ``PARTIAL``
  until the last one arrives as ``VERIFY``, at which point the
  *coordinator* cross-checks the candidate payloads and either
  :meth:`settle`\\ s the task or :meth:`reopen`\\ s it for a tie-break
  replay.  The queue never inspects result bytes — it only counts
  grants (``slots``) and completions (``done``) against the running
  need.

Crash recovery rides on the same bookkeeping: :meth:`adopt` re-creates
a lease (under its original id) from a journal row, so a restarted
coordinator keeps honouring completions for leases granted before the
crash.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass

from repro.campaign.executor import RetryPolicy

#: dispositions returned to completing workers
OK = "ok"                # first completion: results accepted
LATE = "late"            # lease had expired, but the results still won
DUPLICATE = "duplicate"  # task already done; results discarded
REQUEUED = "requeued"    # reported failure; task will be retried
FAILED = "failed"        # reported failure; retry budget exhausted
UNKNOWN = "unknown"      # lease id never issued; results dropped
PARTIAL = "partial"      # redundant task: accepted, siblings outstanding
VERIFY = "verify"        # redundant task: last completion — cross-check


@dataclass
class Task:
    """One unit of worker execution (mirrors the executor's ``_Task``):
    a single point or a group of seed replicas, plus the config they run
    under and an opaque coordinator-side context (the campaign store the
    task reports to).  ``redundancy`` is how many independent workers
    must execute the task before it can settle."""

    tid: str                         # stable id: the first point key
    items: list                      # [(key, Point), ...]
    cfg_json: dict
    context: object = None           # opaque; never serialized
    attempt: int = 0
    eligible: float = 0.0            # earliest re-lease time (backoff)
    redundancy: int = 1

    @property
    def keys(self) -> list[str]:
        return [key for key, _ in self.items]


@dataclass
class Lease:
    lease_id: str
    worker: str
    task: Task
    granted: float
    deadline: float


@dataclass
class QueueCounters:
    granted: int = 0
    completed: int = 0
    late: int = 0
    duplicates: int = 0
    expiries: int = 0
    requeues: int = 0
    failures: int = 0
    partials: int = 0   # redundant completions still awaiting siblings
    reopens: int = 0    # tie-break replays after a redundancy mismatch

    def to_json(self) -> dict:
        return dict(self.__dict__)


class LeaseQueue:
    """Task lifecycle: ``pending -> leased -> done | failed`` with
    expiry-driven re-queueing in between.

    Redundant tasks generalize the single-lease picture with three
    per-task counters: ``slots`` (grants still wanted — each pending
    queue entry is backed by one), ``done`` (completions accepted so
    far) and ``need`` (completions required to settle: the task's
    redundancy, plus one per tie-break reopen).
    """

    def __init__(self, retry: RetryPolicy | None = None,
                 lease_ttl_s: float = 60.0):
        self.retry = retry or RetryPolicy()
        self.lease_ttl_s = lease_ttl_s
        self.counters = QueueCounters()
        self._pending: deque[Task] = deque()
        self._tasks: dict[str, Task] = {}        # tid -> task (all ever)
        self._state: dict[str, str] = {}         # tid -> pending|leased|
        #                                          done|failed
        self._slots: dict[str, int] = {}         # grants still wanted
        self._done: dict[str, int] = {}          # completions accepted
        self._need: dict[str, int] = {}          # completions required
        self._leases: dict[str, Lease] = {}      # live leases
        self._lease_tid: dict[str, str] = {}     # every lease ever issued
        self._settled: set[str] = set()          # leases completed/failed
        self._failures: dict[str, str] = {}      # tid -> last error
        self._next_id = 1

    # -- feeding --------------------------------------------------------
    def add(self, task: Task) -> None:
        if task.tid in self._tasks:
            raise ValueError(f"task {task.tid!r} already queued")
        if task.redundancy < 1:
            raise ValueError(f"task {task.tid!r} redundancy must be >= 1")
        self._register(task)
        for _ in range(task.redundancy):
            self._pending.append(task)

    def _register(self, task: Task) -> None:
        self._tasks[task.tid] = task
        self._state[task.tid] = "pending"
        self._slots[task.tid] = task.redundancy
        self._done[task.tid] = 0
        self._need[task.tid] = task.redundancy

    def budget(self, task: Task) -> int:
        """Total grants a task may consume before it permanently fails.
        Redundancy widens the budget by R - 1 so the extra planned
        executions are not charged as retries."""
        return self.retry.max_attempts + task.redundancy - 1

    # -- leasing --------------------------------------------------------
    def lease(self, worker: str, now: float, max_tasks: int = 1,
              allow_self: bool = True) -> list[Lease]:
        """Grant up to ``max_tasks`` leases to ``worker``; expired leases
        are swept first so a single surviving worker can reclaim the
        whole queue.

        ``allow_self=False`` withholds a redundant task's sibling grant
        from a worker that already holds a live lease on it — two copies
        on one worker would verify nothing.  The coordinator only passes
        False while other workers are around to take the sibling.
        """
        self.expire(now)
        out: list[Lease] = []
        skipped: list[Task] = []
        while self._pending and len(out) < max_tasks:
            task = self._pending.popleft()
            if self._state.get(task.tid) in ("done", "failed"):
                continue                      # cancelled by a late win
            if self._slots.get(task.tid, 0) <= 0:
                continue                      # grant no longer wanted
            if task.eligible > now:
                skipped.append(task)          # still backing off
                continue
            if (task.redundancy > 1 and not allow_self
                    and self._worker_holds(worker, task.tid)):
                skipped.append(task)          # sibling must go elsewhere
                continue
            self._slots[task.tid] -= 1
            task.attempt += 1
            lease = Lease(f"L{self._next_id}", worker, task, now,
                          now + self.lease_ttl_s)
            self._next_id += 1
            self._leases[lease.lease_id] = lease
            self._lease_tid[lease.lease_id] = task.tid
            self._state[task.tid] = "leased"
            self.counters.granted += 1
            out.append(lease)
        self._pending.extendleft(reversed(skipped))
        return out

    def _worker_holds(self, worker: str, tid: str) -> bool:
        return any(l.worker == worker and l.task.tid == tid
                   for l in self._leases.values())

    def adopt(self, task: Task, lease_id: str, worker: str,
              now: float) -> Lease:
        """Re-create a lease from a journal row after a coordinator
        restart, preserving its original id so the worker's eventual
        completion still lands.  The adopted lease gets a fresh TTL —
        the clock restarted with the coordinator."""
        if lease_id in self._lease_tid:
            raise ValueError(f"lease {lease_id!r} already known")
        if task.tid not in self._tasks:
            self._register(task)
            # pending entries back the slots this lease does not consume
            for _ in range(task.redundancy - 1):
                self._pending.append(task)
        task = self._tasks[task.tid]
        if self._slots[task.tid] > 0:
            self._slots[task.tid] -= 1
        lease = Lease(lease_id, worker, task, now, now + self.lease_ttl_s)
        self._leases[lease_id] = lease
        self._lease_tid[lease_id] = task.tid
        self._state[task.tid] = "leased"
        self.counters.granted += 1
        m = re.match(r"L(\d+)$", lease_id)
        if m:                 # never re-issue an adopted id
            self._next_id = max(self._next_id, int(m.group(1)) + 1)
        return lease

    # -- completion -----------------------------------------------------
    def complete(self, lease_id: str, now: float) -> tuple[str, Task | None]:
        """A worker reports success for ``lease_id``.

        Returns ``(disposition, task)``; the caller persists the results
        only for ``OK``/``LATE`` dispositions, collects candidates on
        ``PARTIAL`` and cross-checks on ``VERIFY``.
        """
        tid = self._lease_tid.get(lease_id)
        if tid is None:
            return UNKNOWN, None
        task = self._tasks[tid]
        state = self._state[tid]
        if state in ("done", "failed") or lease_id in self._settled:
            # Either the task is closed, or this exact lease already
            # reported in (a retried POST after a lost response) — with
            # redundancy in play the per-lease check matters: the task
            # may still be open on a sibling, and a double-counted
            # completion would trip verification early.
            self.counters.duplicates += 1
            return DUPLICATE, None
        self._settled.add(lease_id)
        live = self._leases.pop(lease_id, None)
        if live is None:
            # The lease expired before this completion arrived; its
            # expiry already re-added a slot (and a pending entry).
            # Consume that slot — the execution it was meant to replace
            # did, in fact, finish.
            self.counters.late += 1
            if self._slots[tid] > 0:
                self._slots[tid] -= 1
        if self._need[tid] == 1:
            self._state[tid] = "done"
            self._slots[tid] = 0
            if live is None:
                return LATE, task
            self.counters.completed += 1
            return OK, task
        self._done[tid] += 1
        if self._done[tid] < self._need[tid]:
            self.counters.partials += 1
            self._refresh_state(tid)
            return PARTIAL, task
        # Last required completion: the caller must cross-check the
        # candidates and either settle() or reopen().  Until then the
        # task is neither done nor leasable.
        self._slots[tid] = 0
        self._refresh_state(tid)
        return VERIFY, task

    def settle(self, tid: str) -> None:
        """Close a redundant task whose candidates agreed (or whose
        majority won): results are persisted by the caller."""
        self._state[tid] = "done"
        self._slots[tid] = 0
        self.counters.completed += 1

    def reopen(self, tid: str, now: float) -> tuple[str, Task]:
        """Candidates disagreed with no majority: demand one more
        completion as a tie-break — or fail the task when the widened
        budget is spent."""
        task = self._tasks[tid]
        self._need[tid] += 1
        if task.attempt >= self.budget(task):
            self._state[tid] = "failed"
            self._slots[tid] = 0
            self.counters.failures += 1
            return FAILED, task
        task.eligible = now
        self._slots[tid] += 1
        self._pending.append(task)
        self.counters.reopens += 1
        self._refresh_state(tid)
        return REQUEUED, task

    def fail(self, lease_id: str, error: str,
             now: float) -> tuple[str, Task | None]:
        """A worker reports a (caught) execution failure."""
        tid = self._lease_tid.get(lease_id)
        if tid is None:
            return UNKNOWN, None
        task = self._tasks[tid]
        if self._state[tid] in ("done", "failed") \
                or lease_id in self._settled:
            self.counters.duplicates += 1
            return DUPLICATE, None
        self._settled.add(lease_id)
        self._leases.pop(lease_id, None)
        self._failures[tid] = error
        return self._retry_or_fail(task, now)

    def _retry_or_fail(self, task: Task, now: float) -> tuple[str, Task]:
        if task.attempt >= self.budget(task):
            self._state[task.tid] = "failed"
            self._slots[task.tid] = 0
            self.counters.failures += 1
            return FAILED, task
        task.eligible = now + self.retry.delay(task.attempt)
        self._slots[task.tid] += 1
        self._pending.append(task)
        self.counters.requeues += 1
        self._refresh_state(task.tid)
        return REQUEUED, task

    def _refresh_state(self, tid: str) -> None:
        """Non-terminal state mirrors the live leases: ``leased`` while
        any grant is out, ``pending`` otherwise."""
        if self._state.get(tid) in ("done", "failed"):
            return
        live = any(l.task.tid == tid for l in self._leases.values())
        self._state[tid] = "leased" if live else "pending"

    # -- expiry ---------------------------------------------------------
    def expire(self, now: float) -> list[tuple[str, Task]]:
        """Sweep overdue leases; each costs the task one attempt."""
        out = []
        for lease in [l for l in self._leases.values()
                      if l.deadline <= now]:
            del self._leases[lease.lease_id]
            self.counters.expiries += 1
            task = lease.task
            if self._state.get(task.tid) in ("done", "failed"):
                continue                      # already done via late win
            self._failures[task.tid] = (
                f"lease {lease.lease_id} to {lease.worker} expired")
            out.append(self._retry_or_fail(task, now))
        return out

    def expire_worker(self, worker: str,
                      now: float) -> list[tuple[str, Task]]:
        """Force-expire every live lease held by ``worker`` — used when a
        supervisor *knows* the worker process died, so its tasks requeue
        immediately instead of waiting out the lease TTL."""
        for lease in [l for l in self._leases.values()
                      if l.worker == worker]:
            lease.deadline = now
        return self.expire(now)

    # -- introspection --------------------------------------------------
    def task_of(self, lease_id: str) -> Task | None:
        """The task a lease id refers to (None if never issued) — lets
        the coordinator validate a completion payload *before* settling
        the task."""
        tid = self._lease_tid.get(lease_id)
        return self._tasks[tid] if tid is not None else None

    def error_of(self, tid: str) -> str:
        return self._failures.get(tid, "")

    def note_error(self, tid: str, error: str) -> None:
        """Record the failure reason for a task the *coordinator* failed
        (a quarantined task whose budget ran out), so ``error_of`` tells
        the story the same way lease expiries do."""
        self._failures[tid] = error

    def live_leases(self) -> list[Lease]:
        """Snapshot of live leases — the unit the coordinator journals."""
        return list(self._leases.values())

    def counts(self) -> dict[str, int]:
        by = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
        for state in self._state.values():
            by[state] += 1
        return by

    def point_counts(self) -> dict[str, int]:
        """Like :meth:`counts`, but in points (a replica-batch task of R
        seeds is R points) — the unit campaign progress is measured in."""
        by = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
        for tid, state in self._state.items():
            by[state] += len(self._tasks[tid].items)
        return by

    def next_eligible(self) -> float | None:
        """Earliest backoff deadline among pending tasks (None if any
        task is immediately leasable or the queue is empty)."""
        times = [t.eligible for t in self._pending
                 if self._state.get(t.tid) not in ("done", "failed")
                 and self._slots.get(t.tid, 0) > 0]
        if not times:
            return None
        soonest = min(times)
        return soonest if soonest > 0 else None

    @property
    def drained(self) -> bool:
        return all(s in ("done", "failed") for s in self._state.values())

    def live_keys(self) -> set[str]:
        """Point keys currently out on a live lease."""
        return {key for lease in self._leases.values()
                for key in lease.task.keys}

    def __len__(self) -> int:
        return len(self._tasks)

"""The leased work queue at the heart of the campaign fabric.

Pure bookkeeping — no I/O, no clocks (every method takes ``now``), no
threads — so the lease protocol is unit-testable in microseconds and the
coordinator stays a thin shell around it.

Protocol invariants (the ones the tests pin):

* **At-least-once execution.**  A lease that is not completed by its
  deadline is *expired*: the attempt is charged against the task's
  :class:`~repro.campaign.executor.RetryPolicy` budget and the task is
  re-queued after the policy's backoff — or permanently failed once the
  budget is spent.  A crashed or partitioned worker therefore delays a
  task, never loses it.
* **Idempotent completion.**  The first completion of a task wins;
  every later completion (a duplicate POST, or a slow worker finishing
  after its lease expired and the task was re-leased) is acknowledged
  and discarded.  Because every execution of a point is deterministic
  and bit-identical, *which* completion wins is unobservable — that is
  what makes duplicate/late workers harmless rather than merely
  tolerated.
* **Late completions still count.**  A worker that finishes after its
  lease expired — but before any re-execution finished — delivers a
  perfectly good (deterministic) result; it is accepted and the
  re-queued/re-leased copy of the task is cancelled.  Only results for
  tasks already completed, or from lease ids the queue never issued,
  are dropped.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.campaign.executor import RetryPolicy

#: dispositions returned to completing workers
OK = "ok"                # first completion: results accepted
LATE = "late"            # lease had expired, but the results still won
DUPLICATE = "duplicate"  # task already done; results discarded
REQUEUED = "requeued"    # reported failure; task will be retried
FAILED = "failed"        # reported failure; retry budget exhausted
UNKNOWN = "unknown"      # lease id never issued; results dropped


@dataclass
class Task:
    """One unit of worker execution (mirrors the executor's ``_Task``):
    a single point or a group of seed replicas, plus the config they run
    under and an opaque coordinator-side context (the campaign store the
    task reports to)."""

    tid: str                         # stable id: the first point key
    items: list                      # [(key, Point), ...]
    cfg_json: dict
    context: object = None           # opaque; never serialized
    attempt: int = 0
    eligible: float = 0.0            # earliest re-lease time (backoff)

    @property
    def keys(self) -> list[str]:
        return [key for key, _ in self.items]


@dataclass
class Lease:
    lease_id: str
    worker: str
    task: Task
    granted: float
    deadline: float


@dataclass
class QueueCounters:
    granted: int = 0
    completed: int = 0
    late: int = 0
    duplicates: int = 0
    expiries: int = 0
    requeues: int = 0
    failures: int = 0

    def to_json(self) -> dict:
        return dict(self.__dict__)


class LeaseQueue:
    """Task lifecycle: ``pending -> leased -> done | failed`` with
    expiry-driven re-queueing in between."""

    def __init__(self, retry: RetryPolicy | None = None,
                 lease_ttl_s: float = 60.0):
        self.retry = retry or RetryPolicy()
        self.lease_ttl_s = lease_ttl_s
        self.counters = QueueCounters()
        self._pending: deque[Task] = deque()
        self._tasks: dict[str, Task] = {}        # tid -> task (all ever)
        self._state: dict[str, str] = {}         # tid -> pending|leased|
        #                                          done|failed
        self._leases: dict[str, Lease] = {}      # live leases
        self._lease_tid: dict[str, str] = {}     # every lease ever issued
        self._failures: dict[str, str] = {}      # tid -> last error
        self._ids = itertools.count(1)

    # -- feeding --------------------------------------------------------
    def add(self, task: Task) -> None:
        if task.tid in self._tasks:
            raise ValueError(f"task {task.tid!r} already queued")
        self._tasks[task.tid] = task
        self._state[task.tid] = "pending"
        self._pending.append(task)

    # -- leasing --------------------------------------------------------
    def lease(self, worker: str, now: float,
              max_tasks: int = 1) -> list[Lease]:
        """Grant up to ``max_tasks`` leases to ``worker``; expired leases
        are swept first so a single surviving worker can reclaim the
        whole queue."""
        self.expire(now)
        out: list[Lease] = []
        skipped: list[Task] = []
        while self._pending and len(out) < max_tasks:
            task = self._pending.popleft()
            if self._state.get(task.tid) != "pending":
                continue                      # cancelled by a late win
            if task.eligible > now:
                skipped.append(task)          # still backing off
                continue
            task.attempt += 1
            lease = Lease(f"L{next(self._ids)}", worker, task, now,
                          now + self.lease_ttl_s)
            self._leases[lease.lease_id] = lease
            self._lease_tid[lease.lease_id] = task.tid
            self._state[task.tid] = "leased"
            self.counters.granted += 1
            out.append(lease)
        self._pending.extendleft(reversed(skipped))
        return out

    # -- completion -----------------------------------------------------
    def complete(self, lease_id: str, now: float) -> tuple[str, Task | None]:
        """A worker reports success for ``lease_id``.

        Returns ``(disposition, task)``; the caller persists the results
        only for ``OK``/``LATE`` dispositions.
        """
        tid = self._lease_tid.get(lease_id)
        if tid is None:
            return UNKNOWN, None
        task = self._tasks[tid]
        state = self._state[tid]
        if state in ("done", "failed"):
            self.counters.duplicates += 1
            return DUPLICATE, None
        live = self._leases.pop(lease_id, None)
        if state == "leased" and live is None:
            # Our lease expired and the task was re-leased to someone
            # else; their in-flight lease is now moot — drop it when it
            # reports in (it will see state == done).
            pass
        self._state[tid] = "done"
        if live is None:
            self.counters.late += 1
            return LATE, task
        self.counters.completed += 1
        return OK, task

    def fail(self, lease_id: str, error: str,
             now: float) -> tuple[str, Task | None]:
        """A worker reports a (caught) execution failure."""
        tid = self._lease_tid.get(lease_id)
        if tid is None:
            return UNKNOWN, None
        task = self._tasks[tid]
        if self._state[tid] in ("done", "failed"):
            self.counters.duplicates += 1
            return DUPLICATE, None
        self._leases.pop(lease_id, None)
        self._failures[tid] = error
        return self._retry_or_fail(task, now)

    def _retry_or_fail(self, task: Task, now: float) -> tuple[str, Task]:
        if task.attempt >= self.retry.max_attempts:
            self._state[task.tid] = "failed"
            self.counters.failures += 1
            return FAILED, task
        task.eligible = now + self.retry.delay(task.attempt)
        self._state[task.tid] = "pending"
        self._pending.append(task)
        self.counters.requeues += 1
        return REQUEUED, task

    # -- expiry ---------------------------------------------------------
    def expire(self, now: float) -> list[tuple[str, Task]]:
        """Sweep overdue leases; each costs the task one attempt."""
        out = []
        for lease in [l for l in self._leases.values()
                      if l.deadline <= now]:
            del self._leases[lease.lease_id]
            self.counters.expiries += 1
            task = lease.task
            if self._state.get(task.tid) != "leased":
                continue                      # already done via late win
            self._failures[task.tid] = (
                f"lease {lease.lease_id} to {lease.worker} expired")
            out.append(self._retry_or_fail(task, now))
        return out

    def expire_worker(self, worker: str,
                      now: float) -> list[tuple[str, Task]]:
        """Force-expire every live lease held by ``worker`` — used when a
        supervisor *knows* the worker process died, so its tasks requeue
        immediately instead of waiting out the lease TTL."""
        for lease in [l for l in self._leases.values()
                      if l.worker == worker]:
            lease.deadline = now
        return self.expire(now)

    # -- introspection --------------------------------------------------
    def task_of(self, lease_id: str) -> Task | None:
        """The task a lease id refers to (None if never issued) — lets
        the coordinator validate a completion payload *before* settling
        the task."""
        tid = self._lease_tid.get(lease_id)
        return self._tasks[tid] if tid is not None else None

    def error_of(self, tid: str) -> str:
        return self._failures.get(tid, "")

    def counts(self) -> dict[str, int]:
        by = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
        for state in self._state.values():
            by[state] += 1
        return by

    def point_counts(self) -> dict[str, int]:
        """Like :meth:`counts`, but in points (a replica-batch task of R
        seeds is R points) — the unit campaign progress is measured in."""
        by = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
        for tid, state in self._state.items():
            by[state] += len(self._tasks[tid].items)
        return by

    def next_eligible(self) -> float | None:
        """Earliest backoff deadline among pending tasks (None if any
        task is immediately leasable or the queue is empty)."""
        times = [t.eligible for t in self._pending
                 if self._state.get(t.tid) == "pending"]
        if not times:
            return None
        soonest = min(times)
        return soonest if soonest > 0 else None

    @property
    def drained(self) -> bool:
        return all(s in ("done", "failed") for s in self._state.values())

    def live_keys(self) -> set[str]:
        """Point keys currently out on a live lease."""
        return {key for lease in self._leases.values()
                for key in lease.task.keys}

    def __len__(self) -> int:
        return len(self._tasks)

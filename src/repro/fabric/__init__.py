"""Distributed campaign fabric: coordinator, leased work queue, pull
workers, and an HTTP results service.

The campaign subsystem made every sweep point content-addressed,
cached, and resumable; replica batching made the unit of execution a
deterministic task (one point or one lock-step seed batch).  This
package adds the network layer that lets those tasks run *anywhere*:

* :mod:`~repro.fabric.queue` — the leased work queue (at-least-once
  execution, idempotent completion, retry/backoff on expiry);
* :mod:`~repro.fabric.coordinator` — one asyncio HTTP server exposing
  the work-queue API to pulling workers and a read-side results
  service (status/ETA, cached results, Prometheus metrics, the perf
  trend history) to many concurrent readers;
* :mod:`~repro.fabric.worker` — the pull loop, executing leases
  through the unchanged ``execute_point``/``execute_group`` datapath;
* :mod:`~repro.fabric.executor` — :class:`FabricExecutor`, the
  drop-in coordinator/worker counterpart of the local
  :class:`~repro.campaign.executor.CampaignExecutor`, and
  :class:`FabricSession` for long-lived ``serve`` sessions.

Loopback fabric runs are bit-identical to the local executor (same
datapath, same JSON round-trip the cache already imposes) — proven
differentially in ``tests/integration/test_fabric_loopback.py`` and
gated in CI.
"""

from __future__ import annotations

from repro.fabric.executor import FabricExecutor, FabricSession
from repro.fabric.queue import LeaseQueue, Task
from repro.fabric.worker import FabricWorker

__all__ = ["FabricExecutor", "FabricSession", "FabricWorker",
           "LeaseQueue", "Task"]

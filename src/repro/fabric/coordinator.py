"""The fabric coordinator: work-queue API plus read-side results service.

One asyncio HTTP server (one background thread) exposes two faces:

* the **work-queue API** workers pull from —

  - ``POST /lease``     ``{worker, max_tasks}`` → granted leases (each a
    task: one point or one replica batch, plus its config), or
    ``idle``/``shutdown``;
  - ``POST /complete``  ``{lease_id, worker, ok, results|error,
    artifacts}`` → a disposition (``ok``/``late``/``duplicate``/
    ``requeued``/``failed``/``unknown``); completions are idempotent —
    see :mod:`repro.fabric.queue` for the invariants;

* the **results service** many concurrent readers can hit while a
  campaign runs —

  - ``GET /status``       counts, ETA, per-worker throughput;
  - ``GET /result/<key>`` one cached/collected result by content address;
  - ``GET /metrics``      the fabric's own metrics in the Prometheus text
    format (rendered by the existing obs exporter);
  - ``GET /perf/trend``   the ``results/perf/history.jsonl`` trajectory;
  - ``GET /healthz``      liveness probe.

The coordinator persists through the *existing* campaign plumbing: every
accepted completion goes into the content-addressed
:class:`~repro.campaign.cache.RunCache` and the campaign
:class:`~repro.campaign.store.CampaignStore` exactly as a local executor
run would, so ``campaign status``, resume, and cache hits all keep
working unchanged.  Worker-side metrics artifacts ride back in the
completion payload and land under the coordinator's
``results/metrics/``.
"""

from __future__ import annotations

import os
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.campaign import cache as cache_mod
from repro.campaign.executor import RetryPolicy
from repro.campaign.worker import failed_result
from repro.fabric import protocol, queue as queue_mod
from repro.fabric.httpd import HttpError, JsonHttpServer

#: sliding window (seconds) over which throughput/ETA are measured
RATE_WINDOW_S = 60.0


@dataclass
class _WorkerStats:
    granted: int = 0
    points: int = 0
    failures: int = 0
    first_seen: float = 0.0
    last_seen: float = 0.0
    window: deque = field(default_factory=deque)  # (t, n_points)

    def rate(self, now: float) -> float:
        while self.window and self.window[0][0] < now - RATE_WINDOW_S:
            self.window.popleft()
        if not self.window:
            return 0.0
        span = max(now - self.window[0][0], 1e-9)
        return sum(n for _, n in self.window) / span

    def to_json(self, now: float) -> dict:
        return {
            "leases": self.granted,
            "points": self.points,
            "failures": self.failures,
            "points_per_s": round(self.rate(now), 4),
            "last_seen_s_ago": round(now - self.last_seen, 3),
        }


class Coordinator:
    """Serves tasks to pulling workers and collects their results.

    Thread model: HTTP handlers run on the server thread, ``submit``/
    ``collect``/``tick`` on the caller's; one re-entrant lock guards the
    queue, the results map and the worker stats.  Handlers only do queue
    bookkeeping and small sqlite/cache writes, so holding the lock
    across a handler is microseconds.
    """

    def __init__(self, cache=None, retry: RetryPolicy | None = None,
                 lease_ttl_s: float = 60.0, campaign: str | None = None):
        self.cache = cache
        self.retry = retry or RetryPolicy()
        self.queue = queue_mod.LeaseQueue(self.retry, lease_ttl_s)
        self.campaign = campaign
        self.state = protocol.STATE_OK       # flips to shutdown at close
        self.results: dict[str, object] = {}  # key -> RunResult
        self.started = time.monotonic()
        self._lock = threading.RLock()
        self._workers: dict[str, _WorkerStats] = {}
        self._dismissed: set[str] = set()    # saw the shutdown state
        self._window: deque = deque()        # (t, n_points) completions
        self._server: JsonHttpServer | None = None
        self._registry = None

    # -- lifecycle ------------------------------------------------------
    def start(self, host: str = "127.0.0.1", port: int = 0) -> str:
        self._server = JsonHttpServer(self.handle, host, port)
        return self._server.start()

    @property
    def url(self) -> str:
        if self._server is None:
            raise RuntimeError("coordinator not started")
        return self._server.url

    def shutdown(self) -> None:
        """Tell pulling workers to exit; keep serving until stopped."""
        self.state = protocol.STATE_SHUTDOWN

    def stop(self) -> None:
        self.shutdown()
        if self._server is not None:
            self._server.stop()

    # -- feeding (caller thread) ---------------------------------------
    def submit(self, grouped_items: list[list], cfg, store=None) -> None:
        """Queue tasks: ``grouped_items`` is a list of item lists, each
        ``[(key, Point), ...]`` — singletons or replica groups, exactly
        as :func:`repro.campaign.executor.group_tasks` produces them."""
        cfg_json = protocol.cfg_to_json(cfg)
        with self._lock:
            for items in grouped_items:
                self.queue.add(queue_mod.Task(
                    tid=items[0][0], items=list(items), cfg_json=cfg_json,
                    context={"store": store, "cfg": cfg}))

    def seed_results(self, results: dict) -> None:
        """Pre-fill results resolved before serving (cache hits), so the
        read-side can answer for them too."""
        with self._lock:
            self.results.update(results)

    def tick(self) -> None:
        """Expire overdue leases (also done lazily on every lease)."""
        now = time.monotonic()
        with self._lock:
            for disposition, task in self.queue.expire(now):
                self._settle_failure(task, disposition)

    def expire_dead_worker(self, worker: str) -> None:
        """A supervisor saw ``worker``'s process die: charge and requeue
        its live leases immediately instead of waiting out the TTL."""
        now = time.monotonic()
        with self._lock:
            for disposition, task in self.queue.expire_worker(worker, now):
                self._settle_failure(task, disposition)

    def workers_pending_dismissal(self, exclude=(),
                                  window_s: float = 10.0) -> list[str]:
        """Workers active within ``window_s`` that have not yet seen the
        shutdown state — a closing ``serve`` session lingers until this
        empties so remote pullers exit promptly instead of burning their
        connection-retry budget against a vanished server."""
        now = time.monotonic()
        with self._lock:
            return [w for w, s in self._workers.items()
                    if w not in exclude and w not in self._dismissed
                    and now - s.last_seen <= window_s]

    def live_lease_keys(self) -> set[str]:
        with self._lock:
            return self.queue.live_keys()

    def release_leases(self) -> None:
        """On shutdown: anything still out on a lease goes back to
        ``pending`` in its store, so the next run resumes it instead of
        treating it as running forever."""
        with self._lock:
            for lease in list(self.queue._leases.values()):
                self._mark(lease.task, "pending")

    def resolved(self, keys: list[str]) -> bool:
        with self._lock:
            return all(k in self.results for k in keys)

    def collect(self, keys: list[str]) -> dict:
        with self._lock:
            return {k: self.results[k] for k in keys if k in self.results}

    # -- HTTP dispatch (server thread) ----------------------------------
    def handle(self, method: str, path: str, body):
        if path == "/healthz":
            return {"ok": True, "state": self.state,
                    "version": protocol.PROTOCOL_VERSION}
        if path == "/lease" and method == "POST":
            return self._h_lease(body or {})
        if path == "/complete" and method == "POST":
            return self._h_complete(body or {})
        if path == "/status":
            return self.status()
        if path.startswith("/result/"):
            return self._h_result(path[len("/result/"):])
        if path == "/metrics":
            return self._h_metrics()
        if path == "/perf/trend":
            return self._h_trend()
        raise HttpError(404, f"no such endpoint: {method} {path}")

    # -- work-queue API -------------------------------------------------
    def _h_lease(self, body: dict) -> dict:
        version = body.get("version", 0)
        if version != protocol.PROTOCOL_VERSION:
            raise HttpError(
                409, f"protocol version mismatch: coordinator speaks "
                f"{protocol.PROTOCOL_VERSION}, worker sent {version}")
        worker = str(body.get("worker") or "anonymous")
        max_tasks = max(1, int(body.get("max_tasks", 1)))
        now = time.monotonic()
        with self._lock:
            if self.state == protocol.STATE_SHUTDOWN:
                self._dismissed.add(worker)
                return {"state": protocol.STATE_SHUTDOWN}
            for disposition, task in self.queue.expire(now):
                self._settle_failure(task, disposition)
            leases = self.queue.lease(worker, now, max_tasks)
            stats = self._worker(worker, now)
            stats.granted += len(leases)
            for lease in leases:
                self._mark(lease.task, "running")
            if not leases:
                return {"state": protocol.STATE_IDLE,
                        "drained": self.queue.drained}
            return {"state": protocol.STATE_OK,
                    "leases": [protocol.lease_to_json(l) for l in leases]}

    def _h_complete(self, body: dict) -> dict:
        lease_id = body.get("lease_id")
        worker = str(body.get("worker") or "anonymous")
        if not lease_id:
            raise HttpError(400, "completion without a lease_id")
        now = time.monotonic()
        with self._lock:
            stats = self._worker(worker, now)
            if body.get("ok"):
                results = body.get("results") or []
                expected = self.queue.task_of(lease_id)
                if expected is not None and \
                        len(results) != len(expected.items):
                    # Malformed payload: charge a failed attempt (checked
                    # *before* settling, so the task retries, not wedges
                    # as done-with-no-results).
                    disposition, task = self.queue.fail(
                        lease_id, f"completion carried {len(results)} "
                        f"results for {len(expected.items)} points", now)
                    if task is not None:
                        self._settle_failure(task, disposition)
                    return {"disposition": disposition}
                disposition, task = self.queue.complete(lease_id, now)
                if task is not None:
                    artifacts = self._store_artifacts(
                        body.get("artifacts") or [])
                    self._settle_ok(task, results, artifacts)
                    stats.points += len(task.items)
                    stats.window.append((now, len(task.items)))
                    self._window.append((now, len(task.items)))
            else:
                error = str(body.get("error") or "worker reported failure")
                disposition, task = self.queue.fail(lease_id, error, now)
                stats.failures += 1
                if task is not None:
                    self._settle_failure(task, disposition)
            return {"disposition": disposition}

    # -- settlement (lock held) ----------------------------------------
    def _settle_ok(self, task, results_json: list,
                   artifacts: dict) -> None:
        cfg = task.context["cfg"] if task.context else None
        store = task.context["store"] if task.context else None
        for (key, point), res_json in zip(task.items, results_json):
            res = cache_mod.result_from_json(res_json)
            metrics = res.extra.get("metrics")
            if isinstance(metrics, dict) and \
                    metrics.get("path") in artifacts:
                metrics["path"] = artifacts[metrics["path"]]
            if self.cache is not None and cfg is not None:
                self.cache.put(key, point, cfg, res)
            if store is not None:
                store.mark(key, "done")
            self.results[key] = res

    def _settle_failure(self, task, disposition: str) -> None:
        if disposition == queue_mod.REQUEUED:
            self._mark(task, "pending")
            return
        if disposition == queue_mod.FAILED:
            error = self.queue.error_of(task.tid)
            store = task.context["store"] if task.context else None
            for key, point in task.items:
                if store is not None:
                    store.mark(key, "failed", error=error,
                               attempts=task.attempt)
                self.results[key] = failed_result(point, error)

    def _mark(self, task, status: str) -> None:
        store = task.context["store"] if task.context else None
        if store is not None:
            store.mark_many(task.keys, status)

    def _worker(self, worker: str, now: float) -> _WorkerStats:
        stats = self._workers.get(worker)
        if stats is None:
            stats = self._workers[worker] = _WorkerStats(first_seen=now)
        stats.last_seen = now
        return stats

    def _store_artifacts(self, artifacts: list) -> dict:
        """Write worker-shipped metrics artifacts under the coordinator's
        ``results/metrics/``; returns worker path -> coordinator path."""
        from repro.obs.exporters import metrics_dir
        mapping: dict[str, str] = {}
        if not artifacts:
            return mapping
        out = metrics_dir()
        out.mkdir(parents=True, exist_ok=True)
        for art in artifacts:
            name = re.sub(r"[^A-Za-z0-9._-]+", "-",
                          os.path.basename(str(art.get("name", "artifact"))))
            path = out / name
            n = 1
            while path.exists():
                path = out / f"{n}_{name}"
                n += 1
            path.write_text(art.get("text", ""))
            mapping[str(art.get("name"))] = str(path)
        return mapping

    # -- read side ------------------------------------------------------
    def status(self) -> dict:
        now = time.monotonic()
        with self._lock:
            counts = self.queue.point_counts()
            counts["collected"] = len(self.results)
            while self._window and \
                    self._window[0][0] < now - RATE_WINDOW_S:
                self._window.popleft()
            rate = 0.0
            if self._window:
                span = max(now - self._window[0][0], 1e-9)
                rate = sum(n for _, n in self._window) / span
            remaining = counts["pending"] + counts["leased"]
            eta = remaining / rate if remaining and rate > 0 else \
                (0.0 if not remaining else None)
            return {
                "campaign": self.campaign,
                "state": self.state,
                "drained": self.queue.drained,
                "elapsed_s": round(now - self.started, 3),
                "counts": counts,
                "points_per_s": round(rate, 4),
                "eta_s": None if eta is None else round(eta, 1),
                "queue": self.queue.counters.to_json(),
                "workers": {w: s.to_json(now)
                            for w, s in self._workers.items()},
            }

    def _h_result(self, key: str) -> dict:
        if not re.fullmatch(r"[0-9a-f]{8,64}", key):
            raise HttpError(400, f"malformed result key {key!r}")
        with self._lock:
            res = self.results.get(key)
        if res is None and self.cache is not None:
            res = self.cache.get(key)
        if res is None:
            raise HttpError(404, f"no result for key {key}")
        return {"key": key, "result": cache_mod.result_to_json(res)}

    def _h_metrics(self):
        from repro.obs.exporters import to_prometheus
        return to_prometheus(self._metrics_registry()), \
            "text/plain; version=0.0.4"

    def _metrics_registry(self):
        if self._registry is None:
            from repro.obs.registry import MetricsRegistry
            reg = MetricsRegistry()
            counters = self.queue.counters
            for name, help_ in [
                    ("granted", "leases granted to workers"),
                    ("completed", "first-completion settlements"),
                    ("late", "late completions accepted"),
                    ("duplicates", "duplicate completions discarded"),
                    ("expiries", "leases expired past their deadline"),
                    ("requeues", "tasks re-queued for retry"),
                    ("failures", "tasks failed permanently")]:
                reg.gauge(f"fabric_{name}_total", help_,
                          lambda n=name: getattr(counters, n))
            reg.multi_gauge("fabric_points", "points by lifecycle state",
                            "state",
                            lambda: sorted(
                                self.queue.point_counts().items()))
            reg.gauge("fabric_workers", "workers ever seen",
                      lambda: len(self._workers))
            reg.gauge("fabric_points_per_s",
                      "aggregate completion rate over the rate window",
                      lambda: self.status()["points_per_s"])
            self._registry = reg
        return self._registry

    def _h_trend(self) -> dict:
        from repro.experiments import perf
        return {"history": str(perf.history_path()),
                "entries": perf.load_history()}

"""The fabric coordinator: work-queue API plus read-side results service.

One asyncio HTTP server (one background thread) exposes two faces:

* the **work-queue API** workers pull from —

  - ``POST /lease``     ``{worker, max_tasks}`` → granted leases (each a
    task: one point or one replica batch, plus its config), or
    ``idle``/``shutdown``;
  - ``POST /complete``  ``{lease_id, worker, ok, results|error,
    artifacts}`` → a disposition (``ok``/``late``/``duplicate``/
    ``requeued``/``failed``/``unknown``); completions are idempotent —
    see :mod:`repro.fabric.queue` for the invariants;

* the **results service** many concurrent readers can hit while a
  campaign runs —

  - ``GET /status``       counts, ETA, per-worker throughput;
  - ``GET /result/<key>`` one cached/collected result by content address;
  - ``GET /metrics``      the fabric's own metrics in the Prometheus text
    format (rendered by the existing obs exporter);
  - ``GET /perf/trend``   the ``results/perf/history.jsonl`` trajectory;
  - ``GET /healthz``      liveness probe.

The coordinator persists through the *existing* campaign plumbing: every
accepted completion goes into the content-addressed
:class:`~repro.campaign.cache.RunCache` and the campaign
:class:`~repro.campaign.store.CampaignStore` exactly as a local executor
run would, so ``campaign status``, resume, and cache hits all keep
working unchanged.  Worker-side metrics artifacts ride back in the
completion payload and land under the coordinator's
``results/metrics/``.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.campaign import cache as cache_mod
from repro.campaign.executor import RetryPolicy
from repro.campaign.worker import failed_result
from repro.fabric import protocol, queue as queue_mod
from repro.fabric.httpd import HttpError, JsonHttpServer

#: sliding window (seconds) over which throughput/ETA are measured
RATE_WINDOW_S = 60.0


@dataclass
class _WorkerStats:
    granted: int = 0
    points: int = 0
    failures: int = 0
    first_seen: float = 0.0
    last_seen: float = 0.0
    window: deque = field(default_factory=deque)  # (t, n_points)

    def rate(self, now: float) -> float:
        while self.window and self.window[0][0] < now - RATE_WINDOW_S:
            self.window.popleft()
        if not self.window:
            return 0.0
        span = max(now - self.window[0][0], 1e-9)
        return sum(n for _, n in self.window) / span

    def to_json(self, now: float) -> dict:
        return {
            "leases": self.granted,
            "points": self.points,
            "failures": self.failures,
            "points_per_s": round(self.rate(now), 4),
            "last_seen_s_ago": round(now - self.last_seen, 3),
        }


class Coordinator:
    """Serves tasks to pulling workers and collects their results.

    Thread model: HTTP handlers run on the server thread, ``submit``/
    ``collect``/``tick`` on the caller's; one re-entrant lock guards the
    queue, the results map and the worker stats.  Handlers only do queue
    bookkeeping and small sqlite/cache writes, so holding the lock
    across a handler is microseconds.
    """

    def __init__(self, cache=None, retry: RetryPolicy | None = None,
                 lease_ttl_s: float = 60.0, campaign: str | None = None,
                 redundancy: float = 0.0, redundancy_seed: int = 0):
        self.cache = cache
        self.retry = retry or RetryPolicy()
        self.queue = queue_mod.LeaseQueue(self.retry, lease_ttl_s)
        self.campaign = campaign
        self.redundancy = redundancy         # sampled fraction run twice
        self.redundancy_seed = redundancy_seed
        self.state = protocol.STATE_OK       # flips to shutdown at close
        self.results: dict[str, object] = {}  # key -> RunResult
        self.quarantined = 0                 # redundancy mismatches seen
        self.quarantine_events: deque = deque(maxlen=50)
        self.started = time.monotonic()
        self._lock = threading.RLock()
        self._workers: dict[str, _WorkerStats] = {}
        self._dismissed: set[str] = set()    # saw the shutdown state
        self._window: deque = deque()        # (t, n_points) completions
        self._nmr: dict[str, list[dict]] = {}  # tid -> candidate payloads
        self._chaos: dict[str, dict] = {}    # worker -> injections by kind
        self._journaled: dict[int, object] = {}  # stores with journal rows
        self._server: JsonHttpServer | None = None
        self._registry = None

    # -- lifecycle ------------------------------------------------------
    def start(self, host: str = "127.0.0.1", port: int = 0) -> str:
        self._server = JsonHttpServer(self.handle, host, port)
        return self._server.start()

    @property
    def url(self) -> str:
        if self._server is None:
            raise RuntimeError("coordinator not started")
        return self._server.url

    def shutdown(self) -> None:
        """Tell pulling workers to exit; keep serving until stopped."""
        self.state = protocol.STATE_SHUTDOWN

    def stop(self) -> None:
        self.shutdown()
        if self._server is not None:
            self._server.stop()

    # -- feeding (caller thread) ---------------------------------------
    def submit(self, grouped_items: list[list], cfg, store=None) -> None:
        """Queue tasks: ``grouped_items`` is a list of item lists, each
        ``[(key, Point), ...]`` — singletons or replica groups, exactly
        as :func:`repro.campaign.executor.group_tasks` produces them."""
        cfg_json = protocol.cfg_to_json(cfg)
        with self._lock:
            for items in grouped_items:
                tid = items[0][0]
                self.queue.add(queue_mod.Task(
                    tid=tid, items=list(items), cfg_json=cfg_json,
                    context={"store": store, "cfg": cfg},
                    redundancy=2 if self._sampled_redundant(tid) else 1))

    def _sampled_redundant(self, tid: str) -> bool:
        """Deterministic per-task draw for N-modular redundancy: the
        same (task, seed) pair always lands on the same side, so a
        resumed campaign re-selects exactly the same double-run set."""
        if self.redundancy <= 0:
            return False
        if self.redundancy >= 1:
            return True
        h = int(hashlib.sha256(
            f"{tid}|{self.redundancy_seed}".encode()).hexdigest()[:8], 16)
        return h / 0xFFFFFFFF < self.redundancy

    def seed_results(self, results: dict) -> None:
        """Pre-fill results resolved before serving (cache hits), so the
        read-side can answer for them too."""
        with self._lock:
            self.results.update(results)

    def tick(self) -> None:
        """Expire overdue leases (also done lazily on every lease)."""
        now = time.monotonic()
        with self._lock:
            for disposition, task in self.queue.expire(now):
                self._settle_failure(task, disposition)
            self._journal(now)

    def expire_dead_worker(self, worker: str) -> None:
        """A supervisor saw ``worker``'s process die: charge and requeue
        its live leases immediately instead of waiting out the TTL."""
        now = time.monotonic()
        with self._lock:
            for disposition, task in self.queue.expire_worker(worker, now):
                self._settle_failure(task, disposition)

    def workers_pending_dismissal(self, exclude=(),
                                  window_s: float = 10.0) -> list[str]:
        """Workers active within ``window_s`` that have not yet seen the
        shutdown state — a closing ``serve`` session lingers until this
        empties so remote pullers exit promptly instead of burning their
        connection-retry budget against a vanished server."""
        now = time.monotonic()
        with self._lock:
            return [w for w, s in self._workers.items()
                    if w not in exclude and w not in self._dismissed
                    and now - s.last_seen <= window_s]

    def live_lease_keys(self) -> set[str]:
        with self._lock:
            return self.queue.live_keys()

    def release_leases(self) -> None:
        """On *graceful* shutdown: anything still out on a lease goes
        back to ``pending`` in its store, so the next run resumes it
        instead of treating it as running forever.  The lease journal is
        emptied too — resumption must not re-adopt claims the shutdown
        just released.  (A crash skips this method, which is exactly why
        the journal survives for ``--resume`` to adopt.)"""
        with self._lock:
            for lease in list(self.queue._leases.values()):
                self._mark(lease.task, "pending")
                del self.queue._leases[lease.lease_id]
            self._journal(time.monotonic())

    # -- crash safety (lease journal) ----------------------------------
    def _journal(self, now: float) -> None:
        """Mirror the live leases into their campaign stores (lock
        held).  Called after every transition that changes the lease
        set, so the on-disk journal is never more than one HTTP round
        behind the queue — the coordinator can die at any instant and
        ``--resume`` reconstructs exactly the outstanding claims."""
        by_store: dict[int, tuple[object, list]] = {}
        for lease in self.queue.live_leases():
            ctx = lease.task.context
            store = ctx.get("store") if isinstance(ctx, dict) else None
            if store is None:
                continue
            _, rows = by_store.setdefault(id(store), (store, []))
            rows.append({
                "lease_id": lease.lease_id,
                "worker": lease.worker,
                "keys": lease.task.keys,
                "attempt": lease.task.attempt,
                "redundancy": lease.task.redundancy,
                "ttl_s": max(lease.deadline - now, 0.0),
            })
        for sid, (store, rows) in by_store.items():
            store.sync_leases(rows)
            self._journaled[sid] = store
        # stores whose last lease just closed get one empty sync
        for sid in [s for s in self._journaled if s not in by_store]:
            self._journaled.pop(sid).sync_leases([])

    def adopt_leases(self, store, cfg) -> set[str]:
        """Reconstruct outstanding leases from ``store``'s journal after
        a coordinator restart; returns the point keys adopted.

        Rows that no longer make sense — points missing from the store,
        already done/failed, a task id that is already queued here, or a
        lease id already known — are silently dropped: the points they
        covered simply re-enter the queue as fresh work, which is always
        safe (idempotent completion absorbs the worst case of the old
        worker still finishing).
        """
        cfg_json = protocol.cfg_to_json(cfg)
        now = time.monotonic()
        adopted: set[str] = set()
        adopted_tids: set[str] = set()
        rows = store.outstanding_leases()
        with self._lock:
            for row in rows:
                keys = list(row["keys"])
                if not keys:
                    continue
                tid = keys[0]
                if row["lease_id"] in self.queue._lease_tid:
                    continue
                if tid in self.queue._tasks and tid not in adopted_tids:
                    continue          # queued as fresh work already
                known = store.points_by_key(keys)
                if len(known) != len(keys) or any(
                        status in ("done", "failed")
                        for _, status in known.values()):
                    continue
                task = queue_mod.Task(
                    tid=tid, items=[(k, known[k][0]) for k in keys],
                    cfg_json=cfg_json,
                    context={"store": store, "cfg": cfg},
                    attempt=int(row["attempt"]),
                    redundancy=max(int(row.get("redundancy", 1)), 1))
                self.queue.adopt(task, row["lease_id"], row["worker"],
                                 now)
                adopted_tids.add(tid)
                store.mark_many(keys, "running")
                adopted.update(keys)
            self._journal(now)
        return adopted

    def resolved(self, keys: list[str]) -> bool:
        with self._lock:
            return all(k in self.results for k in keys)

    def collect(self, keys: list[str]) -> dict:
        with self._lock:
            return {k: self.results[k] for k in keys if k in self.results}

    # -- HTTP dispatch (server thread) ----------------------------------
    def handle(self, method: str, path: str, body):
        if path == "/healthz":
            return {"ok": True, "state": self.state,
                    "version": protocol.PROTOCOL_VERSION}
        if path == "/lease" and method == "POST":
            return self._h_lease(body or {})
        if path == "/complete" and method == "POST":
            return self._h_complete(body or {})
        if path == "/status":
            return self.status()
        if path.startswith("/result/"):
            return self._h_result(path[len("/result/"):])
        if path == "/metrics":
            return self._h_metrics()
        if path == "/perf/trend":
            return self._h_trend()
        raise HttpError(404, f"no such endpoint: {method} {path}")

    # -- work-queue API -------------------------------------------------
    def _h_lease(self, body: dict) -> dict:
        version = body.get("version", 0)
        if version != protocol.PROTOCOL_VERSION:
            raise HttpError(
                409, f"protocol version mismatch: coordinator speaks "
                f"{protocol.PROTOCOL_VERSION}, worker sent {version}")
        worker = str(body.get("worker") or "anonymous")
        max_tasks = max(1, int(body.get("max_tasks", 1)))
        now = time.monotonic()
        with self._lock:
            chaos = body.get("chaos")
            if isinstance(chaos, dict):   # worker ships injection totals
                self._chaos[worker] = {str(k): int(v)
                                       for k, v in chaos.items()}
            if self.state == protocol.STATE_SHUTDOWN:
                self._dismissed.add(worker)
                return {"state": protocol.STATE_SHUTDOWN}
            for disposition, task in self.queue.expire(now):
                self._settle_failure(task, disposition)
            stats = self._worker(worker, now)
            # A redundant task's sibling grant is withheld from a worker
            # already running it — unless this worker is the only one
            # around, where liveness beats the (then pointless) check.
            allow_self = len([w for w, s in self._workers.items()
                              if now - s.last_seen <= 10.0]) <= 1
            leases = self.queue.lease(worker, now, max_tasks,
                                      allow_self=allow_self)
            stats.granted += len(leases)
            for lease in leases:
                self._mark(lease.task, "running")
            self._journal(now)
            if not leases:
                return {"state": protocol.STATE_IDLE,
                        "drained": self.queue.drained}
            return {"state": protocol.STATE_OK,
                    "leases": [protocol.lease_to_json(l) for l in leases]}

    def _h_complete(self, body: dict) -> dict:
        lease_id = body.get("lease_id")
        worker = str(body.get("worker") or "anonymous")
        if not lease_id:
            raise HttpError(400, "completion without a lease_id")
        now = time.monotonic()
        with self._lock:
            stats = self._worker(worker, now)
            if body.get("ok"):
                results = body.get("results") or []
                expected = self.queue.task_of(lease_id)
                if expected is not None and \
                        len(results) != len(expected.items):
                    # Malformed payload: charge a failed attempt (checked
                    # *before* settling, so the task retries, not wedges
                    # as done-with-no-results).
                    disposition, task = self.queue.fail(
                        lease_id, f"completion carried {len(results)} "
                        f"results for {len(expected.items)} points", now)
                    if task is not None:
                        self._settle_failure(task, disposition)
                    return {"disposition": disposition}
                disposition, task = self.queue.complete(lease_id, now)
                if disposition in (queue_mod.OK, queue_mod.LATE) \
                        and task is not None:
                    artifacts = self._store_artifacts(
                        body.get("artifacts") or [])
                    self._settle_ok(task, results, artifacts)
                    stats.points += len(task.items)
                    stats.window.append((now, len(task.items)))
                    self._window.append((now, len(task.items)))
                elif disposition in (queue_mod.PARTIAL, queue_mod.VERIFY) \
                        and task is not None:
                    self._nmr.setdefault(task.tid, []).append({
                        "worker": worker, "results": results,
                        "artifacts": body.get("artifacts") or []})
                    if disposition == queue_mod.VERIFY:
                        disposition = self._verify(task, now)
            else:
                error = str(body.get("error") or "worker reported failure")
                disposition, task = self.queue.fail(lease_id, error, now)
                stats.failures += 1
                if task is not None:
                    self._settle_failure(task, disposition)
            self._journal(now)
            return {"disposition": disposition}

    def _verify(self, task, now: float) -> str:
        """Cross-check a redundant task's candidate payloads (lock
        held).  Unanimity or a majority settles the task with the
        winning payload; a tie quarantines it and demands a tie-break
        replay — or fails it once the widened budget is spent."""
        from repro.chaos import quarantine as quarantine_mod
        candidates = self._nmr.get(task.tid, [])
        groups: dict[str, list[dict]] = {}
        for cand in candidates:
            # Vote on the result payload only: engine attribution is
            # metadata, and two honest workers may legitimately run the
            # same point under different engines (results are
            # engine-invariant by contract).
            votable = [{k: v for k, v in r.items() if k != "engine_used"}
                       if isinstance(r, dict) else r
                       for r in cand["results"]]
            blob = json.dumps(votable, sort_keys=True)
            groups.setdefault(blob, []).append(cand)
        ranked = sorted(groups.values(), key=len, reverse=True)
        if len(ranked) == 1 or len(ranked[0]) >= 2:
            winner = ranked[0][0]
            if len(ranked) > 1:
                # majority found after a mismatch: name the liars
                liars = sorted({c["worker"] for grp in ranked[1:]
                                for c in grp})
                self._record_quarantine(
                    task, candidates, quarantine_mod.VERDICT_MAJORITY,
                    liars)
            self.queue.settle(task.tid)
            self._settle_ok(task, winner["results"],
                            self._store_artifacts(winner["artifacts"]))
            stats = self._worker(winner["worker"], now)
            stats.points += len(task.items)
            stats.window.append((now, len(task.items)))
            self._window.append((now, len(task.items)))
            del self._nmr[task.tid]
            return queue_mod.OK
        # Every candidate distinct: quarantine and replay for majority.
        self.quarantined += 1
        self._record_quarantine(task, candidates,
                                quarantine_mod.VERDICT_MISMATCH, [])
        disposition, _ = self.queue.reopen(task.tid, now)
        if disposition == queue_mod.FAILED:
            self._record_quarantine(task, candidates,
                                    quarantine_mod.VERDICT_EXHAUSTED, [])
            self.queue.note_error(
                task.tid, "redundant executions disagreed and the retry "
                "budget is spent (see results/quarantine/)")
            self._settle_failure(task, queue_mod.FAILED)
            del self._nmr[task.tid]
            return queue_mod.FAILED
        self._mark(task, "pending")
        return "quarantined"

    def _record_quarantine(self, task, candidates: list[dict],
                           verdict: str, liars: list[str]) -> None:
        from repro.chaos import quarantine as quarantine_mod
        payload = quarantine_mod.quarantine_payload(
            task, candidates, verdict, liars=liars,
            need=self.queue._need.get(task.tid, task.redundancy))
        try:
            path = str(quarantine_mod.write_quarantine(payload))
        except OSError:
            path = None                     # diagnostics must not wedge
        self.quarantine_events.append({
            "task": task.tid, "verdict": verdict, "liars": liars,
            "workers": sorted({c["worker"] for c in candidates}),
            "path": path})

    # -- settlement (lock held) ----------------------------------------
    def _settle_ok(self, task, results_json: list,
                   artifacts: dict) -> None:
        cfg = task.context["cfg"] if task.context else None
        store = task.context["store"] if task.context else None
        for (key, point), res_json in zip(task.items, results_json):
            res = cache_mod.result_from_json(res_json)
            metrics = res.extra.get("metrics")
            if isinstance(metrics, dict) and \
                    metrics.get("path") in artifacts:
                metrics["path"] = artifacts[metrics["path"]]
            if self.cache is not None and cfg is not None:
                self.cache.put(key, point, cfg, res)
            if store is not None:
                store.mark(key, "done")
            self.results[key] = res

    def _settle_failure(self, task, disposition: str) -> None:
        if disposition == queue_mod.REQUEUED:
            self._mark(task, "pending")
            return
        if disposition == queue_mod.FAILED:
            error = self.queue.error_of(task.tid)
            store = task.context["store"] if task.context else None
            for key, point in task.items:
                if store is not None:
                    store.mark(key, "failed", error=error,
                               attempts=task.attempt)
                self.results[key] = failed_result(point, error)

    def _mark(self, task, status: str) -> None:
        store = task.context["store"] if task.context else None
        if store is not None:
            store.mark_many(task.keys, status)

    def _worker(self, worker: str, now: float) -> _WorkerStats:
        stats = self._workers.get(worker)
        if stats is None:
            stats = self._workers[worker] = _WorkerStats(first_seen=now)
        stats.last_seen = now
        return stats

    def _store_artifacts(self, artifacts: list) -> dict:
        """Write worker-shipped metrics artifacts under the coordinator's
        ``results/metrics/``; returns worker path -> coordinator path."""
        from repro.obs.exporters import metrics_dir
        mapping: dict[str, str] = {}
        if not artifacts:
            return mapping
        out = metrics_dir()
        out.mkdir(parents=True, exist_ok=True)
        for art in artifacts:
            name = re.sub(r"[^A-Za-z0-9._-]+", "-",
                          os.path.basename(str(art.get("name", "artifact"))))
            path = out / name
            n = 1
            while path.exists():
                path = out / f"{n}_{name}"
                n += 1
            path.write_text(art.get("text", ""))
            mapping[str(art.get("name"))] = str(path)
        return mapping

    # -- read side ------------------------------------------------------
    def status(self) -> dict:
        now = time.monotonic()
        with self._lock:
            counts = self.queue.point_counts()
            counts["collected"] = len(self.results)
            while self._window and \
                    self._window[0][0] < now - RATE_WINDOW_S:
                self._window.popleft()
            rate = 0.0
            if self._window:
                span = max(now - self._window[0][0], 1e-9)
                rate = sum(n for _, n in self._window) / span
            remaining = counts["pending"] + counts["leased"]
            eta = remaining / rate if remaining and rate > 0 else \
                (0.0 if not remaining else None)
            return {
                "campaign": self.campaign,
                "state": self.state,
                "drained": self.queue.drained,
                "elapsed_s": round(now - self.started, 3),
                "counts": counts,
                "points_per_s": round(rate, 4),
                "eta_s": None if eta is None else round(eta, 1),
                "queue": self.queue.counters.to_json(),
                "workers": {w: s.to_json(now)
                            for w, s in self._workers.items()},
                "chaos": self._chaos_totals(),
                "quarantine": {
                    "total": self.quarantined,
                    "events": list(self.quarantine_events),
                },
            }

    def _chaos_totals(self) -> dict[str, int]:
        """Fault injections aggregated across workers, by kind (lock
        held) — non-empty only when workers run under a chaos plan."""
        totals: dict[str, int] = {}
        for counts in self._chaos.values():
            for kind, n in counts.items():
                totals[kind] = totals.get(kind, 0) + n
        return {k: totals[k] for k in sorted(totals)}

    def _h_result(self, key: str) -> dict:
        if not re.fullmatch(r"[0-9a-f]{8,64}", key):
            raise HttpError(400, f"malformed result key {key!r}")
        with self._lock:
            res = self.results.get(key)
        if res is None and self.cache is not None:
            res = self.cache.get(key)
        if res is None:
            raise HttpError(404, f"no result for key {key}")
        return {"key": key, "result": cache_mod.result_to_json(res)}

    def _h_metrics(self):
        from repro.obs.exporters import to_prometheus
        return to_prometheus(self._metrics_registry()), \
            "text/plain; version=0.0.4"

    def _metrics_registry(self):
        if self._registry is None:
            from repro.obs.registry import MetricsRegistry
            reg = MetricsRegistry()
            counters = self.queue.counters
            for name, help_ in [
                    ("granted", "leases granted to workers"),
                    ("completed", "first-completion settlements"),
                    ("late", "late completions accepted"),
                    ("duplicates", "duplicate completions discarded"),
                    ("expiries", "leases expired past their deadline"),
                    ("requeues", "tasks re-queued for retry"),
                    ("failures", "tasks failed permanently"),
                    ("partials", "redundant completions awaiting "
                                 "their siblings"),
                    ("reopens", "tie-break replays after redundancy "
                                "mismatches")]:
                reg.gauge(f"fabric_{name}_total", help_,
                          lambda n=name: getattr(counters, n))
            reg.multi_gauge("fabric_points", "points by lifecycle state",
                            "state",
                            lambda: sorted(
                                self.queue.point_counts().items()))
            reg.gauge("fabric_workers", "workers ever seen",
                      lambda: len(self._workers))
            reg.gauge("fabric_quarantined_total",
                      "redundant-execution mismatches quarantined",
                      lambda: self.quarantined)
            reg.multi_gauge("fabric_chaos_injected_total",
                            "transport faults injected by the chaos "
                            "layer, as reported by workers", "kind",
                            lambda: list(self._chaos_totals().items()))
            reg.gauge("fabric_points_per_s",
                      "aggregate completion rate over the rate window",
                      lambda: self.status()["points_per_s"])
            self._registry = reg
        return self._registry

    def _h_trend(self) -> dict:
        from repro.experiments import perf
        return {"history": str(perf.history_path()),
                "entries": perf.load_history()}

"""Minimal asyncio HTTP layer for the fabric — stdlib only.

The coordinator needs exactly one thing from HTTP: many concurrent
clients (pulling workers plus read-side dashboards/scrapes) multiplexed
onto one thread without a dependency footprint.  ``asyncio.start_server``
plus ~80 lines of HTTP/1.1 framing gives us that; handlers are plain
synchronous functions (every fabric operation is sub-millisecond queue
bookkeeping), so the event loop is never starved.

The client side is ``urllib.request`` — workers are sequential by design
(lease, execute, report), so blocking I/O is the natural fit there.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
import traceback
import urllib.error
import urllib.request

#: request body ceiling — a completion payload for a 16-replica batch of
#: full RunResults is ~100 KB; 64 MB leaves room for metrics artifacts.
MAX_BODY = 64 * 1024 * 1024

#: end-to-end payload integrity: clients send a SHA-256 of the body in
#: this header and the server rejects any body that does not match with
#: a 400.  A bit flipped in flight (or by the chaos layer) can therefore
#: never settle a corrupted result — the worker just retries.
CHECKSUM_HEADER = "x-body-checksum"

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            500: "Internal Server Error"}


def body_checksum(body: bytes) -> str:
    return hashlib.sha256(body).hexdigest()


class HttpError(Exception):
    """Raise inside a handler to return a non-200 JSON error."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class JsonHttpServer:
    """One-thread asyncio HTTP server dispatching to a sync handler.

    ``handler(method, path, body) -> payload`` where ``body`` is the
    parsed JSON request body (or None) and ``payload`` is a JSON-able
    dict — or a ``(payload, content_type)`` pair for non-JSON responses
    (the Prometheus text format).
    """

    def __init__(self, handler, host: str = "127.0.0.1", port: int = 0):
        self.handler = handler
        self.host = host
        self.port = port              # 0 = ephemeral; fixed after start
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> str:
        """Serve on a background thread; returns the base URL."""
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="fabric-httpd")
        self._thread.start()
        self._started.wait(timeout=10)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._started.is_set():
            raise RuntimeError("fabric http server failed to start")
        return self.url

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5)

    def call_soon(self, fn, *args) -> None:
        """Schedule ``fn`` on the server loop (thread-safe)."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(fn, *args)

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            server = self._loop.run_until_complete(asyncio.start_server(
                self._serve_one, self.host, self.port))
        except BaseException as exc:  # port in use, bad host, ...
            self._startup_error = exc
            self._started.set()
            return
        self._server = server
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            server.close()
            self._loop.run_until_complete(server.wait_closed())
            self._loop.close()

    # -- one request ----------------------------------------------------
    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body, keep_alive, framing_error = request
                if framing_error is not None:
                    # A mangled request (truncated body, checksum
                    # mismatch, oversize) gets an explicit 400 so the
                    # sender can retry, instead of a silently dropped
                    # connection; the stream offset is unreliable after
                    # bad framing, so the connection always closes.
                    status, payload, ctype = 400, \
                        {"error": framing_error}, "application/json"
                    keep_alive = False
                else:
                    status, payload, ctype = \
                        self._dispatch(method, path, body)
                blob = payload if isinstance(payload, bytes) else \
                    payload.encode() if isinstance(payload, str) else \
                    json.dumps(payload).encode()
                head = (f"HTTP/1.1 {status} {_REASONS.get(status, '?')}\r\n"
                        f"Content-Type: {ctype}\r\n"
                        f"Content-Length: {len(blob)}\r\n"
                        f"Connection: {'keep-alive' if keep_alive else 'close'}"
                        "\r\n\r\n")
                writer.write(head.encode() + blob)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader):
        """One parsed request, or None when the connection is done.

        Returns ``(method, target, body, keep_alive, framing_error)``;
        a non-None ``framing_error`` means the request envelope itself
        was bad (truncated body, checksum mismatch, oversize) and the
        caller must answer 400 and close.
        """
        try:
            line = await reader.readline()
        except (ConnectionResetError, asyncio.LimitOverrunError):
            return None
        if not line.strip():
            return None
        try:
            method, target, version = line.decode().split()
        except ValueError:
            return None
        headers = {}
        while True:
            hline = await reader.readline()
            if hline in (b"\r\n", b"\n", b""):
                break
            name, _, value = hline.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "keep-alive").lower() \
            != "close" and version.upper() == "HTTP/1.1"
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY:
            return (method.upper(), target, b"", False,
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY}-byte ceiling")
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                # Content-Length promised more bytes than arrived: the
                # body was truncated in flight.  Reject explicitly so
                # the sender retries instead of the payload being
                # partially parsed (or the connection silently dying).
                return (method.upper(), target, b"", False,
                        f"truncated request body: Content-Length "
                        f"declared {length} bytes, got "
                        f"{len(exc.partial)}")
        declared = headers.get(CHECKSUM_HEADER)
        if declared is not None and declared != body_checksum(body):
            return (method.upper(), target, b"", False,
                    "request body failed its integrity checksum "
                    "(corrupted in flight)")
        return method.upper(), target, body, keep_alive, None

    def _dispatch(self, method: str, target: str, raw: bytes):
        path = target.split("?", 1)[0]
        body = None
        if raw:
            try:
                body = json.loads(raw)
            except json.JSONDecodeError:
                return 400, {"error": "request body is not valid JSON"}, \
                    "application/json"
        try:
            payload = self.handler(method, path, body)
        except HttpError as exc:
            return exc.status, {"error": str(exc)}, "application/json"
        except Exception:  # noqa: BLE001 - served as a 500, never fatal
            return 500, {"error": traceback.format_exc(limit=20)}, \
                "application/json"
        if isinstance(payload, tuple):
            payload, ctype = payload
        else:
            ctype = "application/json"
        return 200, payload, ctype


# -- client ---------------------------------------------------------------

def http_json(method: str, url: str, payload: dict | None = None,
              timeout: float = 30.0):
    """One JSON request/response round-trip (raises on non-2xx)."""
    data = None if payload is None else json.dumps(payload).encode()
    headers = {"Content-Type": "application/json",
               "Connection": "close"}
    if data is not None:
        headers[CHECKSUM_HEADER] = body_checksum(data)
    req = urllib.request.Request(url, data=data, method=method,
                                 headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            blob = resp.read()
    except urllib.error.HTTPError as exc:
        detail = ""
        try:
            detail = json.loads(exc.read()).get("error", "")
        except Exception:  # noqa: BLE001 - best-effort error detail
            pass
        raise HttpError(exc.code, detail or str(exc)) from None
    return json.loads(blob) if blob else None

"""Fig. 11 report: per-scheme area/power breakdown table."""

from __future__ import annotations

from repro.power.model import RouterCost, scheme_cost

#: the configurations compared in Fig. 11
FIG11_CONFIGS = [
    ("escapevc", 6, 2),
    ("spin", 6, 2),
    ("swap", 6, 2),
    ("drain", 6, 2),
    ("pitstop", 1, 2),
    ("fastpass", 1, 2),
]


def area_power_table(configs=None) -> list[dict]:
    """Rows of the Fig. 11 comparison (one per scheme configuration)."""
    rows = []
    baseline: RouterCost | None = None
    for scheme, vns, vcs in (configs or FIG11_CONFIGS):
        cost = scheme_cost(scheme, vns, vcs)
        if baseline is None:
            baseline = cost
        rows.append({
            "scheme": scheme,
            "vns": 0 if vns == 1 else vns,
            "vcs": vcs,
            "area_um2": cost.area,
            "power_uw": cost.power,
            "area_breakdown": cost.area_breakdown(),
            "power_breakdown": cost.power_breakdown(),
            "area_vs_escape": cost.area / baseline.area,
            "power_vs_escape": cost.power / baseline.power,
        })
    return rows


def format_table(rows) -> str:
    out = [f"{'scheme':<10} {'VN':>3} {'VC':>3} {'area µm²':>12} "
           f"{'power µW':>12} {'area/Esc':>9} {'pwr/Esc':>9}"]
    for r in rows:
        out.append(
            f"{r['scheme']:<10} {r['vns']:>3} {r['vcs']:>3} "
            f"{r['area_um2']:>12,.0f} {r['power_uw']:>12,.0f} "
            f"{r['area_vs_escape']:>9.2f} {r['power_vs_escape']:>9.2f}")
    return "\n".join(out)

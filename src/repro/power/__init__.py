"""Analytical router power/area model (the Fig. 11 substitute)."""

from repro.power.model import RouterCost, scheme_cost, COMPONENTS
from repro.power.report import area_power_table

__all__ = ["RouterCost", "scheme_cost", "COMPONENTS", "area_power_table"]

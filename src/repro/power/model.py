"""First-order area/power model of a VCT router at a 28nm-class node.

The paper reports post place-and-route numbers (TSMC 28nm, 1 GHz); we have
no EDA flow, so we rebuild the breakdown analytically (DESIGN.md §5):

* **buffers** scale with the stored bits (ports x VCs x flits x flit width);
* **crossbar** scales with ports² x flit width;
* **allocators/arbiters** scale with the number of arbitrated VC ports;
* each scheme adds its documented **overhead** circuit (SPIN's detection is
  ~6% of the EscapeVC router per the paper; FastPass's management/path
  table/dropping logic is ~4% of its own area).

Constants are calibrated so the *EscapeVC (VN=6, VC=2)* router matches the
proportions of Fig. 11 (~350k µm², buffers the dominant term).  Absolute
values are indicative; the paper's claim under reproduction is the
*relative* comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

FLIT_BITS = 128
N_PORTS = 5

# Calibrated per-unit costs (28nm-class, 1 GHz).
AREA_PER_BUFFER_BIT = 4.1          # µm² per stored bit (register FIFO)
AREA_XBAR_PER_BITPORT2 = 32.8      # µm² per bit x port²
AREA_PER_ARBITER_PAIR = 3000.0     # µm² per port-pair arbitration point
AREA_PER_ARBITER_VC = 208.0        # µm² per arbitrated VC request line

POWER_PER_BUFFER_BIT = 3.5         # µW per stored bit
POWER_XBAR_PER_BITPORT2 = 27.0     # µW per bit x port²
POWER_PER_ARBITER_PAIR = 2500.0    # µW per port-pair arbitration point
POWER_PER_ARBITER_VC = 175.0       # µW per arbitrated VC request line

#: scheme overhead circuits, as a fraction of a reference area/power:
#: ("self" = fraction of the scheme's own base router, "escape" = fraction
#: of the EscapeVC router — the paper states SPIN's detection circuit adds
#: 6% of the EscapeVC router).
SCHEME_OVERHEAD = {
    "escapevc": (0.0, "self"),
    "spin": (0.06, "escape"),
    "swap": (0.02, "escape"),
    "drain": (0.03, "escape"),
    "pitstop": (0.04, "self"),
    "fastpass": (0.04, "self"),
    "tfc": (0.03, "escape"),
    "minbd": (0.03, "self"),
    "baseline": (0.0, "self"),
}

COMPONENTS = ("buffers", "crossbar", "arbiters", "overhead")


@dataclass(frozen=True)
class RouterCost:
    """Area (µm²) and power (µW) of one router, broken down by component."""

    scheme: str
    buffers_area: float
    crossbar_area: float
    arbiters_area: float
    overhead_area: float
    buffers_power: float
    crossbar_power: float
    arbiters_power: float
    overhead_power: float

    @property
    def area(self) -> float:
        return (self.buffers_area + self.crossbar_area +
                self.arbiters_area + self.overhead_area)

    @property
    def power(self) -> float:
        return (self.buffers_power + self.crossbar_power +
                self.arbiters_power + self.overhead_power)

    def area_breakdown(self) -> dict:
        return {
            "buffers": self.buffers_area,
            "crossbar": self.crossbar_area,
            "arbiters": self.arbiters_area,
            "overhead": self.overhead_area,
        }

    def power_breakdown(self) -> dict:
        return {
            "buffers": self.buffers_power,
            "crossbar": self.crossbar_power,
            "arbiters": self.arbiters_power,
            "overhead": self.overhead_power,
        }


def _base_cost(n_vns: int, n_vcs: int, buffer_flits: int = 5):
    total_vcs = n_vns * n_vcs
    buffer_bits = N_PORTS * total_vcs * buffer_flits * FLIT_BITS
    xbar_units = N_PORTS * N_PORTS * FLIT_BITS
    # Switch allocation is dominated by the port-pair matrix; VC allocation
    # adds a per-VC request line on top.
    arb_pairs = N_PORTS * N_PORTS
    arb_vcs = N_PORTS * total_vcs
    area = (buffer_bits * AREA_PER_BUFFER_BIT,
            xbar_units * AREA_XBAR_PER_BITPORT2,
            arb_pairs * AREA_PER_ARBITER_PAIR + arb_vcs * AREA_PER_ARBITER_VC)
    power = (buffer_bits * POWER_PER_BUFFER_BIT,
             xbar_units * POWER_XBAR_PER_BITPORT2,
             arb_pairs * POWER_PER_ARBITER_PAIR + arb_vcs * POWER_PER_ARBITER_VC)
    return area, power


def scheme_cost(scheme: str, n_vns: int, n_vcs: int,
                buffer_flits: int = 5) -> RouterCost:
    """Per-router cost of a scheme configuration.

    ``n_vns``/``n_vcs`` are the configuration actually evaluated (Table II:
    EscapeVC/SPIN/SWAP/DRAIN run VN=6 x VC=2; Pitstop and FastPass run
    VN-free with 2 VCs).
    """
    if scheme not in SCHEME_OVERHEAD:
        raise ValueError(f"unknown scheme {scheme!r} for the power model")
    (ba, xa, aa), (bp, xp, ap) = _base_cost(n_vns, n_vcs, buffer_flits)
    frac, ref = SCHEME_OVERHEAD[scheme]
    if ref == "escape":
        (eba, exa, eaa), (ebp, exp_, eap) = _base_cost(6, 2, buffer_flits)
        ref_area = eba + exa + eaa
        ref_power = ebp + exp_ + eap
    else:
        ref_area = ba + xa + aa
        ref_power = bp + xp + ap
    return RouterCost(
        scheme=scheme,
        buffers_area=ba, crossbar_area=xa, arbiters_area=aa,
        overhead_area=frac * ref_area,
        buffers_power=bp, crossbar_power=xp, arbiters_power=ap,
        overhead_power=frac * ref_power,
    )

"""FastPass: TDM non-overlapping bufferless bypass lanes (the paper's
primary contribution).

Public pieces:

* :class:`~repro.core.schedule.TdmSchedule` — partitions, slots, phases,
  prime-router rotation (Sec. III-C1);
* :mod:`repro.core.lanes` — lane/returning-path geometry and the
  non-overlap verifier (Fig. 1/Fig. 4);
* :class:`~repro.core.fastflow.FastFlowEngine` — bufferless traversals with
  per-link time-window reservations, ejection-queue reservation and the
  bounce protocol (Secs. III-B, III-C4, III-C5);
* :class:`~repro.core.manager.FastPassManager` — prime-router packet
  scanning/upgrading and the dynamic bubble (Sec. III-C2/C4);
* :mod:`repro.core.irregular` — partition derivation for arbitrary
  topologies via Eulerian-circuit segmentation (Sec. III-F).
"""

from repro.core.schedule import TdmSchedule
from repro.core.fastflow import FastFlowEngine
from repro.core.manager import FastPassManager
from repro.core import lanes
from repro.core import irregular

__all__ = [
    "TdmSchedule",
    "FastFlowEngine",
    "FastPassManager",
    "lanes",
    "irregular",
]

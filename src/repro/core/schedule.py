"""The TDM schedule: partitions, time slots, phases, prime rotation.

Terminology (Sec. III-A):

* the mesh is split into ``P`` column *partitions*;
* in every *slot* (``K`` cycles) each partition has one *prime router*;
  concurrent primes never share a row or a column (initially the diagonal,
  Fig. 4), which is what guarantees lane/returning-path non-overlap;
* during slot ``s`` of a phase, the prime of partition ``c`` owns a
  FastPass-Lane into partition ``(c + s) mod P``;
* a *phase* is ``P`` slots — after it, every prime has covered every
  router, and the prime role moves to the next row within each partition.

``K`` defaults to the paper's formula ``(2 x #Hops) x #Inputs x #VCs``
(Qn 5): long enough for a round trip to the farthest destination for every
input buffer a prime may serve.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SlotInfo:
    """Where the schedule stands at some cycle."""

    phase: int          # global phase counter (never wraps)
    slot: int           # slot index within the phase, 0..P-1
    slot_start: int     # first cycle of this slot
    slot_end: int       # first cycle after this slot


class TdmSchedule:
    """Deterministic, globally-known schedule — no coordination needed;
    every router derives the same answers from the cycle counter alone."""

    def __init__(self, rows: int, cols: int, slot_cycles: int):
        if rows != cols:
            raise ValueError(
                "the mesh TDM schedule requires a square mesh so that "
                "concurrent primes can avoid sharing rows (see "
                "repro.core.irregular for non-mesh topologies)")
        if slot_cycles < 1:
            raise ValueError("slot length must be positive")
        self.rows = rows
        self.cols = cols
        self.P = cols
        self.K = slot_cycles
        self.phase_len = self.P * self.K
        #: cycles for every router to have been prime once
        self.rotation_len = rows * self.phase_len

    # ------------------------------------------------------------------
    def info(self, cycle: int) -> SlotInfo:
        phase = cycle // self.phase_len
        within = cycle - phase * self.phase_len
        slot = within // self.K
        slot_start = phase * self.phase_len + slot * self.K
        return SlotInfo(phase, slot, slot_start, slot_start + self.K)

    def prime_of_partition(self, partition: int, phase: int) -> int:
        """Router id of the prime of ``partition`` during ``phase``.

        Partition ``c`` is column ``c``; its prime sits in row
        ``(c + phase) mod rows`` — the diagonal at phase 0, shifting one
        row per phase ("the prime ability is given to the next adjacent
        router within the partition").
        """
        row = (partition + phase) % self.rows
        return row * self.cols + partition

    def primes(self, phase: int) -> list[int]:
        """All concurrent primes in ``phase`` (one per partition)."""
        return [self.prime_of_partition(c, phase) for c in range(self.P)]

    def target_partition(self, partition: int, slot: int) -> int:
        """Partition covered by partition ``partition``'s lane in ``slot``."""
        return (partition + slot) % self.P

    # -- guarantees used by the proof-of-correctness tests ---------------
    def slots_until_prime(self, rid: int) -> int:
        """Phases until router ``rid`` becomes prime, from phase 0."""
        col = rid % self.cols
        row = rid // self.cols
        return (row - col) % self.rows

    def coverage_bound(self) -> int:
        """Upper bound (cycles) until ANY packet anywhere could have been
        upgraded toward ANY destination: one full rotation (Lemma 2)."""
        return self.rotation_len

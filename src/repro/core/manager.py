"""FastPass management: prime-router packet scanning and upgrading.

Implements Sec. III-C2 faithfully:

* for each partition, when its lane is free and enough of the slot remains
  for a worst-case round trip, the prime scans for an eligible packet —
  one whose destination lies in the currently covered partition;
* the scan starts with the *request injection queue* (so a bounced packet
  is always re-selected first, Qn 2 scenario 1), then the other injection
  queues, then the input-port VCs in round-robin order;
* upgrading a packet from an input VC frees the upstream credit as soon as
  the packet departs (Sec. III-C4) — unless a bounced packet is waiting in
  the request injection queue, in which case it takes the freed slot via
  the green path (Qn 2 scenario 2) instead of the credit going upstream.
"""

from __future__ import annotations

from repro.core.fastflow import FastFlowEngine
from repro.core.schedule import TdmSchedule
from repro.network.packet import MessageClass


class FastPassManager:
    """Drives all primes; one instance per network."""

    def __init__(self, net):
        cfg = net.cfg
        self.net = net
        self.mesh = net.mesh
        self.engine = FastFlowEngine(net)

        # The TDM schedule and the hops-dependent round-trip table are
        # pure mesh/config geometry; replicas of a batch (and prewarmed
        # fork workers) share one copy via the network's SharedStructures
        # instead of recomputing them per manager.
        def _geometry():
            mesh = self.mesh
            n = mesh.n_routers
            slack = self.engine.RETURN_SLACK
            schedule = TdmSchedule(cfg.rows, cfg.cols, cfg.fastpass_slot())
            rt = [2 * mesh.hops(p, d) + slack
                  for p in range(n) for d in range(n)]
            return schedule, rt

        shared = net.shared
        if shared is not None:
            self.schedule, self._rt = shared.get_or_build(
                "fastpass_geometry", _geometry)
        else:
            self.schedule, self._rt = _geometry()
        P = self.schedule.P
        self.lane_free_at = [0] * P
        self._min_free = 0     # min(lane_free_at): skip fully-busy cycles
        self._scan_rr = [0] * P
        # Per-slot-window cache of the TDM geometry (primes and covered
        # partitions are constant within a slot).
        self._slot_end = 0
        self._primes: list[int] = []
        self._tcols: list[int] = []
        #: last phase seen by the slot-refresh block, for the
        #: 'prime_rotation' observability event
        self._last_phase = -1
        self.upgrades = 0
        self.upgrades_from_injection = 0
        #: SoA-kernel hook: a shared list ``_take_slot`` appends its
        #: ``(router, slot)`` to, so the kernel can re-mirror exactly the
        #: slots an upgrade mutated.  ``None`` — and free — otherwise.
        self.slot_sink = None
        #: injection-queue scan order: request queue first (Qn 2 / Qn 6)
        self._cls_order = [MessageClass.REQUEST] + \
            [m for m in MessageClass if m != MessageClass.REQUEST]
        # Round-trip budget is ``2*hops + 2*size + RETURN_SLACK``; the
        # hops-dependent part lives in the (possibly shared) ``_rt``
        # table built above.
        self._nr = self.mesh.n_routers
        self._cols = self.mesh.cols

    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        if now < self._min_free:
            return      # every lane is mid-flight: nothing to scan
        net = self.net
        if net.inj_total == 0 and net.buffered == 0:
            return      # no packet anywhere: every prime's scan is empty
        obs = net.obs
        if now >= self._slot_end:
            sched = self.schedule
            info = sched.info(now)
            self._slot_end = info.slot_end
            self._primes = sched.primes(info.phase)
            self._tcols = [sched.target_partition(c, info.slot)
                           for c in range(sched.P)]
            if obs is not None:
                # Lazily attributed: the manager only refreshes the slot
                # cache when it has work, so slot/rotation events mark the
                # boundaries the manager *observed*, not every TDM tick.
                obs.emit("lane_slot", now, slot=info.slot,
                         phase=info.phase, slot_end=info.slot_end)
                if info.phase != self._last_phase:
                    obs.emit("prime_rotation", now, phase=info.phase,
                             primes=tuple(self._primes))
            self._last_phase = info.phase
        slot_end = self._slot_end
        primes = self._primes
        tcols = self._tcols
        lane_free = self.lane_free_at
        for c in range(len(primes)):
            if lane_free[c] > now:
                continue
            prime = primes[c]
            found = self._select(c, prime, tcols[c], now, slot_end)
            if found is None:
                continue
            pkt, remove = found
            remove()
            self.upgrades += 1
            if obs is not None:
                obs.emit("upgraded", now, pkt.pid,
                         lane=c, prime=prime, dst=pkt.dst)
            lane_free[c] = self.engine.launch_forward(pkt, prime, now)
        self._min_free = min(lane_free)

    # ------------------------------------------------------------------
    def _eligible(self, pkt, prime: int, tcol: int, now: int,
                  slot_end: int) -> bool:
        dst = pkt.dst
        if dst == prime or dst % self._cols != tcol:
            return False
        rt = self._rt[prime * self._nr + dst] + 2 * pkt.size
        if now + rt > slot_end:
            return False
        # Lane-schedule degradation: a prime never launches onto a lane
        # whose forward or return path crosses a dead link, or whose
        # lookahead signal is currently dropped (schemes declare the
        # capability via fault_caps.lane_skip).
        faults = self.net.faults
        if faults is not None and not faults.lane_ok(prime, pkt.dst, now,
                                                     pkt.size):
            return False
        return True

    def _select(self, c: int, prime: int, tcol: int, now: int,
                slot_end: int):
        """Find the next FastPass-Packet candidate at ``prime``.

        Returns ``(pkt, remove_callback)`` or None.
        """
        net = self.net
        ni = net.nis[prime]
        router = net.routers[prime]
        # Fast path: nothing queued and nothing buffered at the prime —
        # (every slot holding a packet is in the occupied list, so an
        # empty list means the VC scan below would find nothing).
        if ni.inj_count == 0 and not router.occupied:
            return None
        # 1. Injection buffers, request queue first (Qn 2 / Qn 6).
        for cls in self._cls_order:
            q = ni.inj[cls]
            if q and self._eligible(q[0], prime, tcol, now, slot_end):
                pkt = q[0]
                return pkt, lambda q=q, pkt=pkt: self._take_injection(ni,
                                                                      q, pkt)
        # 2. Input-port VC slots, round-robin.  Only occupied slots can
        # match, so scan those — ordered by their flat index relative to
        # the rr pointer, which reproduces the full flat scan exactly.
        occ = router.occupied
        if occ:
            n = len(router.all_slots)
            start = self._scan_rr[c] % n
            nv = router.n_vcs_total
            cols = self._cols
            cands = []
            for slot in occ:
                pkt = slot.pkt
                if pkt is not None and slot.ready_at <= now:
                    # The cheap structural half of _eligible, hoisted so
                    # ineligible slots never reach the sort (selection is
                    # per-slot, so prefiltering picks the same winner).
                    dst = pkt.dst
                    if dst == prime or dst % cols != tcol:
                        continue
                    cands.append(
                        ((slot.port * nv + slot.vc - start) % n, slot))
            if cands:
                # Offsets are unique per slot, so tuple sort never falls
                # through to comparing slots.
                cands.sort()
                for off, slot in cands:
                    pkt = slot.pkt
                    if self._eligible(pkt, prime, tcol, now, slot_end):
                        self._scan_rr[c] = start + off + 1
                        return pkt, \
                            lambda slot=slot, pkt=pkt: self._take_slot(
                                ni, router, slot, pkt, now)
        return None

    # -- removal callbacks ---------------------------------------------------
    def _take_injection(self, ni, q, pkt) -> None:
        q.remove(pkt)
        ni.inj_count -= 1
        net = self.net
        net.inj_total -= 1
        pkt.net_entry = net.cycle
        pkt.rejected = False
        net.stats.injected += 1
        self.upgrades_from_injection += 1
        obs = net.obs
        if obs is not None:
            # Mirrors stats.injected: an upgrade straight from the
            # injection queues counts as the packet's network entry.
            obs.emit("injected", net.cycle, pkt.pid,
                     src=ni.id, dst=pkt.dst, vn=pkt.vn)

    def _take_slot(self, ni, router, slot, pkt, now: int) -> None:
        router.disturb()           # the upgrade empties (or refills) a slot
        if self.slot_sink is not None:
            self.slot_sink.append((router, slot))
        slot.pkt = None
        self.net.buffered -= 1
        rejected = self._pending_rejected(ni)
        if rejected is not None:
            # Green path: the bounced packet moves into the freed VC slot;
            # the upstream credit is NOT returned (the slot stays occupied).
            ni.inj[MessageClass.REQUEST].remove(rejected)
            ni.inj_count -= 1
            self.net.inj_total -= 1
            self.net.buffered += 1
            slot.pkt = rejected
            slot.ready_at = now + 1
            slot.free_at = 1 << 60
            rejected.invalidate_route()
        else:
            # Credit freed as soon as the FastPass-Packet departs.
            slot.free_at = now + pkt.size

    def _pending_rejected(self, ni):
        for pkt in ni.inj[MessageClass.REQUEST]:
            if pkt.rejected:
                return pkt
        return None

"""FastPass management: prime-router packet scanning and upgrading.

Implements Sec. III-C2 faithfully:

* for each partition, when its lane is free and enough of the slot remains
  for a worst-case round trip, the prime scans for an eligible packet —
  one whose destination lies in the currently covered partition;
* the scan starts with the *request injection queue* (so a bounced packet
  is always re-selected first, Qn 2 scenario 1), then the other injection
  queues, then the input-port VCs in round-robin order;
* upgrading a packet from an input VC frees the upstream credit as soon as
  the packet departs (Sec. III-C4) — unless a bounced packet is waiting in
  the request injection queue, in which case it takes the freed slot via
  the green path (Qn 2 scenario 2) instead of the credit going upstream.
"""

from __future__ import annotations

from repro.core.fastflow import FastFlowEngine
from repro.core.schedule import TdmSchedule
from repro.network.packet import MessageClass


class FastPassManager:
    """Drives all primes; one instance per network."""

    def __init__(self, net):
        cfg = net.cfg
        self.net = net
        self.mesh = net.mesh
        self.schedule = TdmSchedule(cfg.rows, cfg.cols, cfg.fastpass_slot())
        self.engine = FastFlowEngine(net)
        P = self.schedule.P
        self.lane_free_at = [0] * P
        self._scan_rr = [0] * P
        self.upgrades = 0
        self.upgrades_from_injection = 0

    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        sched = self.schedule
        info = sched.info(now)
        for c in range(sched.P):
            if self.lane_free_at[c] > now:
                continue
            prime = sched.prime_of_partition(c, info.phase)
            tcol = sched.target_partition(c, info.slot)
            found = self._select(c, prime, tcol, now, info.slot_end)
            if found is None:
                continue
            pkt, remove = found
            remove()
            self.upgrades += 1
            self.lane_free_at[c] = self.engine.launch_forward(pkt, prime,
                                                              now)

    # ------------------------------------------------------------------
    def _eligible(self, pkt, prime: int, tcol: int, now: int,
                  slot_end: int) -> bool:
        if pkt.dst == prime or pkt.dst % self.mesh.cols != tcol:
            return False
        rt = self.engine.round_trip_cycles(prime, pkt.dst, pkt.size)
        if now + rt > slot_end:
            return False
        # Lane-schedule degradation: a prime never launches onto a lane
        # whose forward or return path crosses a dead link, or whose
        # lookahead signal is currently dropped (schemes declare the
        # capability via fault_caps.lane_skip).
        faults = self.net.faults
        if faults is not None and not faults.lane_ok(prime, pkt.dst, now,
                                                     pkt.size):
            return False
        return True

    def _select(self, c: int, prime: int, tcol: int, now: int,
                slot_end: int):
        """Find the next FastPass-Packet candidate at ``prime``.

        Returns ``(pkt, remove_callback)`` or None.
        """
        net = self.net
        ni = net.nis[prime]
        # 1. Injection buffers, request queue first (Qn 2 / Qn 6).
        order = [MessageClass.REQUEST] + \
            [m for m in MessageClass if m != MessageClass.REQUEST]
        for cls in order:
            q = ni.inj[cls]
            if q and self._eligible(q[0], prime, tcol, now, slot_end):
                pkt = q[0]
                return pkt, lambda q=q, pkt=pkt: self._take_injection(ni,
                                                                      q, pkt)
        # 2. Input-port VC slots, round-robin.
        router = net.routers[prime]
        flat = [s for port_slots in router.slots for s in port_slots]
        n = len(flat)
        start = self._scan_rr[c] % n
        for k in range(n):
            slot = flat[(start + k) % n]
            pkt = slot.pkt
            if pkt is None or slot.ready_at > now:
                continue
            if self._eligible(pkt, prime, tcol, now, slot_end):
                self._scan_rr[c] = start + k + 1
                return pkt, lambda slot=slot, pkt=pkt: self._take_slot(
                    ni, slot, pkt, now)
        return None

    # -- removal callbacks ---------------------------------------------------
    def _take_injection(self, ni, q, pkt) -> None:
        q.remove(pkt)
        pkt.net_entry = self.net.cycle
        pkt.rejected = False
        self.net.stats.injected += 1
        self.upgrades_from_injection += 1

    def _take_slot(self, ni, slot, pkt, now: int) -> None:
        slot.pkt = None
        rejected = self._pending_rejected(ni)
        if rejected is not None:
            # Green path: the bounced packet moves into the freed VC slot;
            # the upstream credit is NOT returned (the slot stays occupied).
            ni.inj[MessageClass.REQUEST].remove(rejected)
            slot.pkt = rejected
            slot.ready_at = now + 1
            slot.free_at = 1 << 60
            rejected.invalidate_route()
        else:
            # Credit freed as soon as the FastPass-Packet departs.
            slot.free_at = now + pkt.size

    def _pending_rejected(self, ni):
        for pkt in ni.inj[MessageClass.REQUEST]:
            if pkt.rejected:
                return pkt
        return None

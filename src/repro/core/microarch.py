"""Structural model of the FastPass router's extra hardware (Fig. 6).

The simulator models FastPass behaviourally; this module enumerates the
*hardware* the mechanism adds to a baseline router, bit by bit, so the
area/power overhead can be derived structurally instead of assumed:

* **path table** — P entries of ceil(log2 P) bits (the partition pointer's
  targets; "for an 8x8 mesh, 3 bits per entry");
* **FastPass management** — the slot/phase counters (count up to the
  rotation length), the prime-status bit and PrimeID register (6 bits for
  8x8), and the per-port lookahead latches (10 bits each for 8x8);
* **datapath muxes** — D0 demux and the M1/M2 muxes per port that steer
  incoming FastPass-Packets around the input buffers and bounced packets
  into the injection queue (per-bit mux cost x flit width);
* **dropping management** — comparator + pointer into the request
  injection queue.

`overhead_fraction()` ties this to the analytical power model: for the
paper's 8x8 / VC=2 configuration it lands at a few percent of the FastPass
router — consistent with the paper's "~4% of FastPass area".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.lookahead import signal_width
from repro.network.topology import Mesh
from repro.power import model as power_model


@dataclass(frozen=True)
class FastPassHardware:
    """Bit/gate inventory of the FastPass additions for one router."""

    path_table_bits: int
    counter_bits: int
    prime_id_bits: int
    lookahead_latch_bits: int
    mux_bit_slices: int
    dropping_cmp_bits: int

    @property
    def register_bits(self) -> int:
        return (self.path_table_bits + self.counter_bits +
                self.prime_id_bits + self.lookahead_latch_bits +
                self.dropping_cmp_bits)


def inventory(mesh: Mesh, n_vcs: int, flit_bits: int = 128,
              n_ports: int = 5) -> FastPassHardware:
    """Enumerate the FastPass hardware for a router of ``mesh``."""
    P = mesh.cols
    entry_bits = max(1, math.ceil(math.log2(P)))
    rotation = mesh.rows * P * (2 * mesh.diameter * n_ports * n_vcs)
    counter_bits = max(1, math.ceil(math.log2(rotation + 1)))
    la_bits = signal_width(mesh)
    return FastPassHardware(
        path_table_bits=P * entry_bits,
        counter_bits=counter_bits,
        prime_id_bits=max(1, math.ceil(math.log2(mesh.n_routers))),
        lookahead_latch_bits=n_ports * la_bits,
        # D0 + M1 + M2: three steering points, each a 2:1 mux per datapath
        # bit per port.
        mux_bit_slices=3 * n_ports * flit_bits,
        dropping_cmp_bits=2 * max(1, math.ceil(math.log2(mesh.n_routers))),
    )


#: per-register-bit and per-mux-slice costs, scaled from the power model's
#: buffer-bit calibration (a mux slice is far cheaper than a storage bit).
AREA_PER_REGISTER_BIT = power_model.AREA_PER_BUFFER_BIT
AREA_PER_MUX_SLICE = power_model.AREA_PER_BUFFER_BIT * 0.35
POWER_PER_REGISTER_BIT = power_model.POWER_PER_BUFFER_BIT
POWER_PER_MUX_SLICE = power_model.POWER_PER_BUFFER_BIT * 0.35


def overhead_area(mesh: Mesh, n_vcs: int) -> float:
    hw = inventory(mesh, n_vcs)
    return (hw.register_bits * AREA_PER_REGISTER_BIT +
            hw.mux_bit_slices * AREA_PER_MUX_SLICE)


def overhead_power(mesh: Mesh, n_vcs: int) -> float:
    hw = inventory(mesh, n_vcs)
    return (hw.register_bits * POWER_PER_REGISTER_BIT +
            hw.mux_bit_slices * POWER_PER_MUX_SLICE)


def overhead_fraction(mesh: Mesh, n_vcs: int) -> float:
    """FastPass overhead as a fraction of the full FastPass router area.

    The paper reports ~4% for the 8x8 / VN-free configuration; the
    structural inventory reproduces that magnitude.
    """
    base = power_model.scheme_cost("baseline", 1, n_vcs)
    extra = overhead_area(mesh, n_vcs)
    return extra / (base.area + extra)

"""FastPass partitions for irregular topologies (Sec. III-F).

The paper: *"we can leverage algorithms from prior work [DRAIN] that can
find holistic paths that are guaranteed to traverse every physical link in
the network exactly once.  Such algorithms are applicable to any arbitrary
topology as long as all channels between routers are bidirectional.
Segmenting a holistic path is guaranteed to produce a set of
non-overlapping paths, which FastPass can use to derive its partitions."*

With bidirectional channels, the directed channel graph has equal in- and
out-degree at every router, so a directed Eulerian circuit (the *holistic
path*) always exists on each connected component.  Cutting the circuit
into ``P`` contiguous segments yields link-disjoint corridors that jointly
cover every directed channel exactly once — the partitions.
"""

from __future__ import annotations

import networkx as nx


def holistic_path(graph: "nx.Graph") -> list[tuple[int, int]]:
    """The directed Eulerian circuit over both directions of every channel.

    ``graph`` is the undirected channel graph (each edge = one
    bidirectional channel).  Raises ``ValueError`` for graphs that are not
    connected.
    """
    if graph.number_of_nodes() == 0:
        return []
    if not nx.is_connected(graph):
        raise ValueError("topology must be connected")
    if graph.number_of_edges() == 0:
        # A single isolated router is connected but has no channels to
        # traverse; the holistic path is empty rather than an Eulerian
        # failure inside networkx.
        return []
    digraph = graph.to_directed()   # both directions of every channel
    start = min(graph.nodes)
    return [(u, v) for u, v in nx.eulerian_circuit(digraph, source=start)]


def segment_path(path: list[tuple[int, int]],
                 n_segments: int) -> list[list[tuple[int, int]]]:
    """Cut the holistic path into ``n_segments`` contiguous, link-disjoint
    segments of near-equal length."""
    if n_segments < 1:
        raise ValueError("need at least one segment")
    if n_segments > len(path):
        raise ValueError(
            f"cannot cut a {len(path)}-link path into {n_segments} segments")
    total = len(path)
    bounds = [round(i * total / n_segments) for i in range(n_segments + 1)]
    return [path[bounds[i]:bounds[i + 1]] for i in range(n_segments)]


def derive_partitions(graph: "nx.Graph", n_partitions: int):
    """Partitions for FastPass on an arbitrary topology.

    Returns ``(segments, routers_of)`` where ``segments[i]`` is the i-th
    segment's directed link list and ``routers_of[i]`` the ordered routers
    it visits.  Together the segments traverse every directed channel
    exactly once and are pairwise link-disjoint, so at any instant one
    FastPass-Packet per segment can progress with no possible collision.
    """
    path = holistic_path(graph)
    segments = segment_path(path, n_partitions)
    routers_of = []
    for seg in segments:
        routers = [seg[0][0]] + [v for _u, v in seg]
        routers_of.append(routers)
    return segments, routers_of


def verify_segments(graph: "nx.Graph", segments) -> None:
    """Assert the Sec. III-F guarantees:

    1. segments are pairwise link-disjoint (directed),
    2. together they cover every directed channel exactly once,
    3. each segment is a connected walk.
    """
    seen: set[tuple[int, int]] = set()
    for seg in segments:
        for i, (u, v) in enumerate(seg):
            assert (u, v) not in seen, f"link {(u, v)} appears twice"
            seen.add((u, v))
            if i:
                assert seg[i - 1][1] == u, "segment is not a contiguous walk"
    expect = set()
    for u, v in graph.edges:
        expect.add((u, v))
        expect.add((v, u))
    assert seen == expect, (
        f"coverage mismatch: missing {expect - seen}, extra {seen - expect}")


class IrregularSchedule:
    """TDM schedule over segment partitions of an arbitrary topology.

    Mirrors :class:`~repro.core.schedule.TdmSchedule`: each segment has one
    prime router that rotates through the segment's routers phase by phase,
    and in slot ``s`` the prime of segment ``i`` covers the routers of
    segment ``(i + s) mod P``.
    """

    def __init__(self, graph: "nx.Graph", n_partitions: int,
                 slot_cycles: int):
        self.segments, self.routers_of = derive_partitions(graph,
                                                           n_partitions)
        self.P = n_partitions
        self.K = slot_cycles
        self.phase_len = self.P * self.K
        self.max_primes = max(len(r) for r in self.routers_of)
        self.rotation_len = self.max_primes * self.phase_len

    def info(self, cycle: int):
        phase = cycle // self.phase_len
        slot = (cycle % self.phase_len) // self.K
        return phase, slot

    def prime_of_partition(self, partition: int, phase: int) -> int:
        routers = self.routers_of[partition]
        return routers[phase % len(routers)]

    def target_partition(self, partition: int, slot: int) -> int:
        return (partition + slot) % self.P

    def covers_all(self) -> bool:
        """Every router of the topology lies on at least one segment."""
        visited = set()
        for routers in self.routers_of:
            visited.update(routers)
        nodes = set()
        for seg in self.segments:
            for u, v in seg:
                nodes.add(u)
                nodes.add(v)
        return visited == nodes

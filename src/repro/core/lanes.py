"""FastPass-Lane geometry: forward paths, returning paths, non-overlap.

A lane is the union of XY paths from a prime router to every router of the
target partition (its column): the prime's row segment toward the target
column plus the full target column.  A bounced packet returns YX — the
same row/column corridor in the *opposite-direction* links — so forward
lanes and returning paths can never collide as long as concurrent primes
share no row and no column (Sec. III-E, Fig. 4).
"""

from __future__ import annotations

from repro.network.topology import Mesh


def forward_path(mesh: Mesh, prime: int, dst: int) -> list[tuple[int, int]]:
    """Directed links of the FastFlow forward traversal (XY routing)."""
    return mesh.xy_path(prime, dst)


def return_path(mesh: Mesh, dst: int, prime: int) -> list[tuple[int, int]]:
    """Directed links of the bounce traversal back to the prime (YX)."""
    return mesh.yx_path(dst, prime)


def lane_links(mesh: Mesh, prime: int, target_col: int) -> set:
    """Every directed link the lane (prime -> all of ``target_col``) uses."""
    links = set()
    for row in range(mesh.rows):
        dst = mesh.rid(target_col, row)
        if dst == prime:
            continue
        links.update(forward_path(mesh, prime, dst))
    return links


def return_links(mesh: Mesh, prime: int, target_col: int) -> set:
    """Every directed link any bounce from ``target_col`` back to the
    prime could use."""
    links = set()
    for row in range(mesh.rows):
        dst = mesh.rid(target_col, row)
        if dst == prime:
            continue
        links.update(return_path(mesh, dst, prime))
    return links


def verify_slot_nonoverlap(mesh: Mesh, primes: list[int],
                           targets: list[int]) -> None:
    """Assert the paper's collision-freedom claims for one slot:

    1. forward lanes of distinct primes are pairwise link-disjoint,
    2. returning paths of distinct primes are pairwise link-disjoint,
    3. no returning path shares a directed link with any forward lane.

    Raises ``AssertionError`` with a description on violation.
    """
    fwd = [lane_links(mesh, p, t) for p, t in zip(primes, targets)]
    ret = [return_links(mesh, p, t) for p, t in zip(primes, targets)]
    n = len(primes)
    for i in range(n):
        for j in range(i + 1, n):
            both = fwd[i] & fwd[j]
            assert not both, (
                f"forward lanes of primes {primes[i]} and {primes[j]} "
                f"overlap on {sorted(both)}")
            both = ret[i] & ret[j]
            assert not both, (
                f"returning paths of primes {primes[i]} and {primes[j]} "
                f"overlap on {sorted(both)}")
    for i in range(n):
        for j in range(n):
            both = ret[i] & fwd[j]
            assert not both, (
                f"returning path of prime {primes[i]} overlaps the forward "
                f"lane of prime {primes[j]} on {sorted(both)}")


def lanes_cover_network(mesh: Mesh, schedule) -> bool:
    """Check Lemma 2's precondition: over one full rotation every
    (router, destination) pair gets a lane."""
    covered = {rid: set() for rid in range(mesh.n_routers)}
    for phase in range(schedule.rows):
        for c in range(schedule.P):
            prime = schedule.prime_of_partition(c, phase)
            for slot in range(schedule.P):
                tcol = schedule.target_partition(c, slot)
                for row in range(mesh.rows):
                    covered[prime].add(mesh.rid(tcol, row))
    return all(len(v) == mesh.n_routers for v in covered.values())

"""The lookahead signal (Secs. III-C5, III-E).

One cycle ahead of a FastPass-Packet, each router on the lane receives a
lookahead carrying the *destination id* and the *intended output port*, so
it can set its D0/M2 muxes and suppress regular packets on that port.  For
an 8x8 mesh this is 6 + 4 = 10 bits, carried on the first 10 bits of the
datapath ("FastPass uses the first 10 bits of the datapath as lookahead").

The cycle-level simulator enforces the lookahead's *effect* through link
reservation windows; this module provides the bit-accurate signal itself —
encoding, per-hop update, and a verifier that walks a lane and checks that
each hop's signal matches the geometry — used by the area model (signal
width), the tests, and anyone building RTL from this reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.network.topology import Mesh, PORT_NAMES


def dst_bits(mesh: Mesh) -> int:
    """Bits needed to name any router (6 for an 8x8 mesh)."""
    return max(1, math.ceil(math.log2(mesh.n_routers)))


def port_bits() -> int:
    """Bits of the output-port id field.

    The paper budgets 10 bits total on an 8x8 mesh (6 destination bits),
    i.e. a 4-bit port field — one bit per network direction (N/E/S/W),
    with all-zeros meaning Local/eject.
    """
    return 4


def signal_width(mesh: Mesh) -> int:
    """Total lookahead width; 10 bits for the paper's 8x8 mesh."""
    return dst_bits(mesh) + port_bits()


@dataclass(frozen=True)
class Lookahead:
    """A decoded lookahead signal at one router of the lane."""

    dst: int
    out_port: int

    def encode(self, mesh: Mesh) -> int:
        return (self.dst << port_bits()) | self.out_port

    @staticmethod
    def decode(raw: int, mesh: Mesh) -> "Lookahead":
        mask = (1 << port_bits()) - 1
        return Lookahead(dst=raw >> port_bits(), out_port=raw & mask)

    def describe(self) -> str:  # pragma: no cover - debugging aid
        return f"dst={self.dst} via {PORT_NAMES[self.out_port]}"


def signals_along(mesh: Mesh, path: list[tuple[int, int]],
                  dst: int) -> list[Lookahead]:
    """The lookahead each router on ``path`` forwards downstream.

    ``path`` is the directed link list of a lane traversal; the router at
    hop ``k`` sends ``(dst, out_port_at_hop_k+1)`` one cycle before the
    packet arrives there.  Since routing is minimal and deterministic (XY
    forward / YX return), every router can pre-compute the next output
    port from the destination alone — which is what lets the signal be
    updated and forwarded without any routing stage.
    """
    out = []
    for k, (_rid, port) in enumerate(path):
        out.append(Lookahead(dst=dst, out_port=port))
    return out


def verify_signals(mesh: Mesh, path: list[tuple[int, int]], dst: int) -> None:
    """Check that following the lookahead chain reproduces the path and
    terminates at ``dst`` (raises AssertionError otherwise)."""
    signals = signals_along(mesh, path, dst)
    assert len(signals) == len(path)
    at = path[0][0] if path else dst
    for sig, (rid, port) in zip(signals, path):
        assert sig.dst == dst
        assert sig.out_port == port
        assert rid == at
        at = mesh.neighbor(rid, port)
        # round-trip through the wire encoding
        again = Lookahead.decode(sig.encode(mesh), mesh)
        assert again == sig
    assert at == dst

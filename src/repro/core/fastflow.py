"""FastFlow: the bufferless traversal engine.

An upgraded packet's head advances exactly one hop per cycle — its arrival
time is fixed at upgrade time (Sec. III-C5).  We model the lookahead
signal's effect directly: every link of the path is reserved for the
precise window in which the packet's flits will use it
(``[t + k, t + k + size)`` on the k-th link), which (a) suppresses and, if
needed, pre-empts regular packets and (b) turns any violation of the lane
non-overlap property into a hard :class:`ReservationConflict` error instead
of a silent collision — the simulator enforces the paper's invariant.

Ejection-side behaviour (Secs. III-C4, Qn 3/4):

* free ejection queue -> eject immediately, pre-empting (stalling) any
  ongoing regular ejection;
* full ejection queue -> pro-actively *reserve* the queue for this packet
  and bounce it along the YX returning path to its prime router's request
  injection queue (the dynamic bubble lives in
  :meth:`repro.network.ni.NetworkInterface.accept_bounced`).
"""

from __future__ import annotations

from repro.core import lanes


class FastFlowEngine:
    """Launches and completes FastFlow traversals."""

    def __init__(self, net):
        self.net = net
        self.mesh = net.mesh
        self.forward_launched = 0
        self.bounced = 0
        self.returned = 0

    # ------------------------------------------------------------------
    #: slack allowed for first-fit scheduling of bounce departures
    RETURN_SLACK = 16

    def round_trip_cycles(self, prime: int, dst: int, size: int) -> int:
        """Worst-case cycles a launch can keep lane links busy: forward
        head time + possible bounce (with its first-fit slack) + tail
        serialization.  Launches must fit this budget inside the slot so
        nothing of this lane is still in flight when the links hand over
        to another prime."""
        return 2 * self.mesh.hops(prime, dst) + 2 * size + self.RETURN_SLACK

    def launch_forward(self, pkt, prime: int, now: int) -> int:
        """Send ``pkt`` bufferlessly from ``prime`` to ``pkt.dst``.

        Consecutive packets from the same prime pipeline head-to-tail on
        the lane: they move at the same speed in issue order, so they can
        never collide — the per-link reservation windows double-check that.
        Returns the cycle the lane may issue the next packet (previous tail
        clear of the first link).
        """
        net = self.net
        path = lanes.forward_path(self.mesh, prime, pkt.dst)
        for k, (rid, port) in enumerate(path):
            net.link_for(rid, port).reserve_fp(now + k, now + k + pkt.size)
        dist = len(path)
        pkt.was_fastpass = True
        if pkt.fp_upgrade < 0:
            pkt.fp_upgrade = now
        pkt.hops += dist
        self.forward_launched += 1
        net.in_transit += 1
        net.schedule(now + dist, self._arrive_forward, pkt, prime)
        net.last_progress = now
        return now + pkt.size

    # ------------------------------------------------------------------
    def _arrive_forward(self, now: int, pkt, prime: int) -> None:
        net = self.net
        ni = net.nis[pkt.dst]
        queue = ni.ej[pkt.mclass]
        if queue.can_accept(pkt):
            # FastPass-Packets pre-empt an ongoing regular ejection (Qn 3):
            # the stalled ejection finishes after ours.
            router = net.routers[pkt.dst]
            stall = max(0, router.eject_busy_until - now)
            router.eject_busy_until = now + pkt.size + stall
            net.in_transit -= 1
            ni.eject(pkt, now)
            net.last_progress = now
            return
        # Full ejection queue: reserve it and bounce to the prime (Fig. 3).
        queue.reserve(pkt)
        self.bounced += 1
        obs = net.obs
        if obs is not None:
            obs.emit("bounced", now, pkt.pid, dst=pkt.dst, prime=prime)
        path = lanes.return_path(self.mesh, pkt.dst, prime)
        # Returning packets from different rows of the partition can reach
        # the shared corridor at interleaved times; delay the departure to
        # the first collision-free launch window.
        start = self._first_fit(path, now, pkt.size)
        for k, (rid, port) in enumerate(path):
            net.link_for(rid, port).reserve_fp(start + k, start + k +
                                               pkt.size)
        pkt.hops += len(path)
        net.schedule(start + len(path), self._arrive_return, pkt, prime)

    def _first_fit(self, path, now: int, size: int) -> int:
        """Earliest start time with no reservation conflict on any link."""
        start = now
        for _ in range(self.RETURN_SLACK):
            ok = True
            for k, (rid, port) in enumerate(path):
                link = self.net.link_for(rid, port)
                if link.fp_conflict(start + k, start + k + size):
                    ok = False
                    break
            if ok:
                return start
            start += 1
        return start

    def _arrive_return(self, now: int, pkt, prime: int) -> None:
        self.returned += 1
        self.net.in_transit -= 1
        self.net.nis[prime].accept_bounced(pkt, now)
        self.net.last_progress = now

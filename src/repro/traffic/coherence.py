"""Closed-loop coherence-protocol traffic (MOESI-Hammer-like).

This is the substitute for the paper's gem5/Ruby full-system runs (see
DESIGN.md §5).  Each node hosts a *core* and an *LLC slice*:

* the core issues 1-flit ``REQUEST`` packets to the home slice of each
  address (hash-distributed, with a tunable locality/hotspot skew), limited
  by its MSHRs, and only retires a transaction when the 5-flit ``RESPONSE``
  arrives — responses are the *sink* class;
* the LLC slice consumes request ejections into a bounded service queue and,
  after a fixed service latency, injects the data response (or, for a
  configurable fraction, a 1-flit ``FORWARD`` to a third-party owner which
  then supplies the response — the three-hop transactions of MOESI Hammer);
* writebacks (``WRITEBACK``, fire-and-forget 5-flit) are generated for a
  fraction of transactions.

Because the service queue is bounded and responses compete with requests
for network resources, a 0-VN network with no escape mechanism exhibits
genuine protocol-level deadlock under this model — the behaviour FastPass
and Pitstop must (and do) resolve.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.network.packet import MessageClass, Packet


class Transaction:
    __slots__ = ("tid", "core", "home", "issue_cycle", "complete_cycle")

    def __init__(self, tid: int, core: int, home: int, issue_cycle: int):
        self.tid = tid
        self.core = core
        self.home = home
        self.issue_cycle = issue_cycle
        self.complete_cycle = -1


class NodeModel:
    """Core + LLC slice of one node (registered as the NI consumer)."""

    def __init__(self, rid: int, traffic: "CoherenceTraffic"):
        self.id = rid
        self.traffic = traffic
        self.outstanding = 0
        self.issued = 0
        self.completed = 0
        self.next_issue = 0
        self.burst_left = 0
        #: LLC service queue: (ready_cycle, request_packet)
        self.service: deque = deque()

    # -- core side -------------------------------------------------------
    def issue_step(self, net, now: int) -> None:
        tr = self.traffic
        p = tr.params
        while (self.outstanding < p["mshrs"]
               and self.issued < tr.txns_per_core
               and self.next_issue <= now):
            home = tr.pick_home(self.id)
            txn = Transaction(tr.next_tid, self.id, home, now)
            tr.next_tid += 1
            pkt = Packet(self.id, home, MessageClass.REQUEST, now)
            pkt.txn = txn
            pkt.measured = tr.in_window(now)
            if pkt.measured:
                tr.measured_generated += 1
            self.outstanding += 1
            self.issued += 1
            # Burstiness: within a burst, issue back-to-back; between
            # bursts, wait out the think time.  The mean burst length is
            # ``burst``, so the per-core demand is roughly
            # burst / (burst + think) transactions per cycle.
            if self.burst_left > 0:
                self.burst_left -= 1
                self.next_issue = now + 1
            else:
                self.burst_left = int(tr.rng.geometric(1.0 / p["burst"]))
                self.next_issue = now + p["think"]
            net.nis[self.id].source(pkt)
            if p["wb_frac"] > 0 and tr.rng.random() < p["wb_frac"]:
                wb = Packet(self.id, home, MessageClass.WRITEBACK, now)
                wb.measured = tr.in_window(now)
                if wb.measured:
                    tr.measured_generated += 1
                net.nis[self.id].source(wb)

    # -- LLC / consumer side ------------------------------------------------
    def on_local(self, ni, pkt) -> None:
        """Handle a message whose source and destination are this node
        (e.g. the forwarded owner is the requester itself): it never enters
        the network but still drives the protocol."""
        if pkt.mclass == MessageClass.RESPONSE:
            txn = pkt.txn
            if txn is not None and txn.complete_cycle < 0:
                txn.complete_cycle = pkt.eject_cycle
                owner = self.traffic.nodes[txn.core]
                owner.outstanding -= 1
                owner.completed += 1
                self.traffic.completed += 1
        elif pkt.mclass in (MessageClass.REQUEST, MessageClass.FORWARD):
            # Local hits bypass the bounded service queue (no NoC involved).
            self.service.append((pkt.eject_cycle +
                                 self.traffic.params["service_latency"], pkt))

    def consume(self, ni, now: int) -> None:
        tr = self.traffic
        p = tr.params
        net = ni.net
        # 1. Sink classes are always consumable (Lemma 3's premise).
        resp_q = ni.ej[MessageClass.RESPONSE].q
        while resp_q:
            pkt = resp_q.popleft()
            txn = pkt.txn
            if txn is not None and txn.complete_cycle < 0:
                txn.complete_cycle = now
                owner = net.nis[txn.core].consumer
                owner.outstanding -= 1
                owner.completed += 1
                tr.completed += 1
        for cls in (MessageClass.UNBLOCK, MessageClass.DMA,
                    MessageClass.WRITEBACK):
            ni.ej[cls].q.clear()
        # 2. Requests/forwards move into the bounded service queue.
        for cls in (MessageClass.REQUEST, MessageClass.FORWARD):
            q = ni.ej[cls].q
            while q and len(self.service) < p["service_depth"]:
                pkt = q.popleft()
                self.service.append((now + p["service_latency"], pkt))
        # 3. Serve: emit the response (or a forward for 3-hop transactions).
        while self.service and self.service[0][0] <= now:
            ready, req = self.service[0]
            txn = req.txn
            if req.mclass == MessageClass.REQUEST and \
                    tr.rng.random() < p["fwd_frac"]:
                owner = tr.pick_home(self.id)
                out = Packet(self.id, owner, MessageClass.FORWARD, now)
            else:
                dst = txn.core if txn is not None else req.src
                out = Packet(self.id, dst, MessageClass.RESPONSE, now)
            out.txn = txn
            out.measured = tr.in_window(now)
            if out.measured:
                tr.measured_generated += 1
            self.service.popleft()
            ni.source(out)


class CoherenceTraffic:
    """Closed-loop traffic driver (the paper's "Application Traffic")."""

    DEFAULTS = dict(
        mshrs=16,
        think=20,
        burst=4,
        service_latency=20,
        service_depth=8,
        fwd_frac=0.1,
        wb_frac=0.15,
        locality=0.0,     # fraction of requests kept within 2 hops
        hotspot=0.0,      # fraction of requests aimed at hotspot homes
        n_hotspots=4,
    )

    def __init__(self, txns_per_core: int = 200, seed: int = 1, **params):
        unknown = set(params) - set(self.DEFAULTS)
        if unknown:
            raise ValueError(f"unknown coherence params: {sorted(unknown)}")
        self.params = {**self.DEFAULTS, **params}
        self.txns_per_core = txns_per_core
        self.rng = np.random.default_rng(seed)
        self.next_tid = 0
        self.completed = 0
        self.measured_generated = 0
        self.measure_start = 0
        self.measure_end = 1 << 60
        self.nodes: list[NodeModel] = []
        self._net = None
        self._hotspots: list[int] = []
        self._neighbourhood: list[list[int]] = []

    # ------------------------------------------------------------------
    def bind(self, net) -> None:
        self._net = net
        n = net.mesh.n_routers
        self.nodes = [NodeModel(rid, self) for rid in range(n)]
        for rid, node in enumerate(self.nodes):
            net.nis[rid].consumer = node
        step = max(1, n // self.params["n_hotspots"])
        self._hotspots = list(range(0, n, step))[: self.params["n_hotspots"]]
        mesh = net.mesh
        self._neighbourhood = [
            [d for d in range(n) if d != rid and mesh.hops(rid, d) <= 2]
            for rid in range(n)
        ]

    def measure_window(self, start: int, end: int) -> None:
        self.measure_start = start
        self.measure_end = end

    def in_window(self, now: int) -> bool:
        return self.measure_start <= now < self.measure_end

    def pick_home(self, core: int) -> int:
        n = self._net.mesh.n_routers
        p = self.params
        r = self.rng.random()
        if r < p["hotspot"] and self._hotspots:
            cand = self._hotspots[int(self.rng.integers(len(self._hotspots)))]
            if cand != core:
                return cand
        if r < p["hotspot"] + p["locality"] and self._neighbourhood[core]:
            near = self._neighbourhood[core]
            return near[int(self.rng.integers(len(near)))]
        d = int(self.rng.integers(n - 1))
        return d if d < core else d + 1

    # ------------------------------------------------------------------
    def generate(self, net, now: int) -> None:
        for node in self.nodes:
            node.issue_step(net, now)

    def done(self) -> bool:
        return self.completed >= self.txns_per_core * len(self.nodes)

    @property
    def total_txns(self) -> int:
        return self.txns_per_core * len(self.nodes)

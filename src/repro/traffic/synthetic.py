"""Synthetic traffic patterns (Table II: Uniform, Transpose, Shuffle, plus
Bit Rotation / Bit Complement used in Fig. 7) with a mix of 1-flit and
5-flit packets.

Injection is an open-loop Bernoulli process per node.  Generation is done
in vectorized chunks (numpy) so the per-cycle cost of the Python simulator
stays low.
"""

from __future__ import annotations

import numpy as np

from repro.network.packet import MessageClass, Packet

#: Message-class mix of the 1-flit / 5-flit synthetic traffic.  The skew
#: follows what coherence protocols actually put on the wire (requests and
#: data responses dominate; the other classes trickle) — this is what makes
#: 6-VN over-provisioning costly for the baselines, the paper's core
#: motivation: most VNs idle while the loaded classes starve for VCs.
_CLASS_MIX = (
    (MessageClass.REQUEST, 0.50),
    (MessageClass.RESPONSE, 0.30),
    (MessageClass.FORWARD, 0.08),
    (MessageClass.WRITEBACK, 0.08),
    (MessageClass.UNBLOCK, 0.03),
    (MessageClass.DMA, 0.01),
)
_MIX_CLASSES = [int(c) for c, _w in _CLASS_MIX]
_MIX_CUM = []
_acc = 0.0
for _c, _w in _CLASS_MIX:
    _acc += _w
    _MIX_CUM.append(_acc)


def _bits(n: int) -> int:
    b = n.bit_length() - 1
    if 1 << b != n:
        raise ValueError(f"pattern needs a power-of-two node count, got {n}")
    return b


def dest_uniform(src: int, n: int, rng) -> int:
    d = int(rng.integers(0, n - 1))
    return d if d < src else d + 1


def dest_transpose(src: int, n: int, rows: int, cols: int) -> int:
    x, y = src % cols, src // cols
    if rows != cols:
        raise ValueError("transpose requires a square mesh")
    return x * cols + y


def dest_shuffle(src: int, n: int) -> int:
    b = _bits(n)
    return ((src << 1) | (src >> (b - 1))) & (n - 1)


def dest_bit_rotation(src: int, n: int) -> int:
    b = _bits(n)
    return ((src >> 1) | ((src & 1) << (b - 1))) & (n - 1)


def dest_bit_complement(src: int, n: int) -> int:
    return (~src) & (n - 1)


def dest_bit_reverse(src: int, n: int) -> int:
    b = _bits(n)
    out = 0
    for i in range(b):
        out |= ((src >> i) & 1) << (b - 1 - i)
    return out


PATTERNS = ("uniform", "transpose", "shuffle", "bit_rotation",
            "bit_complement", "bit_reverse")


class SyntheticTraffic:
    """Open-loop Bernoulli traffic following a named pattern."""

    CHUNK = 256

    def __init__(self, pattern: str, rate: float, seed: int = 1,
                 stop: int | None = None):
        if pattern not in PATTERNS:
            raise ValueError(f"unknown pattern {pattern!r}")
        self.pattern = pattern
        self.rate = rate
        #: last generation cycle (exclusive); None = open-loop forever.
        #: Fault runs stop generation after the measurement window so a
        #: wedged network stalls globally and the watchdog can fire
        #: instead of background traffic masking the stuck packets.
        self.stop = stop
        self.rng = np.random.default_rng(seed)
        self.measure_start = 1 << 60
        self.measure_end = 1 << 60
        self.measured_generated = 0
        self._by_cycle: dict[int, list] = {}
        self._chunk_end = 0
        #: start cycle of the current chunk and the per-cycle event counts
        #: within it (exact, post src==dst filtering).  The replica-batch
        #: scheduler reads these to prove a cycle is event-free — and so
        #: that skipping a replica's ``generate`` call on such a cycle is
        #: a no-op by construction.
        self._chunk_start = 0
        self._chunk_counts = None
        self._net = None
        self._fixed_dst: list[int] | None = None

    # ------------------------------------------------------------------
    def bind(self, net) -> None:
        self._net = net
        n = net.mesh.n_routers
        rows, cols = net.mesh.rows, net.mesh.cols
        if self.pattern == "uniform":
            self._fixed_dst = None
        else:
            fn = {
                "transpose": lambda s: dest_transpose(s, n, rows, cols),
                "shuffle": lambda s: dest_shuffle(s, n),
                "bit_rotation": lambda s: dest_bit_rotation(s, n),
                "bit_complement": lambda s: dest_bit_complement(s, n),
                "bit_reverse": lambda s: dest_bit_reverse(s, n),
            }[self.pattern]
            self._fixed_dst = [fn(s) for s in range(n)]

    def measure_window(self, start: int, end: int) -> None:
        self.measure_start = start
        self.measure_end = end

    # ------------------------------------------------------------------
    def _fill(self, start: int) -> None:
        n = self._net.mesh.n_routers
        chunk = self.CHUNK
        hits = self.rng.random((chunk, n)) < self.rate
        cyc_idx, src_idx = np.nonzero(hits)
        k = len(cyc_idx)
        counts = np.bincount(cyc_idx, minlength=chunk)
        if k:
            cls_pick = np.searchsorted(_MIX_CUM, self.rng.random(k))
            if self.pattern == "uniform":
                dsts = self.rng.integers(0, n - 1, size=k)
        by_cycle = self._by_cycle
        for i in range(k):
            src = int(src_idx[i])
            if self._fixed_dst is not None:
                dst = self._fixed_dst[src]
            else:
                d = int(dsts[i])
                dst = d if d < src else d + 1
            if dst == src:
                counts[cyc_idx[i]] -= 1
                continue  # fixed-pattern fixed points do not inject
            cls = _MIX_CLASSES[min(int(cls_pick[i]), 5)]
            cycle = start + int(cyc_idx[i])
            by_cycle.setdefault(cycle, []).append((src, dst, int(cls)))
        self._chunk_start = start
        self._chunk_counts = counts
        self._chunk_end = start + chunk

    def generate(self, net, now: int) -> None:
        if self.stop is not None and now >= self.stop:
            return
        if now >= self._chunk_end:
            self._fill(now)
        events = self._by_cycle.pop(now, None)
        if not events:
            return
        measured = self.measure_start <= now < self.measure_end
        if measured:
            self.measured_generated += len(events)
        # Inlined NI.source fast path: _fill never emits src == dst, so
        # every event goes straight to the source queue.  A test that
        # patches ``source`` onto the NI instance keeps the full call
        # (which then emits 'generated' itself — no double counting).
        nis = net.nis
        exposed = net.fault_exposed
        inj_active = net._inj_active
        obs = net.obs
        queued = 0
        for src, dst, cls in events:
            pkt = Packet(src, dst, cls, now)
            pkt.measured = measured
            ni = nis[src]
            if "source" in ni.__dict__:
                ni.source(pkt)
                continue
            if obs is not None:
                obs.emit("generated", now, pkt.pid,
                         src=src, dst=dst, mclass=cls)
            if exposed:
                pkt.fault_exposed = True
            ni.pending.append(pkt)
            ni._inj_skip = 0
            queued += 1
            inj_active.add(src)
        net.pending_total += queued

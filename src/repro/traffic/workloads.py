"""PARSEC / SPLASH-2 workload substitutes.

We cannot run x86 full-system benchmarks (gem5/Ruby); each benchmark is
replaced by a parameter preset for :class:`CoherenceTraffic` chosen to echo
its published communication character (see DESIGN.md §5):

* **Radix** — all-to-all key exchange: high intensity, no locality.
* **Canneal** — random-graph swaps: high intensity, irregular, large bursts.
* **FFT** — staged transposes: bursty all-to-all.
* **FMM** — tree traversal: moderate intensity, strong locality.
* **Lu_cb** — blocked factorization: low/moderate, very strong locality.
* **Streamcluster** — shared medoid data: hotspot-heavy.
* **Volrend** — ray casting: light traffic.
* **Barnes** — octree body interactions: moderate, irregular with locality.

The *shape* that matters for the paper's Figs. 10/12/13(b) is the relative
pressure each load places on the network, not instruction-level fidelity.
"""

from __future__ import annotations

from repro.traffic.coherence import CoherenceTraffic

WORKLOADS: dict[str, dict] = {
    # think times are calibrated so a 64-core run sits at the low-to-
    # moderate loads real full-system traffic produces (the paper's Fig. 10
    # average latencies are tens of cycles, i.e. below saturation), with
    # Radix/Canneal/FFT the heavy end and Volrend the light end.
    "Radix": dict(think=200, burst=5, locality=0.0, hotspot=0.0,
                  fwd_frac=0.10, wb_frac=0.20),
    "Canneal": dict(think=220, burst=6, locality=0.1, hotspot=0.05,
                    fwd_frac=0.15, wb_frac=0.25),
    "FFT": dict(think=260, burst=8, locality=0.0, hotspot=0.0,
                fwd_frac=0.05, wb_frac=0.15),
    "FMM": dict(think=300, burst=3, locality=0.45, hotspot=0.0,
                fwd_frac=0.10, wb_frac=0.10),
    "Lu_cb": dict(think=420, burst=2, locality=0.6, hotspot=0.0,
                  fwd_frac=0.05, wb_frac=0.10),
    "Streamcluster": dict(think=260, burst=4, locality=0.1, hotspot=0.35,
                          fwd_frac=0.10, wb_frac=0.10),
    "Volrend": dict(think=400, burst=2, locality=0.3, hotspot=0.0,
                    fwd_frac=0.05, wb_frac=0.05),
    "Barnes": dict(think=280, burst=3, locality=0.35, hotspot=0.05,
                   fwd_frac=0.15, wb_frac=0.15),
}


def workload_traffic(name: str, txns_per_core: int = 200,
                     seed: int = 1) -> CoherenceTraffic:
    """Build the coherence traffic preset for a named benchmark."""
    if name not in WORKLOADS:
        raise ValueError(f"unknown workload {name!r}; "
                         f"choose from {sorted(WORKLOADS)}")
    return CoherenceTraffic(txns_per_core=txns_per_core, seed=seed,
                            **WORKLOADS[name])

"""Traffic models: synthetic patterns, coherence transactions, workloads."""

from repro.traffic.synthetic import SyntheticTraffic, PATTERNS
from repro.traffic.coherence import CoherenceTraffic
from repro.traffic.workloads import WORKLOADS, workload_traffic

__all__ = [
    "SyntheticTraffic",
    "PATTERNS",
    "CoherenceTraffic",
    "WORKLOADS",
    "workload_traffic",
]

"""Scenario experiments: declarative workloads through the campaign layer.

Three families, all cache-first (the scenario token and the topology ride
in the point's identity, so the content-addressed run cache makes reruns
free):

* **scenario points** — every built-in :data:`~repro.scenario.spec.
  SCENARIOS` spec (bursty/MMPP, shifting hotspots, mixed lanes, ramp)
  under each scheme, seed-replicated; chunk-aligned specs fold into
  lock-step replica batches exactly like plain synthetic points.
* **irregular points** — the §III-F Eulerian-circuit partition sweep:
  ring/star/torus/hypercube families plus 16x16 and 32x32 mesh graphs,
  across partition counts, each point deriving, verifying and
  characterising an :class:`~repro.core.irregular.IrregularSchedule`.
* **large-mesh scenario points** (full mode) — the bursty spec simulated
  on 16x16 and 32x32 meshes through the same campaign path.
"""

from __future__ import annotations

from repro.experiments.common import (cached_points, fmt_table, fnum,
                                      mean_result, synthetic_config)
from repro.scenario.spec import SCENARIOS, get_scenario
from repro.sim.parallel import Point

#: scheme set for scenario simulations (paper's headline pair)
SCHEMES = [
    ("FastPass", "fastpass", {"n_vcs": 4}),
    ("EscapeVC", "escapevc", {}),
]

#: §III-F topology families for the irregular sweep; the mesh entries are
#: the 16x16/32x32 points the ROADMAP asks for (the derivation chain runs
#: on the full graph — circuit length 2*channels — regardless of size).
TOPOLOGIES = ("ring:8", "star:6", "torus:4x4", "hypercube:4",
              "mesh:16x16", "mesh:32x32")

PARTITIONS = (2, 4, 8)


def run(quick: bool = True, scenarios=None, topologies=None,
        schemes=None, seeds=None) -> dict:
    """Scenario + irregular sweep; returns table rows per family."""
    scenario_names = list(scenarios) if scenarios else sorted(SCENARIOS)
    topo_names = list(topologies) if topologies else list(TOPOLOGIES)
    scheme_set = schemes or SCHEMES
    seed_set = list(seeds) if seeds else ([1, 2] if quick else [1, 2, 3, 4])
    cfg = synthetic_config(quick)

    rows = []
    for name in scenario_names:
        spec = get_scenario(name)
        for label, scheme, kwargs in scheme_set:
            points = [Point.make_scenario(scheme, spec, seed=s, **kwargs)
                      for s in seed_set]
            res = mean_result(cached_points(points, cfg))
            rows.append({
                "scenario": spec.name, "scheme": label,
                "mean_rate": spec.mean_rate(), "phases": len(spec.phases),
                "aligned": spec.chunk_aligned(256),
                "avg_latency": res.avg_latency,
                "p99_latency": res.p99_latency,
                "throughput": res.throughput,
                "delivered": res.ejected,
                "replicas": len(seed_set),
            })

    irregular = []
    topo_points = [Point.make_irregular(t, partitions=p)
                   for t in topo_names for p in PARTITIONS]
    for point, res in zip(topo_points,
                          cached_points(topo_points, cfg)):
        e = res.extra
        irregular.append({
            "topology": e.get("topology", point.pattern),
            "partitions": e.get("partitions"),
            "routers": e.get("routers"),
            "channels": e.get("channels"),
            "circuit_len": e.get("circuit_len"),
            "seg_min": e.get("segment_min"),
            "seg_max": e.get("segment_max"),
            "delivery_bound": e.get("delivery_bound"),
            "covers_all": e.get("covers_all", False),
        })

    meshes = []
    if not quick:
        spec = get_scenario("bursty")
        for rows_, cols_ in ((16, 16), (32, 32)):
            big = synthetic_config(quick=True, rows=rows_, cols=cols_)
            for label, scheme, kwargs in scheme_set:
                res = cached_points(
                    [Point.make_scenario(scheme, spec, seed=1, **kwargs)],
                    big)[0]
                meshes.append({
                    "mesh": f"{rows_}x{cols_}", "scheme": label,
                    "scenario": spec.name,
                    "avg_latency": res.avg_latency,
                    "throughput": res.throughput,
                    "delivered": res.ejected,
                })

    return {"scenarios": rows, "irregular": irregular, "meshes": meshes}


def format_result(result: dict) -> str:
    out = ["Declarative scenarios (mean over seed replicas):"]
    out.append(fmt_table(
        ["scenario", "scheme", "rate", "phases", "lat", "p99", "thr",
         "delivered"],
        [[r["scenario"], r["scheme"], fnum(r["mean_rate"], 3),
          r["phases"], fnum(r["avg_latency"]), fnum(r["p99_latency"]),
          fnum(r["throughput"], 3), r["delivered"]]
         for r in result["scenarios"]]))
    out.append("")
    out.append("Irregular topologies (Sec. III-F partition derivation, "
               "verified link-disjoint + full coverage):")
    out.append(fmt_table(
        ["topology", "P", "routers", "channels", "circuit", "seg",
         "bound", "covers"],
        [[r["topology"], r["partitions"], r["routers"], r["channels"],
          r["circuit_len"], f"{r['seg_min']}-{r['seg_max']}",
          r["delivery_bound"], "yes" if r["covers_all"] else "NO"]
         for r in result["irregular"]]))
    if result.get("meshes"):
        out.append("")
        out.append("Large-mesh scenario points:")
        out.append(fmt_table(
            ["mesh", "scheme", "scenario", "lat", "thr", "delivered"],
            [[r["mesh"], r["scheme"], r["scenario"],
              fnum(r["avg_latency"]), fnum(r["throughput"], 3),
              r["delivered"]] for r in result["meshes"]]))
    return "\n".join(out)


# ----------------------------------------------------------------------
def sweep(quick: bool = True, scenario: str = "bursty", scales=None,
          schemes=None, seeds=None) -> dict:
    """Load-scale sweep of one scenario: every phase rate multiplied by
    each factor, each sweep point a seed-replicated campaign point."""
    spec = get_scenario(scenario)
    scale_set = list(scales) if scales else [0.5, 1.0, 1.5, 2.0]
    scheme_set = schemes or SCHEMES
    seed_set = list(seeds) if seeds else ([1, 2] if quick else [1, 2, 3])
    cfg = synthetic_config(quick)
    rows = []
    for label, scheme, kwargs in scheme_set:
        for factor in scale_set:
            scaled = spec.scaled(factor) if factor != 1.0 else spec
            points = [Point.make_scenario(scheme, scaled, seed=s,
                                          **kwargs) for s in seed_set]
            res = mean_result(cached_points(points, cfg))
            rows.append({
                "scenario": spec.name, "scheme": label, "scale": factor,
                "mean_rate": scaled.mean_rate(),
                "avg_latency": res.avg_latency,
                "p99_latency": res.p99_latency,
                "throughput": res.throughput,
                "deadlocked": res.deadlocked,
            })
    return {"scenario": spec.name, "rows": rows}


def format_sweep(result: dict) -> str:
    out = [f"Scenario load sweep — {result['scenario']}:"]
    out.append(fmt_table(
        ["scheme", "scale", "rate", "lat", "p99", "thr", "dead"],
        [[r["scheme"], fnum(r["scale"], 2), fnum(r["mean_rate"], 3),
          fnum(r["avg_latency"]), fnum(r["p99_latency"]),
          fnum(r["throughput"], 3), "!" if r["deadlocked"] else ""]
         for r in result["rows"]]))
    return "\n".join(out)

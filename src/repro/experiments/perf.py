"""Performance-regression harness: ``repro-experiments perf snapshot``.

Runs a fixed micro-sweep (low-load and moderate-load uniform-random points
for FastPass and EscapeVC on the paper's 8x8 mesh), times each point, and
writes a ``BENCH_<n>.json`` snapshot with cycles/sec per point.  With
``--compare BASELINE.json`` it prints per-point speedup ratios and exits
non-zero when any point regresses by more than the allowed fraction
(default: ratio < 0.75, i.e. >25% slower).

The comparison also cross-checks the *simulation results* of each point
(injected/ejected/latency/deadlock) against the baseline: the engine is
required to stay bit-identical across optimisation work, so any drift is
reported as a hard failure unless ``--allow-result-drift`` is given.

Points run directly through :class:`repro.sim.engine.Simulation` — never
through the campaign cache — so the measured wall time is always a real
execution.

``--soa`` adds the SoA-kernel A/B: the saturated :data:`SOA_POINTS`
(uniform/transpose at 0.2 and 0.3 on 8x8 and 16x16 meshes) timed
interleaved under the active-set engine and the ``engine="soa"``
vectorized kernel, bit-identity checked every repeat (drift exits 2),
with the gated blocked-regime points required to clear
``--soa-fail-under`` (default 2x) and the record committed as
``BENCH_soa.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.config import SimConfig

#: Workload of one snapshot.  ``(scheme, scheme_kwargs, pattern, rate)`` —
#: the low-load (0.02-0.10) points are the regime the acceptance gate
#: watches; the 0.30 points keep the loaded-mesh path honest.
SNAPSHOT_POINTS = [
    ("fastpass", {"n_vcs": 4}, "uniform", 0.02),
    ("fastpass", {"n_vcs": 4}, "uniform", 0.05),
    ("fastpass", {"n_vcs": 4}, "uniform", 0.10),
    ("fastpass", {"n_vcs": 4}, "uniform", 0.30),
    ("escapevc", {}, "uniform", 0.02),
    ("escapevc", {}, "uniform", 0.05),
    ("escapevc", {}, "uniform", 0.10),
    ("escapevc", {}, "uniform", 0.30),
]

SNAPSHOT_SEED = 7
DEFAULT_FAIL_UNDER = 0.75

#: Saturated-regime A/B workload for the SoA-kernel gate:
#: ``(scheme, scheme_kwargs, pattern, rate, rows, cols)``.  Rates 0.2
#: and 0.3 put every point past (or at) saturation — the regime the SoA
#: kernel targets — on the paper's 8x8 mesh plus a 16x16 scaling point.
SOA_POINTS = [
    ("fastpass", {}, "uniform", 0.2, 8, 8),
    ("fastpass", {}, "uniform", 0.3, 8, 8),
    ("fastpass", {}, "transpose", 0.2, 8, 8),
    ("fastpass", {}, "transpose", 0.3, 8, 8),
    ("escapevc", {}, "uniform", 0.2, 8, 8),
    ("escapevc", {}, "uniform", 0.3, 8, 8),
    ("fastpass", {}, "uniform", 0.2, 16, 16),
    ("fastpass", {}, "uniform", 0.3, 16, 16),
]

#: floor for the SoA gate: the kernel must be >= 2x the active-set
#: engine on the gated (blocked-saturated) points — the PR's acceptance
#: number, with the reference machine measuring 2.7-7.5x (BENCH_soa.json)
DEFAULT_SOA_FAIL_UNDER = 2.0

#: floor for the replica-batched SoA gate: one fused R-replica batch
#: must never *materially* lose to R scalar-SoA runs on the gated
#: saturated points.  The baseline here is already vectorized per seed,
#: so the replica axis buys shared construction (large at 16x16, where
#: per-run route warming + table builds are ~18% of a scalar run) and
#: fused-screen dispatch — not another kernel-sized multiplier.  The
#: committed BENCH_soa_batch.json measures ~1.05x at 16x16, ~0.9x at
#: 8x8 (eight leased working sets exceed cache where one replica's
#: fits) for a wall-weighted aggregate of ~1.01x; the floor sits at
#: 0.9 so parity-within-noise passes on any machine, and bit-identity
#: drift stays the real (exit-2) gate.
DEFAULT_SOA_BATCH_FAIL_UNDER = 0.9

#: rates whose aggregate batch-vs-scalar speedup the batch gate watches
#: (low load is where R-replica sweeps spend their time)
BATCH_GATE_RATES = (0.02, 0.05)
#: default floor for the batch gate: the measured aggregate low-load
#: speedup on the reference machine minus headroom for CI noise (see
#: BENCH_batch.json and DESIGN §12 for the measured decomposition)
DEFAULT_BATCH_FAIL_UNDER = 1.25

#: RunResult fields that must be bit-identical run-to-run for a fixed
#: seed — the differential proof that engine work changed speed, not
#: behaviour.  (NaN != NaN, so the check treats two NaNs as equal.)
RESULT_FIELDS = ("injected", "ejected", "avg_latency", "p99_latency",
                 "deadlocked", "cycles")


def snapshot_config(engine: str = "active") -> SimConfig:
    return SimConfig(rows=8, cols=8, warmup_cycles=200,
                     measure_cycles=1000, drain_cycles=1500,
                     engine=engine)


def soa_config(rows: int, cols: int, engine: str) -> SimConfig:
    """Same protocol as :func:`snapshot_config` on a sized mesh."""
    return SimConfig(rows=rows, cols=cols, warmup_cycles=200,
                     measure_cycles=1000, drain_cycles=1500,
                     engine=engine)


def point_key(scheme: str, kwargs: dict, pattern: str, rate: float) -> str:
    kw = ",".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
    return f"{scheme}({kw})/{pattern}@{rate:g}"


def _run_one(scheme_name: str, kwargs: dict, pattern: str, rate: float,
             repeat: int, engine: str = "active") -> dict:
    from repro.schemes import get_scheme
    from repro.sim.engine import Simulation
    from repro.traffic.synthetic import SyntheticTraffic

    best = None
    res = None
    sim = None
    for _ in range(max(1, repeat)):
        sim = Simulation(snapshot_config(engine),
                         get_scheme(scheme_name, **kwargs),
                         SyntheticTraffic(pattern, rate, seed=SNAPSHOT_SEED))
        t0 = time.perf_counter()
        res = sim.run()
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
    return {
        "key": point_key(scheme_name, kwargs, pattern, rate),
        "scheme": scheme_name,
        "scheme_kwargs": kwargs,
        "pattern": pattern,
        "rate": rate,
        "engine": sim.engine_used,
        "cycles": res.cycles,
        "wall_s": best,
        "cycles_per_sec": res.cycles / best if best else float("inf"),
        "injected": res.injected,
        "ejected": res.ejected,
        "avg_latency": res.avg_latency,
        "p99_latency": res.p99_latency,
        "deadlocked": res.deadlocked,
    }


def run_snapshot(repeat: int = 1, label: str | None = None,
                 engine: str = "active") -> dict:
    points = []
    for scheme, kwargs, pattern, rate in SNAPSHOT_POINTS:
        pt = _run_one(scheme, kwargs, pattern, rate, repeat, engine)
        print(f"  {pt['key']:40s} {pt['cycles']:>6d} cycles  "
              f"{pt['wall_s'] * 1e3:8.1f} ms  "
              f"{pt['cycles_per_sec']:10.0f} cyc/s")
        points.append(pt)
    total_wall = sum(p["wall_s"] for p in points)
    total_cycles = sum(p["cycles"] for p in points)
    return {
        "kind": "repro-perf-snapshot",
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "seed": SNAPSHOT_SEED,
        "repeat": repeat,
        "engine": engine,
        "total_wall_s": total_wall,
        "total_cycles_per_sec": (total_cycles / total_wall
                                 if total_wall else float("inf")),
        "points": points,
    }


# -- replica-batch A/B ---------------------------------------------------

def _result_fields(res) -> dict:
    return {f: getattr(res, f) for f in RESULT_FIELDS}


def run_batch_snapshot(replicas: int = 8, repeat: int = 3) -> dict:
    """Interleaved A/B: R scalar ``run_point`` calls vs one R-replica
    lock-step batch, per snapshot point.

    Both sides pay full, honest cost: every scalar run constructs its own
    network (the per-process reality before this PR — the process-level
    prewarm cache is cleared first so nothing leaks between sides), and
    the batch side times construction *and* execution of the whole
    batch.  A and B alternate within each repeat, best-of-N per side, so
    machine noise hits both equally — same protocol as the PR-2 engine
    gate.  Every repeat also cross-checks that each replica's result is
    bit-identical to its scalar twin; any mismatch raises.
    """
    from repro.schemes import get_scheme
    from repro.sim.batch.engine import ReplicaBatch
    from repro.sim.batch.shared import clear_process_cache
    from repro.sim.runner import run_point

    cfg = snapshot_config()
    seeds = [SNAPSHOT_SEED + i for i in range(replicas)]
    points = []
    for scheme, kwargs, pattern, rate in SNAPSHOT_POINTS:
        key = point_key(scheme, kwargs, pattern, rate)
        best_scalar = best_batch = None
        cycles = 0
        for _ in range(max(1, repeat)):
            clear_process_cache()
            t0 = time.perf_counter()
            scalar = [run_point(get_scheme(scheme, **kwargs), pattern,
                                rate, cfg, seed=s) for s in seeds]
            wall_scalar = time.perf_counter() - t0
            t0 = time.perf_counter()
            batch = ReplicaBatch(cfg, scheme, pattern, rate, seeds,
                                 scheme_kwargs=kwargs)
            batched = batch.run()
            wall_batch = time.perf_counter() - t0
            for s, a, b in zip(seeds, scalar, batched):
                fa, fb = _result_fields(a), _result_fields(b)
                if any(not _same(fa[f], fb[f]) for f in RESULT_FIELDS):
                    raise RuntimeError(
                        f"replica batch drifted from scalar at {key} "
                        f"seed {s}: {fa} != {fb}")
            cycles = sum(r.cycles for r in batched)
            if best_scalar is None or wall_scalar < best_scalar:
                best_scalar = wall_scalar
            if best_batch is None or wall_batch < best_batch:
                best_batch = wall_batch
        pt = {
            "key": key,
            "scheme": scheme,
            "scheme_kwargs": kwargs,
            "pattern": pattern,
            "rate": rate,
            "cycles": cycles,
            "scalar_wall_s": best_scalar,
            "batch_wall_s": best_batch,
            "scalar_cycles_per_sec": cycles / best_scalar,
            "batch_cycles_per_sec": cycles / best_batch,
            "speedup": best_scalar / best_batch,
            "identical": True,
        }
        print(f"  {key:40s} scalar {best_scalar * 1e3:8.1f} ms  "
              f"batch {best_batch * 1e3:8.1f} ms  "
              f"{pt['speedup']:5.2f}x")
        points.append(pt)

    def _agg(pts):
        s = sum(p["scalar_wall_s"] for p in pts)
        b = sum(p["batch_wall_s"] for p in pts)
        return s / b if b else float("inf")

    lowload = [p for p in points if p["rate"] in BATCH_GATE_RATES]
    snap = {
        "kind": "repro-batch-snapshot",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "seed": SNAPSHOT_SEED,
        "replicas": replicas,
        "repeat": repeat,
        "points": points,
        "lowload_speedup": _agg(lowload),
        "overall_speedup": _agg(points),
    }
    print(f"  aggregate speedup: low-load {snap['lowload_speedup']:.2f}x "
          f"(rates {BATCH_GATE_RATES}), "
          f"overall {snap['overall_speedup']:.2f}x")
    return snap


# -- SoA-kernel A/B ------------------------------------------------------

class ResultDrift(RuntimeError):
    """Two engines produced different simulation results for one seed —
    the bit-identity contract is broken, which is always a hard error
    (exit 2), never a perf number."""


def _soa_gated(scheme: str, pattern: str) -> bool:
    """True for the points the >=2x speedup gate watches.

    The SoA kernel targets the *blocked* saturated regime — many ready
    heads contending for few credits, where the vectorized screen
    replaces per-head python scans.  fastpass/uniform at rates >= 0.2
    is that regime on both mesh sizes.  transpose and escapevc stay
    free-flowing at these rates (few simultaneous ready heads), where
    the scalar active-set loop is already near-optimal; those points
    are recorded for the record but not speed-gated.
    """
    return scheme == "fastpass" and pattern == "uniform"


def run_soa_snapshot(repeat: int = 3) -> dict:
    """Interleaved A/B: active-set scalar engine vs the SoA kernel, per
    saturated point.

    Same protocol as the batch gate: A and B alternate within each
    repeat (best-of-N per side) so machine noise hits both equally, and
    every repeat cross-checks the two engines' simulation results
    field-by-field — any mismatch raises :class:`ResultDrift`.  The SoA
    side must actually run on the kernel: a silent fallback to the
    scalar path would make the A/B meaningless, so it raises too.
    """
    from repro.schemes import get_scheme
    from repro.sim import soa
    from repro.sim.engine import Simulation
    from repro.traffic.synthetic import SyntheticTraffic

    soa.require_numpy()
    points = []
    for scheme, kwargs, pattern, rate, rows, cols in SOA_POINTS:
        key = (point_key(scheme, kwargs, pattern, rate)
               + f"/{rows}x{cols}")
        best = {"active": None, "soa": None}
        cycles = 0
        for _ in range(max(1, repeat)):
            fields = {}
            for engine in ("active", "soa"):
                sim = Simulation(
                    soa_config(rows, cols, engine),
                    get_scheme(scheme, **kwargs),
                    SyntheticTraffic(pattern, rate, seed=SNAPSHOT_SEED))
                t0 = time.perf_counter()
                res = sim.run()
                wall = time.perf_counter() - t0
                if engine == "soa" and sim.engine_used != "soa":
                    raise RuntimeError(
                        f"SoA side of {key} ran as "
                        f"{sim.engine_used!r}; the A/B would compare "
                        "the scalar engine against itself")
                fields[engine] = _result_fields(res)
                cycles = res.cycles
                if best[engine] is None or wall < best[engine]:
                    best[engine] = wall
            if any(not _same(fields["active"][f], fields["soa"][f])
                   for f in RESULT_FIELDS):
                raise ResultDrift(
                    f"SoA engine drifted from the active-set engine "
                    f"at {key}: {fields['active']} != {fields['soa']}")
        pt = {
            "key": key,
            "scheme": scheme,
            "scheme_kwargs": kwargs,
            "pattern": pattern,
            "rate": rate,
            "rows": rows,
            "cols": cols,
            "cycles": cycles,
            "active_wall_s": best["active"],
            "soa_wall_s": best["soa"],
            "active_cycles_per_sec": cycles / best["active"],
            "soa_cycles_per_sec": cycles / best["soa"],
            "speedup": best["active"] / best["soa"],
            "identical": True,
            "gated": _soa_gated(scheme, pattern),
        }
        mark = "  [gate]" if pt["gated"] else ""
        print(f"  {key:46s} active {best['active'] * 1e3:8.1f} ms  "
              f"soa {best['soa'] * 1e3:8.1f} ms  "
              f"{pt['speedup']:5.2f}x{mark}")
        points.append(pt)
    gate_pts = [p for p in points if p["gated"]]
    snap = {
        "kind": "repro-soa-snapshot",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "seed": SNAPSHOT_SEED,
        "repeat": repeat,
        "points": points,
        "gate_points": [p["key"] for p in gate_pts],
        "gate_speedup": min(p["speedup"] for p in gate_pts),
    }
    print(f"  gate speedup (worst gated point): "
          f"{snap['gate_speedup']:.2f}x")
    return snap


def run_soa_batch_snapshot(replicas: int = 8, repeat: int = 3) -> dict:
    """Interleaved A/B: R scalar-SoA ``run_point`` calls vs one fused
    R-replica SoA batch, per saturated point.

    Both sides run the SoA kernel — the comparison isolates what the
    *replica axis* buys (one table build, one route refresh, one fused
    screen per cycle) on top of the kernel's own win over the scalar
    engine.  Same protocol as the other gates: A and B alternate within
    each repeat (best-of-N per side), both sides pay full construction
    cost after a cleared prewarm cache, and every repeat cross-checks
    each replica field-by-field against its scalar twin — any mismatch
    raises :class:`ResultDrift`.  Both sides must actually run on the
    kernel; a silent fallback raises.
    """
    from repro.schemes import get_scheme
    from repro.sim import soa
    from repro.sim.batch.engine import ReplicaBatch
    from repro.sim.batch.shared import clear_process_cache
    from repro.sim.runner import run_point

    soa.require_numpy()
    seeds = [SNAPSHOT_SEED + i for i in range(replicas)]
    points = []
    for scheme, kwargs, pattern, rate, rows, cols in SOA_POINTS:
        key = (point_key(scheme, kwargs, pattern, rate)
               + f"/{rows}x{cols}")
        cfg = soa_config(rows, cols, "soa")
        best_scalar = best_batch = None
        cycles = 0
        for _ in range(max(1, repeat)):
            clear_process_cache()
            t0 = time.perf_counter()
            scalar = [run_point(get_scheme(scheme, **kwargs), pattern,
                                rate, cfg, seed=s) for s in seeds]
            wall_scalar = time.perf_counter() - t0
            bad = [r.engine_used for r in scalar
                   if r.engine_used != "soa"]
            if bad:
                raise RuntimeError(
                    f"scalar side of {key} ran as {bad[0]!r}; the A/B "
                    "would not be measuring the SoA kernel")
            t0 = time.perf_counter()
            batch = ReplicaBatch(cfg, scheme, pattern, rate, seeds,
                                 scheme_kwargs=kwargs)
            if batch.soa is None:
                raise RuntimeError(
                    f"batched side of {key} did not attach the fused "
                    "SoA screen")
            batched = batch.run()
            wall_batch = time.perf_counter() - t0
            if batch.soa.demoted:
                raise RuntimeError(
                    f"batched side of {key} demoted replicas "
                    f"{batch.soa.demoted}; the A/B timing would mix "
                    "engines")
            for s, a, b in zip(seeds, scalar, batched):
                fa, fb = _result_fields(a), _result_fields(b)
                if any(not _same(fa[f], fb[f]) for f in RESULT_FIELDS):
                    raise ResultDrift(
                        f"batched SoA drifted from scalar SoA at {key} "
                        f"seed {s}: {fa} != {fb}")
            cycles = sum(r.cycles for r in batched)
            if best_scalar is None or wall_scalar < best_scalar:
                best_scalar = wall_scalar
            if best_batch is None or wall_batch < best_batch:
                best_batch = wall_batch
        pt = {
            "key": key,
            "scheme": scheme,
            "scheme_kwargs": kwargs,
            "pattern": pattern,
            "rate": rate,
            "rows": rows,
            "cols": cols,
            "cycles": cycles,
            "scalar_wall_s": best_scalar,
            "batch_wall_s": best_batch,
            "scalar_cycles_per_sec": cycles / best_scalar,
            "batch_cycles_per_sec": cycles / best_batch,
            "speedup": best_scalar / best_batch,
            "identical": True,
            "gated": _soa_gated(scheme, pattern),
        }
        mark = "  [gate]" if pt["gated"] else ""
        print(f"  {key:46s} scalar {best_scalar * 1e3:8.1f} ms  "
              f"batch {best_batch * 1e3:8.1f} ms  "
              f"{pt['speedup']:5.2f}x{mark}")
        points.append(pt)

    gate_pts = [p for p in points if p["gated"]]
    agg = (sum(p["scalar_wall_s"] for p in gate_pts)
           / sum(p["batch_wall_s"] for p in gate_pts))
    snap = {
        "kind": "repro-soa-batch-snapshot",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "seed": SNAPSHOT_SEED,
        "replicas": replicas,
        "repeat": repeat,
        "points": points,
        "gate_points": [p["key"] for p in gate_pts],
        "aggregate_speedup": agg,
    }
    print(f"  aggregate speedup over gated points: {agg:.2f}x "
          f"({replicas} replicas)")
    return snap


# -- snapshot files ------------------------------------------------------

def perf_dir() -> Path:
    root = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    return root / "perf"


def next_snapshot_path(directory: Path) -> Path:
    """First free ``BENCH_<n>.json`` in ``directory``."""
    taken = set()
    for p in directory.glob("BENCH_*.json"):
        stem = p.stem.split("_", 1)[1]
        if stem.isdigit():
            taken.add(int(stem))
    n = 1
    while n in taken:
        n += 1
    return directory / f"BENCH_{n}.json"


def write_snapshot(snap: dict, out: str | None) -> Path:
    if out:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
    else:
        directory = perf_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = next_snapshot_path(directory)
    path.write_text(json.dumps(snap, indent=2) + "\n")
    return path


# -- snapshot history (the perf trajectory) ------------------------------

def history_path() -> Path:
    return perf_dir() / "history.jsonl"


def append_history(snap: dict, path: Path | str | None = None) -> Path:
    """Append one compact line per snapshot to ``history.jsonl``.

    The full ``BENCH_<n>.json`` files remain the archival record; the
    history file is the cheap append-only trajectory ``perf trend``
    plots, so regressions show up as a drift over time instead of only
    pairwise against one baseline.
    """
    path = Path(path) if path is not None else history_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = {
        "created": snap.get("created", ""),
        "label": snap.get("label"),
        # The engine id travels with every row: cycles/sec trajectories
        # from different engines are different experiments, and the
        # trend printer refuses to compare them silently.
        "engine": snap.get("engine", "active"),
        "total_cycles_per_sec": snap.get("total_cycles_per_sec", 0.0),
        "points": {p["key"]: p["cycles_per_sec"] for p in snap["points"]},
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(entry) + "\n")
    return path


def load_history(path: Path | str | None = None) -> list[dict]:
    path = Path(path) if path is not None else history_path()
    if not path.exists():
        return []
    out = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


def print_trend(entries: list[dict], base: dict | None) -> None:
    """Per-engine cycles/sec trajectories, normalised to the baseline.

    Rows whose engine matches the baseline snapshot's normalise against
    it.  Rows recorded under another engine are a different experiment
    — a scalar-engine baseline says nothing about an SoA-engine row's
    regression — so instead of refusing them outright, each such engine
    normalises against its own first recorded row (marked ``*``): every
    engine gets a trajectory, and a cross-engine ratio is never printed
    (rows without an engine id predate the field and were all
    scalar-engine runs).
    """
    if not entries:
        print("  no snapshots recorded yet "
              f"(history: {history_path()})")
        return
    base_engine = base.get("engine", "active") if base else None
    base_total = base["total_cycles_per_sec"] if base else None
    base_points = {p["key"]: p["cycles_per_sec"]
                   for p in base["points"]} if base else {}
    #: first row seen per engine — the self-baseline for engines the
    #: snapshot baseline cannot normalise
    self_base: dict[str, dict] = {}
    flagged: set[str] = set()
    print(f"  {'created':20s} {'label':16s} {'engine':8s} "
          f"{'total cyc/s':>12s} {'vs base':>8s} {'worst point':>12s}")
    for e in entries:
        total = e["total_cycles_per_sec"]
        engine = e.get("engine", "active")
        if base_total and engine == base_engine:
            ref_total, ref_points = base_total, base_points
            mark = " "
        else:
            ref = self_base.setdefault(engine, e)
            ref_total = ref["total_cycles_per_sec"]
            ref_points = ref.get("points", {})
            if base_total:
                mark = "*"
                flagged.add(engine)
            else:
                mark = " "
        ratio = (f"{total / ref_total:6.2f}x{mark}" if ref_total
                 else "      -")
        worst = min((cps / ref_points[k]
                     for k, cps in e["points"].items()
                     if k in ref_points and ref_points[k]),
                    default=None) if ref_total else None
        worst_s = f"{worst:10.2f}x" if worst is not None else "         -"
        label = (e.get("label") or "-")[:16]
        print(f"  {e['created']:20s} {label:16s} {engine:8s} "
              f"{total:12.0f} {ratio:>8s} {worst_s:>12s}")
    if flagged:
        names = ", ".join(sorted(flagged))
        print(f"  (* {names} rows ran a different engine than the "
              f"{base_engine!r} baseline; each is normalised to its own "
              "engine's first recorded row — cross-engine ratios are "
              "never compared)")


# -- profiling -----------------------------------------------------------

def run_profile(top: int = 30) -> tuple[Path, Path]:
    """Profile one untimed pass of the micro-sweep with cProfile.

    Writes ``results/perf/profile/snapshot.prof`` (loadable by pstats,
    snakeviz, flameprof, or any other flamegraph renderer) plus a
    ``snapshot_top.txt`` with the top-``top`` functions by cumulative
    time.  Runs *after* the timed snapshot, so the regression gate's
    numbers never include profiler overhead.
    """
    import cProfile
    import pstats
    from io import StringIO

    out = perf_dir() / "profile"
    out.mkdir(parents=True, exist_ok=True)
    prof = cProfile.Profile()
    prof.enable()
    for scheme, kwargs, pattern, rate in SNAPSHOT_POINTS:
        _run_one(scheme, kwargs, pattern, rate, repeat=1)
    prof.disable()
    prof_path = out / "snapshot.prof"
    prof.dump_stats(prof_path)
    buf = StringIO()
    stats = pstats.Stats(prof, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    stats.sort_stats("tottime").print_stats(top)
    txt_path = out / "snapshot_top.txt"
    txt_path.write_text(buf.getvalue())
    return prof_path, txt_path


# -- comparison gate -----------------------------------------------------

def _same(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float) \
            and a != a and b != b:      # NaN == NaN for our purposes
        return True
    return a == b


def compare(new: dict, base: dict, fail_under: float,
            allow_result_drift: bool = False) -> int:
    """Print per-point ratios; return a non-zero exit code on regression
    (any point slower than ``fail_under`` x baseline) or result drift."""
    base_by_key = {p["key"]: p for p in base["points"]}
    worst = float("inf")
    drift = []
    base_engine = base.get("engine", "active")
    new_engine = new.get("engine", "active")
    if base_engine != new_engine:
        # Deliberate cross-engine comparisons (e.g. --engine soa vs the
        # scalar baseline) are allowed, but never silent.
        print(f"\n  NOTE: cross-engine comparison — baseline engine "
              f"{base_engine!r}, new {new_engine!r}")
    print(f"\n  {'point':40s} {'base cyc/s':>12s} {'new cyc/s':>12s} "
          f"{'ratio':>7s}")
    for pt in new["points"]:
        ref = base_by_key.get(pt["key"])
        if ref is None:
            print(f"  {pt['key']:40s} {'-':>12s} "
                  f"{pt['cycles_per_sec']:12.0f}   (new point)")
            continue
        ratio = pt["cycles_per_sec"] / ref["cycles_per_sec"]
        worst = min(worst, ratio)
        print(f"  {pt['key']:40s} {ref['cycles_per_sec']:12.0f} "
              f"{pt['cycles_per_sec']:12.0f} {ratio:6.2f}x")
        for field in RESULT_FIELDS:
            if field in ref and not _same(pt.get(field), ref.get(field)):
                drift.append((pt["key"], field,
                              ref.get(field), pt.get(field)))
    if worst is not float("inf"):
        print(f"  worst ratio: {worst:.2f}x "
              f"(gate: >= {fail_under:.2f}x of baseline)")
    rc = 0
    if drift:
        print("\n  RESULT DRIFT vs baseline (engine no longer "
              "bit-identical):")
        for key, field, old, cur in drift:
            print(f"    {key}: {field} {old!r} -> {cur!r}")
        if not allow_result_drift:
            rc = 2
    if worst < fail_under:
        print(f"\n  PERF REGRESSION: worst point at {worst:.2f}x of "
              f"baseline (< {fail_under:.2f}x)")
        rc = rc or 1
    return rc


# -- CLI -----------------------------------------------------------------

def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments perf",
        description="Fixed micro-sweep timing snapshots and the "
                    "perf-regression gate.")
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_snap = sub.add_parser("snapshot",
                            help="time the micro-sweep and write "
                                 "BENCH_<n>.json")
    p_snap.add_argument("--out", default=None, metavar="PATH",
                        help="snapshot path (default: results/perf/"
                             "BENCH_<n>.json)")
    p_snap.add_argument("--compare", default=None, metavar="BASELINE",
                        help="compare against a baseline snapshot and "
                             "fail on regression")
    p_snap.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="time each point N times, keep the best "
                             "(default: 1)")
    p_snap.add_argument("--label", default=None,
                        help="free-form label stored in the snapshot")
    p_snap.add_argument("--fail-under", type=float,
                        default=DEFAULT_FAIL_UNDER, metavar="R",
                        help="minimum acceptable new/baseline cycles/sec "
                             f"ratio (default: {DEFAULT_FAIL_UNDER})")
    p_snap.add_argument("--allow-result-drift", action="store_true",
                        help="demote simulation-result mismatches vs the "
                             "baseline from errors to warnings")
    p_snap.add_argument("--profile", action="store_true",
                        help="after the timed runs, cProfile one extra "
                             "pass of the sweep into results/perf/"
                             "profile/ (.prof + top-N text)")
    p_snap.add_argument("--profile-top", type=int, default=30,
                        metavar="N", help="functions to keep in the "
                                          "profile text summary")
    p_snap.add_argument("--replicas", type=int, default=0, metavar="R",
                        help="also run the replica-batch A/B (R scalar "
                             "runs vs one R-replica batch per point) and "
                             "write BENCH_batch.json")
    p_snap.add_argument("--batch-out", default=None, metavar="PATH",
                        help="batch snapshot path (default: results/"
                             "perf/BENCH_batch.json)")
    p_snap.add_argument("--batch-fail-under", type=float,
                        default=DEFAULT_BATCH_FAIL_UNDER, metavar="R",
                        help="minimum aggregate low-load batch speedup "
                             f"(default: {DEFAULT_BATCH_FAIL_UNDER})")
    p_snap.add_argument("--no-history", action="store_true",
                        help="do not append this snapshot to "
                             "results/perf/history.jsonl")
    p_snap.add_argument("--engine", default="active",
                        choices=("active", "naive", "soa"),
                        help="cycle engine for the micro-sweep; the id "
                             "is recorded in the snapshot and every "
                             "history row (default: active)")
    p_snap.add_argument("--soa", action="store_true",
                        help="also run the SoA-kernel A/B (active-set "
                             "vs soa engine on the saturated points) "
                             "and write BENCH_soa.json")
    p_snap.add_argument("--soa-out", default=None, metavar="PATH",
                        help="SoA snapshot path (default: results/perf/"
                             "BENCH_soa.json)")
    p_snap.add_argument("--soa-fail-under", type=float,
                        default=DEFAULT_SOA_FAIL_UNDER, metavar="R",
                        help="minimum SoA speedup on the gated "
                             "saturated points "
                             f"(default: {DEFAULT_SOA_FAIL_UNDER})")
    p_snap.add_argument("--soa-replicas", type=int, default=0,
                        metavar="R",
                        help="also run the replica-batched SoA A/B (R "
                             "scalar-SoA runs vs one fused R-replica "
                             "batch per saturated point) and write "
                             "BENCH_soa_batch.json")
    p_snap.add_argument("--soa-batch-out", default=None, metavar="PATH",
                        help="batched-SoA snapshot path (default: "
                             "results/perf/BENCH_soa_batch.json)")
    p_snap.add_argument("--soa-batch-fail-under", type=float,
                        default=DEFAULT_SOA_BATCH_FAIL_UNDER,
                        metavar="R",
                        help="minimum aggregate batched-SoA speedup "
                             "over scalar-SoA-per-seed (default: "
                             f"{DEFAULT_SOA_BATCH_FAIL_UNDER})")

    p_trend = sub.add_parser("trend",
                             help="print the cycles/sec trajectory from "
                                  "history.jsonl vs the baseline")
    p_trend.add_argument("--baseline", default="BENCH_baseline.json",
                         metavar="PATH",
                         help="baseline snapshot to normalise against "
                              "(default: BENCH_baseline.json)")
    p_trend.add_argument("--history", default=None, metavar="PATH",
                         help="history file (default: results/perf/"
                              "history.jsonl)")
    p_trend.add_argument("--run", action="store_true",
                         help="time a fresh snapshot and append it to "
                              "the history before printing")
    p_trend.add_argument("--label", default=None,
                         help="label for the fresh snapshot (with --run)")
    p_trend.add_argument("--url", default=None, metavar="URL",
                         help="fetch the history from a fabric results "
                              "service (GET <url>/perf/trend) instead of "
                              "the local history.jsonl")
    args = parser.parse_args(argv)

    if args.cmd == "trend":
        if args.run:
            if args.url:
                parser.error("--run records locally; it cannot be "
                             "combined with --url")
            print("perf trend: timing a fresh snapshot")
            snap = run_snapshot(repeat=1, label=args.label)
            append_history(snap, args.history)
        if args.url:
            import urllib.error

            from repro.fabric.httpd import http_json
            try:
                remote = http_json(
                    "GET", args.url.rstrip("/") + "/perf/trend")
            except (urllib.error.URLError, ConnectionError,
                    OSError) as exc:
                reason = getattr(exc, "reason", None) or exc
                print(f"coordinator not reachable at {args.url}: "
                      f"{reason}", file=sys.stderr)
                return 2
            print(f"  history served by {args.url} "
                  f"({remote.get('history')})")
            entries = remote.get("entries", [])
        else:
            entries = load_history(args.history)
        base = None
        if args.baseline and Path(args.baseline).exists():
            base = json.loads(Path(args.baseline).read_text())
        elif args.baseline:
            print(f"  (baseline {args.baseline} not found; "
                  "printing raw trajectory)")
        print_trend(entries, base)
        return 0

    print("perf snapshot: "
          f"{len(SNAPSHOT_POINTS)} points, seed {SNAPSHOT_SEED}, "
          f"engine {args.engine}")
    snap = run_snapshot(repeat=args.repeat, label=args.label,
                        engine=args.engine)
    path = write_snapshot(snap, args.out)
    print(f"  snapshot written to {path}")
    if not args.no_history:
        append_history(snap)
    if args.profile:
        prof_path, txt_path = run_profile(top=args.profile_top)
        print(f"  profile written to {prof_path} "
              f"(summary: {txt_path})")
    rc = 0
    if args.replicas:
        print(f"batch A/B: {args.replicas} replicas, "
              f"best of {args.repeat + 2}")
        batch_snap = run_batch_snapshot(replicas=args.replicas,
                                        repeat=args.repeat + 2)
        batch_path = Path(args.batch_out) if args.batch_out else \
            perf_dir() / "BENCH_batch.json"
        batch_path.parent.mkdir(parents=True, exist_ok=True)
        batch_path.write_text(json.dumps(batch_snap, indent=2) + "\n")
        print(f"  batch snapshot written to {batch_path}")
        if batch_snap["lowload_speedup"] < args.batch_fail_under:
            print(f"\n  BATCH REGRESSION: low-load speedup "
                  f"{batch_snap['lowload_speedup']:.2f}x < "
                  f"{args.batch_fail_under:.2f}x")
            rc = 1
    if args.soa:
        print(f"SoA A/B: {len(SOA_POINTS)} saturated points, "
              f"best of {args.repeat + 2}")
        try:
            soa_snap = run_soa_snapshot(repeat=args.repeat + 2)
        except ResultDrift as exc:
            print(f"\n  SOA RESULT DRIFT: {exc}")
            return 2
        soa_path = Path(args.soa_out) if args.soa_out else \
            perf_dir() / "BENCH_soa.json"
        soa_path.parent.mkdir(parents=True, exist_ok=True)
        soa_path.write_text(json.dumps(soa_snap, indent=2) + "\n")
        print(f"  SoA snapshot written to {soa_path}")
        if soa_snap["gate_speedup"] < args.soa_fail_under:
            print(f"\n  SOA REGRESSION: gate speedup "
                  f"{soa_snap['gate_speedup']:.2f}x < "
                  f"{args.soa_fail_under:.2f}x on "
                  f"{', '.join(soa_snap['gate_points'])}")
            rc = 1
    if args.soa_replicas:
        print(f"batched-SoA A/B: {args.soa_replicas} replicas, "
              f"{len(SOA_POINTS)} saturated points, "
              f"best of {args.repeat + 2}")
        try:
            sb_snap = run_soa_batch_snapshot(
                replicas=args.soa_replicas, repeat=args.repeat + 2)
        except ResultDrift as exc:
            print(f"\n  SOA BATCH RESULT DRIFT: {exc}")
            return 2
        sb_path = Path(args.soa_batch_out) if args.soa_batch_out else \
            perf_dir() / "BENCH_soa_batch.json"
        sb_path.parent.mkdir(parents=True, exist_ok=True)
        sb_path.write_text(json.dumps(sb_snap, indent=2) + "\n")
        print(f"  batched-SoA snapshot written to {sb_path}")
        if sb_snap["aggregate_speedup"] < args.soa_batch_fail_under:
            print(f"\n  SOA BATCH REGRESSION: aggregate speedup "
                  f"{sb_snap['aggregate_speedup']:.2f}x < "
                  f"{args.soa_batch_fail_under:.2f}x on "
                  f"{', '.join(sb_snap['gate_points'])}")
            rc = 1
    if not args.compare:
        return rc
    base = json.loads(Path(args.compare).read_text())
    return compare(snap, base, args.fail_under,
                   allow_result_drift=args.allow_result_drift) or rc

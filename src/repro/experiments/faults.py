"""Robustness sweep: fault rate x load across the scheme set.

Not a paper figure — this is the certification harness for the paper's
guaranteed-delivery claim under adversity (Sec. III-C).  Three fault
modes per (scheme, load):

* ``none``  — healthy network, liveness audit armed: FastPass must show
  zero violations of the delivery bound;
* ``cut``   — one permanent directed-link failure at mid-measurement on
  a central link.  Schemes declaring ``fault_caps.reroute`` must deliver
  every measured packet around the cut; schemes without it (the plain
  baseline) are expected to wedge, terminate via the watchdog, and leave
  a JSON post-mortem under ``<results>/diagnostics/``;
* ``storm`` — a Poisson storm of transient faults (flaps, port stalls,
  ejection freezes, lookahead drops/corruptions) over the measurement
  window at each requested event rate.

Traffic generation stops at the end of the measurement window so a
wedged network stalls *globally* — otherwise ongoing background traffic
would keep resetting the watchdog and a stuck packet could hide forever.

Invoked via ``repro-experiments faults sweep``; every point runs through
the campaign layer, so reruns and resumes only recompute what changed.
"""

from __future__ import annotations

from repro.experiments.common import (
    cached_points,
    fmt_table,
    fnum,
    synthetic_config,
)
from repro.fault.plan import fault_storm, link_cut
from repro.network.topology import PORT_E
from repro.sim.parallel import Point

MODES = ("none", "cut", "storm")

#: robustness comparison set: the headline scheme, the two reroute-capable
#: baselines, and the plain baseline that is expected to wedge on a cut
SCHEMES = [
    ("FastPass", "fastpass", {"n_vcs": 4}),
    ("EscapeVC", "escapevc", {}),
    ("SPIN", "spin", {}),
    ("Baseline", "baseline", {}),
]

DEFAULT_RATES = (0.05, 0.15)
DEFAULT_FAULT_RATES = (0.002, 0.01)
STORM_MEAN_DURATION = 100


def fault_config(quick: bool, rows: int = 8, cols: int = 8):
    """Synthetic config armed for fault runs.

    The drain window must comfortably contain a watchdog firing (stall
    detection + post-mortem) after traffic stops, so it is stretched to a
    multiple of the watchdog threshold.
    """
    cfg = synthetic_config(quick, rows, cols)
    watchdog = 800 if quick else 2000
    return cfg.with_(watchdog_cycles=watchdog,
                     drain_cycles=max(cfg.drain_cycles, 4 * watchdog),
                     postmortem=True,
                     liveness_audit=True)


def plan_for(mode: str, cfg, fault_rate: float = 0.0, seed: int = 0):
    """The FaultPlan for one sweep mode (None for the healthy mode)."""
    if mode == "none":
        return None
    if mode == "cut":
        # A central router's eastbound link, cut mid-measurement: on the
        # paper's 8x8 mesh this sits on many XY paths, so every scheme
        # must actually exercise its degradation story.
        rid = (cfg.rows // 2) * cfg.cols + cfg.cols // 2
        return link_cut(rid, PORT_E,
                        cfg.warmup_cycles + cfg.measure_cycles // 2)
    if mode == "storm":
        return fault_storm(fault_rate,
                           start=cfg.warmup_cycles,
                           stop=cfg.warmup_cycles + cfg.measure_cycles,
                           mean_duration=STORM_MEAN_DURATION,
                           seed=seed)
    raise ValueError(f"unknown fault mode {mode!r}; choose from {MODES}")


def build_points(cfg, schemes, rates, fault_rates, modes):
    """The sweep grid as (label-row, Point) pairs."""
    stop = cfg.warmup_cycles + cfg.measure_cycles
    out = []
    for label, name, kwargs in schemes:
        for rate in rates:
            for mode in modes:
                frs = fault_rates if mode == "storm" else (0.0,)
                for fr in frs:
                    plan = plan_for(mode, cfg, fault_rate=fr)
                    tag = f"storm@{fr:g}" if mode == "storm" else mode
                    point = Point.make_fault(name, "uniform", rate,
                                             plan=plan, traffic_stop=stop,
                                             **kwargs)
                    out.append(((label, rate, tag), point))
    return out


def run(quick: bool = True, schemes=None, rates=None, fault_rates=None,
        modes=MODES, rows: int = 8, cols: int = 8,
        jobs: int | None = None) -> dict:
    schemes = schemes if schemes is not None else SCHEMES
    rates = tuple(rates) if rates is not None else DEFAULT_RATES
    fault_rates = tuple(fault_rates) if fault_rates is not None \
        else DEFAULT_FAULT_RATES
    cfg = fault_config(quick, rows, cols)
    labelled = build_points(cfg, schemes, rates, modes=modes,
                            fault_rates=fault_rates)
    results = cached_points([p for _lbl, p in labelled], cfg, jobs=jobs)
    rows_out = []
    for ((label, rate, tag), _point), res in zip(labelled, results):
        gen = res.extra.get("measured_generated", 0)
        undelivered = res.extra.get("undelivered", 0)
        liveness = res.extra.get("liveness") or {}
        faults = res.extra.get("faults") or {}
        rows_out.append({
            "scheme": label,
            "load": rate,
            "fault": tag,
            "generated": gen,
            "delivered": gen - undelivered,
            "deadlocked": res.deadlocked,
            "avg_latency": res.avg_latency,
            "degraded_delivered": res.degraded_delivered,
            "degraded_latency": res.degraded_latency,
            "liveness_violations": res.liveness_violations,
            "liveness_bound": liveness.get("bound"),
            "fault_events": faults.get("plan_events", 0),
            "lane_skips": faults.get("lane_skips", 0),
            "postmortem": res.extra.get("postmortem"),
            "failed": res.extra.get("failed", False),
        })
    return {"config": {"quick": quick, "rows": rows, "cols": cols,
                       "rates": list(rates),
                       "fault_rates": list(fault_rates),
                       "modes": list(modes)},
            "rows": rows_out}


def format_result(result: dict) -> str:
    headers = ["scheme", "load", "fault", "deliv", "gen", "%", "lat",
               "degr-lat", "viol", "wedged"]
    table = []
    postmortems = []
    for r in result["rows"]:
        gen = max(1, r["generated"])
        table.append([
            r["scheme"], f"{r['load']:g}", r["fault"],
            r["delivered"], r["generated"],
            fnum(100.0 * r["delivered"] / gen),
            fnum(r["avg_latency"]),
            fnum(r["degraded_latency"]),
            r["liveness_violations"],
            "WATCHDOG" if r["deadlocked"] else "-",
        ])
        if r["postmortem"]:
            postmortems.append(f"  post-mortem: {r['scheme']} "
                               f"load={r['load']:g} {r['fault']} -> "
                               f"{r['postmortem']}")
    out = fmt_table(headers, table)
    if postmortems:
        out += "\n" + "\n".join(postmortems)
    return out

"""Table I: qualitative comparison of deadlock-freedom solutions.

The matrix is generated from each scheme's declared :class:`Table1Row` and,
optionally, *verified behaviourally*: the deadlock-freedom columns are
checked by actually running the adversarial protocol-deadlock scenario
(``verify=True``), which is how the test suite keeps the table honest.
"""

from __future__ import annotations

from repro.config import SimConfig
from repro.schemes import SCHEMES
from repro.traffic.coherence import CoherenceTraffic

COLUMNS = [
    "No Detection",
    "Protocol DF",
    "Network DF",
    "Path Diversity",
    "High-throughput",
    "Low-power",
    "Scalability",
    "No Misrouting",
]

ORDER = ["escapevc", "spin", "swap", "drain", "pitstop", "fastpass"]


def deadlock_scenario_config() -> SimConfig:
    """The adversarial configuration under which a 0-VN network with no
    escape mechanism demonstrably deadlocks (see tests/integration)."""
    return SimConfig(rows=4, cols=4, watchdog_cycles=1500,
                     ej_queue_pkts=1, inj_queue_pkts=2,
                     fastpass_slot_cycles=64)


def deadlock_traffic(seed: int = 7) -> CoherenceTraffic:
    return CoherenceTraffic(txns_per_core=60, seed=seed, mshrs=32, think=1,
                            burst=16, service_depth=1, service_latency=8,
                            fwd_frac=0.2)


def protocol_deadlock_free(scheme_name: str, max_cycles: int = 80000,
                           **scheme_kwargs) -> bool:
    """Behavioural probe: does the scheme complete the adversarial
    protocol-pressure workload?  Runs through the campaign layer, so the
    probe result is cached like any other point."""
    from repro.campaign import run_points
    from repro.sim.parallel import Point
    point = Point.make_stress(scheme_name, max_cycles=max_cycles,
                              **scheme_kwargs)
    res = run_points([point], deadlock_scenario_config())[0]
    return bool(res.extra.get("traffic_done"))


def run(quick: bool = True, verify: bool = False) -> dict:
    rows = []
    for name in ORDER:
        t1 = SCHEMES[name].table1
        cells = t1.cells()
        if verify:
            kwargs = {"n_vcs": 2} if name == "fastpass" else {}
            observed = protocol_deadlock_free(name, **kwargs)
            declared = t1.protocol_deadlock_freedom
            if observed != declared:
                cells[1] = f"MISMATCH(decl={declared}, obs={observed})"
        rows.append({"scheme": name, "cells": cells})
    return {"columns": COLUMNS, "rows": rows}


def format_result(result: dict) -> str:
    head = f"{'scheme':<10}" + "".join(f"{c:>17}" for c in result["columns"])
    lines = [head]
    for r in result["rows"]:
        lines.append(f"{r['scheme']:<10}" +
                     "".join(f"{c:>17}" for c in r["cells"]))
    lines.append("  (X = has property, 7 = lacks it — the paper's notation)")
    return "\n".join(lines)

"""Fig. 13: breakdown of packet types in FastPass (1 VC): regular packets,
FastPass-Packets, and dropped packets — under (a) Uniform synthetic traffic
and (b) the application workloads.

Claims to reproduce: regular packets dominate at low load (FastPass behaves
like the baseline), FastFlow kicks in with load, and the dropped fraction
stays negligible (<= 5.9% synthetic post-saturation, ~0.3% applications —
far below SCARAB's ~9%).
"""

from __future__ import annotations

from repro.experiments.common import (
    cached_app,
    cached_point,
    cached_points,
    synthetic_config,
)
from repro.sim.parallel import Point

QUICK_RATES = [0.02, 0.06, 0.10, 0.14]
FULL_RATES = [0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16]

BENCHMARKS = ("Barnes", "Canneal", "FFT", "FMM", "Volrend")


def _breakdown(res) -> dict:
    delivered = res.fastpass_delivered + res.regular_delivered
    total = delivered + res.dropped
    if total == 0:
        return {"regular": 1.0, "fastpass": 0.0, "dropped": 0.0}
    return {
        "regular": res.regular_delivered / total,
        "fastpass": res.fastpass_delivered / total,
        "dropped": res.dropped / total,
    }


def run(quick: bool = True, rates=None, benchmarks=BENCHMARKS) -> dict:
    cfg = synthetic_config(quick)
    rates = rates or (QUICK_RATES if quick else FULL_RATES)
    uniform = []
    for rate in rates:
        res = cached_point("fastpass", {"n_vcs": 1}, "uniform", rate, cfg)
        uniform.append({"rate": rate, **_breakdown(res)})
    apps = []
    for bench in benchmarks:
        res = cached_app("fastpass", {"n_vcs": 1}, bench, quick)
        apps.append({"benchmark": bench, **_breakdown(res)})
    # (c) the adversarial protocol-pressure scenario: the regime where the
    # dynamic bubble actually drops (and regenerates) requests.  The paper
    # reports 5.9% at synthetic post-saturation and 0.3% for applications;
    # at the loads our substrate reaches, drops only materialise under
    # protocol back-pressure, so this section exhibits the bound.
    from repro.experiments.table1 import deadlock_scenario_config
    point = Point.make_stress("fastpass", max_cycles=120000, n_vcs=1)
    res = cached_points([point], deadlock_scenario_config())[0]
    stress = {"completed": bool(res.extra.get("traffic_done")),
              **_breakdown(res)}
    return {"uniform": uniform, "apps": apps, "stress": stress}


def format_result(result: dict) -> str:
    lines = ["--- (a) Uniform, 1 VC",
             f"{'rate':>6}{'Regular%':>10}{'FastPass%':>11}{'Dropped%':>10}"]
    for r in result["uniform"]:
        lines.append(f"{r['rate']:>6.2f}{100 * r['regular']:>10.1f}"
                     f"{100 * r['fastpass']:>11.1f}"
                     f"{100 * r['dropped']:>10.2f}")
    lines.append("--- (b) Applications, 1 VC")
    lines.append(f"{'benchmark':<12}{'Regular%':>10}{'FastPass%':>11}"
                 f"{'Dropped%':>10}")
    for r in result["apps"]:
        lines.append(f"{r['benchmark']:<12}{100 * r['regular']:>10.1f}"
                     f"{100 * r['fastpass']:>11.1f}"
                     f"{100 * r['dropped']:>10.2f}")
    s = result.get("stress")
    if s is not None:
        lines.append("--- (c) adversarial protocol pressure (dropping "
                     "regime)")
        lines.append(f"{'scenario':<12}{100 * s['regular']:>10.1f}"
                     f"{100 * s['fastpass']:>11.1f}"
                     f"{100 * s['dropped']:>10.2f}"
                     f"   completed={s['completed']}"
                     f"  (SCARAB drops up to 9%)")
    return "\n".join(lines)

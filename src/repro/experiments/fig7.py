"""Fig. 7: average packet latency vs injection rate for synthetic traffic
(8x8 mesh, FastPass with 4 VCs, all eight schemes).

The paper sweeps Transpose, Shuffle and Bit Rotation; each series stops
when a scheme saturates (its curve leaves the plot), exactly as the sweep
runner does here.
"""

from __future__ import annotations

from repro.experiments.common import (
    FIG7_SCHEMES,
    cached_sweep_latency,
    fnum,
    synthetic_config,
)

PATTERNS = ("transpose", "shuffle", "bit_rotation")

QUICK_RATES = [0.02, 0.06, 0.10, 0.12, 0.14, 0.16, 0.18, 0.22]
FULL_RATES = [round(0.02 * i, 2) for i in range(1, 16)]


def run(quick: bool = True, patterns=PATTERNS, schemes=None,
        rates=None, seeds=None) -> dict:
    """``seeds`` repeats every point under those seeds (averaged curves);
    the repeats of one point execute as a single lock-step replica batch
    through the campaign layer instead of N separate simulations."""
    cfg = synthetic_config(quick)
    rates = rates or (QUICK_RATES if quick else FULL_RATES)
    schemes = schemes or FIG7_SCHEMES
    series: dict[str, dict[str, list]] = {}
    for pattern in patterns:
        per_pattern = {}
        for label, name, kwargs in schemes:
            results = cached_sweep_latency(name, kwargs, pattern, rates,
                                           cfg, seeds=seeds)
            per_pattern[label] = [
                (r.extra["rate"], r.avg_latency, r.deadlocked)
                for r in results
            ]
        series[pattern] = per_pattern
    return {"rates": rates, "series": series}


def saturation_of(points: list, zero_load: float | None = None) -> float:
    """Largest swept rate whose latency stayed under 3x zero-load."""
    if not points:
        return 0.0
    zl = zero_load if zero_load is not None else points[0][1]
    sat = points[0][0]
    for rate, lat, deadlocked in points:
        if deadlocked or lat != lat or lat > 3 * zl:
            break
        sat = rate
    return sat


def format_result(result: dict) -> str:
    lines = []
    for pattern, per_scheme in result["series"].items():
        lines.append(f"--- {pattern} (avg packet latency by injection rate)")
        header = f"{'rate':>6}" + "".join(
            f"{label:>12}" for label in per_scheme)
        lines.append(header)
        for i, rate in enumerate(result["rates"]):
            row = [f"{rate:>6.2f}"]
            for label, pts in per_scheme.items():
                if i < len(pts):
                    row.append(f"{fnum(pts[i][1]):>12}")
                else:
                    row.append(f"{'sat':>12}")
            lines.append("".join(row))
        sats = {label: saturation_of(pts)
                for label, pts in per_scheme.items()}
        lines.append("saturation: " + "  ".join(
            f"{label}={sat:.2f}" for label, sat in sats.items()))
        fp = sats.get("FastPass", 0.0)
        for other in ("SPIN", "TFC", "SWAP", "MinBD"):
            if other in sats and sats[other] > 0:
                lines.append(f"  FastPass vs {other}: "
                             f"{fp / sats[other]:.2f}x")
        # Matched-load latency: the clearest view of the bypass benefit —
        # compare every scheme at the highest rate where all still deliver.
        common = min(len(pts) for pts in per_scheme.values())
        if common and "FastPass" in per_scheme:
            idx = common - 1
            lats = {label: pts[idx][1] for label, pts in per_scheme.items()
                    if pts[idx][1] == pts[idx][1]}
            rate = result["rates"][idx]
            if len(lats) > 1:
                best_other = min(v for k, v in lats.items()
                                 if k != "FastPass")
                fp_lat = lats.get("FastPass", float("nan"))
                lines.append(
                    f"  latency @ {rate:.2f}: FastPass={fp_lat:.1f} vs "
                    f"best baseline={best_other:.1f} "
                    f"({100 * (1 - fp_lat / best_other):+.0f}%)")
    return "\n".join(lines)

"""Fig. 8: saturation throughput vs network size (Transpose, 4 VCs).

The paper's claim: FastPass's advantage *grows* with network size (more
partitions = more concurrent FastPass-Packets) — 17% over SWAP at 4x4,
67% at 8x8, 78% at 16x16.
"""

from __future__ import annotations

from repro.experiments.common import (
    FIG8_SCHEMES,
    cached_point,
    synthetic_config,
)
from repro.sim.runner import saturation_throughput

QUICK_SIZES = (4, 8)
FULL_SIZES = (4, 8, 16)


def run(quick: bool = True, sizes=None, schemes=None,
        iters: int | None = None) -> dict:
    sizes = sizes or (QUICK_SIZES if quick else FULL_SIZES)
    schemes = schemes or FIG8_SCHEMES
    iters = iters if iters is not None else (4 if quick else 7)
    table: dict[str, dict[int, float]] = {}
    for label, name, kwargs in schemes:
        table[label] = {}
        for n in sizes:
            cfg = synthetic_config(quick, rows=n, cols=n)
            # The probe rates of the binary search are deterministic, so
            # routing them through the cache makes reruns incremental.
            sat = saturation_throughput(
                name, "transpose", cfg, lo=0.01, hi=0.4, iters=iters,
                run_point_fn=lambda rate: cached_point(
                    name, kwargs, "transpose", rate, cfg))
            table[label][n] = sat
    return {"sizes": list(sizes), "table": table}


def format_result(result: dict) -> str:
    sizes = result["sizes"]
    lines = [f"{'scheme':<10}" +
             "".join(f"{f'{n}x{n}':>10}" for n in sizes)]
    for label, row in result["table"].items():
        lines.append(f"{label:<10}" +
                     "".join(f"{row[n]:>10.3f}" for n in sizes))
    if "FastPass" in result["table"] and "SWAP" in result["table"]:
        gains = []
        for n in sizes:
            sw = result["table"]["SWAP"][n]
            fp = result["table"]["FastPass"][n]
            gains.append(f"{n}x{n}: {100 * (fp - sw) / sw:+.0f}%"
                         if sw > 0 else f"{n}x{n}: n/a")
        lines.append("FastPass over SWAP: " + ", ".join(gains))
    return "\n".join(lines)

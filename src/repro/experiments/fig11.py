"""Fig. 11: post-P&R router power and area (analytical substitute).

The paper's headline: FastPass cuts power/area ~40% vs EscapeVC, matches
Pitstop, and SPIN pays ~6% extra for its detection circuit.
"""

from __future__ import annotations

from repro.power.report import FIG11_CONFIGS, area_power_table


def run(quick: bool = True) -> dict:
    rows = area_power_table(FIG11_CONFIGS)
    return {"rows": rows}


def format_result(result: dict) -> str:
    rows = result["rows"]
    lines = [f"{'scheme':<10}{'VN':>4}{'VC':>4}{'area µm²':>12}"
             f"{'power µW':>12}{'area/Esc':>10}{'pwr/Esc':>10}   breakdown"]
    for r in rows:
        bd = r["area_breakdown"]
        parts = " ".join(f"{k}={v:,.0f}" for k, v in bd.items())
        lines.append(f"{r['scheme']:<10}{r['vns']:>4}{r['vcs']:>4}"
                     f"{r['area_um2']:>12,.0f}{r['power_uw']:>12,.0f}"
                     f"{r['area_vs_escape']:>10.2f}"
                     f"{r['power_vs_escape']:>10.2f}   {parts}")
    fp = next(r for r in rows if r["scheme"] == "fastpass")
    lines.append(f"FastPass reduction vs EscapeVC: "
                 f"area {100 * (1 - fp['area_vs_escape']):.0f}%, "
                 f"power {100 * (1 - fp['power_vs_escape']):.0f}% "
                 f"(paper: 40% / 41%)")
    return "\n".join(lines)

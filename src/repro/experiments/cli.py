"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    repro-experiments table1 fig7 --full
    repro-experiments all --jobs 8       # everything, quick mode, 8 workers
    repro-experiments campaign run fig7 fig8 --full
    repro-experiments campaign status
    repro-experiments campaign clean --cache
    repro-experiments fig7 --fabric 4        # loopback fabric, 4 workers
    repro-experiments fabric serve fig7 fig8 --port 8750
    repro-experiments fabric work http://coordinator:8750
    repro-experiments fabric status http://coordinator:8750
    repro-experiments faults sweep --modes cut --rates 0.05
    repro-experiments scenarios run bursty --topologies ring:8,mesh:16x16
    repro-experiments scenarios sweep bursty --scales 0.5,1,2
    repro-experiments scenarios record bursty --out trace.jsonl
    repro-experiments scenarios replay trace.jsonl --scheme escapevc
    repro-experiments obs report --scheme fastpass --rate 0.1
    repro-experiments obs export --format prometheus --out metrics.prom
    repro-experiments perf snapshot --replicas 8
    repro-experiments perf trend --baseline BENCH_baseline.json
    python -m repro.experiments.cli fig11

Every experiment runs through the campaign layer: each simulation point is
content-addressed and cached under ``results/cache/``, so a rerun (or a
resume after an interruption) only recomputes points whose inputs — or the
simulator source — changed.  ``campaign run`` additionally records
per-point status in ``results/campaigns/<name>.sqlite`` and prints live
progress/ETA; ``campaign status`` inspects those stores; ``campaign
clean`` deletes them (and, with ``--cache``, the run cache).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.campaign import context as campaign_context
from repro.experiments import ALL


def _add_common_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--full", action="store_true",
                        help="paper-scale parameters (slow) instead of the "
                             "quick defaults")
    parser.add_argument("--jobs", type=int, metavar="N", default=None,
                        help="worker processes for sweep points "
                             "(default: one per point, capped at the core "
                             "count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every point, ignoring the run "
                             "cache")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also dump every raw result dict to a JSON "
                             "file")
    parser.add_argument("--fabric", type=int, metavar="N", default=None,
                        help="execute through a loopback campaign fabric: "
                             "a coordinator on localhost plus N pull "
                             "workers (differentially bit-identical to "
                             "the local executor)")


def _resolve_names(parser, experiments) -> list[str]:
    names = list(ALL) if "all" in experiments else list(experiments)
    unknown = [n for n in names if n not in ALL]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")
    return names


def _run_experiments(names: list[str], args,
                     track_campaign: bool = False,
                     progress=None) -> int:
    ctx = campaign_context.get_context()
    if args.jobs is not None:
        ctx.jobs = args.jobs
    if args.no_cache:
        ctx.enabled = False
    collected = {}
    for name in names:
        module = ALL[name]
        print(f"=== {name} " + "=" * (70 - len(name)))
        t0 = time.time()
        ctx.campaign = name if track_campaign else None
        try:
            result = module.run(quick=not args.full)
        finally:
            ctx.campaign = None
        print(module.format_result(result))
        print(f"--- {name} done in {time.time() - t0:.1f}s\n")
        collected[name] = result
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(collected, fh, indent=2, default=_jsonable)
        print(f"raw results written to {args.json}")
    return 0


# -- campaign subcommands ----------------------------------------------

def _progress_printer():
    last = {"t": 0.0}

    def progress(p):
        now = time.monotonic()
        if now - last["t"] < 1.0 and p.finished < p.total:
            return
        last["t"] = now
        eta = f"{p.eta_s:.0f}s" if p.eta_s is not None else "?"
        print(f"  [{p.finished}/{p.total}] cached={p.cached} "
              f"computed={p.done} failed={p.failed} "
              f"running={p.running} ETA {eta}", file=sys.stderr)

    return progress


def _with_fabric(args, fn) -> int:
    """Run ``fn`` inside a loopback fabric session when ``--fabric N``
    was given; otherwise run it directly."""
    workers = getattr(args, "fabric", None)
    if not workers:
        return fn()
    ctx = campaign_context.get_context()
    if args.no_cache:
        ctx.enabled = False
    from repro.fabric.executor import FabricSession
    session = FabricSession(cache=ctx.cache(), workers=workers)
    print(f"loopback fabric: coordinator {session.url}, "
          f"{workers} workers", file=sys.stderr)
    ctx.fabric_session = session
    try:
        return fn()
    finally:
        ctx.fabric_session = None
        session.close()


def _campaign_run(parser, args) -> int:
    names = _resolve_names(parser, args.experiments)
    ctx = campaign_context.get_context()
    ctx.progress = _progress_printer()
    try:
        return _with_fabric(
            args, lambda: _run_experiments(names, args,
                                           track_campaign=True))
    finally:
        ctx.progress = None


def _print_live_status(url: str) -> int:
    """Live view from a fabric coordinator's results service."""
    import urllib.error

    from repro.fabric.httpd import http_json
    try:
        s = http_json("GET", url.rstrip("/") + "/status")
    except (urllib.error.URLError, ConnectionError, OSError) as exc:
        reason = getattr(exc, "reason", None) or exc
        print(f"coordinator not reachable at {url}: {reason}",
              file=sys.stderr)
        print("is the fabric serving?  start one with: "
              "repro-experiments fabric serve <experiments>",
              file=sys.stderr)
        return 2
    counts = s.get("counts", {})
    eta = s.get("eta_s")
    print(f"{s.get('campaign') or 'fabric'}: state={s.get('state')} "
          f"drained={s.get('drained')} elapsed={s.get('elapsed_s')}s")
    print("  points: " + ", ".join(
        f"{k}={v}" for k, v in counts.items() if v))
    print(f"  throughput: {s.get('points_per_s', 0)} pts/s, "
          f"ETA {'?' if eta is None else f'{eta:.0f}s'}")
    q = s.get("queue", {})
    print("  queue: " + ", ".join(f"{k}={v}" for k, v in q.items() if v))
    chaos = s.get("chaos") or {}
    if chaos:
        print("  chaos injected: " + ", ".join(
            f"{k}={v}" for k, v in chaos.items()))
    quarantine = s.get("quarantine") or {}
    if quarantine.get("total"):
        print(f"  quarantined: {quarantine['total']}")
        for event in quarantine.get("events", [])[-5:]:
            liars = ",".join(event.get("liars") or []) or "?"
            print(f"    {event.get('task', '?')[:12]}… "
                  f"verdict={event.get('verdict')} liars={liars} "
                  f"({event.get('path')})")
    workers = s.get("workers", {})
    if workers:
        print(f"  {'worker':28s} {'leases':>7s} {'points':>7s} "
              f"{'fail':>5s} {'pts/s':>8s} {'seen':>8s}")
        for wid in sorted(workers):
            w = workers[wid]
            print(f"  {wid[:28]:28s} {w['leases']:7d} {w['points']:7d} "
                  f"{w['failures']:5d} {w['points_per_s']:8.2f} "
                  f"{w['last_seen_s_ago']:7.1f}s")
    return 0


def _campaign_status(args) -> int:
    if getattr(args, "url", None):
        return _print_live_status(args.url)
    ctx = campaign_context.get_context()
    names = args.names or sorted(
        p.stem for p in ctx.campaign_dir.glob("*.sqlite"))
    if not names:
        print("no campaigns recorded "
              f"(looked in {ctx.campaign_dir})")
    for name in names:
        path = ctx.campaign_dir / f"{name}.sqlite"
        if not path.exists():
            print(f"{name}: no store at {path}")
            continue
        store = ctx.store(name)
        counts = store.counts()
        total = sum(counts.values())
        print(f"{name}: {total} points — " + ", ".join(
            f"{status}={n}" for status, n in counts.items() if n))
        # ETA from the store's own completion transitions: correct no
        # matter who is executing — the local pool or remote fabric
        # workers holding leases ('running' counts them in-flight).
        remaining = counts["pending"] + counts["running"]
        finished, span = store.throughput()
        if remaining and finished:
            rate = finished / span
            print(f"    ETA {remaining / rate:.0f}s at {rate:.2f} pts/s "
                  f"({counts['running']} in flight)")
        elif remaining:
            print(f"    ETA unknown — {remaining} points remaining, "
                  "no recent completions")
        for key, error, attempts in store.failures()[:10]:
            print(f"    failed {key[:12]}… after {attempts} attempts: "
                  f"{error}")
    cache = ctx.cache()
    if cache is not None:
        print(f"run cache: {len(cache)} entries at {cache.root} "
              f"(salt {cache.salt})")
        engines = cache.engine_counts()
        if engines:
            parts = ", ".join(f"{name}: {n}" for name, n in
                              sorted(engines.items()))
            print(f"    by engine: {parts}")
    return 0


def _campaign_clean(args) -> int:
    ctx = campaign_context.get_context()
    names = args.names
    if not names and not args.cache:
        names = sorted(p.stem for p in ctx.campaign_dir.glob("*.sqlite"))
    ctx.close()
    for name in names:
        path = ctx.campaign_dir / f"{name}.sqlite"
        if path.exists():
            path.unlink()
            print(f"removed campaign store {path}")
    if args.cache:
        from repro.campaign.cache import RunCache
        n = RunCache(ctx.cache_dir).clear()
        print(f"cleared {n} cached results from {ctx.cache_dir}")
    return 0


def _campaign_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments campaign",
        description="Resumable, cache-first experiment campaigns.")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_run = sub.add_parser("run", help="run experiments as campaigns "
                                       "(status tracked, resumable)")
    p_run.add_argument("experiments", nargs="+",
                       help=f"experiment ids ({', '.join(ALL)}) or 'all'")
    _add_common_flags(p_run)

    p_status = sub.add_parser("status",
                              help="show per-campaign point status")
    p_status.add_argument("names", nargs="*",
                          help="campaign names (default: all recorded)")
    p_status.add_argument("--url", default=None, metavar="URL",
                          help="query a live fabric coordinator instead "
                               "of local stores (per-worker throughput, "
                               "lease-aware ETA)")

    p_clean = sub.add_parser("clean", help="delete campaign stores "
                                           "(and optionally the cache)")
    p_clean.add_argument("names", nargs="*",
                         help="campaign names (default: all)")
    p_clean.add_argument("--cache", action="store_true",
                         help="also clear the content-addressed run cache")

    args = parser.parse_args(argv)
    if args.cmd == "run":
        return _campaign_run(parser, args)
    if args.cmd == "status":
        return _campaign_status(args)
    return _campaign_clean(args)


# -- fabric subcommands -------------------------------------------------

def _fabric_serve(parser, args) -> int:
    import os
    from pathlib import Path

    names = _resolve_names(parser, args.experiments)
    ctx = campaign_context.get_context()
    if args.no_cache:
        ctx.enabled = False
    from repro.campaign.executor import RetryPolicy
    from repro.fabric.executor import FabricSession
    session = FabricSession(
        cache=ctx.cache(),
        retry=RetryPolicy(max_attempts=args.max_attempts),
        lease_ttl_s=args.lease_ttl,
        host=args.host, port=args.port, workers=args.workers,
        redundancy=args.redundancy, resume=args.resume)
    print(f"fabric coordinator serving on {session.url} "
          f"with {args.workers} local workers")
    if args.resume:
        print("  resume: adopting journaled leases from campaign stores")
    if args.redundancy:
        print(f"  redundancy: {args.redundancy:.0%} of tasks "
              "double-executed and cross-checked")
    print(f"  pull work:   repro-experiments fabric work {session.url}")
    print(f"  live status: repro-experiments fabric status {session.url}")
    ctx.fabric_session = session
    ctx.progress = _progress_printer()
    try:
        return _run_experiments(names, args, track_campaign=True)
    finally:
        ctx.fabric_session = None
        ctx.progress = None
        status = session.coordinator.status()
        session.close()
        out = Path(os.environ.get("REPRO_RESULTS_DIR",
                                  "results")) / "fabric"
        out.mkdir(parents=True, exist_ok=True)
        path = out / "status_final.json"
        path.write_text(json.dumps(status, indent=2, sort_keys=True)
                        + "\n")
        print(f"final fabric status written to {path}", file=sys.stderr)


def _fabric_work(args) -> int:
    from repro.fabric.worker import FabricWorker
    worker = FabricWorker(args.url, worker_id=args.id,
                          poll_s=args.poll, max_tasks=args.max_tasks)
    print(f"worker {worker.worker_id} pulling from {worker.url}")
    stats = worker.run()
    print("coordinator shut down; worker exiting — " + ", ".join(
        f"{k}={v}" for k, v in stats.items()))
    return 0


def _fabric_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments fabric",
        description="Distributed campaign fabric: serve experiments as a "
                    "leased work queue; pull-based workers execute the "
                    "unchanged datapath and POST results back.")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_serve = sub.add_parser(
        "serve", help="run experiments as a fabric coordinator "
                      "(workers pull points over HTTP)")
    p_serve.add_argument("experiments", nargs="+",
                         help=f"experiment ids ({', '.join(ALL)}) or "
                              "'all'")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1; use "
                              "0.0.0.0 for multi-host fleets)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="port (default: OS-assigned, printed at "
                              "startup)")
    p_serve.add_argument("--workers", type=int, default=0, metavar="N",
                         help="also spawn N local loopback workers "
                              "(default: 0 — remote workers only)")
    p_serve.add_argument("--lease-ttl", type=float, default=120.0,
                         metavar="S",
                         help="lease deadline; an unfinished lease is "
                              "re-queued after this long (default: 120)")
    p_serve.add_argument("--max-attempts", type=int, default=3,
                         help="retry budget per task, counting expired "
                              "leases (default: 3)")
    p_serve.add_argument("--resume", action="store_true",
                         help="adopt leases journaled by a previous "
                              "coordinator that crashed mid-campaign "
                              "(use the same --port so surviving "
                              "workers reconnect)")
    p_serve.add_argument("--redundancy", type=float, default=0.0,
                         metavar="F",
                         help="fraction of tasks leased to two workers "
                              "and cross-checked field-by-field; "
                              "mismatches are quarantined (default: 0)")
    _add_common_flags(p_serve)

    p_work = sub.add_parser(
        "work", help="pull and execute leased points from a coordinator")
    p_work.add_argument("url", help="coordinator base URL "
                                    "(e.g. http://host:8750)")
    p_work.add_argument("--id", default=None,
                        help="worker id (default: <hostname>-<pid>)")
    p_work.add_argument("--poll", type=float, default=0.25, metavar="S",
                        help="idle polling interval (default: 0.25s)")
    p_work.add_argument("--max-tasks", type=int, default=1, metavar="N",
                        help="tasks per lease request (default: 1)")

    p_stat = sub.add_parser(
        "status", help="live status of a running coordinator")
    p_stat.add_argument("url", help="coordinator base URL")

    args = parser.parse_args(argv)
    if args.cmd == "serve":
        return _fabric_serve(parser, args)
    if args.cmd == "work":
        return _fabric_work(args)
    return _print_live_status(args.url)


# -- chaos subcommands --------------------------------------------------

def _chaos_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments chaos",
        description="Transport-chaos certification for the campaign "
                    "fabric: run a small real campaign under an "
                    "escalating seeded ChaosPlan and prove every point "
                    "settles exactly once, bit-identically.")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_sweep = sub.add_parser(
        "sweep", help="escalating chaos levels vs. a local baseline; "
                      "prints a survival table")
    p_sweep.add_argument("--seed", type=int, default=0,
                         help="chaos plan seed (default: 0) — the same "
                              "seed reproduces the same fault streams")
    p_sweep.add_argument("--levels", default=None,
                         help="comma-separated intensity multipliers of "
                              "the base plan (default: 0,0.5,1,2)")
    p_sweep.add_argument("--workers", type=int, default=2, metavar="N",
                         help="loopback workers per level (default: 2)")
    p_sweep.add_argument("--redundancy", type=float, default=0.0,
                         metavar="F",
                         help="fraction of tasks double-executed and "
                              "cross-checked (default: 0)")
    p_sweep.add_argument("--json", default=None, metavar="PATH",
                         help="also dump the survival table as JSON")

    args = parser.parse_args(argv)
    from repro.chaos.sweep import format_table, run_sweep
    levels = [float(x) for x in _csv(args.levels)] if args.levels \
        else None
    report = run_sweep(seed=args.seed, levels=levels,
                       workers=args.workers,
                       redundancy=args.redundancy)
    print(format_table(report))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, default=_jsonable)
        print(f"raw survival table written to {args.json}")
    ok = all(row["survived"] for row in report["levels"])
    print("chaos sweep: " + ("SURVIVED — every point settled exactly "
                             "once, bit-identical to the local baseline"
                             if ok else "FAILED — see table"))
    return 0 if ok else 1


# -- scenario subcommands -----------------------------------------------

def _cache_summary(ctx) -> str:
    cache = ctx.cache()
    if cache is None:
        return "run cache disabled"
    return (f"run cache: {cache.hits} hits, {cache.misses} misses "
            f"({len(cache)} entries at {cache.root})")


def _scenarios_run(parser, args) -> int:
    from repro.experiments import scenarios
    from repro.scenario.spec import SCENARIOS

    names = args.scenarios or None
    if names and any(n not in SCENARIOS and not n.endswith(".json")
                     for n in names):
        known = sorted(SCENARIOS)
        bad = [n for n in names
               if n not in SCENARIOS and not n.endswith(".json")]
        parser.error(f"unknown scenarios: {bad} (library: {known}, "
                     "or pass a spec .json path)")
    topologies = _csv(args.topologies) if args.topologies else None
    seeds = [int(s) for s in _csv(args.seeds)] if args.seeds else None

    ctx = campaign_context.get_context()
    if args.jobs is not None:
        ctx.jobs = args.jobs
    if args.no_cache:
        ctx.enabled = False
    ctx.campaign = "scenarios"
    t0 = time.time()
    try:
        result = scenarios.run(quick=not args.full, scenarios=names,
                               topologies=topologies, seeds=seeds)
    finally:
        ctx.campaign = None
    print(scenarios.format_result(result))
    print(f"--- scenarios done in {time.time() - t0:.1f}s")
    print(_cache_summary(ctx))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2, default=_jsonable)
        print(f"raw results written to {args.json}")
    return 0


def _scenarios_sweep(args) -> int:
    from repro.experiments import scenarios
    scales = [float(x) for x in _csv(args.scales)] if args.scales else None
    seeds = [int(s) for s in _csv(args.seeds)] if args.seeds else None
    ctx = campaign_context.get_context()
    if args.jobs is not None:
        ctx.jobs = args.jobs
    if args.no_cache:
        ctx.enabled = False
    ctx.campaign = "scenarios"
    t0 = time.time()
    try:
        result = scenarios.sweep(quick=not args.full,
                                 scenario=args.scenario, scales=scales,
                                 seeds=seeds)
    finally:
        ctx.campaign = None
    print(scenarios.format_sweep(result))
    print(f"--- scenario sweep done in {time.time() - t0:.1f}s")
    print(_cache_summary(ctx))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2, default=_jsonable)
        print(f"raw results written to {args.json}")
    return 0


def _scenarios_record(args) -> int:
    from repro.experiments.common import synthetic_config
    from repro.scenario import get_scenario, record_scenario
    spec = get_scenario(args.scenario)
    cfg = synthetic_config(quick=not args.full)
    out = args.out or f"trace_{spec.name}_{spec.sha()}.jsonl"
    res, path = record_scenario(args.scheme, spec, cfg, out,
                                seed=args.seed)
    print(f"recorded {spec.name} ({args.scheme}, seed {args.seed}) "
          f"to {path}")
    print(f"  events={len(open(path).readlines()) - 1} "
          f"delivered={res.ejected} avg_latency={res.avg_latency:.2f}")
    print(f"  replay with: repro-experiments scenarios replay {path}")
    return 0


def _scenarios_replay(args) -> int:
    from repro.experiments.common import synthetic_config
    from repro.scenario import replay_trace
    from repro.scenario.trace import TraceSchemaError
    cfg = synthetic_config(quick=not args.full)
    try:
        res = replay_trace(args.scheme, args.trace, cfg)
    except (TraceSchemaError, OSError) as exc:
        print(f"cannot replay: {exc}", file=sys.stderr)
        return 2
    print(f"replayed {args.trace} under {args.scheme}: "
          f"delivered={res.ejected} avg_latency={res.avg_latency:.2f} "
          f"throughput={res.throughput:.4f}")
    return 0


def _scenarios_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments scenarios",
        description="Declarative scenario workloads: phased/bursty "
                    "traffic specs, irregular-topology partition sweeps, "
                    "and deterministic trace record/replay — all through "
                    "the campaign cache (the scenario content token is "
                    "part of every cache key).")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_run = sub.add_parser(
        "run", help="run scenario specs + the irregular-topology sweep")
    p_run.add_argument("scenarios", nargs="*",
                       help="library scenario names or spec .json paths "
                            "(default: the whole library)")
    p_run.add_argument("--topologies", default=None,
                       help="comma-separated irregular topologies, e.g. "
                            "ring:8,torus:4x4,mesh:16x16")
    p_run.add_argument("--seeds", default=None,
                       help="comma-separated replica seeds")
    _add_common_flags(p_run)

    p_sweep = sub.add_parser(
        "sweep", help="load-scale sweep of one scenario")
    p_sweep.add_argument("scenario", nargs="?", default="bursty",
                         help="scenario name or .json path "
                              "(default: bursty)")
    p_sweep.add_argument("--scales", default=None,
                         help="comma-separated rate multipliers "
                              "(default: 0.5,1,1.5,2)")
    p_sweep.add_argument("--seeds", default=None,
                         help="comma-separated replica seeds")
    _add_common_flags(p_sweep)

    p_rec = sub.add_parser(
        "record", help="run a scenario once, recording its generation "
                       "stream to a versioned trace artifact")
    p_rec.add_argument("scenario", help="scenario name or .json path")
    p_rec.add_argument("--out", default=None,
                       help="trace path (default: "
                            "trace_<name>_<sha>.jsonl)")
    p_rec.add_argument("--scheme", default="fastpass")
    p_rec.add_argument("--seed", type=int, default=1)
    p_rec.add_argument("--full", action="store_true",
                       help="paper-scale windows")

    p_rep = sub.add_parser(
        "replay", help="replay a recorded trace as the traffic source")
    p_rep.add_argument("trace", help="trace .jsonl path")
    p_rep.add_argument("--scheme", default="fastpass")
    p_rep.add_argument("--full", action="store_true",
                       help="paper-scale windows")

    args = parser.parse_args(argv)
    if args.cmd == "run":
        return _scenarios_run(parser, args)
    if args.cmd == "sweep":
        return _scenarios_sweep(args)
    if args.cmd == "record":
        return _scenarios_record(args)
    return _scenarios_replay(args)


# -- faults subcommands -------------------------------------------------

def _csv(text: str) -> list[str]:
    return [t for t in (s.strip() for s in text.split(",")) if t]


def _faults_sweep(parser, args) -> int:
    from repro.experiments import faults

    schemes = faults.SCHEMES
    if args.schemes:
        wanted = _csv(args.schemes)
        by_name = {name: (label, name, kw)
                   for label, name, kw in faults.SCHEMES}
        unknown = [n for n in wanted if n not in by_name]
        if unknown:
            parser.error(f"unknown fault-sweep schemes: {unknown} "
                         f"(choose from {sorted(by_name)})")
        schemes = [by_name[n] for n in wanted]
    modes = _csv(args.modes) if args.modes else list(faults.MODES)
    bad = [m for m in modes if m not in faults.MODES]
    if bad:
        parser.error(f"unknown fault modes: {bad} "
                     f"(choose from {list(faults.MODES)})")
    rates = [float(r) for r in _csv(args.rates)] if args.rates else None
    fault_rates = [float(r) for r in _csv(args.fault_rates)] \
        if args.fault_rates else None

    ctx = campaign_context.get_context()
    if args.jobs is not None:
        ctx.jobs = args.jobs
    if args.no_cache:
        ctx.enabled = False
    ctx.campaign = "faults"
    t0 = time.time()
    try:
        result = faults.run(quick=not args.full, schemes=schemes,
                            rates=rates, fault_rates=fault_rates,
                            modes=modes)
    finally:
        ctx.campaign = None
    print(faults.format_result(result))
    print(f"--- faults sweep done in {time.time() - t0:.1f}s")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2, default=_jsonable)
        print(f"raw results written to {args.json}")
    return 0


def _faults_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments faults",
        description="Fault-injection robustness sweeps (fault rate x "
                    "load), certifying graceful degradation and the "
                    "guaranteed-delivery bound.")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_sweep = sub.add_parser(
        "sweep", help="sweep fault modes x load through the campaign "
                      "layer")
    p_sweep.add_argument("--schemes", default=None,
                         help="comma-separated scheme names "
                              "(default: fastpass,escapevc,spin,baseline)")
    p_sweep.add_argument("--rates", default=None,
                         help="comma-separated injection rates "
                              "(default: 0.05,0.15)")
    p_sweep.add_argument("--fault-rates", default=None,
                         help="comma-separated storm event rates per "
                              "cycle (default: 0.002,0.01)")
    p_sweep.add_argument("--modes", default=None,
                         help="comma-separated fault modes from "
                              "none,cut,storm (default: all)")
    _add_common_flags(p_sweep)

    args = parser.parse_args(argv)
    return _faults_sweep(parser, args)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "campaign":
        return _campaign_main(argv[1:])
    if argv and argv[0] == "faults":
        return _faults_main(argv[1:])
    if argv and argv[0] == "fabric":
        return _fabric_main(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos_main(argv[1:])
    if argv and argv[0] == "scenarios" and len(argv) > 1 and \
            argv[1] in ("run", "sweep", "record", "replay"):
        return _scenarios_main(argv[1:])
    if argv and argv[0] == "perf":
        from repro.experiments import perf
        return perf.main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.experiments import obs
        return obs.main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of the FastPass paper "
                    "(HPCA 2022).")
    parser.add_argument("experiments", nargs="+",
                        help=f"experiment ids ({', '.join(ALL)}) or 'all'")
    _add_common_flags(parser)
    args = parser.parse_args(argv)
    names = _resolve_names(parser, args.experiments)
    return _with_fabric(args, lambda: _run_experiments(names, args))


def _jsonable(obj):
    """Best-effort JSON coercion for result payloads."""
    if isinstance(obj, (set, frozenset, tuple)):
        return sorted(obj) if isinstance(obj, (set, frozenset)) else \
            list(obj)
    return str(obj)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    repro-experiments table1 fig7 --full
    repro-experiments all            # everything, quick mode
    python -m repro.experiments.cli fig11
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments import ALL


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of the FastPass paper "
                    "(HPCA 2022).")
    parser.add_argument("experiments", nargs="+",
                        help=f"experiment ids ({', '.join(ALL)}) or 'all'")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale parameters (slow) instead of the "
                             "quick defaults")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also dump every raw result dict to a JSON "
                             "file")
    args = parser.parse_args(argv)

    names = list(ALL) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in ALL]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    collected = {}
    for name in names:
        module = ALL[name]
        print(f"=== {name} " + "=" * (70 - len(name)))
        t0 = time.time()
        result = module.run(quick=not args.full)
        print(module.format_result(result))
        print(f"--- {name} done in {time.time() - t0:.1f}s\n")
        collected[name] = result
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(collected, fh, indent=2, default=_jsonable)
        print(f"raw results written to {args.json}")
    return 0


def _jsonable(obj):
    """Best-effort JSON coercion for result payloads."""
    if isinstance(obj, (set, frozenset, tuple)):
        return sorted(obj) if isinstance(obj, (set, frozenset)) else \
            list(obj)
    return str(obj)


if __name__ == "__main__":
    sys.exit(main())

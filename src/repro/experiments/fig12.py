"""Fig. 12: 99th-percentile tail latency for application workloads.

Claims to reproduce: FastPass(VC=2) has the lowest tail latency (multiple
concurrent FastPass-Packets bypass congestion), and DRAIN the worst (its
periodic indiscriminate misrouting strands unlucky packets).
"""

from __future__ import annotations

from repro.experiments.common import fnum
from repro.experiments.fig10 import run_app

BENCHMARKS = ("Radix", "Canneal", "FFT", "FMM", "Lu_cb", "Volrend")

SCHEMES = [
    ("SPIN (VN=6, VC=2)", "spin", {}),
    ("SWAP (VN=6, VC=2)", "swap", {}),
    ("DRAIN (VN=6, VC=2)", "drain", {}),
    ("Pitstop (VN=0, VC=2)", "pitstop", {}),
    ("FastPass(VN=0, VC=2)", "fastpass", {"n_vcs": 2}),
]


def run(quick: bool = True, benchmarks=BENCHMARKS, schemes=None) -> dict:
    schemes = schemes or SCHEMES
    p99: dict[str, dict[str, float]] = {}
    for bench in benchmarks:
        p99[bench] = {}
        for label, name, kwargs in schemes:
            res = run_app(label, name, kwargs, bench, quick)
            p99[bench][label] = res.p99_latency
    # Supplementary row: a moderate-load synthetic point.  Our benchmark
    # substitutes run far below saturation (where every scheme's tail is
    # benign); DRAIN's misrouting pathology and FastPass's bypass advantage
    # only separate once the network carries real load, so we exhibit the
    # paper's ordering there.
    from repro.experiments.common import cached_point, synthetic_config
    cfg = synthetic_config(quick, rows=4 if quick else 8,
                           cols=4 if quick else 8)
    cfg = cfg.with_(drain_period_cycles=600)
    loaded = {}
    for label, name, kwargs in schemes:
        res = cached_point(name, kwargs, "uniform", 0.10, cfg)
        loaded[label] = res.p99_latency
    return {"benchmarks": list(benchmarks),
            "schemes": [s[0] for s in schemes],
            "p99": p99,
            "synthetic_at_load": loaded}


def format_result(result: dict) -> str:
    labels = result["schemes"]
    lines = [f"{'benchmark':<12}" + "".join(f"{lbl:>22}" for lbl in labels)]
    avgs = {lbl: [] for lbl in labels}
    for b in result["benchmarks"]:
        row = [f"{b:<12}"]
        for lbl in labels:
            v = result["p99"][b][lbl]
            row.append(f"{fnum(v):>22}")
            if v == v:
                avgs[lbl].append(v)
        lines.append("".join(row))
    lines.append(f"{'Average':<12}" + "".join(
        f"{fnum(sum(v) / len(v)) if v else '-':>22}"
        for v in avgs.values()))
    loaded = result.get("synthetic_at_load")
    if loaded:
        lines.append(f"{'at-load*':<12}" + "".join(
            f"{fnum(loaded[lbl]):>22}" for lbl in labels))
        lines.append("  * uniform synthetic @ 0.10 with a scaled DRAIN "
                     "period: the regime where the tails separate")
    return "\n".join(lines)

"""Table II: the key simulation parameters, as actually configured."""

from __future__ import annotations

from repro.config import SimConfig


def run(quick: bool = True) -> dict:
    cfg = SimConfig()
    return {
        "rows": [
            ("Topology", "4x4, 8x8, and 16x16 mesh (default "
                         f"{cfg.rows}x{cfg.cols})"),
            ("Router latency", f"{cfg.router_latency}-cycle"),
            ("Link latency", f"{cfg.link_latency}-cycle (128 bits/cycle)"),
            ("Flow control", "VCT — single packet per VC"),
            ("Buffer size", f"{cfg.buffer_flits}-flit"),
            ("Number of VNs", "0-VN (FastPass, Pitstop); 6-VN (EscapeVC, "
                              "SPIN, SWAP, DRAIN, TFC)"),
            ("Number of VCs", "FastPass (1, 2, 4); baselines (2)"),
            ("Routing", "fully adaptive (SWAP/SPIN/DRAIN/Pitstop/FastPass);"
                        " escape west-first (EscapeVC); west-first (TFC);"
                        " deflection (MinBD)"),
            ("SPIN detection threshold", f"{cfg.spin_detection_threshold} "
                                         "cycles"),
            ("SWAP duty", f"{cfg.swap_duty_cycles} cycles"),
            ("DRAIN period", f"{cfg.drain_period_cycles} cycles"),
            ("Coherence substitute", "MOESI-Hammer-like 6-class closed-loop"
                                     " transactions (see DESIGN.md §5)"),
            ("Synthetic traffic", "Uniform/Transpose/Shuffle/Bit-rotation, "
                                  "mix of 1-flit and 5-flit"),
            ("FastPass slot K", f"(2 x #Hops) x #Inputs x #VCs = "
                                f"{cfg.fastpass_slot()} cycles at defaults"),
        ]
    }


def format_result(result: dict) -> str:
    w = max(len(k) for k, _v in result["rows"]) + 2
    return "\n".join(f"{k:<{w}}{v}" for k, v in result["rows"])

"""Shared experiment infrastructure: configurations and table formatting."""

from __future__ import annotations

from repro.config import SimConfig

#: Fig. 7 comparison set (8x8, synthetic, 4 VCs for FastPass)
FIG7_SCHEMES = [
    ("EscapeVC", "escapevc", {}),
    ("SPIN", "spin", {}),
    ("SWAP", "swap", {}),
    ("DRAIN", "drain", {}),
    ("Pitstop", "pitstop", {}),
    ("MinBD", "minbd", {}),
    ("TFC", "tfc", {}),
    ("FastPass", "fastpass", {"n_vcs": 4}),
]

#: Fig. 8 comparison set (scaling study)
FIG8_SCHEMES = [
    ("SPIN", "spin", {}),
    ("SWAP", "swap", {}),
    ("DRAIN", "drain", {}),
    ("Pitstop", "pitstop", {}),
    ("FastPass", "fastpass", {"n_vcs": 4}),
]

#: Fig. 10 comparison set (applications)
FIG10_SCHEMES = [
    ("EscapeVC(VN=6, VC=2)", "escapevc", {}),
    ("SPIN(VN=6, VC=2)", "spin", {}),
    ("SWAP(VN=6, VC=2)", "swap", {}),
    ("DRAIN(VN=6, VC=2)", "drain", {}),
    ("Pitstop(VN=0, VC=2)", "pitstop", {}),
    ("TFC(VN=6, VC=2)", "tfc", {}),
    ("FastPass(VN=0, VC=2)", "fastpass", {"n_vcs": 2}),
    ("FastPass(VN=0, VC=4)", "fastpass", {"n_vcs": 4}),
]


def synthetic_config(quick: bool, rows: int = 8, cols: int = 8) -> SimConfig:
    """Open-loop synthetic-run configuration."""
    if quick:
        return SimConfig(rows=rows, cols=cols, warmup_cycles=300,
                         measure_cycles=1200, drain_cycles=2000)
    return SimConfig(rows=rows, cols=cols, warmup_cycles=1000,
                     measure_cycles=5000, drain_cycles=8000)


def app_config(quick: bool) -> SimConfig:
    """Closed-loop application-run configuration.

    Applications run on the 8x8 (64-core) mesh as in the paper; quick mode
    uses 4x4 so the whole Fig. 10/12/13 sweep stays fast.  The DRAIN period
    is scaled down so the number of drain events *per benchmark run* stays
    comparable to the paper's: their 64K-cycle period fires thousands of
    times over a full-system benchmark, while our runs retire in 5K-60K
    cycles — an unscaled period would simply never fire (DESIGN.md §5).
    """
    if quick:
        return SimConfig(rows=4, cols=4, drain_period_cycles=800)
    return SimConfig(rows=8, cols=8, drain_period_cycles=2000)


def app_txns(quick: bool) -> int:
    return 100 if quick else 400


def fmt_table(headers: list[str], rows: list[list], widths=None) -> str:
    """Plain-text aligned table."""
    if widths is None:
        widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) + 1
                  if rows else len(str(h)) + 1
                  for i, h in enumerate(headers)]
    out = ["".join(str(h).rjust(w) for h, w in zip(headers, widths))]
    for r in rows:
        out.append("".join(str(c).rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def fnum(x: float, nd: int = 1) -> str:
    if x != x:  # NaN
        return "-"
    return f"{x:.{nd}f}"

"""Shared experiment infrastructure: configurations, campaign-backed
execution helpers, and table formatting.

Every figure/table script runs its simulation points through the
``cached_*`` helpers below, which route execution through the campaign
layer (:mod:`repro.campaign`): points are content-addressed, results are
cached under ``results/cache/``, and reruns after an interruption (or
after touching only one scheme) recompute only what changed.
"""

from __future__ import annotations

from repro.config import RunResult, SimConfig
from repro.sim.parallel import Point

#: Fig. 7 comparison set (8x8, synthetic, 4 VCs for FastPass)
FIG7_SCHEMES = [
    ("EscapeVC", "escapevc", {}),
    ("SPIN", "spin", {}),
    ("SWAP", "swap", {}),
    ("DRAIN", "drain", {}),
    ("Pitstop", "pitstop", {}),
    ("MinBD", "minbd", {}),
    ("TFC", "tfc", {}),
    ("FastPass", "fastpass", {"n_vcs": 4}),
]

#: Fig. 8 comparison set (scaling study)
FIG8_SCHEMES = [
    ("SPIN", "spin", {}),
    ("SWAP", "swap", {}),
    ("DRAIN", "drain", {}),
    ("Pitstop", "pitstop", {}),
    ("FastPass", "fastpass", {"n_vcs": 4}),
]

#: Fig. 10 comparison set (applications)
FIG10_SCHEMES = [
    ("EscapeVC(VN=6, VC=2)", "escapevc", {}),
    ("SPIN(VN=6, VC=2)", "spin", {}),
    ("SWAP(VN=6, VC=2)", "swap", {}),
    ("DRAIN(VN=6, VC=2)", "drain", {}),
    ("Pitstop(VN=0, VC=2)", "pitstop", {}),
    ("TFC(VN=6, VC=2)", "tfc", {}),
    ("FastPass(VN=0, VC=2)", "fastpass", {"n_vcs": 2}),
    ("FastPass(VN=0, VC=4)", "fastpass", {"n_vcs": 4}),
]


def synthetic_config(quick: bool, rows: int = 8, cols: int = 8) -> SimConfig:
    """Open-loop synthetic-run configuration."""
    if quick:
        return SimConfig(rows=rows, cols=cols, warmup_cycles=300,
                         measure_cycles=1200, drain_cycles=2000)
    return SimConfig(rows=rows, cols=cols, warmup_cycles=1000,
                     measure_cycles=5000, drain_cycles=8000)


def app_config(quick: bool) -> SimConfig:
    """Closed-loop application-run configuration.

    Applications run on the 8x8 (64-core) mesh as in the paper; quick mode
    uses 4x4 so the whole Fig. 10/12/13 sweep stays fast.  The DRAIN period
    is scaled down so the number of drain events *per benchmark run* stays
    comparable to the paper's: their 64K-cycle period fires thousands of
    times over a full-system benchmark, while our runs retire in 5K-60K
    cycles — an unscaled period would simply never fire (DESIGN.md §5).
    """
    if quick:
        return SimConfig(rows=4, cols=4, drain_period_cycles=800)
    return SimConfig(rows=8, cols=8, drain_period_cycles=2000)


def app_txns(quick: bool) -> int:
    return 100 if quick else 400


# -- campaign-backed execution -----------------------------------------

def cached_points(points: list[Point], cfg: SimConfig,
                  jobs: int | None = None) -> list[RunResult]:
    """Run a batch of points through the campaign layer (cache-first)."""
    from repro.campaign import run_points
    return run_points(points, cfg, processes=jobs)


def cached_point(scheme_name: str, scheme_kwargs: dict, pattern: str,
                 rate: float, cfg: SimConfig) -> RunResult:
    """One synthetic point, cache-first."""
    point = Point.make(scheme_name, pattern, rate, **scheme_kwargs)
    return cached_points([point], cfg)[0]


def cached_replicas(scheme_name: str, scheme_kwargs: dict, pattern: str,
                    rate: float, seeds, cfg: SimConfig,
                    jobs: int | None = None) -> list[RunResult]:
    """Seed replicas of one synthetic point, cache-first.

    The points are built with :meth:`Point.make_seeded`, so the campaign
    executor folds the uncached ones into a single lock-step
    :class:`~repro.sim.batch.engine.ReplicaBatch` per worker while every
    replica keeps its own cache key (bit-identical to running each seed
    scalar — see DESIGN §12).
    """
    points = [Point.make_seeded(scheme_name, pattern, rate, seed=s,
                                **scheme_kwargs) for s in seeds]
    return cached_points(points, cfg, jobs=jobs)


def mean_result(replicas: list[RunResult]) -> RunResult:
    """Collapse seed replicas into one summary result.

    Latencies are averaged over the replicas that delivered packets
    (NaN-aware); counters are summed; ``deadlocked`` is true if any
    replica deadlocked.  The ``extra`` early-stop keys
    (``measured_generated``/``undelivered``) are summed so sweep
    early-stop logic keeps working on the summary.
    """
    lats = [r.avg_latency for r in replicas
            if r.avg_latency == r.avg_latency]
    p99s = [r.p99_latency for r in replicas
            if r.p99_latency == r.p99_latency]
    res = RunResult(
        scheme=replicas[0].scheme,
        injected=sum(r.injected for r in replicas),
        ejected=sum(r.ejected for r in replicas),
        dropped=sum(r.dropped for r in replicas),
        avg_latency=sum(lats) / len(lats) if lats else float("nan"),
        p99_latency=max(p99s) if p99s else float("nan"),
        throughput=sum(r.throughput for r in replicas) / len(replicas),
        deadlocked=any(r.deadlocked for r in replicas),
        cycles=max(r.cycles for r in replicas),
    )
    res.extra["rate"] = replicas[0].extra.get("rate")
    res.extra["pattern"] = replicas[0].extra.get("pattern")
    res.extra["replicas"] = len(replicas)
    res.extra["measured_generated"] = sum(
        r.extra.get("measured_generated", 0) for r in replicas)
    res.extra["undelivered"] = sum(
        r.extra.get("undelivered", 0) for r in replicas)
    return res


def cached_sweep_latency(scheme_name: str, scheme_kwargs: dict,
                         pattern: str, rates, cfg: SimConfig,
                         seeds=None) -> list[RunResult]:
    """Cache-first latency-vs-rate sweep with the same early-stop rule as
    :func:`repro.sim.runner.sweep_latency` (stop past saturation).

    With ``seeds`` the sweep repeats every rate under each seed — the
    repeats run as one lock-step replica batch per rate — and each
    returned result is the :func:`mean_result` over the replicas.
    """
    out = []
    for rate in rates:
        if seeds:
            res = mean_result(cached_replicas(
                scheme_name, scheme_kwargs, pattern, rate, seeds, cfg))
        else:
            res = cached_point(scheme_name, scheme_kwargs, pattern, rate,
                               cfg)
        out.append(res)
        gen = max(1, res.extra.get("measured_generated", 0))
        if res.deadlocked or res.extra.get("undelivered", 0) > 0.5 * gen:
            break
    return out


def cached_app(scheme_name: str, scheme_kwargs: dict, benchmark: str,
               quick: bool, seed: int = 1,
               max_cycles: int = 400000) -> RunResult:
    """One closed-loop application run (Fig. 10/12/13b), cache-first."""
    point = Point.make_app(scheme_name, benchmark, txns=app_txns(quick),
                           seed=seed, max_cycles=max_cycles,
                           **scheme_kwargs)
    return cached_points([point], app_config(quick))[0]


def fmt_table(headers: list[str], rows: list[list], widths=None) -> str:
    """Plain-text aligned table."""
    if widths is None:
        widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) + 1
                  if rows else len(str(h)) + 1
                  for i, h in enumerate(headers)]
    out = ["".join(str(h).rjust(w) for h, w in zip(headers, widths))]
    for r in rows:
        out.append("".join(str(c).rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def fnum(x: float, nd: int = 1) -> str:
    if x != x:  # NaN
        return "-"
    return f"{x:.{nd}f}"

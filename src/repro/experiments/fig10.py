"""Fig. 10: average packet latency and normalized execution time for the
application workloads (PARSEC/SPLASH-2 substitutes, see DESIGN.md §5).

Execution time is normalized to EscapeVC, as in the paper.
"""

from __future__ import annotations

from repro.experiments.common import FIG10_SCHEMES, cached_app, fnum

BENCHMARKS = ("Radix", "Canneal", "FFT", "FMM", "Lu_cb", "Streamcluster",
              "Volrend")


def run_app(scheme_label: str, scheme_name: str, scheme_kwargs: dict,
            bench: str, quick: bool, seed: int = 1):
    return cached_app(scheme_name, scheme_kwargs, bench, quick, seed=seed)


def run(quick: bool = True, benchmarks=BENCHMARKS, schemes=None) -> dict:
    schemes = schemes or FIG10_SCHEMES
    latency: dict[str, dict[str, float]] = {}
    exec_time: dict[str, dict[str, float]] = {}
    p99: dict[str, dict[str, float]] = {}
    for bench in benchmarks:
        latency[bench] = {}
        exec_time[bench] = {}
        p99[bench] = {}
        for label, name, kwargs in schemes:
            res = run_app(label, name, kwargs, bench, quick)
            latency[bench][label] = res.avg_latency
            exec_time[bench][label] = res.cycles
            p99[bench][label] = res.p99_latency
    # Normalize execution time to the first scheme (EscapeVC).
    base_label = schemes[0][0]
    norm: dict[str, dict[str, float]] = {}
    for bench in benchmarks:
        base = exec_time[bench][base_label]
        norm[bench] = {lbl: t / base for lbl, t in exec_time[bench].items()}
    return {
        "benchmarks": list(benchmarks),
        "schemes": [s[0] for s in schemes],
        "latency": latency,
        "exec_norm": norm,
        "exec_cycles": exec_time,
        "p99": p99,
    }


def _avg(d: dict, benches, label) -> float:
    vals = [d[b][label] for b in benches if d[b][label] == d[b][label]]
    return sum(vals) / len(vals) if vals else float("nan")


def format_result(result: dict) -> str:
    benches = result["benchmarks"]
    labels = result["schemes"]
    lines = ["--- average packet latency (cycles)"]
    head = f"{'benchmark':<14}" + "".join(f"{lbl:>22}" for lbl in labels)
    lines.append(head)
    for b in benches:
        lines.append(f"{b:<14}" + "".join(
            f"{fnum(result['latency'][b][lbl]):>22}" for lbl in labels))
    lines.append(f"{'Average':<14}" + "".join(
        f"{fnum(_avg(result['latency'], benches, lbl)):>22}"
        for lbl in labels))
    lines.append("--- normalized execution time (to EscapeVC)")
    lines.append(head)
    for b in benches:
        lines.append(f"{b:<14}" + "".join(
            f"{fnum(result['exec_norm'][b][lbl], 3):>22}" for lbl in labels))
    lines.append(f"{'Average':<14}" + "".join(
        f"{fnum(_avg(result['exec_norm'], benches, lbl), 3):>22}"
        for lbl in labels))
    return "\n".join(lines)

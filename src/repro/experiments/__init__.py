"""Experiment regenerators: one module per table/figure of the paper.

Every module exposes ``run(quick=True, **kwargs) -> dict`` returning the
rows/series the paper reports, plus ``format_result(result) -> str``.
``quick=True`` uses reduced windows/sizes so a full pass stays tractable in
pure Python; ``quick=False`` uses the paper-scale parameters.
"""

from repro.experiments import (
    table1,
    table2,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    scenarios,
)

ALL = {
    "table1": table1,
    "table2": table2,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "scenarios": scenarios,
}

__all__ = ["ALL"] + list(ALL)

"""``repro-experiments obs``: run one instrumented point and report or
export its metrics.

``obs report`` prints the counters, end-state gauges, latency histogram
and per-lane upgrade split of a single run; ``obs export`` renders the
same run's metric registry in Prometheus text format or as a JSON
snapshot (including the gauge time series) to stdout or a file.  Both
also leave the standard ``results/metrics/`` artifact behind.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.config import SimConfig
from repro.schemes import get_scheme
from repro.sim.engine import Simulation
from repro.traffic.synthetic import PATTERNS, SyntheticTraffic


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scheme", default="fastpass",
                        help="scheme name (default: fastpass)")
    parser.add_argument("--pattern", default="uniform", choices=PATTERNS)
    parser.add_argument("--rate", type=float, default=0.10,
                        help="injection rate, packets/node/cycle")
    parser.add_argument("--rows", type=int, default=8)
    parser.add_argument("--cols", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--measure", type=int, default=2000)
    parser.add_argument("--sample-every", type=int, default=100,
                        metavar="N",
                        help="gauge time-series cadence in cycles "
                             "(0 = no sampling; default 100)")


def _run_instrumented(args):
    from repro.obs import attach_observability, write_metrics
    cfg = SimConfig(rows=args.rows, cols=args.cols, seed=args.seed,
                    warmup_cycles=args.warmup,
                    measure_cycles=args.measure)
    sim = Simulation(cfg, get_scheme(args.scheme),
                     SyntheticTraffic(args.pattern, args.rate,
                                      seed=args.seed))
    obs = attach_observability(sim.net, sample_every=args.sample_every)
    res = sim.run()
    name = f"{args.scheme}_{args.pattern}_r{args.rate:g}"
    artifact = write_metrics(obs, name)
    return sim, obs, res, artifact


def _report(args) -> int:
    sim, obs, res, artifact = _run_instrumented(args)
    reg = obs.registry
    counters = reg.to_json()["counters"]
    print(f"== {args.scheme} {args.pattern} rate={args.rate:g} "
          f"{args.rows}x{args.cols} seed={args.seed} "
          f"({res.cycles} cycles) ==")
    print(f"avg latency {res.avg_latency:.1f}  p99 {res.p99_latency:.1f}  "
          f"throughput {res.throughput:.4f}"
          + ("  DEADLOCKED" if res.deadlocked else ""))
    print("\ncounters:")
    for name, value in counters.items():
        if isinstance(value, dict):
            total = sum(value.values())
            print(f"  {name:<28} {total}")
            for label, v in value.items():
                print(f"    {label:<26} {v}")
        else:
            print(f"  {name:<28} {value}")
    hist = reg.get("noc_packet_latency_cycles")
    if hist.count:
        print(f"\nlatency histogram ({hist.count} measured packets):")
        print(f"  mean {hist.mean():.1f}  p50 ~{hist.quantile(0.5):g}  "
              f"p99 ~{hist.quantile(0.99):g}")
        for le, acc in hist.cumulative():
            print(f"  le={le:<8g} {acc}")
    print("\nend-state gauges:")
    for gname in ("noc_packets_in_flight", "noc_total_backlog",
                  "noc_inj_queue_depth", "noc_limbo"):
        print(f"  {gname:<28} {reg.get(gname).read()}")
    print(f"\nevents emitted: {obs.bus.emitted}")
    print(f"metrics artifact: {artifact}")
    return 0


def _export(args) -> int:
    from repro.obs import snapshot_json, to_prometheus
    sim, obs, res, artifact = _run_instrumented(args)
    if args.format == "prometheus":
        text = to_prometheus(obs.registry)
    else:
        text = json.dumps(snapshot_json(obs, label=args.scheme),
                          indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.format} export to {args.out}",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments obs",
        description="Observability: run one instrumented point and "
                    "report or export its metrics.")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_report = sub.add_parser(
        "report", help="run one point and print a metrics report")
    _add_run_flags(p_report)

    p_export = sub.add_parser(
        "export", help="run one point and export its metric registry")
    _add_run_flags(p_export)
    p_export.add_argument("--format", default="prometheus",
                          choices=("prometheus", "json"))
    p_export.add_argument("--out", default=None, metavar="PATH",
                          help="write to a file instead of stdout")

    args = parser.parse_args(argv)
    if args.cmd == "report":
        return _report(args)
    return _export(args)

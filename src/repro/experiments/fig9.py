"""Fig. 9: latency breakdown of regular packets vs FastPass-Packets under
Uniform traffic with a single VC.

A FastPass-Packet's latency splits into *regular* (buffered) time before
its upgrade and *FastPass* (bufferless) time after it.  The paper's
observation to reproduce: the bufferless component stays small and flat
across every injection rate, including post-saturation, while the buffered
component grows with load.
"""

from __future__ import annotations

from repro.experiments.common import cached_point, fnum, synthetic_config

# The 1-VC configuration saturates early; the grids stay inside and just
# past its saturation point (the paper's Fig. 9 likewise spans low load to
# post-saturation for the 1-VC network).
QUICK_RATES = [0.01, 0.02, 0.04, 0.06]
FULL_RATES = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08]


def run(quick: bool = True, rates=None) -> dict:
    cfg = synthetic_config(quick)
    rates = rates or (QUICK_RATES if quick else FULL_RATES)
    rows = []
    for rate in rates:
        res = cached_point("fastpass", {"n_vcs": 1}, "uniform", rate, cfg)
        rows.append({
            "rate": rate,
            "reg_latency": res.reg_latency,
            "fp_buffered": res.fp_buffered_time,
            "fp_bufferless": res.fp_bufferless_time,
            "fp_share": (res.fastpass_delivered /
                         max(1, res.fastpass_delivered +
                             res.regular_delivered)),
        })
    return {"rows": rows}


def format_result(result: dict) -> str:
    lines = [f"{'rate':>6}{'RegPkt lat':>12}{'FP buffered':>13}"
             f"{'FP bufferless':>15}{'FP share':>10}"]
    for r in result["rows"]:
        lines.append(f"{r['rate']:>6.2f}{fnum(r['reg_latency']):>12}"
                     f"{fnum(r['fp_buffered']):>13}"
                     f"{fnum(r['fp_bufferless']):>15}"
                     f"{r['fp_share']:>10.2f}")
    lines.append("(claim: the bufferless column stays small and flat "
                 "across all rates)")
    return "\n".join(lines)

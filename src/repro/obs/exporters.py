"""Metric exporters: JSON snapshots, Prometheus text format, and the
per-run ``results/metrics/`` artifact.

The Prometheus exporter emits the text exposition format (``# HELP`` /
``# TYPE`` lines, ``name{label="value"} value`` samples, cumulative
``_bucket``/``_sum``/``_count`` histogram series) so a scrape of a
long-running service built on this simulator — or a one-shot
``repro-experiments obs export`` — is directly ingestible.
"""

from __future__ import annotations

import json
import math
import os
import re
from pathlib import Path

from repro.obs.registry import (
    Counter,
    CounterFamily,
    Gauge,
    Histogram,
    MetricsRegistry,
    MultiGauge,
)


def _fmt_value(v) -> str:
    if isinstance(v, float):
        if math.isinf(v):
            return "+Inf" if v > 0 else "-Inf"
        if math.isnan(v):
            return "NaN"
    return repr(v) if isinstance(v, float) else str(v)


def _labels(pairs) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every metric in the Prometheus text exposition format."""
    lines: list[str] = []
    for m in registry:
        if isinstance(m, Counter):
            lines.append(f"# HELP {m.name} {m.help}")
            lines.append(f"# TYPE {m.name} counter")
            lines.append(f"{m.name}{_labels(m.labels)} {m.value}")
        elif isinstance(m, CounterFamily):
            lines.append(f"# HELP {m.name} {m.help}")
            lines.append(f"# TYPE {m.name} counter")
            for c in m.children():
                lines.append(f"{m.name}{_labels(c.labels)} {c.value}")
        elif isinstance(m, Gauge):
            lines.append(f"# HELP {m.name} {m.help}")
            lines.append(f"# TYPE {m.name} gauge")
            lines.append(f"{m.name} {_fmt_value(m.read())}")
        elif isinstance(m, MultiGauge):
            lines.append(f"# HELP {m.name} {m.help}")
            lines.append(f"# TYPE {m.name} gauge")
            for label_value, v in m.read():
                lines.append(
                    f"{m.name}"
                    f"{_labels(((m.label_name, label_value),))} "
                    f"{_fmt_value(v)}")
        elif isinstance(m, Histogram):
            lines.append(f"# HELP {m.name} {m.help}")
            lines.append(f"# TYPE {m.name} histogram")
            for le, acc in m.cumulative():
                lines.append(
                    f'{m.name}_bucket{{le="{_fmt_value(le)}"}} {acc}')
            lines.append(f"{m.name}_sum {m.sum}")
            lines.append(f"{m.name}_count {m.count}")
    return "\n".join(lines) + "\n"


def snapshot_json(obs, label: str | None = None) -> dict:
    """A full JSON snapshot of an :class:`~repro.obs.setup.Observability`
    instance: metrics, time series, and run identity."""
    net = obs.net
    payload = {
        "kind": "repro-metrics",
        "label": label,
        "cycle": net.cycle if net is not None else None,
        "scheme": (net.scheme.label
                   if net is not None and net.scheme is not None else None),
        "mesh": ([net.cfg.rows, net.cfg.cols] if net is not None else None),
        "seed": net.cfg.seed if net is not None else None,
        "sample_every": obs.sample_every,
        "events_emitted": obs.bus.emitted,
        "metrics": obs.registry.to_json(),
    }
    payload.update(obs.sampler.to_json())
    return payload


# -- artifacts -----------------------------------------------------------

def metrics_dir() -> Path:
    """``<results>/metrics``, honouring ``REPRO_RESULTS_DIR`` (the same
    convention as the campaign cache and the diagnostics dumps)."""
    root = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    return root / "metrics"


def write_metrics(obs, name: str, label: str | None = None) -> Path:
    """Write the JSON snapshot under ``results/metrics/`` and return the
    path.  The filename encodes ``name`` and the pid so concurrent
    campaign workers never collide."""
    out = metrics_dir()
    out.mkdir(parents=True, exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-") or "run"
    base = f"metrics_{safe}_p{os.getpid()}"
    path = out / f"{base}.json"
    n = 1
    while path.exists():
        path = out / f"{base}_{n}.json"
        n += 1
    payload = snapshot_json(obs, label=label or name)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.rename(path)
    return path

"""The metrics registry: named counters, gauges and histograms.

Prometheus-flavoured but dependency-free.  Metrics are registered once
(usually by :class:`repro.obs.setup.Observability` at attach time) and
read at export/sampling time; nothing here touches simulation state, and
gauges are *callback-backed* — they read the network's incrementally
maintained counters (``buffered``, ``inj_total``, …) or queue lengths,
never occupied-list order, so collecting them respects the parked-router
replay contract (no ``disturb`` needed, bit-identical results).
"""

from __future__ import annotations

import math


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "", labels: tuple = ()):
        self.name = name
        self.help = help
        #: ((label_name, label_value), ...) for family children, () else
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class CounterFamily:
    """A counter per label-value combination (e.g. upgrades per lane)."""

    __slots__ = ("name", "help", "label_names", "_children")

    def __init__(self, name: str, help: str, label_names: tuple):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._children: dict[tuple, Counter] = {}

    def labels(self, *values) -> Counter:
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if len(key) != len(self.label_names):
                raise ValueError(
                    f"{self.name}: expected labels {self.label_names}, "
                    f"got {values!r}")
            child = self._children[key] = Counter(
                self.name, self.help,
                tuple(zip(self.label_names, key)))
        return child

    def children(self) -> list[Counter]:
        return [self._children[k] for k in sorted(self._children)]

    def total(self) -> int:
        return sum(c.value for c in self._children.values())


class Gauge:
    """A point-in-time reading backed by a zero-argument callback."""

    __slots__ = ("name", "help", "fn")

    def __init__(self, name: str, help: str, fn):
        self.name = name
        self.help = help
        self.fn = fn

    def read(self):
        return self.fn()


class MultiGauge:
    """A labelled gauge whose callback yields ``(label_value, value)``
    pairs — e.g. per-router VC occupancy without 64 separate closures."""

    __slots__ = ("name", "help", "label_name", "fn")

    def __init__(self, name: str, help: str, label_name: str, fn):
        self.name = name
        self.help = help
        self.label_name = label_name
        self.fn = fn

    def read(self) -> list[tuple[str, float]]:
        return [(str(k), v) for k, v in self.fn()]


#: default latency buckets (cycles), roughly powers of two up to the
#: guaranteed-delivery regime; the +Inf bucket is implicit.
DEFAULT_BUCKETS = (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


class Histogram:
    """Fixed-bucket histogram with Prometheus cumulative-``le`` export."""

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, help: str = "",
                 buckets: tuple = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)   # last = +Inf
        self.sum = 0
        self.count = 0

    def observe(self, v) -> None:
        self.sum += v
        self.count += 1
        for i, b in enumerate(self.buckets):
            if v <= b:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with (+Inf, count)."""
        out = []
        acc = 0
        for b, c in zip(self.buckets, self.counts):
            acc += c
            out.append((float(b), acc))
        out.append((math.inf, self.count))
        return out

    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bucket bound)."""
        if not self.count:
            return float("nan")
        rank = q * self.count
        acc = 0
        for b, c in zip(self.buckets, self.counts):
            acc += c
            if acc >= rank:
                return float(b)
        return math.inf


class MetricsRegistry:
    """Flat namespace of metrics; the export surface walks it in
    registration order."""

    def __init__(self):
        self._metrics: dict[str, object] = {}

    # -- registration ---------------------------------------------------
    def _add(self, metric):
        if metric.name in self._metrics:
            raise ValueError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._add(Counter(name, help))

    def counter_family(self, name: str, help: str = "",
                       labels: tuple = ()) -> CounterFamily:
        return self._add(CounterFamily(name, help, labels))

    def gauge(self, name: str, help: str, fn) -> Gauge:
        return self._add(Gauge(name, help, fn))

    def multi_gauge(self, name: str, help: str, label_name: str,
                    fn) -> MultiGauge:
        return self._add(MultiGauge(name, help, label_name, fn))

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        return self._add(Histogram(name, help, buckets))

    # -- access ---------------------------------------------------------
    def get(self, name: str):
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics.values())

    def names(self) -> list[str]:
        return list(self._metrics)

    # -- snapshots ------------------------------------------------------
    def to_json(self) -> dict:
        """A JSON-serializable snapshot of every metric's current state."""
        counters: dict[str, object] = {}
        gauges: dict[str, object] = {}
        histograms: dict[str, object] = {}
        for m in self:
            if isinstance(m, Counter):
                counters[m.name] = m.value
            elif isinstance(m, CounterFamily):
                counters[m.name] = {
                    ",".join(f"{k}={v}" for k, v in c.labels): c.value
                    for c in m.children()}
            elif isinstance(m, Gauge):
                gauges[m.name] = m.read()
            elif isinstance(m, MultiGauge):
                gauges[m.name] = dict(m.read())
            elif isinstance(m, Histogram):
                histograms[m.name] = {
                    "buckets": list(m.buckets),
                    "counts": list(m.counts),
                    "sum": m.sum,
                    "count": m.count,
                    "mean": None if m.count == 0 else m.mean(),
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

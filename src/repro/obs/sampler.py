"""Periodic time-series sampling of gauge metrics.

The sampler is invoked from the network's cycle-tail hook every
``sample_every`` cycles (see :meth:`repro.network.network.Network.
_step_tail`) and appends the current reading of each registered scalar
gauge to an in-memory series.

Result-neutrality / parked-router contract: a sample is a pure *read* —
it consults the network's incrementally maintained counters and queue
*lengths*, never occupied-list order, and mutates nothing.  Parked
routers therefore stay parked across a sample (no ``disturb`` is
issued), the closed-form replay is untouched, and a run with sampling on
is bit-identical to one with it off.
"""

from __future__ import annotations

from repro.obs.registry import Gauge, MetricsRegistry


class TimeSeriesSampler:
    """Fixed-cadence series of ``(cycle, value)`` per tracked gauge."""

    def __init__(self, registry: MetricsRegistry,
                 max_samples: int = 100000):
        self.registry = registry
        self.max_samples = max_samples
        #: gauge name -> ([cycles], [values])
        self.series: dict[str, tuple[list, list]] = {}
        self._tracked: list[Gauge] = []
        self.dropped_samples = 0

    def track(self, gauge: Gauge) -> None:
        """Add a scalar gauge to the sampled set."""
        self._tracked.append(gauge)
        self.series[gauge.name] = ([], [])

    def track_all_gauges(self) -> None:
        for m in self.registry:
            if isinstance(m, Gauge):
                self.track(m)

    def sample(self, now: int) -> None:
        for g in self._tracked:
            cycles, values = self.series[g.name]
            if len(cycles) >= self.max_samples:
                # Bounded memory: silently capping would misread as "the
                # run ended here", so the drop count is exported too.
                self.dropped_samples += 1
                continue
            cycles.append(now)
            values.append(g.read())

    def to_json(self) -> dict:
        return {
            "series": {name: {"cycles": c, "values": v}
                       for name, (c, v) in self.series.items()},
            "dropped_samples": self.dropped_samples,
        }

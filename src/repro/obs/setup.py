"""The :class:`Observability` bundle: one bus + registry + sampler,
attached to one network.

Attaching wires the standard NoC metric set — event-fed counters
(generation, injection, ejection, upgrades per lane, bounces, drops,
regenerations, lane slots, prime rotations, fault events), the end-to-end
latency histogram, and callback gauges over the network's incremental
occupancy counters (in-flight, backlog, injection-queue depth, per-router
VC occupancy).  Detaching restores the network to the zero-overhead
state (``net.obs is None`` — the only thing the hot path ever tests).

Attach/detach is result-neutral: counters and the tracer only *read*,
gauges read order-insensitive aggregates, and nothing on the bus mutates
simulation state.  ``tests/integration/test_obs_neutrality.py`` proves
runs bit-identical with observability attached vs detached on both the
active-set and the naive engines.
"""

from __future__ import annotations

from repro.obs.bus import EventBus
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import TimeSeriesSampler


class Observability:
    """Bus + metrics + sampling for a single network.

    ``sample_every=0`` (default) disables time-series sampling; any
    positive cadence samples the tracked gauges every N cycles from the
    network's cycle tail.
    """

    def __init__(self, sample_every: int = 0):
        if sample_every < 0:
            raise ValueError("sample_every must be non-negative")
        self.bus = EventBus()
        self.registry = MetricsRegistry()
        self.sampler = TimeSeriesSampler(self.registry)
        self.sample_every = sample_every
        self.net = None
        #: bound for the hot emit path: ``obs.emit(...)`` with no extra
        #: attribute hop
        self.emit = self.bus.emit

    # ------------------------------------------------------------------
    def attach(self, net) -> "Observability":
        """Install on ``net`` and wire the standard NoC metric set."""
        if net.obs is not None:
            raise RuntimeError("network already has observability attached")
        if self.net is not None and self.net is not net:
            raise RuntimeError("Observability instances are per-network")
        self.net = net
        net.obs = self
        self._wire(net)
        return self

    def detach(self) -> None:
        """Remove from the network; the instance keeps its recorded data
        and can still be exported, but receives no further events."""
        if self.net is not None:
            self.net.obs = None
            self.net = None

    # ------------------------------------------------------------------
    def _wire(self, net) -> None:
        reg = self.registry
        bus = self.bus

        def count(kind: str, counter) -> None:
            bus.subscribe(kind,
                          lambda cycle, pid, fields, c=counter: c.inc())

        count("generated", reg.counter(
            "noc_generated_total", "packets handed to a source NI"))
        count("injected", reg.counter(
            "noc_injected_total", "packets that entered a router VC "
            "(including upgrades straight from injection queues)"))
        count("dropped", reg.counter(
            "noc_dropped_total", "dynamic-bubble drops awaiting MSHR "
            "regeneration"))
        count("regenerated", reg.counter(
            "noc_regenerated_total", "dropped requests re-issued from "
            "the MSHR"))
        count("bounced", reg.counter(
            "noc_bounced_total", "FastPass-Packets bounced at a full "
            "ejection queue"))
        count("bounce_returned", reg.counter(
            "noc_bounce_returned_total", "bounced packets received back "
            "at their prime's request injection queue"))
        count("lane_slot", reg.counter(
            "noc_lane_slots_total", "TDM lane slots observed by the "
            "FastPass manager"))
        count("prime_rotation", reg.counter(
            "noc_prime_rotations_total", "prime-role rotations (phase "
            "advances) observed"))

        ejected = reg.counter("noc_ejected_total",
                              "packets delivered into ejection queues")
        latency = reg.histogram(
            "noc_packet_latency_cycles",
            "end-to-end latency of measured packets (cycles)")

        def on_ejected(cycle, pid, fields):
            ejected.inc()
            if fields["measured"]:
                latency.observe(fields["latency"])

        bus.subscribe("ejected", on_ejected)

        upgrades = reg.counter_family(
            "noc_upgrades_total",
            "FastPass upgrades (lane launches) per TDM lane",
            labels=("lane",))

        def on_upgraded(cycle, pid, fields):
            upgrades.labels(fields["lane"]).inc()

        bus.subscribe("upgraded", on_upgraded)

        faults = reg.counter_family(
            "noc_fault_events_total",
            "fault activations and recoveries by kind",
            labels=("kind",))

        def on_fault(cycle, pid, fields):
            faults.labels(fields["kind"]).inc()

        bus.subscribe("fault", on_fault)

        # Callback gauges over the incremental counters: pure reads, no
        # disturb, safe at any point of the cycle.
        g_inflight = reg.gauge(
            "noc_packets_in_flight",
            "packets inside routers or NI queues (excl. pending)",
            net.packets_in_flight)
        g_backlog = reg.gauge(
            "noc_total_backlog",
            "in-flight packets plus source-queue backlog",
            net.total_backlog)
        g_buffered = reg.gauge(
            "noc_buffered", "packets in router VC slots or side buffers",
            lambda: net.buffered)
        g_injq = reg.gauge(
            "noc_inj_queue_depth",
            "total packets across the bounded NI injection queues",
            lambda: net.inj_total)
        g_limbo = reg.gauge(
            "noc_limbo", "dropped requests awaiting MSHR regeneration",
            lambda: net.limbo)
        reg.multi_gauge(
            "noc_vc_occupancy", "occupied VC slots per router", "router",
            lambda: [(r.id, sum(1 for s in r.occupied if s.pkt is not None))
                     for r in net.routers])

        for g in (g_inflight, g_backlog, g_buffered, g_injq, g_limbo):
            self.sampler.track(g)


def attach_observability(net, sample_every: int = 0) -> Observability:
    """Convenience: build an :class:`Observability` and attach it."""
    return Observability(sample_every=sample_every).attach(net)

"""Observability: event bus, metrics registry, sampling, exporters.

The public surface:

* :class:`~repro.obs.bus.EventBus` — per-kind subscriber lists with an
  allocation-light emit; the datapath's emit points are guarded by one
  ``net.obs is None`` test, so an unattached network pays nothing.
* :class:`~repro.obs.registry.MetricsRegistry` — named counters, gauges,
  histograms (Prometheus-flavoured, dependency-free).
* :class:`~repro.obs.sampler.TimeSeriesSampler` — periodic gauge series.
* :class:`~repro.obs.setup.Observability` /
  :func:`~repro.obs.setup.attach_observability` — the per-network bundle
  that wires the standard NoC metric set.
* :mod:`repro.obs.exporters` — JSON snapshot, Prometheus text format,
  and the per-run ``results/metrics/`` artifact.

See DESIGN §11 for the architecture and the overhead methodology.
"""

from repro.obs.bus import KINDS, EventBus
from repro.obs.exporters import (
    metrics_dir,
    snapshot_json,
    to_prometheus,
    write_metrics,
)
from repro.obs.registry import (
    Counter,
    CounterFamily,
    Gauge,
    Histogram,
    MetricsRegistry,
    MultiGauge,
)
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.setup import Observability, attach_observability

__all__ = [
    "KINDS",
    "EventBus",
    "Counter",
    "CounterFamily",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MultiGauge",
    "TimeSeriesSampler",
    "Observability",
    "attach_observability",
    "metrics_dir",
    "snapshot_json",
    "to_prometheus",
    "write_metrics",
]

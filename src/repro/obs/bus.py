"""The observability event bus.

Components emit *events* — discrete facts about the simulation (a packet
was upgraded, a lane slot started, a fault activated) — and subscribers
(the metrics registry, the packet tracer, test spies) receive them as
plain callbacks.  The bus replaces the old monkey-patching tracer hooks:
emit points are explicit in the datapath and guarded by a single
``net.obs is None`` test, so a network without observability attached
pays nothing beyond that branch and a network with it attached pays only
for the kinds somebody actually subscribed to.

Subscriber signature::

    def on_event(cycle: int, pid: int, fields: dict) -> None

``pid`` is the packet id, or -1 for network-level events (lane slots,
prime rotations, faults).  ``fields`` carries the kind-specific payload;
subscribers must treat it as read-only (it may be shared between
subscribers of the same emission).

Event kinds emitted by the stock datapath (see DESIGN §11):

=================  ====================================================
kind               fields
=================  ====================================================
``generated``      src, dst, mclass
``injected``       src, dst, vn
``ejected``        dst, fastpass, measured, latency
``upgraded``       lane, prime, dst
``bounced``        dst, prime          (bounce decided at destination)
``bounce_returned`` prime, dst         (bounced packet back at prime)
``dropped``        src, drop_count     (dynamic-bubble drop)
``regenerated``    src                 (MSHR regeneration)
``lane_slot``      slot, phase, slot_end
``prime_rotation`` phase, primes
``fault``          kind, router, port  (activation and ``recovered``)
=================  ====================================================
"""

from __future__ import annotations

#: the event kinds the stock emit points produce; subscribing to other
#: kinds is allowed (custom schemes may emit their own).
KINDS = (
    "generated", "injected", "ejected", "upgraded", "bounced",
    "bounce_returned", "dropped", "regenerated", "lane_slot",
    "prime_rotation", "fault",
)


class EventBus:
    """Per-kind subscriber lists with a flat, allocation-light emit."""

    __slots__ = ("_subs", "emitted")

    def __init__(self):
        self._subs: dict[str, list] = {}
        #: total emissions that reached at least one subscriber
        self.emitted = 0

    # -- subscription ---------------------------------------------------
    def subscribe(self, kind: str, fn) -> None:
        """Register ``fn(cycle, pid, fields)`` for ``kind``."""
        self._subs.setdefault(kind, []).append(fn)

    def subscribe_many(self, kinds, fn) -> None:
        for kind in kinds:
            self.subscribe(kind, fn)

    def unsubscribe(self, kind: str, fn) -> None:
        subs = self._subs.get(kind)
        if subs is not None:
            try:
                subs.remove(fn)
            except ValueError:
                pass
            if not subs:
                del self._subs[kind]

    def subscriber_count(self, kind: str | None = None) -> int:
        if kind is not None:
            return len(self._subs.get(kind, ()))
        return sum(len(v) for v in self._subs.values())

    # -- emission -------------------------------------------------------
    def emit(self, kind: str, cycle: int, pid: int = -1, /,
             **fields) -> None:
        """Deliver one event to every subscriber of ``kind``.

        The first three parameters are positional-only, so ``fields`` may
        itself carry keys named ``kind``/``cycle``/``pid`` (the fault
        events use ``kind=`` for the fault kind).

        Emission never mutates simulation state — observability is
        result-neutral by construction, and the differential tests
        (``tests/integration/test_obs_neutrality.py``) enforce it.
        """
        subs = self._subs.get(kind)
        if subs:
            self.emitted += 1
            for fn in subs:
                fn(cycle, pid, fields)

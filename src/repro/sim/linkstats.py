"""Link-utilization analysis.

Links count the flit-cycles they carry, split between regular traffic and
FastFlow lane traffic; this module turns those counters into utilization
maps — the data behind the paper's "FastPass-Packets bypass congested
areas" argument and a handy congestion-debugging tool.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkUtilization:
    src: int
    dst: int
    regular: float     # fraction of cycles carrying regular flits
    fastflow: float    # fraction of cycles reserved by FastFlow

    @property
    def total(self) -> float:
        return self.regular + self.fastflow


def utilization(net, cycles: int | None = None) -> list[LinkUtilization]:
    """Per-link utilization over the run so far (or ``cycles``)."""
    span = cycles if cycles is not None else max(1, net.cycle)
    out = []
    for link in net.links:
        out.append(LinkUtilization(
            src=link.src, dst=link.dst,
            regular=link.util_flits / span,
            fastflow=link.fp_flits / span))
    return out


def hotspots(net, top: int = 5) -> list[LinkUtilization]:
    """The ``top`` most loaded links."""
    return sorted(utilization(net), key=lambda u: u.total,
                  reverse=True)[:top]


def summary(net) -> dict:
    """Aggregate network-wide utilization figures."""
    utils = utilization(net)
    if not utils:
        return {"mean": 0.0, "max": 0.0, "fastflow_share": 0.0}
    totals = [u.total for u in utils]
    ff = sum(u.fastflow for u in utils)
    reg = sum(u.regular for u in utils)
    return {
        "mean": sum(totals) / len(totals),
        "max": max(totals),
        "fastflow_share": ff / (ff + reg) if (ff + reg) else 0.0,
    }


def format_heatmap(net) -> str:
    """ASCII heatmap of per-router output-link load (mesh only)."""
    mesh = net.mesh
    rows = []
    for y in reversed(range(mesh.rows)):
        cells = []
        for x in range(mesh.cols):
            rid = mesh.rid(x, y)
            links = [l for l in net.routers[rid].links_out if l is not None]
            span = max(1, net.cycle)
            load = sum((l.util_flits + l.fp_flits) / span for l in links)
            load /= max(1, len(links))
            cells.append(f"{load:4.2f}")
        rows.append(" ".join(cells))
    return "\n".join(rows)

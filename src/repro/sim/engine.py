"""Simulation assembly and execution.

Two run modes:

* :meth:`Simulation.run` — open-loop synthetic runs with warmup /
  measurement / drain windows; returns a :class:`~repro.config.RunResult`.
* :meth:`Simulation.run_to_completion` — closed-loop application runs
  (coherence traffic); executes until every transaction retires or a cycle
  cap / deadlock stops it.
"""

from __future__ import annotations

from repro.config import RunResult, SimConfig
from repro.network.network import Network
from repro.network.routing import ROUTERS
from repro.network.topology import Mesh


def build_network(cfg: SimConfig, scheme, shared=None,
                  defer_soa: bool = False) -> Network:
    """Construct a network configured for ``scheme``.

    ``shared`` is a :class:`repro.sim.batch.shared.SharedStructures`:
    the first build against it donates the immutable tables (mesh, route
    memos, scheme geometry), later builds adopt them.  Without an
    explicit ``shared`` the process-level cache is consulted, so fork
    workers whose parent prewarmed the structures inherit them
    copy-on-write instead of re-deriving (and a cold process, where the
    cache is empty, builds exactly as before).

    ``defer_soa`` keeps an ``engine="soa"`` network's router hook and
    fallback decision but skips the kernel attach — for
    :class:`~repro.sim.soa.batch.SoABatch`, which leases the state
    arrays of every replica and attaches the kernels itself.
    """
    cfg = scheme.configure(cfg)
    router_cls = scheme.router_cls
    soa_fallback = None
    use_soa = False
    if cfg.engine == "soa":
        from repro.sim import soa
        soa.require_numpy()
        soa_fallback = soa.fallback_reason(cfg, scheme)
        if soa_fallback is None:
            use_soa = True
            router_cls = soa.hooked_router_cls(router_cls)
    if shared is None:
        from repro.sim.batch.shared import process_shared
        shared = process_shared(cfg, scheme)
    if shared is not None:
        shared.claim(cfg, scheme)
        mesh = shared.mesh
        if mesh is None:
            mesh = shared.mesh = Mesh(cfg.rows, cfg.cols)
    else:
        mesh = Mesh(cfg.rows, cfg.cols)
    net = Network(cfg, mesh, ROUTERS[scheme.routing],
                  router_cls=router_cls, scheme=scheme,
                  shared=shared)
    #: why an engine="soa" request fell back to scalar (None otherwise)
    net.soa_fallback = soa_fallback
    #: why an attached kernel detached mid-run (None otherwise)
    net.soa_demoted = None
    scheme.build(net)
    if use_soa and not defer_soa:
        from repro.sim.soa import attach
        attach(net)
    return net


class Simulation:
    """One (scheme, traffic, config) run."""

    def __init__(self, cfg: SimConfig, scheme, traffic, shared=None,
                 defer_soa: bool = False):
        self.scheme = scheme
        self.net = build_network(cfg, scheme, shared=shared,
                                 defer_soa=defer_soa)
        self.cfg = self.net.cfg
        net = self.net
        if self.cfg.engine == "naive":
            net.force_naive_step = True
        self.traffic = traffic
        traffic.bind(self.net)
        self.net.traffic = traffic

    @property
    def engine_used(self) -> str:
        """Which cycle engine actually drives this run.

        Deliberately a property over live network state, not a RunResult
        field: every engine is bit-identical, so results (and the
        campaign cache keys) must not depend on engine ids.  Evaluated
        late so mid-run demotions (batched replicas leaving the kernel's
        envelope) are reported truthfully.
        """
        net = self.net
        if net.soa is not None:
            return "soa"
        if net.force_naive_step:
            return "naive"
        if self.cfg.engine == "soa":
            if net.soa_fallback is not None:
                return f"active (soa fallback: {net.soa_fallback})"
            if net.soa_demoted is not None:
                return f"active (soa demoted: {net.soa_demoted})"
            return "active"
        return "active"

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Open-loop run: warmup, measure, drain; aggregate statistics."""
        cfg = self.cfg
        net = self.net
        stats = net.stats
        t0 = cfg.warmup_cycles
        t1 = t0 + cfg.measure_cycles
        self.traffic.measure_window(t0, t1)
        stats.measure_start, stats.measure_end = t0, t1

        net.run(t1)
        # Drain: give measured packets a chance to arrive.  Stops early
        # once the network holds nothing at all — any still-undelivered
        # measured packet must then be a dropped request waiting in limbo
        # for MSHR regeneration, which total_backlog() excludes.
        deadline = net.cycle + cfg.drain_cycles
        step = net.step
        watchdog = net.watchdog
        measured_generated = self.traffic.measured_generated
        while (net.cycle < deadline
               and stats.ejected_measured < measured_generated
               and not watchdog.deadlocked
               and net.total_backlog() + net.limbo > 0):
            step()
        return self._result()

    def run_to_completion(self, max_cycles: int) -> RunResult:
        """Closed-loop run: execute until the traffic reports completion."""
        net = self.net
        self.traffic.measure_window(0, 1 << 60)
        net.stats.measure_start, net.stats.measure_end = 0, 1 << 60
        while (net.cycle < max_cycles and not self.traffic.done()
               and not net.watchdog.deadlocked):
            net.step()
        return self._result()

    # ------------------------------------------------------------------
    def _result(self) -> RunResult:
        net = self.net
        cfg = self.cfg
        stats = net.stats
        res = RunResult(scheme=self.scheme.label)
        res.injected = stats.injected
        res.ejected = stats.ejected_total
        res.dropped = stats.dropped
        res.fastpass_delivered = stats.fastpass_delivered
        res.regular_delivered = stats.regular_delivered
        res.avg_latency = stats.avg_latency()
        res.p99_latency = stats.p99_latency()
        res.throughput = stats.throughput(cfg.n_routers, cfg.measure_cycles)
        res.deadlocked = net.watchdog.deadlocked
        res.cycles = net.cycle
        res.fp_buffered_time = stats.mean(stats.fp_buffered)
        res.fp_bufferless_time = stats.mean(stats.fp_bufferless)
        res.reg_latency = stats.mean(stats.reg_latencies)
        res.degraded_delivered = stats.degraded_delivered
        res.degraded_latency = stats.mean(stats.degraded_latencies)
        res.extra["measured_generated"] = getattr(
            self.traffic, "measured_generated", 0)
        res.extra["undelivered"] = (res.extra["measured_generated"]
                                    - stats.ejected_measured)
        if net.faults is not None:
            res.extra["faults"] = net.faults.summary()
        if net.auditor is not None:
            # A final scan at exit so short runs cannot dodge the audit by
            # finishing between two periodic checks.
            net.auditor.check(net.cycle)
            res.liveness_violations = net.auditor.violation_count
            res.extra["liveness"] = net.auditor.summary()
        if net.postmortem_path is not None:
            res.extra["postmortem"] = str(net.postmortem_path)
        stats.warn_if_empty(self.scheme.label)
        return res

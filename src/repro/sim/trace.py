"""Per-packet event tracing.

Attach a :class:`PacketTracer` to a network to record a timeline of what
happened to each packet — generation, injection, per-hop transfers,
FastFlow upgrades, bounces, drops, ejection.  Intended for debugging and
for the examples; the hot simulation paths stay trace-free unless a tracer
is attached (the hooks monkey-patch the stats collector and NI methods of
one specific network instance).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    kind: str        # generated | injected | ejected | upgraded | bounced
    #                | dropped | regenerated
    detail: str = ""


class PacketTracer:
    """Records per-packet timelines for one network."""

    def __init__(self, net, max_packets: int = 100000):
        self.net = net
        self.max_packets = max_packets
        self.events: dict[int, list[TraceEvent]] = defaultdict(list)
        self._install(net)

    # ------------------------------------------------------------------
    def record(self, pid: int, cycle: int, kind: str,
               detail: str = "") -> None:
        if len(self.events) >= self.max_packets and pid not in self.events:
            return
        self.events[pid].append(TraceEvent(cycle, kind, detail))

    def timeline(self, pid: int) -> list[TraceEvent]:
        return list(self.events.get(pid, ()))

    def format_timeline(self, pid: int) -> str:
        lines = [f"packet {pid}:"]
        for ev in self.timeline(pid):
            lines.append(f"  @{ev.cycle:>7} {ev.kind:<12} {ev.detail}")
        return "\n".join(lines)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = defaultdict(int)
        for evs in self.events.values():
            for ev in evs:
                out[ev.kind] += 1
        return dict(out)

    # ------------------------------------------------------------------
    def _install(self, net) -> None:
        tracer = self

        def on_ejected(pkt):
            tracer.record(pkt.pid, pkt.eject_cycle, "ejected",
                          f"dst={pkt.dst} fastpass={pkt.was_fastpass}")

        # The collector's observer slot (it uses __slots__, so its methods
        # cannot be monkeypatched per instance).
        net.stats.on_ejected = on_ejected

        for ni in net.nis:
            self._install_ni(ni)

        mgr = getattr(net, "fastpass", None)
        if mgr is not None:
            orig_launch = mgr.engine.launch_forward

            def launch(pkt, prime, now, _orig=orig_launch):
                tracer.record(pkt.pid, now, "upgraded",
                              f"prime={prime} dst={pkt.dst}")
                return _orig(pkt, prime, now)

            mgr.engine.launch_forward = launch

    def _install_ni(self, ni) -> None:
        tracer = self
        orig_source = ni.source

        def source(pkt, _orig=orig_source):
            tracer.record(pkt.pid, pkt.gen_cycle, "generated",
                          f"{pkt.src}->{pkt.dst} cls={pkt.mclass}")
            _orig(pkt)

        ni.source = source

        orig_bounced = ni.accept_bounced

        def accept_bounced(pkt, now, _orig=orig_bounced):
            tracer.record(pkt.pid, now, "bounced", f"prime={ni.id}")
            _orig(pkt, now)

        ni.accept_bounced = accept_bounced

        orig_regen = ni._regenerate

        def regenerate(now, pkt, _orig=orig_regen):
            tracer.record(pkt.pid, now, "regenerated", "")
            _orig(now, pkt)

        ni._regenerate = regenerate

"""Per-packet event tracing.

Attach a :class:`PacketTracer` to a network to record a timeline of what
happened to each packet — generation, injection, FastFlow upgrades,
bounces, drops, regenerations, ejection.  Intended for debugging and for
the examples.

The tracer is a plain subscriber of the observability event bus
(:mod:`repro.obs`): it installs no monkey-patches, works identically
under the active-set engine with inlined transfer/ejection paths, and
costs nothing unless observability is attached (the datapath's only
concession is the ``net.obs is None`` test at each emit point).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    kind: str        # generated | injected | ejected | upgraded | bounced
    #                | dropped | regenerated
    detail: str = ""


class PacketTracer:
    """Records per-packet timelines for one network.

    Bus-to-trace kind mapping: the bus distinguishes the bounce
    *decision* at the destination ('bounced') from the bounced packet's
    *arrival* back at its prime ('bounce_returned'); the tracer records
    the latter as kind ``bounced``, preserving the historical timeline
    semantics (the cycle the packet re-entered a request injection
    queue).
    """

    def __init__(self, net, max_packets: int = 100000):
        self.net = net
        self.max_packets = max_packets
        self.events: dict[int, list[TraceEvent]] = defaultdict(list)
        obs = net.obs
        if obs is None:
            from repro.obs import attach_observability
            obs = attach_observability(net)
        self.obs = obs
        self._subs: list[tuple[str, object]] = []
        self._install(obs.bus)

    # ------------------------------------------------------------------
    def record(self, pid: int, cycle: int, kind: str,
               detail: str = "") -> None:
        if len(self.events) >= self.max_packets and pid not in self.events:
            return
        self.events[pid].append(TraceEvent(cycle, kind, detail))

    def timeline(self, pid: int) -> list[TraceEvent]:
        return list(self.events.get(pid, ()))

    def format_timeline(self, pid: int) -> str:
        lines = [f"packet {pid}:"]
        for ev in self.timeline(pid):
            lines.append(f"  @{ev.cycle:>7} {ev.kind:<12} {ev.detail}")
        return "\n".join(lines)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = defaultdict(int)
        for evs in self.events.values():
            for ev in evs:
                out[ev.kind] += 1
        return dict(out)

    def detach(self) -> None:
        """Stop recording (the bus subscriptions are removed; any
        observability bundle the tracer attached stays attached)."""
        for kind, fn in self._subs:
            self.obs.bus.unsubscribe(kind, fn)
        self._subs.clear()

    # ------------------------------------------------------------------
    def _install(self, bus) -> None:
        record = self.record

        def sub(kind: str, trace_kind: str, fmt) -> None:
            def fn(cycle, pid, fields, _k=trace_kind, _f=fmt):
                record(pid, cycle, _k, _f(fields))
            bus.subscribe(kind, fn)
            self._subs.append((kind, fn))

        sub("generated", "generated",
            lambda f: f"{f['src']}->{f['dst']} cls={f['mclass']}")
        sub("injected", "injected",
            lambda f: f"src={f['src']} dst={f['dst']}")
        sub("ejected", "ejected",
            lambda f: f"dst={f['dst']} fastpass={f['fastpass']}")
        sub("upgraded", "upgraded",
            lambda f: f"prime={f['prime']} dst={f['dst']}")
        sub("bounce_returned", "bounced",
            lambda f: f"prime={f['prime']}")
        sub("dropped", "dropped",
            lambda f: f"src={f['src']}")
        sub("regenerated", "regenerated", lambda f: "")

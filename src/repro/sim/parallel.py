"""Parallel experiment execution.

Sweeps are embarrassingly parallel (every (scheme, pattern, rate) point is
an independent deterministic simulation), and pure-Python cycle simulation
is slow enough that using the machine's cores matters.  The workers are
separate processes, so results are identical to the serial runner.

Execution is delegated to the campaign executor
(:mod:`repro.campaign.executor`), which adds worker-crash isolation,
bounded retries and optional wall-clock timeouts on top of the plain
process pool.  ``parallel_sweep`` keeps its always-recompute semantics
(no result cache) unless a cache is passed explicitly.

Two batching layers keep the pool from re-deriving identical immutable
state: under fork start methods the executor warms the route tables for
every distinct configuration on the parent side before the first worker
starts (children inherit them copy-on-write), and points that differ
only in their seed (:meth:`Point.make_seeded`) run as one lock-step
replica batch per worker instead of R separate simulations.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

from repro.config import RunResult, SimConfig


@dataclass(frozen=True)
class Point:
    """One simulation point of a sweep.

    ``scheme_kwargs`` and ``meta`` are sorted ``(key, value)`` tuples so
    equal points compare and hash equal regardless of construction order.
    ``meta`` carries non-scheme execution parameters (benchmark
    transaction counts, seeds, cycle caps) for closed-loop points; it is
    empty for plain synthetic points.
    """

    scheme: str
    scheme_kwargs: tuple        # sorted (key, value) pairs, hashable
    pattern: str
    rate: float
    meta: tuple = ()            # sorted (key, value) pairs, hashable

    @staticmethod
    def make(scheme: str, pattern: str, rate: float,
             **scheme_kwargs) -> "Point":
        return Point(scheme, tuple(sorted(scheme_kwargs.items())),
                     pattern, rate)

    @staticmethod
    def make_seeded(scheme: str, pattern: str, rate: float, seed: int,
                    **scheme_kwargs) -> "Point":
        """A synthetic point pinned to a seed.

        Seed replicas of one (scheme, pattern, rate) built this way are
        folded into a single lock-step batch by the campaign executor
        while keeping their individual cache keys.
        """
        return Point(scheme, tuple(sorted(scheme_kwargs.items())),
                     pattern, rate, (("seed", seed),))

    @staticmethod
    def make_app(scheme: str, benchmark: str, txns: int, seed: int = 1,
                 max_cycles: int = 400000, **scheme_kwargs) -> "Point":
        """A closed-loop application point (``pattern="app:<benchmark>"``)."""
        meta = (("max_cycles", max_cycles), ("seed", seed), ("txns", txns))
        return Point(scheme, tuple(sorted(scheme_kwargs.items())),
                     f"app:{benchmark}", 0.0, meta)

    @staticmethod
    def make_stress(scheme: str, max_cycles: int = 80000, seed: int = 7,
                    **scheme_kwargs) -> "Point":
        """The adversarial protocol-pressure probe (Table I / Fig. 13c)."""
        meta = (("max_cycles", max_cycles), ("seed", seed))
        return Point(scheme, tuple(sorted(scheme_kwargs.items())),
                     "stress:protocol", 0.0, meta)

    @staticmethod
    def make_fault(scheme: str, pattern: str, rate: float, plan=None,
                   traffic_stop: int | None = None, seed: int | None = None,
                   **scheme_kwargs) -> "Point":
        """A synthetic point with fault injection.

        The :class:`~repro.fault.plan.FaultPlan` rides in ``meta`` as its
        canonical token, so it participates in the campaign cache key —
        identical (plan, config, seed) points hit the cache, different
        plans never collide.  ``traffic_stop`` ends generation at that
        cycle so a fault-wedged network stalls globally (letting the
        watchdog fire) instead of being masked by fresh traffic.
        """
        meta = []
        if plan:
            meta.append(("faults", plan.token()))
        if traffic_stop is not None:
            meta.append(("traffic_stop", traffic_stop))
        if seed is not None:
            meta.append(("seed", seed))
        return Point(scheme, tuple(sorted(scheme_kwargs.items())),
                     pattern, rate, tuple(sorted(meta)))

    @staticmethod
    def make_scenario(scheme: str, spec, seed: int | None = None,
                      plan=None, traffic_stop: int | None = None,
                      **scheme_kwargs) -> "Point":
        """A declarative-scenario point (``pattern="scenario:<name>"``).

        The spec's full canonical token rides in ``meta``, so the
        campaign cache keys on the scenario *content* — edit any phase
        and every cached point misses; the name alone never collides.
        Seed replicas of a chunk-aligned spec fold into lock-step
        batches like plain synthetic points (``replica_signature``
        checks the alignment).
        """
        meta = [("scenario", spec.token())]
        if seed is not None:
            meta.append(("seed", seed))
        if plan:
            meta.append(("faults", plan.token()))
        if traffic_stop is not None:
            meta.append(("traffic_stop", traffic_stop))
        return Point(scheme, tuple(sorted(scheme_kwargs.items())),
                     f"scenario:{spec.name}", spec.mean_rate(),
                     tuple(sorted(meta)))

    @staticmethod
    def make_trace(scheme: str, trace_path: str,
                   **scheme_kwargs) -> "Point":
        """A trace-replay point (``pattern="trace:<path>"``).

        The artifact path is the identity; campaigns re-read the file at
        execution time, so traces live outside the cache key's content —
        replaying a *changed* file under the same path is the caller's
        foot-gun, which is why the experiments name traces by scenario
        content hash.
        """
        return Point(scheme, tuple(sorted(scheme_kwargs.items())),
                     f"trace:{trace_path}", 0.0)

    @staticmethod
    def make_irregular(topology: str, partitions: int = 4,
                       slot_cycles: int = 32,
                       scheme: str = "fastpass") -> "Point":
        """An irregular-topology schedule point
        (``pattern="irregular:<topology>"``, §III-F): derives, verifies
        and characterises FastPass partitions for an arbitrary graph."""
        meta = (("partitions", partitions), ("slot_cycles", slot_cycles))
        return Point(scheme, (), f"irregular:{topology}", 0.0, meta)

    # -- JSON round-trip (the cache-key basis) --------------------------
    def to_json(self) -> dict:
        """Canonical JSON form: kwargs/meta as sorted [key, value] lists."""
        return {
            "scheme": self.scheme,
            "scheme_kwargs": [[k, v] for k, v in
                              sorted(self.scheme_kwargs)],
            "pattern": self.pattern,
            "rate": self.rate,
            "meta": [[k, v] for k, v in sorted(self.meta)],
        }

    @classmethod
    def from_json(cls, d: dict) -> "Point":
        return cls(d["scheme"],
                   tuple(sorted((k, v) for k, v in d["scheme_kwargs"])),
                   d["pattern"], d["rate"],
                   tuple(sorted((k, v) for k, v in d.get("meta", ()))))


def _run_one(args) -> RunResult:
    point, cfg = args
    from repro.campaign.worker import execute_point
    return execute_point(point, cfg)


def pool_context() -> mp.context.BaseContext:
    """Prefer fork where available (cheap, inherits loaded modules)."""
    return mp.get_context("fork") if "fork" in mp.get_all_start_methods() \
        else mp.get_context("spawn")


def parallel_sweep(points: list[Point], cfg: SimConfig,
                   processes: int | None = None,
                   cache=None) -> list[RunResult]:
    """Run every point, using up to ``processes`` worker processes.

    Results come back in the order of ``points``.  With ``processes=1``
    (or a single point) everything runs in-process — handy for debugging
    and for platforms where fork is unavailable.  Pass a
    :class:`repro.campaign.cache.RunCache` as ``cache`` to make the sweep
    incremental; the default recomputes every point.
    """
    from repro.campaign.executor import CampaignExecutor
    ex = CampaignExecutor(cfg, cache=cache, store=None, processes=processes)
    return ex.run(points)


def grid(schemes: list[tuple], patterns: list[str],
         rates: list[float]) -> list[Point]:
    """The full cartesian sweep grid, as Points.

    ``schemes`` entries are ``(name, kwargs_dict)`` pairs.
    """
    return [Point.make(name, pattern, rate, **kwargs)
            for name, kwargs in schemes
            for pattern in patterns
            for rate in rates]

"""Parallel experiment execution.

Sweeps are embarrassingly parallel (every (scheme, pattern, rate) point is
an independent deterministic simulation), and pure-Python cycle simulation
is slow enough that using the machine's cores matters.  The workers are
separate processes, so results are identical to the serial runner.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

from repro.config import RunResult, SimConfig


@dataclass(frozen=True)
class Point:
    """One simulation point of a sweep."""

    scheme: str
    scheme_kwargs: tuple        # sorted (key, value) pairs, hashable
    pattern: str
    rate: float

    @staticmethod
    def make(scheme: str, pattern: str, rate: float,
             **scheme_kwargs) -> "Point":
        return Point(scheme, tuple(sorted(scheme_kwargs.items())),
                     pattern, rate)


def _run_one(args) -> RunResult:
    point, cfg = args
    from repro.schemes import get_scheme
    from repro.sim.runner import run_point
    scheme = get_scheme(point.scheme, **dict(point.scheme_kwargs))
    return run_point(scheme, point.pattern, point.rate, cfg)


def parallel_sweep(points: list[Point], cfg: SimConfig,
                   processes: int | None = None) -> list[RunResult]:
    """Run every point, using up to ``processes`` worker processes.

    Results come back in the order of ``points``.  With ``processes=1``
    (or a single point) everything runs in-process — handy for debugging
    and for platforms where fork is unavailable.
    """
    jobs = [(p, cfg) for p in points]
    if processes == 1 or len(points) <= 1:
        return [_run_one(job) for job in jobs]
    procs = processes or min(len(points), mp.cpu_count())
    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() \
        else mp.get_context("spawn")
    with ctx.Pool(procs) as pool:
        return pool.map(_run_one, jobs)


def grid(schemes: list[tuple], patterns: list[str],
         rates: list[float]) -> list[Point]:
    """The full cartesian sweep grid, as Points.

    ``schemes`` entries are ``(name, kwargs_dict)`` pairs.
    """
    return [Point.make(name, pattern, rate, **kwargs)
            for name, kwargs in schemes
            for pattern in patterns
            for rate in rates]

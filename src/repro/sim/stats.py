"""Statistics collection.

Latency samples are recorded at ejection time for packets generated inside
the measurement window (``pkt.measured``).  FastPass-Packets additionally
split their latency into *buffered* (regular) time before the upgrade and
*bufferless* (FastFlow) time after it — the breakdown of Fig. 9.
"""

from __future__ import annotations

import logging
import math

log = logging.getLogger("repro.sim.stats")


def percentile(sorted_vals, q: float) -> float:
    """Nearest-rank percentile of a pre-sorted sequence.

    NaN-safe: NaN samples are ignored (NaN sorts unpredictably, so a
    single one would otherwise silently corrupt the rank), and an empty
    sample set yields NaN — which the table formatters render as '-'.
    """
    vals = [v for v in sorted_vals if v == v]
    if not vals:
        return float("nan")
    k = max(0, min(len(vals) - 1,
                   math.ceil(q / 100.0 * len(vals)) - 1))
    return float(vals[k])


class StatsCollector:
    """Per-run counters and latency samples."""

    __slots__ = ("injected", "ejected_total", "ejected_measured", "dropped",
                 "fastpass_delivered", "regular_delivered", "latencies",
                 "reg_latencies", "fp_buffered", "fp_bufferless",
                 "degraded_delivered", "degraded_latencies",
                 "measure_start", "measure_end", "per_class_ejected",
                 "on_ejected", "_sorted_lat")

    def __init__(self):
        self.injected = 0
        self.ejected_total = 0
        self.ejected_measured = 0
        self.dropped = 0
        self.fastpass_delivered = 0
        self.regular_delivered = 0
        self.latencies: list[int] = []
        self.reg_latencies: list[int] = []
        self.fp_buffered: list[int] = []
        self.fp_bufferless: list[int] = []
        # Robustness split: packets that were in flight (or generated)
        # while faults were active.
        self.degraded_delivered = 0
        self.degraded_latencies: list[int] = []
        self.measure_start = 0
        self.measure_end = 1 << 60
        self.per_class_ejected = [0] * 6
        #: observer hook: called with each ejected packet (tracers, test
        #: spies).  A hook slot rather than monkeypatching, since the
        #: collector uses ``__slots__``.
        self.on_ejected = None
        #: cached ``sorted(latencies)`` (invalidated by length change —
        #: samples are append-only)
        self._sorted_lat: list[int] | None = None

    # ------------------------------------------------------------------
    def record_ejected(self, pkt) -> None:
        if self.on_ejected is not None:
            self.on_ejected(pkt)
        self.ejected_total += 1
        self.per_class_ejected[pkt.mclass] += 1
        if pkt.was_fastpass:
            self.fastpass_delivered += 1
        else:
            self.regular_delivered += 1
        if pkt.fault_exposed:
            self.degraded_delivered += 1
        if not pkt.measured:
            return
        self.ejected_measured += 1
        lat = pkt.eject_cycle - pkt.gen_cycle
        self.latencies.append(lat)
        if pkt.fault_exposed:
            self.degraded_latencies.append(lat)
        if pkt.was_fastpass:
            buffered = pkt.fp_upgrade - pkt.gen_cycle
            self.fp_buffered.append(buffered)
            self.fp_bufferless.append(lat - buffered)
        else:
            self.reg_latencies.append(lat)

    # -- summaries -------------------------------------------------------
    def _sorted_latencies(self) -> list:
        """The latency samples in ascending order, cached between calls.

        Samples are append-only, so a length check is a sufficient
        invalidation test — repeated percentile queries (mid-run progress
        reports, multi-quantile tables) re-sort only when new samples
        arrived."""
        cached = self._sorted_lat
        if cached is None or len(cached) != len(self.latencies):
            cached = self._sorted_lat = sorted(self.latencies)
        return cached

    def avg_latency(self) -> float:
        if not self.latencies:
            return float("nan")
        return sum(self.latencies) / len(self.latencies)

    def p99_latency(self) -> float:
        return percentile(self._sorted_latencies(), 99.0)

    def mean(self, vals) -> float:
        if not vals:
            return float("nan")
        s = sum(vals)
        if s == s:  # no NaN present — the common all-int case, no copy
            return s / len(vals)
        vals = [v for v in vals if v == v]
        return sum(vals) / len(vals) if vals else float("nan")

    def warn_if_empty(self, label: str) -> bool:
        """Log (once per run) when no measured packet was delivered.

        The latency columns of such a point are NaN by construction;
        without the warning that NaN propagates silently into the figure
        tables.  Returns True when the run was empty.
        """
        if self.ejected_measured:
            return False
        log.warning("run %s delivered zero measured packets; "
                    "latency statistics are NaN", label)
        return True

    def throughput(self, n_nodes: int, cycles: int) -> float:
        """Measured-window ejections per node per cycle."""
        if cycles <= 0:
            return 0.0
        return self.ejected_measured / (n_nodes * cycles)

"""Immutable simulation structures shared across seed replicas.

Replicas of one (scheme, pattern, rate) point differ only in their RNG
seed, yet a scalar :func:`repro.sim.runner.run_point` rebuilds the mesh,
the per-router route-memo tables (the dominant construction cost — the
EscapeVC tables alone are ~95% of an 8x8 build), and the FastPass TDM
schedule / round-trip table for every run.  All of those are pure
functions of (config, scheme): after ``warm_routes`` the memo dicts are
total and never written on the hot path, the :class:`Mesh` holds no
mutable state, and the TDM geometry is derived from the mesh alone.

:class:`SharedStructures` is the container the batch engine (and the
fork-prewarm path) threads through construction: the *first* network
built against it donates its structures; every later network adopts them
instead of re-deriving.  Donation keeps the sharing honest — there is no
separate "donor build", the first replica *is* the donor.

A process-level cache (:func:`process_shared` / :func:`warm_process_cache`)
backs the fork-inheritance satellite: a campaign parent warms the
structures for the sweep's configurations before forking, and every
forked worker's ``build_network`` adopts them via copy-on-write pages
instead of re-deriving per process.  The cache is only ever *populated*
by an explicit warm call, so timing comparisons against cold scalar runs
stay meaningful.
"""

from __future__ import annotations

import os

from repro.network.topology import Mesh


class SharedStructures:
    """Mutable holder of immutable structures, shared by construction.

    The contract: every value stored here must be a pure function of
    (config, scheme identity) — route-memo tables after ``warm_routes``,
    the mesh, TDM schedules, round-trip tables.  :meth:`claim` pins the
    (config, scheme) identity on first use and rejects any later network
    built with a different one, so a table can never leak between
    incompatible simulations.
    """

    __slots__ = ("mesh", "route_memos", "_extras", "_identity")

    def __init__(self) -> None:
        self.mesh: Mesh | None = None
        #: per-router ``_mv_memo`` dicts, donated by the first network
        #: built against this instance (after its ``warm_routes`` pass)
        self.route_memos: list[dict] | None = None
        self._extras: dict = {}
        self._identity: tuple | None = None

    # ------------------------------------------------------------------
    def claim(self, cfg, scheme) -> None:
        """Pin (or verify) the structural identity these tables serve."""
        ident = structures_key(cfg, scheme)
        if self._identity is None:
            self._identity = ident
        elif self._identity != ident:
            raise ValueError(
                "SharedStructures built for "
                f"{self._identity} reused with {ident}")

    def get_or_build(self, key: str, build):
        """Scheme-side extras (FastPass TDM geometry, round-trip tables):
        the first caller builds, everyone after adopts."""
        try:
            return self._extras[key]
        except KeyError:
            value = self._extras[key] = build()
            return value


def structures_key(cfg, scheme) -> tuple:
    """Everything the shared tables are derived from.

    ``cfg`` must be the post-``configure`` config (VN/VC counts applied).
    """
    return (type(scheme).__qualname__, scheme.label,
            cfg.rows, cfg.cols, cfg.n_vns, cfg.n_vcs,
            cfg.router_latency, cfg.link_latency, cfg.fastpass_slot())


# -- process-level cache (fork inheritance) -----------------------------

_PROCESS_CACHE: dict[tuple, SharedStructures] = {}


def process_shared(cfg, scheme) -> SharedStructures | None:
    """The prewarmed structures for this configuration, if a parent (or
    an earlier warm call in this process) built them.  ``cfg`` must be
    post-``configure``.  Returns None when nothing was warmed — ambient
    sharing never happens without an explicit :func:`warm_process_cache`.
    """
    return _PROCESS_CACHE.get(structures_key(cfg, scheme))


def warm_process_cache(cfg, schemes) -> int:
    """Build and cache the shared structures for every scheme in
    ``schemes`` (``(name, kwargs_dict)`` pairs) under ``cfg``.

    Called by the campaign executor on the parent side before forking
    workers: the warmed route tables land in pages the fork children
    inherit copy-on-write, so R workers pay one derivation instead of R.
    Returns the number of configurations newly warmed.
    """
    from repro.schemes import get_scheme
    from repro.sim.engine import build_network

    warmed = 0
    for name, kwargs in schemes:
        scheme = get_scheme(name, **dict(kwargs))
        key = structures_key(scheme.configure(cfg), scheme)
        if key in _PROCESS_CACHE:
            continue
        shared = SharedStructures()
        build_network(cfg, scheme, shared=shared)
        _PROCESS_CACHE[key] = shared
        warmed += 1
    return warmed


def clear_process_cache() -> None:
    _PROCESS_CACHE.clear()


def default_workers() -> int:
    """Worker-count ceiling that respects CPU affinity.

    ``os.cpu_count()`` reports the machine, not the cgroup/affinity mask
    a containerized CI run is pinned to; oversubscribing the mask makes
    every worker slower.  Falls back to ``cpu_count`` where affinity is
    unavailable (macOS, Windows).
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1

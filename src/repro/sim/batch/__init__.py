"""Replica batching: run R seed replicas of one point in one process.

See :mod:`repro.sim.batch.engine` for the lock-step engine,
:mod:`repro.sim.batch.shared` for the shared immutable structures (and
the fork-prewarm process cache), and :mod:`repro.sim.batch.traffic` for
the cross-replica traffic matrix.
"""

from repro.sim.batch.shared import (SharedStructures, clear_process_cache,
                                    default_workers, process_shared,
                                    structures_key, warm_process_cache)

__all__ = ["SharedStructures", "ReplicaBatch", "TrafficMatrix",
           "clear_process_cache", "default_workers", "process_shared",
           "structures_key", "warm_process_cache"]


def __getattr__(name):
    # ReplicaBatch/TrafficMatrix import the Simulation engine; loading
    # them lazily keeps `engine.build_network -> batch.shared` cycle-free.
    if name == "ReplicaBatch":
        from repro.sim.batch.engine import ReplicaBatch
        return ReplicaBatch
    if name == "TrafficMatrix":
        from repro.sim.batch.traffic import TrafficMatrix
        return TrafficMatrix
    raise AttributeError(name)

"""Cross-replica synthetic-traffic coordination.

Each replica keeps its own :class:`~repro.traffic.synthetic.SyntheticTraffic`
— the per-seed RNG *stream* is the identity of a replica, so draws can
never be merged into one generator without changing every result.  What
*can* be vectorized across replicas is the bookkeeping around those
streams: the per-chunk Bernoulli fills already produce an exact per-cycle
event-count vector (``_chunk_counts``), and stacking the R vectors into
one ``(R, CHUNK)`` matrix lets the batch scheduler answer, without
touching any replica, the two questions it asks every park decision:

* does replica *i* inject anything at cycle *c*?  (``counts[i, c] == 0``
  proves its ``generate`` call is a no-op), and
* when is replica *i*'s next injection?  (first non-zero column at or
  after *c* — a single ``np.nonzero`` over the row slice).

Refills stay on the scalar path (``_fill`` is already vectorized per
replica) but are driven through :meth:`TrafficMatrix.ensure` so that a
parked replica's chunk is refilled at exactly the cycle the scalar run
would have refilled it — ``_fill(start)`` places events relative to
``start``, so letting a refill slide to the wake cycle would shift the
whole stream.
"""

from __future__ import annotations

import numpy as np

_FAR = 1 << 60


class TrafficMatrix:
    """The stacked per-cycle event counts of R replica traffic sources."""

    def __init__(self, traffics: list):
        self.traffics = traffics
        self._counts: np.ndarray | None = None   # (R, CHUNK)
        self._starts = np.zeros(len(traffics), dtype=np.int64)
        self._busy: list | None = None   # per-row sorted nonzero columns

    # ------------------------------------------------------------------
    def ensure(self, now: int, live) -> None:
        """Refill every live replica whose chunk ends at ``now``.

        Mirrors the refill condition inside ``generate`` (not stopped,
        ``now >= _chunk_end``), so by the time any replica's ``step``
        runs its own generate call, the fill has already happened at the
        cycle the scalar run would have performed it.  ``generate``
        re-checks the condition and finds it false — the stream is
        untouched, only the *site* of the fill moved.
        """
        dirty = False
        for ri in live:
            t = self.traffics[ri]
            if t.stop is not None and now >= t.stop:
                continue
            if now >= t._chunk_end:
                t._fill(now)
                dirty = True
        if dirty or self._counts is None:
            self._refresh()

    def _refresh(self) -> None:
        counts = [t._chunk_counts for t in self.traffics]
        if any(c is None for c in counts):
            return      # nothing filled yet; queries fall back below
        self._counts = np.stack(counts)
        self._starts = np.array([t._chunk_start for t in self.traffics],
                                dtype=np.int64)
        # Busy columns per row, found once per refill so that every
        # next_event query is a binary search instead of an np.nonzero
        # scan-and-allocate over the row slice.
        self._busy = [np.flatnonzero(row) for row in self._counts]

    # ------------------------------------------------------------------
    def quiet_at(self, ri: int, now: int) -> bool:
        """True when replica ``ri`` provably injects nothing at ``now``."""
        t = self.traffics[ri]
        if t.stop is not None and now >= t.stop:
            return True
        if self._counts is None or not \
                (t._chunk_start <= now < t._chunk_end):
            return False
        return self._counts[ri, now - t._chunk_start] == 0

    def next_event(self, ri: int, frm: int) -> int:
        """First cycle >= ``frm`` at which replica ``ri``'s generate call
        does observable work: its next injection event, or the refill at
        the chunk boundary — whichever comes first.  ``_FAR`` when the
        source is stopped (a stopped generate never fills or pops)."""
        t = self.traffics[ri]
        stop = t.stop if t.stop is not None else _FAR
        if frm >= stop:
            return _FAR
        end = t._chunk_end
        if self._busy is None or frm < t._chunk_start or frm >= end:
            return frm      # unknown: treat the very next cycle as busy
        busy = self._busy[ri]
        i = int(np.searchsorted(busy, frm - t._chunk_start))
        # Next event in this chunk, else the refill at the boundary —
        # either only matters while it lands before the stop cycle.
        nxt = t._chunk_start + int(busy[i]) if i < len(busy) else end
        return nxt if nxt < stop else _FAR

"""Lock-step replica batching: R seeds of one point in one process.

A :class:`ReplicaBatch` holds R complete :class:`~repro.sim.engine.
Simulation` instances — one per seed — built against a single
:class:`~repro.sim.batch.shared.SharedStructures`, so the mesh, the
route-memo tables, and the FastPass TDM geometry are derived once and
adopted R-1 times.  The batch then advances every replica in lock-step
at traffic-chunk granularity: within a block (one chunk of the shared
refill clock) each replica runs contiguously — keeping its routers and
stats hot in cache instead of round-robining R working sets through
every cycle — and all replicas re-synchronise at the chunk boundary,
where the cross-replica traffic matrix refreshes.

Bit-identity is by construction, not by re-implementation: each replica
executes the unmodified ``Network.step`` datapath on its own mutable
state (routers, NIs, stats, RNG stream), and the run loop below replays
``Simulation.run``'s exact warmup/measure/drain control flow per
replica.  Upgrades, bounces, dynamic-bubble regeneration, and fault
handling therefore need no vectorized variant — the scalar fallback *is*
the datapath, which is what makes the equality proof in the differential
tests hold for every scheme and every corner case at once.

With ``engine="soa"`` the same lock-step skeleton hosts the fused
replica-batched screen (:mod:`repro.sim.soa.batch`): one numpy pass per
cycle answers head-of-line feasibility for *every* replica, and each
replica's winners are applied by its own scalar kernel — so the
bit-identity argument above is unchanged, it just runs R screens for
the price of one.

On top of that, the batch scheduler extends the PR-2 parking contract
from routers to whole replicas: a replica that is provably idle — no
packet anywhere, no scheduled event, no consumer models, and a traffic
source whose next injection (known from the cross-replica
:class:`~repro.sim.batch.traffic.TrafficMatrix`) is cycles away — is
fast-forwarded to its next event with a closed-form replay of the
skipped cycles (switch-cycle counter, watchdog progress clock), exactly
like a parked router replays its skipped round-robin rotations.
"""

from __future__ import annotations

import numpy as np

from repro.config import RunResult, SimConfig
from repro.schemes import get_scheme
from repro.sim.batch.shared import SharedStructures
from repro.sim.batch.traffic import TrafficMatrix
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic

_FAR = 1 << 60


def _quiet(net) -> bool:
    """True when a replica's network provably does nothing on its own:
    every occupancy counter is zero, no component is active, no event is
    scheduled, and nothing (fault injector, observability, auditor,
    paranoia audit, consumer models, DRAIN suspension) runs per-cycle
    side effects the fast-forward replay does not model."""
    return not (net.buffered or net.in_transit or net.inj_total
                or net.pending_total or net.limbo
                or net._r_active or net._inj_active or net._con_active
                or net._has_consumers or net._events
                or net.suspended or net.force_naive_step
                or net.faults is not None or net.obs is not None
                or net.auditor is not None or net.cfg.paranoia)


def _hooks_idle_safe(net) -> bool:
    """Hooks either never run or are declared no-ops on an empty net."""
    scheme = net.scheme
    noop = scheme is not None and scheme.idle_hooks_noop
    return (net._pre_every == 0 or noop) and (net._post_every == 0 or noop)


def _fast_forward(net, frm: int, to: int) -> None:
    """Closed-form replay of ``to - frm`` provably-idle cycles.

    Each skipped cycle would have: incremented ``switch_cycles`` (the
    net is not suspended), run the watchdog (which, with zero packets in
    flight, resets ``last_progress`` whenever the threshold elapses),
    and advanced ``cycle``.  Everything else is a no-op by the
    :func:`_quiet` / :func:`_hooks_idle_safe` preconditions.
    """
    net.switch_cycles += to - frm
    thr = net.watchdog.threshold
    last = net.last_progress
    if to - 1 - last >= thr:
        # The watchdog fires at last+thr, last+2*thr, ... <= to-1; each
        # firing resets the progress clock to that cycle.
        net.last_progress = last + thr * ((to - 1 - last) // thr)
    net.cycle = to


class ReplicaBatch:
    """R seed replicas of one (scheme, pattern, rate) point, lock-step."""

    def __init__(self, cfg: SimConfig, scheme: str, pattern: str,
                 rate: float, seeds, scheme_kwargs: dict | None = None,
                 traffic_stop: int | None = None, naive: bool = False,
                 spec=None):
        kwargs = dict(scheme_kwargs or {})
        if spec is not None and not spec.chunk_aligned(
                SyntheticTraffic.CHUNK):
            # A scenario source clamps its fills at phase boundaries, so
            # its refill clock is spec-derived.  The lock-step scheduler
            # and the (R, CHUNK) traffic matrix assume every live source
            # shares chunk boundaries that are multiples of CHUNK; a
            # misaligned spec would hand ``ensure`` ragged count rows.
            # ``replica_signature`` never folds such points — this guard
            # catches direct construction.
            raise ValueError(
                f"scenario {spec.name!r} has phase boundaries "
                f"{spec.boundaries()} not aligned to the "
                f"{SyntheticTraffic.CHUNK}-cycle refill quantum; replica "
                "batching would desynchronise the lock-step traffic "
                "matrix — run these points scalar")
        # engine="soa" replicas run under a fused multi-replica screen
        # (SoABatch): the networks are built with the kernel attach
        # deferred, then leased into one set of (R, slots) parent arrays.
        # Whole-replica parking is disabled for those batches — the
        # kernel's deferred-rotation bookkeeping assumes every switch
        # cycle it skipped was its own decision — which costs nothing in
        # the saturated regime the kernel targets.  ``naive`` keeps the
        # scalar path (it forces the naive step loop).
        defer_soa = cfg.engine == "soa"
        use_soa_batch = defer_soa and not naive
        if spec is not None:
            from repro.scenario.source import ScenarioTraffic

            def make_traffic(seed):
                return ScenarioTraffic(spec, seed=seed, stop=traffic_stop)
        else:
            def make_traffic(seed):
                return SyntheticTraffic(pattern, rate, seed=seed,
                                        stop=traffic_stop)
        self.shared = SharedStructures()
        self.sims: list[Simulation] = []
        for seed in seeds:
            sim = Simulation(
                cfg, get_scheme(scheme, **kwargs), make_traffic(seed),
                shared=self.shared, defer_soa=defer_soa)
            if naive:
                sim.net.force_naive_step = True
            self.sims.append(sim)
        self.soa = None
        if use_soa_batch and self.sims[0].net.soa_fallback is None:
            from repro.sim.soa.batch import SoABatch
            self.soa = SoABatch([s.net for s in self.sims])
        self.matrix = TrafficMatrix([s.traffic for s in self.sims])
        #: replica-cycles skipped by whole-replica fast-forward (the
        #: batch analogue of router parking); exposed for tests/metrics
        self.skipped_cycles = 0

    # ------------------------------------------------------------------
    def _park_until(self, sim, ri: int, frm: int, horizon: int) -> int:
        """Latest cycle < ``horizon`` this idle replica can jump to."""
        t = sim.traffic
        nxt = self.matrix.next_event(ri, frm)
        if t.stop is None or frm < t.stop:
            # Never skip a chunk refill: _fill(start) places events
            # relative to the fill cycle, so it must run exactly when
            # the scalar run would have run it.
            nxt = min(nxt, t._chunk_end)
        return min(nxt, horizon)

    def run(self) -> list[RunResult]:
        """Advance all replicas; returns per-seed RunResults in order."""
        sims = self.sims
        cfg = sims[0].cfg
        t0 = cfg.warmup_cycles
        t1 = t0 + cfg.measure_cycles
        for sim in sims:
            sim.traffic.measure_window(t0, t1)
            sim.net.stats.measure_start = t0
            sim.net.stats.measure_end = t1

        # -- phase 1: warmup + measurement, lock-step to t1 -------------
        # (mirrors Simulation.run's ``net.run(t1)``)
        # Replicas synchronise at chunk boundaries — exactly the cycles
        # where the traffic matrix refills — and run contiguously in
        # between.  Nothing couples replicas within a block (each has
        # its own routers, NIs, RNG stream), so per-cycle interleaving
        # would only shuffle R working sets through the cache; the
        # per-replica inner loop is the same ``while cycle < end: step``
        # shape as ``Network.run``.
        matrix = self.matrix
        live = list(range(len(sims)))
        can_park = [_hooks_idle_safe(s.net) for s in sims]
        now = 0
        while now < t1:
            matrix.ensure(now, live)
            block_end = t1
            for ri in live:
                t = sims[ri].traffic
                if t.stop is not None and now >= t.stop:
                    continue        # stopped sources never refill again
                if t._chunk_end < block_end:
                    block_end = t._chunk_end
            if self.soa is not None:
                # Fused lock-step: every cycle is one batched screen
                # over all replicas (demoted ones take scalar steps
                # inside the same loop, staying cycle-aligned).
                lead = sims[live[0]].net
                while lead.cycle < block_end:
                    self.soa.step_cycle(live)
            else:
                for ri in live:
                    sim = sims[ri]
                    net = sim.net
                    step = net.step
                    park = can_park[ri]
                    c = net.cycle
                    while c < block_end:
                        step()
                        c = net.cycle
                        if park and c < block_end and _quiet(net):
                            to = self._park_until(sim, ri, c, block_end)
                            if to > c:
                                _fast_forward(net, c, to)
                                self.skipped_cycles += to - c
                                c = to
            now = block_end

        # -- phase 2: drain, with per-replica retirement -----------------
        # (mirrors Simulation.run's drain loop exactly, per replica;
        # ``generate`` performs its own refills on the scalar path, and
        # no park decision consults the matrix here)
        deadline = t1 + cfg.drain_cycles
        results: list[RunResult | None] = [None] * len(sims)

        def drained(sim) -> bool:
            net = sim.net
            return not (net.cycle < deadline
                        and net.stats.ejected_measured
                        < sim.traffic.measured_generated
                        and not net.watchdog.deadlocked
                        and net.total_backlog() + net.limbo > 0)

        if self.soa is not None:
            # Lock-step drain with per-replica retirement: a drained
            # replica stops stepping (exactly where its scalar drain
            # loop would exit) while the rest keep the fused screen.
            undrained = [ri for ri in live if not drained(sims[ri])]
            while undrained:
                self.soa.step_cycle(undrained)
                undrained = [ri for ri in undrained
                             if not drained(sims[ri])]
            for ri in live:
                results[ri] = self._finish(sims[ri])
            return results
        for ri in live:
            sim = sims[ri]
            step = sim.net.step
            while not drained(sim):
                step()
            results[ri] = self._finish(sim)
        return results

    def _finish(self, sim) -> RunResult:
        res = sim._result()
        res.extra["rate"] = sim.traffic.rate
        res.extra["pattern"] = sim.traffic.pattern
        # Attribution metadata, not a result field: travels as a plain
        # attribute so cache keys and bit-identity stay engine-blind.
        res.engine_used = sim.engine_used
        return res

    # ------------------------------------------------------------------
    def aggregate(self, results: list[RunResult]) -> dict:
        """Batched cross-replica reduction of the headline statistics."""
        lat = np.array([r.avg_latency for r in results], dtype=float)
        thr = np.array([r.throughput for r in results], dtype=float)
        cyc = np.array([r.cycles for r in results], dtype=float)
        ok = ~np.isnan(lat)
        return {
            "replicas": len(results),
            "avg_latency_mean": float(lat[ok].mean()) if ok.any()
            else float("nan"),
            "avg_latency_min": float(lat[ok].min()) if ok.any()
            else float("nan"),
            "avg_latency_max": float(lat[ok].max()) if ok.any()
            else float("nan"),
            "throughput_mean": float(thr.mean()),
            "cycles_total": int(cyc.sum()),
            "deadlocked": int(sum(r.deadlocked for r in results)),
            "skipped_cycles": self.skipped_cycles,
        }

"""Simulation engine, statistics, and experiment runners.

``engine``/``runner`` are imported lazily: :mod:`repro.network.network`
needs :mod:`repro.sim.stats` while the engine needs the network package,
and the lazy hook keeps that dependency acyclic.
"""

from repro.sim.stats import StatsCollector

__all__ = [
    "StatsCollector",
    "Simulation",
    "build_network",
    "run_point",
    "sweep_latency",
    "saturation_throughput",
    "parallel_sweep",
    "PacketTracer",
]

_LAZY = {
    "Simulation": "repro.sim.engine",
    "build_network": "repro.sim.engine",
    "run_point": "repro.sim.runner",
    "sweep_latency": "repro.sim.runner",
    "saturation_throughput": "repro.sim.runner",
    "parallel_sweep": "repro.sim.parallel",
    "PacketTracer": "repro.sim.trace",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""High-level experiment runners: latency sweeps and saturation search."""

from __future__ import annotations

from repro.config import RunResult, SimConfig
from repro.schemes.base import Scheme, get_scheme
from repro.sim.engine import Simulation
from repro.traffic.synthetic import SyntheticTraffic


def run_point(scheme: Scheme | str, pattern: str, rate: float,
              cfg: SimConfig, seed: int | None = None,
              traffic_stop: int | None = None,
              metrics: bool | int = False) -> RunResult:
    """One (scheme, pattern, injection-rate) simulation.

    ``metrics`` turns on the observability subsystem for this run: True
    attaches the standard metric set, a positive integer additionally
    samples the gauge time series every that many cycles.  The snapshot
    is written under ``results/metrics/`` and its path (plus the headline
    counters) recorded in ``res.extra["metrics"]`` — results stay
    bit-identical either way (observability is result-neutral).
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    traffic = SyntheticTraffic(pattern, rate,
                               seed=cfg.seed if seed is None else seed,
                               stop=traffic_stop)
    sim = Simulation(cfg, scheme, traffic)
    obs = None
    if metrics:
        from repro.obs import attach_observability
        sample_every = 0 if metrics is True else int(metrics)
        obs = attach_observability(sim.net, sample_every=sample_every)
    res = sim.run()
    res.extra["rate"] = rate
    res.extra["pattern"] = pattern
    # Attribution metadata as a plain attribute (NOT a RunResult field or
    # extra entry): results and cache keys must stay engine-blind.
    res.engine_used = sim.engine_used
    if obs is not None:
        from repro.obs import write_metrics
        name = f"{scheme.label}_{pattern}_r{rate:g}"
        path = write_metrics(obs, name)
        counters = obs.registry.to_json()["counters"]
        res.extra["metrics"] = {
            "path": str(path),
            "events": obs.bus.emitted,
            "counters": counters,
        }
    return res


def run_replicas(scheme: str, pattern: str, rate: float, cfg: SimConfig,
                 seeds, scheme_kwargs: dict | None = None,
                 traffic_stop: int | None = None,
                 naive: bool = False, spec=None) -> list[RunResult]:
    """Run one point under several seeds as a lock-step replica batch.

    Semantically ``[run_point(scheme, pattern, rate, cfg, seed=s) for s
    in seeds]`` — each returned :class:`RunResult` is bit-identical to
    the scalar run with that seed (proven by the differential tests) —
    but the replicas share one set of immutable structures (mesh, route
    tables, FastPass geometry) and advance together, so R seeds cost far
    less than R scalar runs.  ``scheme`` is a registry name: every
    replica needs its own scheme instance, so an already-built
    :class:`Scheme` object cannot be shared the way ``run_point``
    accepts one.

    Pass a :class:`~repro.scenario.spec.ScenarioSpec` as ``spec`` to
    batch scenario replicas instead of plain synthetic ones (``pattern``
    and ``rate`` are then taken from the spec); the batch refuses specs
    whose phase boundaries are not aligned to the traffic refill
    quantum — those points must run scalar.
    """
    from repro.sim.batch.engine import ReplicaBatch
    batch = ReplicaBatch(cfg, scheme, pattern, rate,
                         [cfg.seed if s is None else s for s in seeds],
                         scheme_kwargs=scheme_kwargs,
                         traffic_stop=traffic_stop, naive=naive, spec=spec)
    return batch.run()


def sweep_latency(scheme: Scheme | str, pattern: str, rates,
                  cfg: SimConfig) -> list[RunResult]:
    """Latency-vs-injection-rate curve (Fig. 7 style).

    The sweep stops early once a point saturates badly (deadlocked or a
    large undelivered backlog) — further points would only be slower to
    simulate and equally saturated, matching how the paper's curves simply
    leave the plot range.
    """
    out = []
    for rate in rates:
        if isinstance(scheme, str):
            res = run_point(get_scheme(scheme), pattern, rate, cfg)
        else:
            res = run_point(scheme, pattern, rate, cfg)
        out.append(res)
        gen = max(1, res.extra["measured_generated"])
        if res.deadlocked or res.extra["undelivered"] > 0.5 * gen:
            break
    return out


def is_saturated(res: RunResult, zero_load: float) -> bool:
    """Standard criterion: saturation when average latency exceeds 3x the
    zero-load latency (or the run failed to drain / deadlocked)."""
    if res.deadlocked:
        return True
    gen = max(1, res.extra["measured_generated"])
    if res.extra["undelivered"] > 0.25 * gen:
        return True
    return res.avg_latency != res.avg_latency or \
        res.avg_latency > 3.0 * zero_load


def saturation_throughput(scheme: Scheme | str, pattern: str,
                          cfg: SimConfig, lo: float = 0.01, hi: float = 0.7,
                          iters: int = 7, run_point_fn=None) -> float:
    """Binary search for the saturation injection rate of a scheme.

    Returns the highest tested rate that was still below saturation
    (packets/node/cycle).  ``run_point_fn(rate) -> RunResult`` overrides
    how each probe point executes — the campaign layer passes a
    cache-first runner here so reruns of Fig. 8 only simulate rates the
    search has not visited before.
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    rp = run_point_fn or \
        (lambda rate: run_point(scheme, pattern, rate, cfg))
    zero = rp(lo).avg_latency
    if zero != zero:  # zero-load run produced no packets: widen
        zero = 50.0
    if not is_saturated(rp(hi), zero):
        return hi
    good = lo
    for _ in range(iters):
        mid = 0.5 * (good + hi)
        if is_saturated(rp(mid), zero):
            hi = mid
        else:
            good = mid
    return good

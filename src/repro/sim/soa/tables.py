"""Dense route tables for the SoA kernel.

The scalar router memoises candidate moves per ``(dst, vn, escape)`` as a
tuple of ``(out_port, downstream_vc_indices)`` pairs.  The kernel needs
the same information as a gather: for H head packets, one fancy-indexing
read must yield every head's move list.  This module re-encodes the
warmed memo dicts as rectangular arrays:

``mv_out[rid, dst, esc, k]``
    Output port of the k-th candidate move (``-1`` padding past the end;
    ``PORT_LOCAL`` = 0 can only appear at k = 0, and means ejection).

``mv_rlo/mv_rhi[rid, dst, esc, k]``
    Downstream VC range of the move, *relative to the packet's VN base*
    (half-open).  The scalar VC preference order is always a contiguous
    ascending run inside the packet's VN — asserted during the build — so
    two ints encode it exactly.  The VN base is ``vn * n_vcs`` when VNs
    partition the VC space and 0 when a single VN shares all VCs, so the
    absolute range is ``rel + vn_base[vn]``.

The tables are built from the ``vn=0`` memo entries and the structural
fact that every VN's entry is the vn-0 entry shifted by the VN base
(:func:`verify_tables` checks the full ``(dst, vn, esc)`` product against
the memos; the unit tests run it for every supported scheme).

``dport_base[rid, out]`` precomputes the flat SoA index of the first VC
slot of the downstream input port behind ``links_out[out]`` (``-1`` where
no link exists), so the kernel's credit scan is pure arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.network.topology import PORT_LOCAL

#: widest move list in the tree: EscapeVC's adaptive entries concatenate
#: <=2 productive adaptive ports and <=2 west-first escape ports
MAX_MOVES = 4


def flat_index_bound(R: int, V: int, replicas: int = 1) -> int:
    """Largest flat slot index the ``(replica, router, port, vc)``
    coordinate system can produce, with a loud guard against int64
    overflow.

    The kernel's flat index is ``(((ri * R) + rid) * 5 + port) * V + vc``
    and every derived table (``dport_base``, ``mv_plo/mv_phi``, the
    replica offsets baked into lease-kernel route rows) lives in the same
    int64 space.  The bound is checked eagerly so a pathological
    ``mesh x replicas`` product fails at build time with the computed
    value instead of silently wrapping inside a gather.
    """
    bound = replicas * R * 5 * V
    if bound >= np.iinfo(np.int64).max:
        raise OverflowError(
            f"flat SoA slot index space {bound} (replicas={replicas}, "
            f"R={R}, V={V}) overflows int64 "
            f"(max {np.iinfo(np.int64).max})")
    return bound


class DenseTables:
    """Immutable gather-friendly form of the warmed route memos.

    Beyond the raw move lists, the build precomputes every screen-ready
    derived view so the kernel's per-cycle refresh is pure gathering:

    ``mv_valid[rid, dst, esc, k]``
        The move exists, is not ejection, and its output link is wired.

    ``mv_ej[rid, dst, esc]``
        The head's first (only) move is ejection.

    ``mv_lidx[rid, dst, esc, k]``
        Flat ``(rid, out)`` index into the link-busy mirror.

    ``mv_plo/mv_phi[rid, dst, esc, k]``
        The move's downstream VC range as *flat slot indices* (half-open,
        ``dport_base`` already added; shift by the VN base for vn > 0):
        exactly the two positions the credit prefix sum is compared at,
        and the range the apply loop scans for the first free slot.
    """

    __slots__ = ("R", "V", "E", "vn_spread", "vn_base",
                 "mv_out", "mv_rlo", "mv_rhi", "dport_base", "dport_l",
                 "mv_valid", "mv_ej", "mv_lidx", "mv_plo", "mv_phi")


def build_tables(net) -> DenseTables:
    """Densify ``net``'s warmed route memos (``warm_routes`` must have
    run, which :class:`~repro.network.network.Network` guarantees)."""
    cfg = net.cfg
    routers = net.routers
    R = len(routers)
    V = cfg.total_vcs
    stride = routers[0]._esc_stride
    E = 2 if stride else 1

    flat_index_bound(R, V)
    t = DenseTables()
    t.R, t.V, t.E = R, V, E
    t.vn_spread = cfg.n_vns > 1
    # Per-VN first-VC offset; indexable for any vn < 6 (packets only ever
    # carry vn < n_vns, the padding keeps the gather in-bounds).
    t.vn_base = np.array(
        [vn * cfg.n_vcs if t.vn_spread and vn < cfg.n_vns else 0
         for vn in range(6)], dtype=np.int64)

    mv_out = np.full((R, R, E, MAX_MOVES), -1, dtype=np.int64)
    mv_rlo = np.zeros((R, R, E, MAX_MOVES), dtype=np.int64)
    mv_rhi = np.zeros((R, R, E, MAX_MOVES), dtype=np.int64)
    for rid, router in enumerate(routers):
        memo = router._mv_memo
        for dst in range(R):
            base_key = dst * 12          # (dst*6 + vn=0) * 2
            for e in range(E):
                mv = memo[base_key + e]
                if len(mv) > MAX_MOVES:
                    raise ValueError(
                        f"router {rid}: {len(mv)} moves for dst {dst} "
                        f"exceed the dense-table width {MAX_MOVES}")
                for k, (out, vcs) in enumerate(mv):
                    mv_out[rid, dst, e, k] = out
                    if out == PORT_LOCAL:
                        continue         # ejection: VC range unused
                    lo, hi = vcs[0], vcs[-1] + 1
                    if tuple(vcs) != tuple(range(lo, hi)):
                        raise ValueError(
                            f"router {rid}: non-contiguous VC preference "
                            f"{vcs} for dst {dst} cannot be densified")
                    mv_rlo[rid, dst, e, k] = lo
                    mv_rhi[rid, dst, e, k] = hi
    t.mv_out, t.mv_rlo, t.mv_rhi = mv_out, mv_rlo, mv_rhi

    dpb = np.full((R, 5), -1, dtype=np.int64)
    for rid, router in enumerate(routers):
        for out in range(1, 5):
            link = router.links_out[out]
            if link is not None:
                dpb[rid, out] = (link.dst * 5 + link.dst_port) * V
    t.dport_base = dpb
    t.dport_l = dpb.tolist()             # plain-int reads for the apply loop

    # Screen-ready derived views (vectorized over the whole table).
    rids = np.arange(R, dtype=np.int64)[:, None, None, None]
    out0 = np.maximum(mv_out, 0)
    dbase = dpb[rids, out0]
    t.mv_valid = (mv_out > 0) & (dbase >= 0)
    t.mv_ej = mv_out[:, :, :, 0] == 0
    t.mv_lidx = rids * 5 + out0
    dbase0 = np.maximum(dbase, 0)        # invalid rows: in-bounds garbage
    t.mv_plo = dbase0 + mv_rlo
    t.mv_phi = dbase0 + mv_rhi
    return t


def verify_tables(net, t: DenseTables) -> int:
    """Cross-check the dense tables against every live memo entry.

    Reconstructs each ``(dst, vn, esc)`` move tuple from the arrays and
    compares it to the scalar memo verbatim.  Returns the number of
    entries checked (test hook; never called on the hot path).
    """
    cfg = net.cfg
    checked = 0
    for rid, router in enumerate(net.routers):
        memo = router._mv_memo
        for dst in range(t.R):
            for vn in range(cfg.n_vns):
                vb = int(t.vn_base[vn])
                for e in range(t.E):
                    expect = memo[(dst * 6 + vn) * 2 + e]
                    got = []
                    for k in range(MAX_MOVES):
                        out = int(t.mv_out[rid, dst, e, k])
                        if out < 0:
                            break
                        if out == PORT_LOCAL:
                            got.append((out, None))
                        else:
                            got.append((out, tuple(range(
                                int(t.mv_rlo[rid, dst, e, k]) + vb,
                                int(t.mv_rhi[rid, dst, e, k]) + vb))))
                    if len(got) != len(expect):
                        raise AssertionError(
                            f"r{rid} dst{dst} vn{vn} e{e}: "
                            f"{len(got)} dense moves vs {expect}")
                    for (go, gv), (eo, ev) in zip(got, expect):
                        if go != eo or (gv is not None
                                        and gv != tuple(ev)):
                            raise AssertionError(
                                f"r{rid} dst{dst} vn{vn} e{e}: "
                                f"dense {got} != memo {expect}")
                    checked += 1
    return checked

"""Opt-in structure-of-arrays cycle engine (``SimConfig.engine="soa"``).

The package gates on two axes:

* **Availability** — numpy.  The project installs it by default (the
  synthetic traffic generators already require it), but the ``[soa]``
  extra names the dependency explicitly and this module degrades to a
  clear :class:`EngineUnavailable` instead of an ImportError when a
  stripped-down environment lacks it.
* **Compatibility** — the kernel mirrors exactly the state the supported
  schemes mutate.  Schemes with out-of-band datapaths (SPIN probes, SWAP
  relocation, DRAIN suspension, ...) and fault-injected runs fall back to
  the scalar active-set engine for the *whole* run —
  :func:`fallback_reason` decides before the network is built, and the
  run result is bit-identical either way, so the fallback is silent by
  design (``Simulation.engine_used`` reports it for anyone who asks).
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError:      # pragma: no cover - exercised via _FORCE_UNAVAILABLE
    _np = None

#: test hook: force the "numpy missing" path without uninstalling numpy
_FORCE_UNAVAILABLE = False

#: schemes whose full mutation surface the kernel absorbs (router phase,
#: NI admits, FastPass upgrades + reservations); everything else falls
#: back to scalar
SUPPORTED_SCHEMES = frozenset({"baseline", "fastpass", "escapevc"})


class EngineUnavailable(RuntimeError):
    """``engine="soa"`` was requested but numpy is not importable."""


def soa_available() -> bool:
    return _np is not None and not _FORCE_UNAVAILABLE


def require_numpy() -> None:
    if not soa_available():
        raise EngineUnavailable(
            "engine='soa' needs numpy — install the extra with "
            "`pip install .[soa]` (or any numpy>=1.24), or select "
            "engine='active' for the scalar fallback")


def best_engine() -> str:
    """``"soa"`` when available, else the scalar default — for callers
    that want opportunistic speed rather than a hard requirement."""
    return "soa" if soa_available() else "active"


def fallback_reason(cfg, scheme) -> str | None:
    """Why this run must use the scalar engine, or None if the kernel
    can drive it.  Availability is checked separately
    (:func:`require_numpy`): an unsupported *feature* silently falls
    back, a missing *dependency* is an explicit error."""
    if scheme.name not in SUPPORTED_SCHEMES:
        return f"scheme {scheme.name!r} has out-of-band state " \
               "the kernel does not mirror"
    if cfg.fault_plan is not None:
        return "fault injection mutates timers and routes out of band"
    return None


_hooked_cache: dict[type, type] = {}


def hooked_router_cls(cls: type) -> type:
    """A subclass of ``cls`` whose :meth:`admit` routes through the
    attached kernel (so injections update the arrays); behaves exactly
    like ``cls`` until a kernel is attached."""
    sub = _hooked_cache.get(cls)
    if sub is None:
        def admit(self, slot):
            kernel = self.net.soa
            if kernel is not None:
                kernel.on_admit(self, slot)
            else:
                cls.admit(self, slot)

        sub = type(cls.__name__ + "SoA", (cls,),
                   {"__slots__": (), "admit": admit})
        _hooked_cache[cls] = sub
    return sub


def attach(net, lease=None, ri: int = 0):
    """Build and install the kernel on ``net`` (once, before cycle 0).

    With ``lease``/``ri`` the kernel's state arrays are views into row
    ``ri`` of a :class:`~repro.sim.soa.batch.SoALease`, so a
    :class:`~repro.sim.soa.batch.SoABatch` can screen every replica in
    one fused pass."""
    from repro.sim.soa.kernel import SoAKernel

    require_numpy()
    if net.cycle != 0 or net.soa is not None:
        raise RuntimeError("SoA kernel must attach to a fresh network")
    if net.faults is not None:
        raise RuntimeError("SoA kernel cannot drive fault-injected runs")
    net.soa = SoAKernel(net, lease=lease, ri=ri)
    return net.soa

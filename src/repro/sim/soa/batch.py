"""Replica-batched SoA screen: one fused numpy pass across all seeds.

:class:`~repro.sim.batch.engine.ReplicaBatch` runs R seed-replicas of
one configuration in chunk-granular lock-step.  With ``engine="soa"``
each replica's kernel used to screen its own cycle; here the per-slot
state arrays of every replica become rows of batch-owned ``(B, N)``
parents (:class:`SoALease`), and :class:`SoABatch` evaluates the
head-of-line screen — credit prefix sum, ``pref[h_phi] > pref[h_plo]``,
link-busy gather — for *all* replicas in one pass per cycle.

The coordinate system is global: one ``cumsum`` over the stacked
``free.ravel()`` (length ``B*N``) makes prefix indices and free-list
indices interchangeable, both offset by ``ri * N``.  Each lease kernel
bakes its replica offset into its stored route rows at refresh time
(:meth:`~repro.sim.soa.kernel.SoAKernel._refresh_routes`), so the fused
gather needs no per-cycle index arithmetic and the scalar apply loop
scans the batch-global free list directly.

Apply stays exactly scalar and exactly per-replica: winners are
dispatched to each replica's unchanged object graph through the same
:meth:`~repro.sim.soa.kernel.SoAKernel._apply_routers` the standalone
kernel uses, so per-replica bit-identity holds by construction.  A
bounce or FastPass upgrade in one replica only forces *that* replica's
routers onto the slow materialized path; the others keep screening
vectorized.  Should a replica's network leave the kernel's supported
envelope mid-run (suspension, ``force_naive_step``), :meth:`demote`
detaches just that replica — flushing its deferred-rotation backlog so
the scalar engine resumes bit-identically — while the rest of the batch
stays fused.
"""

from __future__ import annotations

import numpy as np

from repro.sim.soa.tables import flat_index_bound


class SoALease:
    """Batch-owned parent arrays; row ``ri`` is replica ``ri``'s state.

    Every array mirrors its standalone-kernel counterpart with a leading
    replica axis; ``pref`` is the single fused credit prefix-sum buffer
    over the stacked free mask (``B*N + 1`` entries, ``pref[0] = 0``).
    """

    __slots__ = ("B", "R", "V", "N",
                 "s_has", "s_ready", "s_free", "s_dst", "s_vn", "s_esc",
                 "h_mo", "h_plo", "h_phi", "h_lidx", "h_valid", "h_ej",
                 "in_busy", "link_busy", "pref")

    def __init__(self, B: int, R: int, V: int):
        flat_index_bound(R, V, replicas=B)
        self.B, self.R, self.V = B, R, V
        self.N = N = R * 5 * V
        self.s_has = np.zeros((B, N), dtype=bool)
        self.s_ready = np.zeros((B, N), dtype=np.int64)
        self.s_free = np.zeros((B, N), dtype=np.int64)
        self.s_dst = np.zeros((B, N), dtype=np.int64)
        self.s_vn = np.zeros((B, N), dtype=np.int64)
        self.s_esc = np.zeros((B, N), dtype=np.int64)
        self.h_mo = np.full((B, N, 4), -1, dtype=np.int64)
        self.h_plo = np.zeros((B, N, 4), dtype=np.int64)
        self.h_phi = np.zeros((B, N, 4), dtype=np.int64)
        self.h_lidx = np.zeros((B, N, 4), dtype=np.int64)
        self.h_valid = np.zeros((B, N, 4), dtype=bool)
        self.h_ej = np.zeros((B, N), dtype=bool)
        self.in_busy = np.zeros((B, R, 5), dtype=np.int64)
        self.link_busy = np.zeros((B, R, 5), dtype=np.int64)
        self.pref = np.empty(B * N + 1, dtype=np.int64)
        self.pref[0] = 0


class SoABatch:
    """Fused multi-replica screen over lock-stepped SoA networks.

    ``nets`` must be freshly built with the SoA attach deferred
    (``build_network(..., defer_soa=True)``): the batch leases their
    state into one parent per array and attaches every kernel itself.
    """

    def __init__(self, nets):
        from repro.sim.soa import attach

        net0 = nets[0]
        R = len(net0.routers)
        V = net0.cfg.total_vcs
        self.lease = SoALease(len(nets), R, V)
        self.nets = list(nets)
        self.kernels = [attach(net, lease=self.lease, ri=ri)
                        for ri, net in enumerate(nets)]
        #: replica index -> detach reason, for demoted replicas
        self.demoted: dict[int, str] = {}
        #: demotions requested mid-cycle (e.g. from a scheduled event),
        #: applied at the next cycle boundary — the requesting cycle has
        #: already begun under the kernel and must finish under it
        self._pending: list[tuple[int, str]] = []
        self._in_cycle = False

    @property
    def vectorized(self) -> list[int]:
        """Replica indices still driven by the fused screen."""
        return [ri for ri, k in enumerate(self.kernels) if k is not None]

    def demote(self, ri: int, reason: str) -> None:
        """Detach replica ``ri`` to the scalar engine; the rest of the
        batch keeps screening fused.  Mid-cycle requests are deferred to
        the next cycle boundary (a cycle begun under the kernel must
        finish under it — :meth:`~repro.sim.soa.kernel.SoAKernel.detach`
        is only consistent between cycles)."""
        if self.kernels[ri] is None:
            return
        if self._in_cycle:
            self._pending.append((ri, reason))
            return
        self.kernels[ri].detach(reason)
        self.kernels[ri] = None
        self.demoted[ri] = reason

    def step_cycle(self, live) -> None:
        """Advance every replica in ``live`` by exactly one cycle.

        Demoted replicas take a full scalar ``net.step()``; the rest run
        ``begin_cycle`` (scheme pre-hook, events, traffic, injection),
        then one fused screen + per-replica scalar apply, then
        ``finish_cycle``.  Replicas are independent object graphs, so
        the interleave cannot leak state across seeds.
        """
        kernels = self.kernels
        nets = self.nets
        if self._pending:
            pending, self._pending = self._pending, []
            for ri, reason in pending:
                self.demote(ri, reason)
        vec = []
        for ri in live:
            k = kernels[ri]
            if k is not None and (nets[ri].suspended
                                  or nets[ri].force_naive_step):
                self.demote(ri, "suspended" if nets[ri].suspended
                            else "force_naive_step")
                k = None
            if k is None:
                nets[ri].step()
            else:
                vec.append(ri)
        if not vec:
            return
        self._in_cycle = True
        try:
            now = 0
            for ri in vec:
                now = kernels[ri].begin_pre()
            # Fused injection screen: one "any claimable local-port VC"
            # pass over the lease instead of one small expression per
            # replica.  Skipped entirely when no replica is injecting
            # (the whole drain phase).
            lease = self.lease
            lf = None
            for ri in vec:
                k = kernels[ri]
                if k.net._inj_active:
                    if lf is None:
                        lf = ((~lease.s_has & (lease.s_free <= now))
                              .reshape(lease.B, lease.R, 5, lease.V)
                              [:, :, 0, :].any(axis=2))
                    k.begin_inject(now, lf[ri].tolist())
                else:
                    k.begin_inject(now)
            self._screen_apply(now, vec)
            for ri in vec:
                kernels[ri].finish_cycle(now)
        finally:
            self._in_cycle = False

    # -- the fused screen ------------------------------------------------
    def _screen_apply(self, now: int, vec) -> None:
        lease = self.lease
        kernels = self.kernels
        B, R, V, N = lease.B, lease.R, lease.V, lease.N

        for ri in vec:
            k = kernels[ri]
            if k._route_dirty:
                k._refresh_routes()

        ready = ((lease.s_has & (lease.s_ready <= now)).reshape(B, R, 5, V)
                 & (lease.in_busy <= now)[:, :, :, None]).reshape(B, N)
        if len(vec) != B:
            live_mask = np.zeros(B, dtype=bool)
            live_mask[vec] = True
            ready &= live_mask[:, None]
        if not ready.any():
            # Nothing screenable anywhere; only force-materialized
            # routers (FastPass upgrades) may still need an apply pass.
            for ri in vec:
                k = kernels[ri]
                if k._force:
                    k._apply_routers(now, None, None, None, None)
            return

        free = ~lease.s_has & (lease.s_free <= now)
        pref = lease.pref
        np.cumsum(free.reshape(-1), out=pref[1:])
        lfree = (lease.link_busy <= now).reshape(-1)
        # Route rows carry baked global offsets (ri*N into pref/free,
        # ri*R*5 into lfree), so one gather screens every replica.
        movable = (lease.h_valid & lfree[lease.h_lidx]
                   & (pref[lease.h_phi] > pref[lease.h_plo])).any(axis=2)
        movable |= lease.h_ej
        movable &= ready

        # One global head extraction + one gather per route table —
        # the per-replica split and the small mat/cnt/feas structures
        # are cheaper in plain python than B rounds of numpy calls on
        # tiny arrays.
        heads_g = np.flatnonzero(movable.reshape(-1))
        per = {}
        free_l = None
        if heads_g.size:
            free_l = free.reshape(-1).tolist()
            mo = lease.h_mo.reshape(-1, 4)[heads_g].tolist()
            plo = lease.h_plo.reshape(-1, 4)[heads_g].tolist()
            phi = lease.h_phi.reshape(-1, 4)[heads_g].tolist()
            PV = 5 * V
            cur = -1
            mat_list = feas = cnt = None
            last_rid = -1
            for i, g in enumerate(heads_g.tolist()):
                ri = g // N
                if ri != cur:
                    cur = ri
                    mat_list, feas, cnt = [], {}, [0] * R
                    per[ri] = (mat_list, feas, cnt)
                    last_rid = -1
                lg = g - ri * N                 # replica-LOCAL gidx
                rid = lg // PV
                if rid != last_rid:             # heads_g ascending, so
                    mat_list.append(rid)        # rids arrive in order
                    last_rid = rid
                cnt[rid] += 1
                feas[lg] = (mo[i], plo[i], phi[i])
        for ri in vec:
            k = kernels[ri]
            entry = per.get(ri)
            if entry is not None:
                k._apply_routers(now, entry[0], entry[1], free_l,
                                 entry[2])
            elif k._force:
                k._apply_routers(now, None, None, None, None)

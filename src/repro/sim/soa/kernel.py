"""The vectorized structure-of-arrays cycle kernel.

One :class:`SoAKernel` drives a whole :class:`~repro.network.network
.Network` cycle: instead of stepping each active router through the
scalar switch-allocation loop, it *screens* every buffered head packet in
a handful of numpy passes and then *materializes* — runs the exact scalar
arbitration for — only the routers that provably can move a packet this
cycle, and within them touches only the screened candidate heads.  The
scalar object graph stays authoritative throughout: every array write is
a write-through of a mutation the kernel just performed on the objects,
so observers (stats, invariant checks, the FastPass manager, the
watchdog) see exactly the state per-cycle scalar stepping would have
produced, and the result is bit-identical by construction.

The screen is O(slots), not O(ready heads): per-slot route rows (the
move list a head at that slot would probe, pre-gathered from the dense
tables) live in persistent ``(N, 4)`` arrays that are refreshed
incrementally — one batched gather per cycle over the slots whose packet
changed — so the steady-state cycle cost is a dozen full-array boolean
operations regardless of how many heads are ready.

Exactness argument, in brief (DESIGN.md section 15 carries the full
version):

* The screen evaluates each ready head's candidate moves against
  phase-start state (input-port serialization, link serialization, a
  downstream free-VC prefix sum).  During the router phase those
  resources only become *more* constrained — grants stamp timers strictly
  beyond ``now`` and freed slots carry ``free_at > now`` — so a head
  screened infeasible could not have moved in the scalar engine either:
  screen *negatives* are exact.  Screen positives are conservative and
  re-checked exactly during apply (FastFlow reservation windows are
  deliberately left out of the screen for the same reason; the live
  ``in_busy`` re-check catches a same-port head that won earlier in the
  same pass).
* A candidate head's screen-time slot state equals its apply-time state:
  slots are only emptied by their own router's apply (visited once, in
  ascending id order) or by the FastPass manager (which runs before the
  screen and force-materializes the routers it touched), and timers only
  move out-of-band in the pre/event phases (also before the screen).
  Skipping the per-slot ready/busy re-scan for non-candidates is
  therefore exact.
* A skipped router's scalar step would have been arbitration-only: one
  occupied-list rotation and a round-robin bump, per the shared spec in
  :mod:`repro.network.arbiter`.  The kernel defers those rotations and
  replays them in closed form
  (:func:`~repro.network.arbiter.skipped_rotation`) the next time the
  router is materialized or admitted into — the same replay the scalar
  engine's parking machinery uses.
* Heads at their ejection port always materialize their router (queue
  capacity is not screenable), matching the scalar engine's "never park
  on ejection" rule.
* The injection phase is screened the same way: :meth:`~repro.network.ni
  .NetworkInterface.inject_step` is provably mutation-free — and is
  skipped — when the source-queue refill cannot run (queue empty, or its
  head packet's class queue already full) *and* no buffered packet can
  claim a VC (injection port serialising, or no free local-port slot per
  the kernel's mirror).  The only dropped effects are the NI's own
  active-set bookkeeping, which is scheduling, not semantics.
* Mutations that bypass the router phase are absorbed: FastFlow
  reservations mark their links dirty (:attr:`~repro.network.link.Link
  .dirty_sink`) and are re-mirrored before the screen; a FastPass
  upgrade delta re-syncs and force-materializes the prime routers whose
  slots the manager may have emptied or refilled; injections land through
  the hooked :meth:`admit`.

The kernel never parks routers and never writes retry memos — both are
scalar-engine skip optimizations whose skipped work is provably a no-op,
so dropping them cannot change any observable result.

Replica batching (:mod:`repro.sim.soa.batch`) stacks R of these kernels
on one set of ``(R, ...)`` parent arrays: each kernel's state arrays are
then numpy *views* of its replica's row, its route rows are stored with
the replica's global offset baked in, and the per-cycle screen runs as
one fused pass over every replica at once.  The scalar phases of the
cycle (:meth:`SoAKernel.begin_cycle` / :meth:`SoAKernel.finish_cycle`)
and the exact apply (:meth:`SoAKernel._apply_routers`) are unchanged —
the batch only replaces *who computes the screen*, so per-replica
bit-identity is inherited, not re-proven.
"""

from __future__ import annotations

import numpy as np

from repro.network.arbiter import granted_order, skipped_rotation

INF = 1 << 60


class SoAKernel:
    """Array mirror + fused cycle pass for one network.

    Attach exactly once, immediately after the network is built and
    before the first cycle; the kernel snapshots the full state then and
    keeps its arrays coherent via write-through from that point on.
    """

    def __init__(self, net, lease=None, ri: int = 0):
        from repro.sim.soa.tables import build_tables

        self.net = net
        cfg = net.cfg
        self.R = R = len(net.routers)
        self.V = V = cfg.total_vcs
        self.PV = 5 * V
        self.N = N = R * 5 * V
        shared = net.shared
        if shared is not None:
            # The dense tables are a pure function of the route memos and
            # the wiring — both already donated through SharedStructures —
            # so one build serves every replica of a batch (the identity
            # pin in ``claim`` keeps the reuse honest).
            self.tables = shared.get_or_build(
                "soa_tables", lambda: build_tables(net))
        else:
            self.tables = build_tables(net)
        self._esc_stride = net.routers[0]._esc_stride
        self._inj_cap = cfg.inj_queue_pkts

        #: batch lease (replica-axis parent arrays) or None standalone
        self._lease = lease
        if lease is None:
            self._goff = 0          # global flat-slot offset of replica 0
            self._loff = 0          # global (router, port) offset
            # Per-slot state, flat-indexed g = (rid*5 + port)*V + vc.
            self.s_has = np.zeros(N, dtype=bool)
            self.s_ready = np.zeros(N, dtype=np.int64)
            self.s_free = np.zeros(N, dtype=np.int64)
            self.s_dst = np.zeros(N, dtype=np.int64)
            self.s_vn = np.zeros(N, dtype=np.int64)
            self.s_esc = np.zeros(N, dtype=np.int64)
            # Persistent per-slot route rows (refreshed by _refresh_routes
            # for slots whose packet changed; garbage — but in-bounds — for
            # empty slots, which the ready mask excludes).
            self.h_mo = np.full((N, 4), -1, dtype=np.int64)
            self.h_plo = np.zeros((N, 4), dtype=np.int64)
            self.h_phi = np.zeros((N, 4), dtype=np.int64)
            self.h_lidx = np.zeros((N, 4), dtype=np.int64)
            self.h_valid = np.zeros((N, 4), dtype=bool)
            self.h_ej = np.zeros(N, dtype=bool)
            #: reusable credit prefix-sum buffer (screen scratch)
            self._pref = np.empty(N + 1, dtype=np.int64)
            self._pref[0] = 0
            # Per-(router, port) timer mirrors consulted by the screen.
            self.in_busy = np.zeros((R, 5), dtype=np.int64)
            self.link_busy = np.zeros((R, 5), dtype=np.int64)
            self.dport_l = self.tables.dport_l
        else:
            # Views into the batch-owned parents: every scalar
            # write-through below lands in the fused arrays for free.
            # Route rows (and link indices) are stored with this
            # replica's global offset baked in, so the fused screen
            # gathers without per-cycle index arithmetic, and the apply
            # loop scans the batch's *global* free list directly.
            self._goff = ri * N
            self._loff = ri * R * 5
            self.s_has = lease.s_has[ri]
            self.s_ready = lease.s_ready[ri]
            self.s_free = lease.s_free[ri]
            self.s_dst = lease.s_dst[ri]
            self.s_vn = lease.s_vn[ri]
            self.s_esc = lease.s_esc[ri]
            self.h_mo = lease.h_mo[ri]
            self.h_plo = lease.h_plo[ri]
            self.h_phi = lease.h_phi[ri]
            self.h_lidx = lease.h_lidx[ri]
            self.h_valid = lease.h_valid[ri]
            self.h_ej = lease.h_ej[ri]
            self._pref = None       # the batch owns the fused prefix sum
            self.in_busy = lease.in_busy[ri]
            self.link_busy = lease.link_busy[ri]
            goff = self._goff
            self.dport_l = [[d + goff if d >= 0 else -1 for d in row]
                            for row in self.tables.dport_l]
        self.s_pkt: list = [None] * N
        #: slots whose route rows are stale (packet changed)
        self._route_dirty: list[int] = []
        #: FastFlow-window presence per output port — only read by the
        #: apply loop, so a plain nested list beats an array here
        self.fp_any = [[False] * 5 for _ in range(R)]
        #: switch_cycles value after each router's last *realized* step;
        #: the gap to the current count is the deferred-rotation backlog
        self.defer = [net.switch_cycles] * R

        #: links whose timers changed behind the arrays (FastFlow
        #: reservations / pre-emptions); drained before every screen
        self._dirty: list = []
        for link in net.links:
            link.dirty_sink = self._dirty
        #: routers that must materialize this cycle regardless of the
        #: screen (FastPass upgrades mutate their slots out of band)
        self._force: set[int] = set()
        self._mgr = getattr(net, "fastpass", None)
        #: slots mutated by FastPass upgrades, reported by the manager
        self._mgr_sink: list = []
        if self._mgr is not None:
            self._mgr.slot_sink = self._mgr_sink

        # Introspection counters (tests / perf notes, not results).
        self.cycles = 0
        self.materialized = 0
        self.skipped = 0
        self.inject_skips = 0

        for rid, router in enumerate(net.routers):
            base = rid * self.PV
            for slot in router.all_slots:
                slot.gidx = base + slot.port * V + slot.vc
        self.full_sync()

    # -- mirror maintenance ---------------------------------------------
    def _sync_slot(self, rid: int, slot) -> None:
        g = slot.gidx
        pkt = slot.pkt
        self.s_ready[g] = slot.ready_at
        self.s_free[g] = slot.free_at
        if pkt is None:
            self.s_has[g] = False
            self.s_pkt[g] = None
        else:
            self.s_has[g] = True
            self.s_pkt[g] = pkt
            self.s_dst[g] = pkt.dst
            self.s_vn[g] = pkt.vn
            self.s_esc[g] = 1 if (self._esc_stride
                                  and slot.vc == pkt.vn * self._esc_stride) \
                else 0
            self._route_dirty.append(g)

    def _resync_router(self, rid: int) -> None:
        router = self.net.routers[rid]
        for slot in router.all_slots:
            self._sync_slot(rid, slot)
        for port in range(5):
            self.in_busy[rid, port] = router.in_busy[port]

    def full_sync(self) -> None:
        """Re-mirror the entire network (attach time; also a test hook)."""
        for rid in range(self.R):
            self._resync_router(rid)
        for link in self.net.links:
            self.link_busy[link.src, link.src_port] = link.busy_until
            self.fp_any[link.src][link.src_port] = bool(link.fp_windows)

    def _refresh_routes(self) -> None:
        """Batched re-gather of route rows for slots whose packet changed
        since the last screen (one fancy-indexing pass, not per-slot)."""
        t = self.tables
        g = np.array(self._route_dirty, dtype=np.int64)
        del self._route_dirty[:]
        g = g[self.s_has[g]]          # empty slots keep (masked) stale rows
        if not g.size:
            return
        rid = g // self.PV
        dst = self.s_dst[g]
        esc = self.s_esc[g]
        plo = t.mv_plo[rid, dst, esc]
        phi = t.mv_phi[rid, dst, esc]
        if t.vn_spread:
            vb = t.vn_base[self.s_vn[g]][:, None]
            plo = plo + vb
            phi = phi + vb
        lidx = t.mv_lidx[rid, dst, esc]
        if self._goff:
            # Batched replica: bake the replica offset into the stored
            # rows once, at refresh time, so the fused screen and the
            # apply loop index the batch-global arrays directly.
            plo = plo + self._goff
            phi = phi + self._goff
            lidx = lidx + self._loff
        self.h_mo[g] = t.mv_out[rid, dst, esc]
        self.h_plo[g] = plo
        self.h_phi[g] = phi
        self.h_lidx[g] = lidx
        self.h_valid[g] = t.mv_valid[rid, dst, esc]
        self.h_ej[g] = t.mv_ej[rid, dst, esc]

    def _drain_dirty(self) -> None:
        dirty = self._dirty
        for link in dirty:
            self.link_busy[link.src, link.src_port] = link.busy_until
            self.fp_any[link.src][link.src_port] = bool(link.fp_windows)
            infl = link.inflight
            if infl is not None:
                # Pre-emption pushed the in-flight transfer's timers back.
                self._sync_slot(link.dst, infl[0])
                if infl[1] is not None:
                    self._sync_slot(link.src, infl[1])
        del dirty[:]

    def _absorb_manager(self) -> None:
        # Slots a FastPass upgrade emptied (or refilled with a bounced
        # packet) without passing through admit, reported by the
        # manager's slot sink.  Re-mirror them; when a slot was emptied,
        # force a materialized step — the scalar engine would prune it
        # (and advance the round-robin over the shrunk list) this very
        # cycle, so the rotation-deferral replay needs the prune realized
        # at the same cycle.
        sink = self._mgr_sink
        for router, slot in sink:
            self._sync_slot(router.id, slot)
            if slot.pkt is None:
                self._force.add(router.id)
        del sink[:]

    # -- admit hook ------------------------------------------------------
    def on_admit(self, router, slot) -> None:
        """Hooked :meth:`Router.admit`: runs for every admit outside the
        kernel's own router phase (NI injections, tests)."""
        net = self.net
        rid = router.id
        S = net.switch_cycles
        occ = router.occupied
        if occ:
            k = S - self.defer[rid]
            if k > 0:
                rot, router.rr = skipped_rotation(router.rr, len(occ), k)
                if rot:
                    router.occupied = occ[rot:] + occ[:rot]
        router.occupied.append(slot)
        self.defer[rid] = S
        act = net._r_active
        if rid not in act:
            act.add(rid)
        self._sync_slot(rid, slot)

    # -- demotion --------------------------------------------------------
    def detach(self, reason: str) -> None:
        """Hand the network back to the scalar engine mid-run.

        Flushes the deferred-rotation backlog (every skipped scalar step
        was arbitration-only, so replaying the rotations restores the
        exact round-robin state the scalar engine would hold), restores
        the out-of-band sinks, and clears ``net.soa``.  Safe at any
        cycle boundary: kernel-driven routers never park, so no replay
        of parked state is needed.
        """
        net = self.net
        S = net.switch_cycles
        for rid, router in enumerate(net.routers):
            k = S - self.defer[rid]
            self.defer[rid] = S
            occ = router.occupied
            if k > 0 and occ:
                rot, router.rr = skipped_rotation(router.rr, len(occ), k)
                if rot:
                    router.occupied = occ[rot:] + occ[:rot]
        for link in net.links:
            link.dirty_sink = None
        if self._mgr is not None:
            self._mgr.slot_sink = None
        net.soa = None
        net.soa_demoted = reason

    # -- the fused cycle -------------------------------------------------
    def step(self) -> None:
        """One full cycle, standalone (a batched replica is stepped by
        its :class:`~repro.sim.soa.batch.SoABatch` instead)."""
        if self._lease is not None:
            raise RuntimeError(
                "batched SoA replica must be stepped by its SoABatch "
                "(its screen scratch lives in the batch)")
        now = self.begin_cycle()
        if self.net._r_active or self._force:
            self._router_phase(now)
        self.finish_cycle(now)

    def begin_cycle(self) -> int:
        """The pre-switch phases of one cycle: scheme pre-hook, events,
        out-of-band absorption, traffic, the screened injection pass, and
        the switch-cycle advance.  Returns ``now``."""
        now = self.begin_pre()
        self.begin_inject(now)
        return now

    def begin_pre(self) -> int:
        """Scheme pre-hook, events, dirty drain, and traffic — every
        pre-switch phase that precedes the injection screen.  Returns
        ``now``."""
        net = self.net
        now = net.cycle
        if net.suspended:
            raise RuntimeError(
                "SoA kernel cannot drive a suspended network "
                "(scheme gating should have fallen back to scalar)")
        pre = net._pre_every
        if pre and (pre == 1 or now % pre == 0):
            net.scheme.pre_cycle(net, now)
            if self._mgr_sink:
                self._absorb_manager()
        net._run_events(now)
        if self._dirty:
            self._drain_dirty()
        if net.traffic is not None:
            net.traffic.generate(net, now)
        return now

    def begin_inject(self, now: int, loc_free=None) -> None:
        """The screened injection pass plus the switch-cycle advance.
        ``loc_free`` (per-router "any claimable local-port VC") may be
        precomputed by a batch's fused pass; standalone it is derived
        from this kernel's own mirrors."""
        net = self.net
        if net._inj_active:
            nis = net.nis
            cap = self._inj_cap
            if loc_free is None:
                loc_free = ((~self.s_has & (self.s_free <= now))
                            .reshape(self.R, 5, self.V)[:, 0, :]
                            .any(axis=1).tolist())
            for nid in sorted(net._inj_active):
                ni = nis[nid]
                if now < ni._inj_skip:
                    continue
                if ni.inj_count > 0 and (ni.inj_busy_until > now
                                         or not loc_free[nid]):
                    pend = ni.pending
                    if not pend or len(ni.inj[pend[0].mclass]) >= cap:
                        # Exact skip: the refill loop cannot run (empty
                        # source queue, or its head's class queue already
                        # full — the loop breaks on its first packet) and
                        # no buffered packet can claim a VC, so
                        # inject_step would scan and return.
                        self.inject_skips += 1
                        continue
                ni.inject_step(now)
        net.switch_cycles += 1
        return now

    def finish_cycle(self, now: int) -> None:
        """The post-switch phases: consumption, post-hook, step tail."""
        net = self.net
        if net._has_consumers:
            for ni in net.nis:
                ni.consume_step(now)
        elif net._con_active:
            nis = net.nis
            for nid in sorted(net._con_active):
                nis[nid].consume_step(now)
        post = net._post_every
        if post and (post == 1 or now % post == 0):
            net.scheme.post_cycle(net, now)
        self.cycles += 1
        net._step_tail(now)

    # -- screen + apply --------------------------------------------------
    def _router_phase(self, now: int) -> None:
        R = self.R
        s_has = self.s_has
        if self._route_dirty:
            self._refresh_routes()

        # Screen: phase-start feasibility of every ready head, evaluated
        # over the full slot axis (cheap full-array ops, no compaction —
        # empty slots carry stale route rows but are masked by ready).
        ready = ((s_has & (self.s_ready <= now)).reshape(R, 5, self.V)
                 & (self.in_busy <= now)[:, :, None]).ravel()
        mat_list = None
        feas = None
        free_l = None
        cnt = None
        if ready.any():
            free = ~s_has & (self.s_free <= now)
            # Downstream credit: any free VC in [lo, hi) via one prefix
            # sum (ranges never cross an input-port block).
            pref = self._pref
            np.cumsum(free, out=pref[1:])
            lfree = (self.link_busy <= now).ravel()
            movable = (self.h_valid & lfree[self.h_lidx]
                       & (pref[self.h_phi] > pref[self.h_plo])).any(axis=1)
            # Ejection heads always materialize (queue capacity is not
            # screenable).
            movable |= self.h_ej
            movable &= ready
            heads = np.flatnonzero(movable)
            if heads.size:
                frid = heads // self.PV
                mat_list = np.unique(frid).tolist()
                cnt = np.bincount(frid, minlength=R).tolist()
                feas = dict(zip(
                    heads.tolist(),
                    zip(self.h_mo[heads].tolist(),
                        self.h_plo[heads].tolist(),
                        self.h_phi[heads].tolist())))
                free_l = free.tolist()
        self._apply_routers(now, mat_list, feas, free_l, cnt)

    def _apply_routers(self, now: int, mat_list, feas, free_l, cnt) -> None:
        """Exact scalar arbitration for the screened candidate routers.

        ``mat_list``/``feas``/``free_l``/``cnt`` come from the screen —
        either this kernel's own :meth:`_router_phase` or a fused
        multi-replica screen (:class:`repro.sim.soa.batch.SoABatch`)
        that built them from this replica's lease views. ``feas`` keys
        are replica-local slot indices (``slot.gidx``).
        """
        net = self.net
        force = self._force
        if force:
            merged = set(force)
            if mat_list:
                merged.update(mat_list)
            mat_list = sorted(merged)
        if not mat_list:
            return
        self.skipped += len(net._r_active) - len(mat_list)

        # Apply: exact scalar arbitration for the materialized routers,
        # ascending id — the order the active-set engine steps them in —
        # visiting only the screened candidate heads.
        routers = net.routers
        defer = self.defer
        S = net.switch_cycles
        progressed = False
        for rid in mat_list:
            router = routers[rid]
            occ = router.occupied
            # Replay the rotations deferred while this router was skipped
            # (its scalar steps would have been arbitration-only).
            k = S - defer[rid] - 1
            defer[rid] = S
            if k > 0 and occ:
                rot, router.rr = skipped_rotation(router.rr, len(occ), k)
                if rot:
                    occ = occ[rot:] + occ[:rot]
            if not occ:
                router.occupied = occ
                net.sleep_router(rid)
                continue
            occ, router.rr = granted_order(occ, router.rr)
            router.occupied = occ
            self.materialized += 1
            if rid in force:
                # Slow path: the manager may have left emptied slots that
                # the scalar engine would prune this cycle.
                if self._apply_full(router, rid, occ, feas, free_l, now):
                    progressed = True
                continue
            left = cnt[rid] if cnt is not None else 0
            if left == 0:
                continue
            taken = 0
            removed = None
            in_busy = router.in_busy
            for slot in occ:
                row = feas.get(slot.gidx)
                if row is None:
                    continue
                left -= 1
                if in_busy[slot.port] > now:
                    # A same-port head won earlier in this pass.
                    if left:
                        continue
                    break
                done = self._apply_head(router, rid, slot, slot.pkt, row,
                                        taken, free_l, now)
                if done >= 0:
                    taken = done
                    progressed = True
                    if removed is None:
                        removed = [slot]
                    else:
                        removed.append(slot)
                if not left:
                    break
            if removed is not None:
                for slot in removed:
                    occ.remove(slot)
                if not occ:
                    net.sleep_router(rid)
        if force:
            self._force = set()
        if progressed:
            net.last_progress = now

    def _apply_head(self, router, rid: int, slot, pkt, row,
                    taken: int, free_l, now: int) -> int:
        """Try to move one candidate head exactly as ``Router.step`` would.

        Returns the updated ``taken`` bitmask when the head moved (or
        ejected: bitmask unchanged), -1 when it must survive in place.
        """
        mo_r, plo_r, phi_r = row
        if mo_r[0] == 0:
            # Ejection head (dst == rid); queue capacity and the ejection
            # port's serialisation are checked on the live objects.
            if router.eject_busy_until > now \
                    or not router._try_eject(slot, pkt, now):
                return -1
            g = slot.gidx
            self.s_has[g] = False
            self.s_pkt[g] = None
            self.s_free[g] = slot.free_at
            self.in_busy[rid, slot.port] = router.in_busy[slot.port]
            return taken
        size = pkt.size
        links_out = router.links_out
        fp_row = self.fp_any[rid]
        dp_row = self.dport_l[rid]
        for ki in range(4):
            out = mo_r[ki]
            if out < 0:
                break
            bit = 1 << out
            if taken & bit:
                continue
            link = links_out[out]
            if link is None:
                continue
            if link.busy_until > now:
                continue
            if fp_row[out]:
                if link.fp_windows:
                    link.prune(now)
                    if link.fp_conflict(now, now + size):
                        continue
                if not link.fp_windows:
                    fp_row[out] = False
            # First free downstream VC (the route row stores the range as
            # flat slot indices).  The phase-start free list is exact for
            # this scan: each downstream input port has exactly one
            # upstream writer (this link), same-router competition is
            # excluded by ``taken``, and slots vacated this phase carry
            # free_at > now.
            claimed = -1
            for idx in range(plo_r[ki], phi_r[ki]):
                if free_l[idx]:
                    claimed = idx
                    break
            if claimed < 0:
                continue
            dvc = claimed - dp_row[out]
            nbr = router.neighbors[out]
            dslot = nbr.slots[link.dst_port][dvc]
            # -- transfer (mirrors Router.step's inline path) -----------
            rdy = now + router._hop_latency
            dslot.pkt = pkt
            dslot.ready_at = rdy
            dslot.free_at = INF
            nrid = nbr.id
            nocc = nbr.occupied
            defer = self.defer
            S = self.net.switch_cycles
            if nocc:
                kk = S - defer[nrid] - (0 if nrid <= rid else 1)
                if kk > 0:
                    rot, nbr.rr = skipped_rotation(nbr.rr, len(nocc), kk)
                    if rot:
                        nbr.occupied = nocc[rot:] + nocc[:rot]
            nbr.occupied.append(dslot)
            defer[nrid] = S if nrid <= rid else S - 1
            act = self.net._r_active
            if nrid not in act:
                act.add(nrid)
            slot.pkt = None
            end = now + size
            slot.free_at = end + 1
            router.in_busy[slot.port] = end
            link.busy_until = end
            link.inflight = [dslot, slot, end]
            link.util_flits += size
            pkt.hops += 1
            free_l[claimed] = False
            # Array write-through for both endpoints.
            gd = dslot.gidx
            self.s_has[gd] = True
            self.s_pkt[gd] = pkt
            self.s_ready[gd] = rdy
            self.s_free[gd] = INF
            self.s_dst[gd] = pkt.dst
            self.s_vn[gd] = pkt.vn
            self.s_esc[gd] = 1 if (self._esc_stride and
                                   dvc == pkt.vn * self._esc_stride) else 0
            self._route_dirty.append(gd)
            g = slot.gidx
            self.s_has[g] = False
            self.s_pkt[g] = None
            self.s_free[g] = end + 1
            self.in_busy[rid, slot.port] = end
            self.link_busy[rid, out] = end
            return taken | bit
        return -1

    def _apply_full(self, router, rid: int, occ, feas, free_l,
                    now: int) -> bool:
        """Full scalar-shaped pass for force-materialized routers: prunes
        emptied slots (FastPass upgrades) exactly like ``Router.step``."""
        net = self.net
        taken = 0
        progressed = False
        survivors = []
        survive = survivors.append
        in_busy = router.in_busy
        for slot in occ:
            pkt = slot.pkt
            if pkt is None:
                continue
            if slot.ready_at > now:
                survive(slot)
                continue
            if in_busy[slot.port] > now:
                survive(slot)
                continue
            row = feas.get(slot.gidx) if feas is not None else None
            if row is None:
                survive(slot)
                continue
            done = self._apply_head(router, rid, slot, pkt, row,
                                    taken, free_l, now)
            if done < 0:
                survive(slot)
            else:
                taken = done
                progressed = True
        router.occupied = survivors
        if not survivors:
            net.sleep_router(rid)
        return progressed

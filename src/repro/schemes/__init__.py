"""Flow-control / deadlock-freedom schemes: the paper's comparison set."""

from repro.schemes.base import Scheme, SCHEMES, get_scheme, scheme_names

__all__ = ["Scheme", "SCHEMES", "get_scheme", "scheme_names"]


def _register_all() -> None:
    """Import every scheme module so registration side effects run."""
    from repro.schemes import (  # noqa: F401
        escapevc, spin, swap, drain, pitstop, minbd, tfc, fastpass, seec,
    )


_register_all()

"""The FastPass scheme: glue between the core mechanism and the runner.

0 virtual networks (a single shared VC pool per input port), fully
adaptive regular routing (Table II), plus the FastPass manager driving the
TDM lanes every cycle.  Protocol- and network-level deadlock freedom come
from the lanes (Sec. III-C3), not from VNs or turn restrictions.
"""

from __future__ import annotations

from repro.core.manager import FastPassManager
from repro.schemes.base import FaultCaps, Scheme, Table1Row, register


@register
class FastPass(Scheme):
    name = "fastpass"
    routing = "adaptive"
    #: reroute covers the regular (buffered) datapath; lane_skip makes the
    #: primes refuse lanes crossing dead or lookahead-dropped segments
    fault_caps = FaultCaps(reroute=True, lane_skip=True)
    n_vns = 1
    n_vcs = 4   # the paper evaluates 1, 2 and 4 VCs per input buffer
    #: ``FastPassManager.step`` returns before touching any state when no
    #: packet is queued or buffered (its first two early-outs), so an
    #: idle replica may be fast-forwarded across its per-cycle hook.
    idle_hooks_noop = True

    table1 = Table1Row(
        no_detection=True,
        protocol_deadlock_freedom=True,
        network_deadlock_freedom=True,
        full_path_diversity=True,
        high_throughput=True,
        low_power=True,
        scalability=True,
        no_misrouting=True,
    )

    def __init__(self, n_vcs: int = 4):
        super().__init__(n_vns=1, n_vcs=n_vcs)
        self.manager: FastPassManager | None = None

    def build(self, net) -> None:
        self.manager = FastPassManager(net)
        net.fastpass = self.manager   # expose for stats/tests

    def pre_cycle(self, net, now: int) -> None:
        self.manager.step(now)

    @property
    def label(self) -> str:
        return f"FastPass(VN=0, VC={self.n_vcs})"

"""MinBD baseline (Fallin et al., NOCS 2012): minimally-buffered deflection
routing.

Each input port holds a single latch (one packet); there are no credits —
every packet must leave every cycle it can, taking a productive output when
one is free and being *deflected* to any other free output otherwise.  One
small side buffer per router absorbs a would-be deflection.  Oldest-first
priority provides livelock freedom.  Deflections waste link bandwidth, so
throughput degrades at load (Fig. 7: FastPass is ~1.4x better).
"""

from __future__ import annotations

from repro.network.link import VCSlot
from repro.network.router import Router
from repro.network.routing import productive_ports
from repro.schemes.base import Scheme, Table1Row, register


class MinBDRouter(Router):
    """Deflection router with a one-packet side buffer."""

    __slots__ = ("side",)

    def __init__(self, rid, mesh, cfg, net):
        super().__init__(rid, mesh, cfg, net)
        self.side = VCSlot(port=-1, vc=0)

    def step(self, now: int) -> None:
        # Candidates: every latched packet plus the side buffer, oldest
        # (by generation time) first.
        cands = []
        for slot in self.occupied:
            if slot.pkt is not None and slot.ready_at <= now:
                cands.append(slot)
        if self.side.pkt is not None and self.side.ready_at <= now:
            cands.append(self.side)
        if not cands:
            self.occupied = [s for s in self.occupied if s.pkt is not None]
            if not self.occupied and self.side.pkt is None:
                self.net.sleep_router(self.id)
            return
        cands.sort(key=lambda s: s.pkt.gen_cycle)
        taken = 0
        moved_any = False
        ejected = 0
        for slot in cands:
            pkt = slot.pkt
            if pkt.dst == self.id:
                # MinBD moves flits every cycle; a latch is never held
                # hostage by ejection serialization.  Model: up to two
                # ejections per router per cycle straight into the queue.
                ni = self.net.nis[self.id]
                if ejected < 2 and ni.can_eject(pkt, now):
                    slot.pkt = None
                    slot.free_at = now + 1
                    self.net.buffered -= 1
                    ni.eject(pkt, now)
                    ejected += 1
                    moved_any = True
                continue
            prod = productive_ports(self.mesh, self.id, pkt.dst)
            out = self._free_out(prod, taken, now, pkt)
            deflected = False
            if out is None:
                # Only mis-route under pressure: at flit granularity MinBD
                # deflects when flits *contend*, not whenever a link is
                # mid-serialization.  We approximate contention by latch
                # occupancy: with plenty of free latches the packet simply
                # waits for its productive link.
                if len(cands) < 6:
                    continue
                # Absorb into the side buffer instead of deflecting.
                if self.side.pkt is None and slot is not self.side:
                    self.side.pkt = pkt
                    self.side.ready_at = now + 1
                    slot.pkt = None
                    slot.free_at = now + 1
                    moved_any = True
                    continue
                out = self._free_out(self._all_ports(), taken, now, pkt)
                deflected = out is not None
            if out is None:
                continue   # every output serializing: wait in the latch
            link = self.links_out[out]
            dslot = None
            for d in self.neighbors[out].slots[link.dst_port]:
                if d.pkt is None and d.free_at <= now:
                    dslot = d
                    break
            dslot.pkt = pkt
            dslot.ready_at = now + 2
            dslot.free_at = 1 << 60
            self.neighbors[out].admit(dslot)
            slot.pkt = None
            slot.free_at = now + pkt.size + 1
            link.busy_until = now + pkt.size
            pkt.hops += 1
            if deflected:
                pkt.deflections += 1
            pkt.invalidate_route()
            taken |= 1 << out
            moved_any = True
        self.occupied = [s for s in self.occupied if s.pkt is not None]
        if not self.occupied and self.side.pkt is None:
            self.net.sleep_router(self.id)
        if moved_any:
            self.net.last_progress = now

    def extra_occupancy(self) -> int:
        return 1 if self.side.pkt is not None else 0

    # ------------------------------------------------------------------
    def _all_ports(self):
        return (1, 2, 3, 4)

    def _free_out(self, ports, taken: int, now: int, pkt):
        for out in ports:
            if taken & (1 << out):
                continue
            link = self.links_out[out]
            if link is None or link.busy_until > now:
                continue
            for d in self.neighbors[out].slots[link.dst_port]:
                if d.pkt is None and d.free_at <= now:
                    return out
        return None


@register
class MinBD(Scheme):
    name = "minbd"
    routing = "adaptive"
    router_cls = MinBDRouter
    n_vns = 1
    n_vcs = 2    # two pipeline latches per input port (Table II)

    table1 = Table1Row(
        no_detection=True,
        protocol_deadlock_freedom=False,
        network_deadlock_freedom=True,
        full_path_diversity=True,
        high_throughput=False,
        low_power=True,
        scalability=True,
        no_misrouting=False,
    )

    def __init__(self, n_vns: int | None = None, n_vcs: int | None = None):
        super().__init__(n_vns=1, n_vcs=2)

    @property
    def label(self) -> str:
        return "MinBD"

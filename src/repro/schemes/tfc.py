"""Token Flow Control baseline (Kumar et al., MICRO 2008).

Routers broadcast *tokens* advertising free buffers in their neighbourhood;
a packet holding tokens along its next hops may bypass the router pipeline.
We model the token condition structurally: a hop is "expressed" (1 cycle
instead of router+link) when the downstream router still has at least two
free VCs for the packet's VN on the input port — the abundance condition
under which TFC's tokens remain valid — and the bypass is charged only at
low contention.  Routing is west-first (TFC relies on a deadlock-free
algorithm) and the 6 VNs against protocol deadlock are kept (Table I *).
"""

from __future__ import annotations

from repro.network.router import Router
from repro.schemes.base import Scheme, Table1Row, register


class TFCRouter(Router):
    """Credit-based router with opportunistic token bypass."""

    __slots__ = ()

    def _transfer(self, slot, pkt, link, dslot, now: int) -> None:
        super()._transfer(slot, pkt, link, dslot, now)
        # Token bypass: express the hop when the downstream input port is
        # nearly empty (tokens valid) — the head skips the pipeline stage.
        nbr = self.neighbors[link.src_port]
        free = 0
        for s in nbr.slots[link.dst_port]:
            if s.pkt is None and s.free_at <= now:
                free += 1
                if free >= 2:
                    dslot.ready_at = now + 1
                    return


@register
class TFC(Scheme):
    name = "tfc"
    routing = "west_first"
    router_cls = TFCRouter
    n_vns = 6
    n_vcs = 2

    table1 = Table1Row(
        no_detection=True,
        protocol_deadlock_freedom=False,
        network_deadlock_freedom=True,
        full_path_diversity=False,
        high_throughput=False,
        low_power=False,
        scalability=True,
        no_misrouting=True,
    )

    @property
    def label(self) -> str:
        return f"TFC(VN={self.n_vns}, VC={self.n_vcs})"

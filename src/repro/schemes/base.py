"""Scheme framework and registry.

A :class:`Scheme` packages everything that distinguishes one design point:
how it shapes the configuration (VN/VC counts), which routing function and
router class it uses, per-cycle management hooks, and its Table I property
row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.router import Router


@dataclass(frozen=True)
class FaultCaps:
    """What a scheme can do when the fault injector degrades the network.

    * ``reroute`` — the scheme tolerates its packets being steered by a
      :class:`~repro.fault.injector.RerouteTable` around dead links;
    * ``lane_skip`` — the scheme's bypass machinery (FastPass lanes) can
      skip launches whose path crosses a dead or lookahead-compromised
      segment instead of launching blind.

    Schemes without ``reroute`` keep their static routes under faults;
    packets whose only productive port died stall, the watchdog fires,
    and the post-mortem documents why — that *is* the declared behavior,
    not a bug.
    """

    reroute: bool = False
    lane_skip: bool = False


@dataclass(frozen=True)
class Table1Row:
    """The qualitative properties compared in the paper's Table I."""

    no_detection: bool
    protocol_deadlock_freedom: bool
    network_deadlock_freedom: bool
    full_path_diversity: bool
    high_throughput: bool
    low_power: bool
    scalability: bool
    no_misrouting: bool

    def cells(self) -> list[str]:
        return ["X" if v else "7" for v in (
            self.no_detection, self.protocol_deadlock_freedom,
            self.network_deadlock_freedom, self.full_path_diversity,
            self.high_throughput, self.low_power, self.scalability,
            self.no_misrouting)]


class Scheme:
    """Base scheme: plain credit-based VCT with the configured VNs/VCs.

    With fully adaptive routing and no escape mechanism this baseline *can*
    deadlock — that is intentional; it is the substrate the real schemes
    protect.
    """

    name = "baseline"
    routing = "adaptive"
    router_cls = Router
    table1: Table1Row | None = None
    #: graceful-degradation capabilities under fault injection; the plain
    #: baseline declares none and is expected to wedge on a dead link
    fault_caps = FaultCaps()
    #: structural parameters used by the power/area model
    n_vns = 6
    n_vcs = 2

    def __init__(self, n_vns: int | None = None, n_vcs: int | None = None):
        if n_vns is not None:
            self.n_vns = n_vns
        if n_vcs is not None:
            self.n_vcs = n_vcs

    # -- configuration ----------------------------------------------------
    def configure(self, cfg):
        """Return the config this scheme actually runs with."""
        return cfg.with_(n_vns=self.n_vns, n_vcs=self.n_vcs)

    # -- lifecycle hooks ---------------------------------------------------
    def build(self, net) -> None:
        """Called once after the network is wired."""

    #: hook cadence declarations consumed by :meth:`hook_cadence` —
    #: ``None`` auto-detects (1 if the hook is overridden, else 0/never);
    #: a scheme whose hook self-gates on ``now % N`` declares ``N`` so the
    #: active engine can skip the no-op calls entirely
    pre_cycle_every: int | None = None
    post_cycle_every: int | None = None

    #: True when the scheme's hooks are provable no-ops on an *empty*
    #: network (no packet buffered, queued, or in transit) — they read
    #: state but mutate nothing.  The replica-batch scheduler only
    #: fast-forwards an idle replica across cycles whose hooks either
    #: never run (cadence 0) or carry this declaration; a scheme whose
    #: hook ticks internal state every cycle must leave it False.
    idle_hooks_noop = False

    def pre_cycle(self, net, now: int) -> None:
        pass

    def post_cycle(self, net, now: int) -> None:
        pass

    def hook_cadence(self, cfg) -> tuple[int, int]:
        """``(pre_every, post_every)``: how often the active-set engine
        must invoke the per-cycle hooks.  0 = never, 1 = every cycle,
        N = when ``now % N == 0``.  A declared N **must** match the hook's
        own internal guard — the naive loop calls hooks unconditionally,
        and the two modes are required to stay bit-identical."""
        cls = type(self)
        pre = cls.pre_cycle_every
        if pre is None:
            pre = 1 if cls.pre_cycle is not Scheme.pre_cycle else 0
        post = cls.post_cycle_every
        if post is None:
            post = 1 if cls.post_cycle is not Scheme.post_cycle else 0
        return pre, post

    # -- labels --------------------------------------------------------------
    @property
    def label(self) -> str:
        return f"{self.name}(VN={self.n_vns}, VC={self.n_vcs})"


SCHEMES: dict[str, type[Scheme]] = {"baseline": Scheme}


def register(cls: type[Scheme]) -> type[Scheme]:
    """Class decorator adding a scheme to the registry."""
    SCHEMES[cls.name] = cls
    return cls


def get_scheme(name: str, **kwargs) -> Scheme:
    if name not in SCHEMES:
        raise ValueError(f"unknown scheme {name!r}; "
                         f"choose from {sorted(SCHEMES)}")
    return SCHEMES[name](**kwargs)


def scheme_names() -> list[str]:
    return sorted(SCHEMES)

"""DRAIN baseline (Parasar et al., HPCA 2020): periodic whole-network
circulation.

Fully adaptive routing; every DRAIN period (64K cycles, Table II) normal
switching is suspended and *every* in-network packet circulates
synchronously along a predefined Hamiltonian ring for one full loop —
packets eject when the rotation carries them past their destination, and
every potential deadlock cycle is destroyed because everything moved.  The
cost is indiscriminate misrouting, which is what ruins DRAIN's tail
latency in Fig. 12.
"""

from __future__ import annotations

from repro.schemes.base import Scheme, Table1Row, register


@register
class DRAIN(Scheme):
    name = "drain"
    routing = "adaptive"
    n_vns = 6
    n_vcs = 2

    table1 = Table1Row(
        no_detection=True,
        protocol_deadlock_freedom=True,   # can run VN-less, at a buffer cost
        network_deadlock_freedom=True,
        full_path_diversity=True,
        high_throughput=False,
        low_power=False,
        scalability=False,
        no_misrouting=False,
    )

    def __init__(self, n_vns: int | None = None, n_vcs: int | None = None):
        super().__init__(n_vns=n_vns, n_vcs=n_vcs)
        self.drains = 0
        self._drain_until = -1
        self._ring_next: list[int] = []

    def build(self, net) -> None:
        self.drains = 0
        self._drain_until = -1
        ring = net.mesh.hamiltonian_ring()
        nxt = [0] * net.mesh.n_routers
        for i, rid in enumerate(ring):
            nxt[rid] = ring[(i + 1) % len(ring)]
        self._ring_next = nxt

    # ------------------------------------------------------------------
    def pre_cycle(self, net, now: int) -> None:
        period = net.cfg.drain_period_cycles
        if self._drain_until < now and now > 0 and now % period == 0:
            self._drain_until = now + net.mesh.n_routers
            self.drains += 1
        if now < self._drain_until:
            net.suspended = True
            self._rotate(net, now)
        else:
            net.suspended = False

    # ------------------------------------------------------------------
    def _rotate(self, net, now: int) -> None:
        """One synchronous bufferless rotation step along the ring."""
        moves = []     # (src_slot, dst_slot, pkt, next_router)
        for router in net.active_routers():
            router.disturb()   # the scan reads occupied order and ejects
            nxt = net.routers[self._ring_next[router.id]]
            ni = net.nis[router.id]
            for slot in router.occupied:
                pkt = slot.pkt
                if pkt is None:
                    continue
                if pkt.dst == router.id and ni.can_eject(pkt, now):
                    slot.pkt = None
                    slot.free_at = now + pkt.size + 1
                    net.buffered -= 1
                    ni.eject(pkt, now)
                    net.last_progress = now
                    continue
                # Not home yet (or the ejection queue is full): keep
                # circulating — DRAIN misroutes indiscriminately.
                moves.append((slot, nxt.slots[slot.port][slot.vc], pkt, nxt))
        # The rotation is a permutation across routers: apply all reads
        # before writes so simultaneous motion is exact.
        for slot, dslot, pkt, nxt in moves:
            slot.pkt = None
            slot.free_at = now + 1
        for slot, dslot, pkt, nxt in moves:
            dslot.pkt = pkt
            dslot.ready_at = now + 1
            dslot.free_at = 1 << 60
            nxt.admit(dslot)
            pkt.hops += 1
            pkt.deflections += 1
            pkt.invalidate_route()
        if moves:
            net.last_progress = now

"""EscapeVC baseline (Duato): per-VN escape virtual channel.

Within each of the 6 virtual networks, VC 0 is the *escape* channel routed
west-first (deadlock-free turn model) and the remaining VCs are fully
adaptive (Table II).  A packet may always fall back from an adaptive VC
into the escape VC; once in the escape subnetwork it stays there — the
classic Duato construction, so the scheme is network-deadlock-free but
offers no full path diversity inside the escape channel and still needs
all 6 VNs against protocol deadlock.
"""

from __future__ import annotations

from repro.network.router import Router
from repro.network.routing import route_adaptive, route_west_first
from repro.network.topology import PORT_LOCAL
from repro.schemes.base import FaultCaps, Scheme, Table1Row, register

LOCAL_MOVE = ((PORT_LOCAL, ()),)


class EscapeVCRouter(Router):
    """Router whose candidate moves depend on the current VC class."""

    __slots__ = ()

    def __init__(self, rid, mesh, cfg, net):
        super().__init__(rid, mesh, cfg, net)
        # Tells the base step's inline memo probe how to spot a packet
        # sitting in its VN's escape VC (vc == vn * n_vcs).
        self._esc_stride = cfg.n_vcs
        # Injection prefers the adaptive VCs; the escape VC is last resort.
        n_vcs = cfg.n_vcs
        self._inj_vcs = [
            tuple(range(vn * n_vcs + 1, (vn + 1) * n_vcs)) + (vn * n_vcs,)
            for vn in range(6)
        ]

    def moves(self, pkt, slot=None) -> tuple:
        if pkt.dst == self.id:
            return LOCAL_MOVE
        n_vcs = self.cfg.n_vcs
        esc = pkt.vn * n_vcs                    # escape VC of this VN
        in_escape = slot is not None and slot.vc == esc
        if self.net.reroute is not None:
            # Degraded mode: shortest surviving paths for both classes,
            # looked up live (no memo — paths change as faults come and
            # go).  The west-first escape guarantee does not survive a
            # dead link anyway — a wedge here is the watchdog's to report.
            wf = self.net.reroute.ports(self.id, pkt.dst)
            esc_moves = tuple((o, (esc,)) for o in wf)
            if in_escape:
                return esc_moves
            normal = tuple(range(esc + 1, esc + n_vcs))
            return tuple((o, normal) for o in wf) + esc_moves
        key = (pkt.dst * 6 + pkt.vn) * 2 + in_escape
        mv = self._mv_memo.get(key)
        if mv is None:
            wf = route_west_first(self.mesh, self.id, pkt.dst)
            esc_moves = tuple((o, (esc,)) for o in wf)
            if in_escape:
                mv = esc_moves
            else:
                normal = tuple(range(esc + 1, esc + n_vcs))
                ad = route_adaptive(self.mesh, self.id, pkt.dst)
                mv = tuple((o, normal) for o in ad) + esc_moves
            self._mv_memo[key] = mv
        return mv

    def warm_routes(self) -> None:
        memo = self._mv_memo
        mesh, rid = self.mesh, self.id
        n_vcs = self.cfg.n_vcs
        for vn in range(6):
            memo[rid * 12 + vn * 2] = LOCAL_MOVE
            memo[rid * 12 + vn * 2 + 1] = LOCAL_MOVE
        for dst in range(mesh.n_routers):
            if dst == rid:
                continue
            wf = route_west_first(mesh, rid, dst)
            ad = route_adaptive(mesh, rid, dst)
            base = dst * 12
            for vn in range(6):
                esc = vn * n_vcs
                esc_moves = tuple((o, (esc,)) for o in wf)
                normal = tuple(range(esc + 1, esc + n_vcs))
                memo[base + vn * 2] = \
                    tuple((o, normal) for o in ad) + esc_moves
                memo[base + vn * 2 + 1] = esc_moves


@register
class EscapeVC(Scheme):
    name = "escapevc"
    routing = "adaptive"   # unused: the router computes its own moves
    router_cls = EscapeVCRouter
    fault_caps = FaultCaps(reroute=True)
    n_vns = 6
    n_vcs = 2

    table1 = Table1Row(
        no_detection=True,
        protocol_deadlock_freedom=False,
        network_deadlock_freedom=True,
        full_path_diversity=False,   # none within the escape VC
        high_throughput=False,
        low_power=False,             # needs multiple VNs
        scalability=True,
        no_misrouting=True,
    )

    @property
    def label(self) -> str:
        return f"EscapeVC(VN={self.n_vns}, VC={self.n_vcs})"

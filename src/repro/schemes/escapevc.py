"""EscapeVC baseline (Duato): per-VN escape virtual channel.

Within each of the 6 virtual networks, VC 0 is the *escape* channel routed
west-first (deadlock-free turn model) and the remaining VCs are fully
adaptive (Table II).  A packet may always fall back from an adaptive VC
into the escape VC; once in the escape subnetwork it stays there — the
classic Duato construction, so the scheme is network-deadlock-free but
offers no full path diversity inside the escape channel and still needs
all 6 VNs against protocol deadlock.
"""

from __future__ import annotations

from repro.network.router import Router
from repro.network.routing import route_adaptive, route_west_first
from repro.network.topology import PORT_LOCAL
from repro.schemes.base import FaultCaps, Scheme, Table1Row, register

LOCAL_MOVE = ((PORT_LOCAL, ()),)


class EscapeVCRouter(Router):
    """Router whose candidate moves depend on the current VC class."""

    def moves(self, pkt, slot=None) -> tuple:
        cached = pkt.route_cache(self.id)
        if cached is not None:
            return cached
        if pkt.dst == self.id:
            pkt.set_route_cache(self.id, LOCAL_MOVE)
            return LOCAL_MOVE
        n_vcs = self.cfg.n_vcs
        esc = pkt.vn * n_vcs                    # escape VC of this VN
        in_escape = slot is not None and slot.vc == esc
        reroute = self.net.reroute
        if reroute is not None:
            # Degraded mode: shortest surviving paths for both classes.
            # The west-first escape guarantee does not survive a dead
            # link anyway — a wedge here is the watchdog's to report.
            wf = reroute.ports(self.id, pkt.dst)
        else:
            wf = route_west_first(self.mesh, self.id, pkt.dst)
        esc_moves = tuple((o, (esc,)) for o in wf)
        if in_escape:
            mv = esc_moves
        else:
            normal = tuple(range(esc + 1, esc + n_vcs))
            ad = wf if reroute is not None \
                else route_adaptive(self.mesh, self.id, pkt.dst)
            mv = tuple((o, normal) for o in ad) + esc_moves
        pkt.set_route_cache(self.id, mv)
        return mv

    def vn_vcs(self, vn: int) -> tuple:
        # Injection prefers the adaptive VCs; the escape VC is last resort.
        esc = vn * self.cfg.n_vcs
        return tuple(range(esc + 1, esc + self.cfg.n_vcs)) + (esc,)

    def step(self, now: int) -> None:
        # The base step calls moves(pkt); EscapeVC needs the slot too, so
        # we pre-warm the per-packet cache with slot knowledge here.
        for slot in self.occupied:
            pkt = slot.pkt
            if pkt is not None and pkt.route_cache(self.id) is None:
                self.moves(pkt, slot)
        super().step(now)


@register
class EscapeVC(Scheme):
    name = "escapevc"
    routing = "adaptive"   # unused: the router computes its own moves
    router_cls = EscapeVCRouter
    fault_caps = FaultCaps(reroute=True)
    n_vns = 6
    n_vcs = 2

    table1 = Table1Row(
        no_detection=True,
        protocol_deadlock_freedom=False,
        network_deadlock_freedom=True,
        full_path_diversity=False,   # none within the escape VC
        high_throughput=False,
        low_power=False,             # needs multiple VNs
        scalability=True,
        no_misrouting=True,
    )

    @property
    def label(self) -> str:
        return f"EscapeVC(VN={self.n_vns}, VC={self.n_vcs})"

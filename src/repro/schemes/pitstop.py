"""Pitstop baseline (Farrokhbakht et al., HPCA 2021): a VN-free NoC with a
serialized NI-to-NI bypass.

Like FastPass, Pitstop needs no virtual networks; unlike FastPass, its
escape mechanism handles only one message at a time network-wide: a token
rotates over the routers, and the holder may pull its longest-blocked
packet out of the network and deliver it over the NI bypass path.  While
one bypass is in flight no other can start, which is exactly the
scalability limitation the paper attributes to Pitstop ("only one message
type can use the bypass approach in the network at a time").
"""

from __future__ import annotations

from repro.schemes.base import Scheme, Table1Row, register

#: a packet must have been blocked this long before the bypass takes it
BLOCK_THRESHOLD = 64
#: fixed NI processing overhead of one bypass delivery (cycles)
BYPASS_OVERHEAD = 8


@register
class Pitstop(Scheme):
    name = "pitstop"
    routing = "adaptive"
    n_vns = 1        # VN-free, like FastPass
    n_vcs = 2

    table1 = Table1Row(
        no_detection=True,
        protocol_deadlock_freedom=True,
        network_deadlock_freedom=True,
        full_path_diversity=True,
        high_throughput=False,
        low_power=True,
        scalability=False,
        no_misrouting=True,
    )

    def __init__(self, n_vns: int | None = None, n_vcs: int | None = None):
        super().__init__(n_vns=1 if n_vns is None else n_vns, n_vcs=n_vcs)
        self.bypasses = 0

    def build(self, net) -> None:
        self.bypasses = 0
        self._token = 0
        self._busy_until = 0

    def hook_cadence(self, cfg) -> tuple[int, int]:
        return 0, cfg.pitstop_token_cycles

    def post_cycle(self, net, now: int) -> None:
        cfg = net.cfg
        if now % cfg.pitstop_token_cycles:
            return
        self._token = (self._token + 1) % net.mesh.n_routers
        if self._busy_until > now:
            return   # the single bypass path is occupied
        router = net.routers[self._token]
        victim = self._pick_victim(net, router, now)
        if victim is None:
            return
        slot, pkt = victim
        if slot is not None:
            slot.pkt = None
            slot.free_at = now + pkt.size + 1
            net.buffered -= 1
        dist = net.mesh.hops(router.id, pkt.dst)
        eta = now + dist + pkt.size + BYPASS_OVERHEAD
        self._busy_until = eta
        self.bypasses += 1
        net.in_transit += 1
        net.schedule(eta, self._deliver, net, pkt)
        net.last_progress = now

    # ------------------------------------------------------------------
    def _pick_victim(self, net, router, now: int):
        """Longest-blocked head packet at the token holder: an in-network
        head, or a protocol-blocked injection-queue head."""
        blocked = router.blocked_heads(now, BLOCK_THRESHOLD)
        if blocked:
            slot = min(blocked, key=lambda s: s.ready_at)
            return slot, slot.pkt
        ni = net.nis[router.id]
        for q in ni.inj:
            if q and now - q[0].gen_cycle >= BLOCK_THRESHOLD:
                pkt = q.popleft()
                ni.inj_count -= 1
                net.inj_total -= 1
                pkt.net_entry = now
                net.stats.injected += 1
                return None, pkt
        return None

    def _deliver(self, now: int, net, pkt) -> None:
        """Complete the NI-to-NI bypass; retry while the destination
        ejection queue is full (Pitstop holds the bypass meanwhile)."""
        ni = net.nis[pkt.dst]
        if not ni.can_eject(pkt, now):
            self._busy_until = now + 4
            net.schedule(now + 4, self._deliver, net, pkt)
            return
        net.in_transit -= 1
        ni.eject(pkt, now)
        net.last_progress = now

"""SPIN baseline (Ramrakhyani et al., ISCA 2018): deadlock detection and
synchronized packet rotation.

Fully adaptive routing with no escape resource, so network deadlock can and
does form.  A periodic detector looks for head packets blocked beyond the
detection threshold (128 cycles, Table II), extracts a cycle from the
wait-for graph, and — after a probe-propagation delay proportional to the
loop length (SPIN's probe/move message round) — rotates every packet in the
loop forward one hop simultaneously.  The detection latency is SPIN's
scalability problem (Table I): resolution time grows with both the
threshold and the loop length.
"""

from __future__ import annotations

from repro.network.watchdog import find_blocked_cycle
from repro.schemes.base import FaultCaps, Scheme, Table1Row, register


@register
class SPIN(Scheme):
    name = "spin"
    routing = "adaptive"
    fault_caps = FaultCaps(reroute=True)
    n_vns = 6
    n_vcs = 2

    #: how often the detector scans (cycles); the real SPIN probes
    #: continuously in hardware — scanning every few cycles is equivalent
    #: at far lower simulation cost.
    CHECK_INTERVAL = 16
    post_cycle_every = CHECK_INTERVAL

    table1 = Table1Row(
        no_detection=False,
        protocol_deadlock_freedom=False,
        network_deadlock_freedom=True,
        full_path_diversity=True,
        high_throughput=False,
        low_power=False,
        scalability=False,
        no_misrouting=True,
    )

    def __init__(self, n_vns: int | None = None, n_vcs: int | None = None):
        super().__init__(n_vns=n_vns, n_vcs=n_vcs)
        self.spins = 0
        self._pending_until = 0

    def build(self, net) -> None:
        self.spins = 0
        self._pending_until = 0
        self._net = net

    #: cycles a router freezes while it originates/forwards a probe round
    PROBE_FREEZE = 4

    def post_cycle(self, net, now: int) -> None:
        if now % self.CHECK_INTERVAL or now < self._pending_until:
            return
        threshold = net.cfg.spin_detection_threshold
        # Probe overhead: every router suspecting deadlock (a head blocked
        # past the detection threshold) originates a probe round; while the
        # probe weaves through the router, normal arbitration pauses.  This
        # is the "considerable latency overhead at saturation" the paper
        # attributes to SPIN — it only costs anything when congestion has
        # already produced long-blocked heads.
        frozen = 0
        for router in net.active_routers():
            if router.blocked_heads(now, threshold):
                until = now + self.PROBE_FREEZE
                for p in range(router.n_ports):
                    if router.in_busy[p] < until:
                        router.in_busy[p] = until
                frozen += 1
        if not frozen:
            return
        cyc = find_blocked_cycle(net, now, threshold)
        if cyc is None:
            return
        # Probe + move-message latency: two traversals of the loop.
        delay = 2 * len(cyc)
        self._pending_until = now + delay
        net.schedule(now + delay, self._spin, cyc)

    # ------------------------------------------------------------------
    def _spin(self, now: int, cyc) -> None:
        """Synchronously rotate the packets of ``cyc`` one hop forward."""
        routers = self._net.routers
        for rid, _slot in cyc:
            routers[rid].disturb()     # rotation rewrites parked slots
        slots = [slot for (_rid, slot) in cyc]
        pkts = [s.pkt for s in slots]
        if any(p is None for p in pkts):
            return  # the loop resolved on its own; abort the spin
        n = len(slots)
        for i in range(n):
            dst_slot = slots[(i + 1) % n]
            pkt = pkts[i]
            dst_slot.pkt = pkt
            dst_slot.ready_at = now + 2
            dst_slot.free_at = 1 << 60
            pkt.hops += 1
            pkt.invalidate_route()
        self.spins += 1
        # All slots stay occupied (a rotation), so the occupied lists of
        # the involved routers are already correct.
        self._net.last_progress = now
